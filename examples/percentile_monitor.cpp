// Latency-percentile monitoring: the r-selection generalization of the
// paper's MEDIAN algorithm (Algorithm 3 "essentially solves any r-selection
// problem") computes p50/p90/p99/p999 directly on bit-packed request
// latencies, optionally restricted to one endpoint or status class —
// no sort, no value reconstruction.
//
// Build & run:   ./build/examples/percentile_monitor

#include <cstdio>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/vbp_aggregate.h"
#include "layout/vbp_column.h"
#include "scan/vbp_scanner.h"
#include "util/random.h"
#include "util/rdtsc.h"

namespace {

using namespace icp;

// Synthetic request log: latency in microseconds with a heavy tail, plus an
// endpoint id column.
struct RequestLog {
  std::vector<std::uint64_t> latency_us;
  std::vector<std::uint64_t> endpoint;
};

RequestLog Generate(std::size_t n) {
  Random rng(2718);
  RequestLog log;
  log.latency_us.resize(n);
  log.endpoint.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // ~95% fast path (0.1-2 ms), ~5% slow tail (2-200 ms).
    std::uint64_t us = rng.Bernoulli(0.95)
                           ? rng.UniformInt(100, 2000)
                           : rng.UniformInt(2000, 200000);
    log.latency_us[i] = us;
    log.endpoint[i] = rng.UniformInt(0, 15);
  }
  return log;
}

void ReportPercentiles(const VbpColumn& latency,
                       const FilterBitVector& filter, const char* label) {
  const std::uint64_t count = filter.CountOnes();
  std::printf("%-28s  n=%9llu ", label,
              static_cast<unsigned long long>(count));
  if (count == 0) {
    std::printf(" (no samples)\n");
    return;
  }
  const double quantiles[] = {0.50, 0.90, 0.99, 0.999};
  const char* names[] = {"p50", "p90", "p99", "p999"};
  for (int i = 0; i < 4; ++i) {
    // Rank of the q-quantile among `count` samples (nearest-rank method);
    // RankSelect is the paper's Algorithm 3 with r as a free parameter.
    std::uint64_t r = static_cast<std::uint64_t>(
        quantiles[i] * static_cast<double>(count));
    if (r < 1) r = 1;
    const auto value = vbp::RankSelect(latency, filter, r);
    std::printf(" %s=%7.2fms", names[i],
                static_cast<double>(value.value()) / 1000.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::size_t n = 4'000'000;
  std::printf("generating %zu request records...\n", n);
  const RequestLog log = Generate(n);

  // 18 bits cover 0..262 ms of latency.
  const VbpColumn latency = VbpColumn::Pack(log.latency_us, 18);
  const VbpColumn endpoint = VbpColumn::Pack(log.endpoint, 4);

  FilterBitVector all(n, VbpColumn::kValuesPerSegment);
  all.SetAll();

  const std::uint64_t start = ReadCycleCounter();
  ReportPercentiles(latency, all, "all endpoints");
  for (std::uint64_t ep : {0, 7}) {
    const FilterBitVector f =
        VbpScanner::Scan(endpoint, CompareOp::kEq, ep);
    char label[64];
    std::snprintf(label, sizeof label, "endpoint %llu",
                  static_cast<unsigned long long>(ep));
    ReportPercentiles(latency, f, label);
  }
  // Tail-only view: among slow requests (> 2 ms), where is the p99?
  const FilterBitVector slow =
      VbpScanner::Scan(latency, CompareOp::kGt, 2000);
  ReportPercentiles(latency, slow, "slow requests (>2ms)");

  const std::uint64_t cycles = ReadCycleCounter() - start;
  std::printf("\ncomputed 16 percentiles over %zu rows in %.1f Mcycles "
              "(%.2f cycles/tuple/percentile)\n",
              n, static_cast<double>(cycles) / 1e6,
              static_cast<double>(cycles) / (16.0 * static_cast<double>(n)));
  return 0;
}
