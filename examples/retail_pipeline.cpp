// End-to-end data pipeline: ingest a CSV order export (with NULLs), persist
// the bit-packed table to disk, reload it, and run grouped / percentile /
// multi-aggregate analytics — the full public API in one walkthrough.
//
// Build & run:   ./build/examples/retail_pipeline

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/engine.h"
#include "io/csv_loader.h"
#include "io/table_io.h"
#include "util/random.h"

namespace {

using namespace icp;

// Synthesizes a messy order export: some rows are missing the coupon value.
std::string WriteOrdersCsv(const std::string& path, std::size_t rows) {
  Random rng(20240601);
  std::ofstream out(path);
  out << "order_id,region,total,coupon,order_date,items\n";
  const char* months[] = {"01", "02", "03", "04", "05", "06"};
  for (std::size_t i = 0; i < rows; ++i) {
    const int region = static_cast<int>(rng.UniformInt(0, 4));
    const double total =
        static_cast<double>(rng.UniformInt(500, 250000)) / 100.0;
    const bool has_coupon = rng.Bernoulli(0.3);
    const double coupon =
        has_coupon ? static_cast<double>(rng.UniformInt(100, 2000)) / 100.0
                   : 0.0;
    out << i << ',' << region << ',';
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.2f", total);
    out << buffer << ',';
    if (has_coupon) {
      std::snprintf(buffer, sizeof buffer, "%.2f", coupon);
      out << buffer;
    }  // else: empty field -> NULL
    const int day = static_cast<int>(1 + rng.UniformInt(0, 27));
    out << ",2024-" << months[rng.UniformInt(0, 5)] << '-'
        << (day < 10 ? "0" : "") << day << ',' << rng.UniformInt(1, 12)
        << '\n';
  }
  return path;
}

}  // namespace

int main() {
  const std::string csv_path = "/tmp/icp_orders.csv";
  const std::string table_path = "/tmp/icp_orders.icptbl";
  const std::size_t rows = 500000;

  std::printf("1. writing synthetic CSV export (%zu orders)...\n", rows);
  WriteOrdersCsv(csv_path, rows);

  std::printf("2. ingesting CSV into bit-packed columns...\n");
  auto table_or = io::LoadCsv(
      csv_path,
      {
          {.name = "order_id",
           .type = io::CsvColumnSpec::Type::kInt64,
           .scale = 0,
           .storage = {.layout = Layout::kVbp}},
          {.name = "region",
           .type = io::CsvColumnSpec::Type::kInt64,
           .scale = 0,
           .storage = {.layout = Layout::kVbp, .dictionary = true}},
          {.name = "total",
           .type = io::CsvColumnSpec::Type::kDecimal,
           .scale = 2,
           .storage = {.layout = Layout::kVbp}},
          {.name = "coupon",  // empty fields -> NULL
           .type = io::CsvColumnSpec::Type::kDecimal,
           .scale = 2,
           .storage = {.layout = Layout::kHbp}},
          {.name = "order_date",
           .type = io::CsvColumnSpec::Type::kDate,
           .scale = 0,
           .storage = {.layout = Layout::kVbp}},
          {.name = "items",
           .type = io::CsvColumnSpec::Type::kInt64,
           .scale = 0,
           .storage = {.layout = Layout::kHbp}},
      });
  ICP_CHECK(table_or.ok());

  std::printf("3. persisting the packed table (%s)...\n",
              table_path.c_str());
  ICP_CHECK(io::WriteTable(*table_or, table_path).ok());
  auto loaded = io::ReadTable(table_path);
  ICP_CHECK(loaded.ok());
  const Table& table = *loaded;
  std::printf("   reloaded %zu rows x %zu columns\n", table.num_rows(),
              table.num_columns());

  Engine engine(ExecOptions{.threads = 4, .simd = true});
  const double n = static_cast<double>(table.num_rows());

  std::printf("\n4. revenue summary for big orders (one scan, four "
              "aggregates):\n");
  MultiQuery mq;
  mq.filter = FilterExpr::Compare("total", CompareOp::kGe, 100000);  // cents
  mq.aggregates = {{AggKind::kCount, "total"},
                   {AggKind::kSum, "total"},
                   {AggKind::kAvg, "items"},
                   {AggKind::kMax, "total"}};
  auto multi = engine.ExecuteMulti(table, mq);
  ICP_CHECK(multi.ok());
  std::printf("   orders >= $1000: %llu,  revenue $%.2f,  avg items %.2f, "
              "largest $%.2f\n",
              static_cast<unsigned long long>((*multi)[0].count),
              (*multi)[1].value / 100.0, (*multi)[2].value,
              (*multi)[3].value / 100.0);

  std::printf("\n5. per-region order medians (group-by over the "
              "dictionary column):\n");
  Query q;
  q.agg = AggKind::kMedian;
  q.agg_column = "total";
  auto groups = engine.ExecuteGroupBy(table, q, "region");
  ICP_CHECK(groups.ok());
  for (const auto& [region, result] : *groups) {
    std::printf("   region %lld: median order $%.2f over %llu orders\n",
                static_cast<long long>(region), result.value / 100.0,
                static_cast<unsigned long long>(result.count));
  }

  std::printf("\n6. coupon statistics (NULL-aware: only redeemed "
              "coupons count):\n");
  q = Query{};
  q.agg = AggKind::kCount;
  q.agg_column = "order_id";
  q.filter = FilterExpr::IsNotNull("coupon");
  auto redeemed = engine.Execute(table, q);
  ICP_CHECK(redeemed.ok());
  q.agg = AggKind::kAvg;
  q.agg_column = "coupon";
  q.filter = nullptr;  // aggregates skip NULLs on their own
  auto avg_coupon = engine.Execute(table, q);
  ICP_CHECK(avg_coupon.ok());
  std::printf("   redeemed on %llu orders (%.1f%%), average $%.2f\n",
              static_cast<unsigned long long>(redeemed->count),
              100.0 * static_cast<double>(redeemed->count) / n,
              avg_coupon->value / 100.0);

  std::printf("\n7. p95 order value in March (rank aggregate):\n");
  q = Query{};
  q.agg_column = "total";
  q.agg = AggKind::kCount;
  q.filter = FilterExpr::Between("order_date",
                                 io::ParseDate("2024-03-01").value(),
                                 io::ParseDate("2024-03-31").value());
  const std::uint64_t march = engine.Execute(table, q)->count;
  q.agg = AggKind::kRank;
  q.rank = static_cast<std::uint64_t>(0.95 * static_cast<double>(march));
  auto p95 = engine.Execute(table, q);
  ICP_CHECK(p95.ok());
  std::printf("   %llu March orders, p95 = $%.2f\n",
              static_cast<unsigned long long>(march), p95->value / 100.0);

  std::remove(csv_path.c_str());
  std::remove(table_path.c_str());
  return 0;
}
