// TPC-H demo: generates the denormalized wide table (paper Section IV-C,
// following the WideTable transformation of [11]) and runs the nine
// evaluated queries end to end, printing decoded answers and the split
// between scan and aggregation cost.
//
// Build & run:   ./build/examples/tpch_demo [num_rows]

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "tpch/dates.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  using namespace icp;

  std::size_t rows = 1 << 20;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);

  std::printf("generating TPC-H wide table with %zu rows...\n", rows);
  const tpch::WideTableData data =
      tpch::GenerateWideTable({.num_rows = rows, .seed = 4});
  auto table_or = tpch::BuildTable(data, Layout::kVbp);
  ICP_CHECK(table_or.ok());
  const Table& table = *table_or;

  std::size_t bytes = 0;
  for (const auto& name : table.column_names()) {
    bytes += (*table.GetColumn(name))->MemoryBytes();
  }
  std::printf("%zu columns, %.1f MiB bit-packed (VBP)\n",
              table.num_columns(),
              static_cast<double>(bytes) / (1024.0 * 1024.0));

  Engine engine(ExecOptions{.method = AggMethod::kBitParallel});
  const double n = static_cast<double>(table.num_rows());

  for (const tpch::QuerySpec& spec : tpch::MakeQueries()) {
    std::printf("\n%s  [%s]\n", spec.id.c_str(), spec.note.c_str());
    std::printf("  WHERE %s\n", spec.filter->ToString().c_str());
    std::uint64_t scan_cycles = 0;
    auto filter = engine.EvaluateFilter(table, spec.filter,
                                        spec.aggregates[0].second,
                                        &scan_cycles);
    ICP_CHECK(filter.ok());
    std::printf("  selectivity %.4f (paper: %.3f), scan %.2f cycles/tuple\n",
                static_cast<double>(filter->CountOnes()) / n,
                spec.paper_selectivity,
                static_cast<double>(scan_cycles) / n);
    for (const auto& [kind, column] : spec.aggregates) {
      auto result = engine.Aggregate(table, kind, column, *filter);
      ICP_CHECK(result.ok());
      // Monetary columns are stored in cents.
      std::printf("  %-6s(%-15s) = %18.2f   (%.2f cycles/tuple)\n",
                  AggKindToString(kind), column.c_str(), result->value,
                  static_cast<double>(result->agg_cycles) / n);
    }
  }

  // Q1's real output is grouped by (returnflag, linestatus); the wide-table
  // transform evaluates each group as one extra bit-parallel equality scan
  // (Engine::ExecuteGroupBy). Two nested group-bys reproduce the 4 rows.
  std::printf("\nQ1 grouped output (returnflag x linestatus):\n");
  const auto q1_filter =
      FilterExpr::Compare("l_shipdate", CompareOp::kLe, tpch::Day(1998, 9, 2));
  for (std::int64_t rflag : {'A', 'N', 'R'}) {
    Query grouped;
    grouped.agg = AggKind::kSum;
    grouped.agg_column = "disc_price";
    grouped.filter = FilterExpr::And(
        {q1_filter,
         FilterExpr::Compare("l_returnflag", CompareOp::kEq, rflag)});
    auto groups = engine.ExecuteGroupBy(table, grouped, "l_linestatus");
    ICP_CHECK(groups.ok());
    for (const auto& [lstatus, result] : *groups) {
      std::printf("  %c %c: sum_disc_price = %16.2f over %9llu rows\n",
                  static_cast<char>(rflag), static_cast<char>(lstatus),
                  result.value,
                  static_cast<unsigned long long>(result.count));
    }
  }
  return 0;
}
