// Interactive SQL-subset shell over a synthetic "trips" table.
//
// Build & run:    ./build/examples/sql_shell
// Non-interactive:
//   ./build/examples/sql_shell -c "SELECT AVG(fare) WHERE distance > 5000"
//
// Supported: SELECT COUNT|SUM|AVG|MIN|MAX|MEDIAN(column) and
// RANK(column, r), WHERE with AND/OR/NOT, =/!=/<>/</<=/>/>=, BETWEEN,
// IN (...), IS [NOT] NULL, integer/decimal/'YYYY-MM-DD' literals.
// Prefix any statement with EXPLAIN ANALYZE for the per-stage report.
//
// Meta-commands: \counters (obs counter + histogram snapshot), \stats
// (the last query's QueryStats as the EXPLAIN ANALYZE table), \q.
//
// Flags:
//   --trace <path>    record a Chrome trace (open in Perfetto /
//                     chrome://tracing); written when the shell exits.
//   --admin-port <p>  serve /healthz /counters /metrics /queries
//                     /traces on 127.0.0.1:<p> (0 = ephemeral).
//   --slow-cycles <n> slow-query journal threshold in cycles
//                     (default 10000000; 0 disables).
//
// Queries run admitted against a QueryGovernor so the admin plane's
// /queries endpoint and the admission.wait trace span are live.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "icp.h"

namespace {

using namespace icp;

Table MakeTripsTable() {
  Random rng(314159);
  const std::size_t n = 1'000'000;
  std::vector<std::int64_t> distance(n), fare(n), tip(n), passengers(n),
      pickup_day(n);
  std::vector<bool> tip_known(n);
  for (std::size_t i = 0; i < n; ++i) {
    distance[i] = static_cast<std::int64_t>(rng.UniformInt(200, 30000));
    fare[i] = 250 + distance[i] / 8 +
              static_cast<std::int64_t>(rng.UniformInt(0, 500));
    tip_known[i] = !rng.Bernoulli(0.35);  // cash tips unrecorded -> NULL
    tip[i] = tip_known[i]
                 ? static_cast<std::int64_t>(rng.UniformInt(0, 2000))
                 : 0;
    passengers[i] = static_cast<std::int64_t>(rng.UniformInt(1, 6));
    pickup_day[i] = DaysFromCivil(2024, 1, 1) +
                    static_cast<std::int64_t>(rng.UniformInt(0, 180));
  }
  Table table;
  ICP_CHECK(table.AddColumn("distance", distance, {}).ok());
  ICP_CHECK(table.AddColumn("fare", fare, {.layout = Layout::kHbp}).ok());
  ICP_CHECK(table.AddNullableColumn("tip", tip, tip_known, {}).ok());
  ICP_CHECK(table
                .AddColumn("passengers", passengers,
                           {.layout = Layout::kHbp, .dictionary = true})
                .ok());
  ICP_CHECK(table.AddColumn("pickup_day", pickup_day, {}).ok());
  return table;
}

/// Last-query state the \stats meta-command renders.
struct ShellState {
  obs::QueryStats stats;  // the engine's stats sink
  QueryResult last_result;
  bool have_result = false;
};

void RunStatement(Engine& engine, const Table& table, ShellState& state,
                  const std::string& sql) {
  auto stmt = ParseStatement(sql);
  if (!stmt.ok()) {
    std::printf("  error: %s\n", stmt.status().ToString().c_str());
    return;
  }
  if (stmt->explain_analyze) {
    auto report =
        engine.ExplainAnalyze(table, stmt->query, stmt->parse_cycles);
    if (!report.ok()) {
      std::printf("  error: %s\n", report.status().ToString().c_str());
      return;
    }
    std::printf("%s", report->c_str());
    return;
  }
  ICP_OBS_HISTOGRAM_RECORD(StageParseCycles, stmt->parse_cycles);
  auto result = engine.Execute(table, stmt->query);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  state.last_result = *result;
  state.have_result = true;
  const double per_tuple =
      static_cast<double>(result->scan_cycles + result->agg_cycles) /
      static_cast<double>(table.num_rows());
  const bool value_kind = result->kind == AggKind::kMin ||
                          result->kind == AggKind::kMax ||
                          result->kind == AggKind::kMedian ||
                          result->kind == AggKind::kRank;
  if (result->kind == AggKind::kCount) {
    std::printf("  COUNT = %llu   (%.2f cycles/tuple)\n",
                static_cast<unsigned long long>(result->count), per_tuple);
  } else if (value_kind && !result->decoded_value.has_value()) {
    std::printf("  NULL   (%llu rows matched%s)\n",
                static_cast<unsigned long long>(result->count),
                result->kind == AggKind::kRank ? "; rank out of range" : "");
  } else if (result->count == 0) {
    std::printf("  no rows matched\n");
  } else {
    std::printf("  %s = %.4f   (%llu rows, %.2f cycles/tuple)\n",
                AggKindToString(result->kind), result->value,
                static_cast<unsigned long long>(result->count), per_tuple);
  }
}

/// Handles \q, \counters, \stats; returns false when the shell should
/// exit.
bool RunMetaCommand(const ShellState& state, const std::string& line) {
  if (line == "\\q") return false;
  if (line == "\\counters") {
    std::printf("%s", obs::SnapshotText().c_str());
    std::printf("%s", obs::HistogramsText().c_str());
    return true;
  }
  if (line == "\\stats") {
    if (!state.have_result) {
      std::printf("  no query executed yet\n");
    } else {
      std::printf("%s",
                  FormatExplainAnalyze(state.stats, state.last_result)
                      .c_str());
    }
    return true;
  }
  std::printf("  unknown meta-command '%s' (try \\counters, \\stats, \\q)\n",
              line.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string one_shot;
  bool have_one_shot = false;
  int admin_port = -1;
  std::uint64_t slow_cycles = 10'000'000;
  for (int arg = 1; arg < argc; ++arg) {
    const char* flag = argv[arg];
    if (std::strcmp(flag, "--trace") == 0 && arg + 1 < argc) {
      trace_path = argv[++arg];
      icp::obs::EnableTracing();
    } else if (std::strcmp(flag, "--admin-port") == 0 && arg + 1 < argc) {
      admin_port = std::atoi(argv[++arg]);
    } else if (std::strcmp(flag, "--slow-cycles") == 0 && arg + 1 < argc) {
      slow_cycles = static_cast<std::uint64_t>(
          std::strtoull(argv[++arg], nullptr, 10));
    } else if (std::strcmp(flag, "-c") == 0 && arg + 1 < argc) {
      one_shot = argv[++arg];
      have_one_shot = true;
    } else {
      std::printf("usage: sql_shell [--trace <path>] [--admin-port <port>] "
                  "[--slow-cycles <n>] [-c \"<stmt>\"]\n");
      return 2;
    }
  }
  icp::obs::SetSlowQueryThresholdCycles(slow_cycles);

  std::printf("building 1M-row trips table (distance, fare, tip [nullable], "
              "passengers, pickup_day)...\n");
  const icp::Table table = MakeTripsTable();

  // Declaration order doubles as teardown order: the admin server stops
  // before the governor it introspects; the governor outlives the engine
  // whose queries it admits and dies before its scheduler.
  icp::sched::MorselScheduler scheduler(3);
  icp::sched::QueryGovernor governor(scheduler, {});
  ShellState state;
  icp::Engine engine(icp::ExecOptions{.threads = 4,
                                      .simd = true,
                                      .stats = &state.stats,
                                      .governor = &governor});
  icp::obs::AdminServer admin;
  if (admin_port >= 0) {
    admin.set_queries_provider(
        [&governor] { return governor.DescribeJson(); });
    const icp::Status started = admin.Start(admin_port);
    if (!started.ok()) {
      std::printf("  error: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("admin plane on http://127.0.0.1:%d "
                "(/healthz /counters /metrics /queries /traces)\n",
                admin.port());
  }

  if (have_one_shot) {
    RunStatement(engine, table, state, one_shot);
    if (!trace_path.empty() && !icp::obs::WriteChromeTrace(trace_path)) {
      std::printf("  error: could not write trace to %s\n",
                  trace_path.c_str());
      return 1;
    }
    return 0;
  }

  std::printf("example: SELECT MEDIAN(fare) WHERE distance > 10000 AND tip "
              "IS NOT NULL\n");
  std::printf("type \\q to quit\n");
  std::string line;
  while (true) {
    std::printf("icp> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line[0] == '\\') {
      if (!RunMetaCommand(state, line)) break;
      continue;
    }
    RunStatement(engine, table, state, line);
  }
  if (!trace_path.empty() && !icp::obs::WriteChromeTrace(trace_path)) {
    std::printf("  error: could not write trace to %s\n", trace_path.c_str());
    return 1;
  }
  return 0;
}
