// Interactive SQL-subset shell over a synthetic "trips" table.
//
// Build & run:    ./build/examples/sql_shell
// Non-interactive:
//   ./build/examples/sql_shell -c "SELECT AVG(fare) WHERE distance > 5000"
//
// Supported: SELECT COUNT|SUM|AVG|MIN|MAX|MEDIAN(column) and
// RANK(column, r), WHERE with AND/OR/NOT, =/!=/<>/</<=/>/>=, BETWEEN,
// IN (...), IS [NOT] NULL, integer/decimal/'YYYY-MM-DD' literals.
// Prefix any statement with EXPLAIN ANALYZE for the per-stage report.
// Pass --trace <path> to record a Chrome trace (open in Perfetto /
// chrome://tracing); it is written when the shell exits.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "icp.h"

namespace {

using namespace icp;

Table MakeTripsTable() {
  Random rng(314159);
  const std::size_t n = 1'000'000;
  std::vector<std::int64_t> distance(n), fare(n), tip(n), passengers(n),
      pickup_day(n);
  std::vector<bool> tip_known(n);
  for (std::size_t i = 0; i < n; ++i) {
    distance[i] = static_cast<std::int64_t>(rng.UniformInt(200, 30000));
    fare[i] = 250 + distance[i] / 8 +
              static_cast<std::int64_t>(rng.UniformInt(0, 500));
    tip_known[i] = !rng.Bernoulli(0.35);  // cash tips unrecorded -> NULL
    tip[i] = tip_known[i]
                 ? static_cast<std::int64_t>(rng.UniformInt(0, 2000))
                 : 0;
    passengers[i] = static_cast<std::int64_t>(rng.UniformInt(1, 6));
    pickup_day[i] = DaysFromCivil(2024, 1, 1) +
                    static_cast<std::int64_t>(rng.UniformInt(0, 180));
  }
  Table table;
  ICP_CHECK(table.AddColumn("distance", distance, {}).ok());
  ICP_CHECK(table.AddColumn("fare", fare, {.layout = Layout::kHbp}).ok());
  ICP_CHECK(table.AddNullableColumn("tip", tip, tip_known, {}).ok());
  ICP_CHECK(table
                .AddColumn("passengers", passengers,
                           {.layout = Layout::kHbp, .dictionary = true})
                .ok());
  ICP_CHECK(table.AddColumn("pickup_day", pickup_day, {}).ok());
  return table;
}

void RunStatement(Engine& engine, const Table& table,
                  const std::string& sql) {
  auto stmt = ParseStatement(sql);
  if (!stmt.ok()) {
    std::printf("  error: %s\n", stmt.status().ToString().c_str());
    return;
  }
  if (stmt->explain_analyze) {
    auto report =
        engine.ExplainAnalyze(table, stmt->query, stmt->parse_cycles);
    if (!report.ok()) {
      std::printf("  error: %s\n", report.status().ToString().c_str());
      return;
    }
    std::printf("%s", report->c_str());
    return;
  }
  auto result = engine.Execute(table, stmt->query);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  const double per_tuple =
      static_cast<double>(result->scan_cycles + result->agg_cycles) /
      static_cast<double>(table.num_rows());
  const bool value_kind = result->kind == AggKind::kMin ||
                          result->kind == AggKind::kMax ||
                          result->kind == AggKind::kMedian ||
                          result->kind == AggKind::kRank;
  if (result->kind == AggKind::kCount) {
    std::printf("  COUNT = %llu   (%.2f cycles/tuple)\n",
                static_cast<unsigned long long>(result->count), per_tuple);
  } else if (value_kind && !result->decoded_value.has_value()) {
    std::printf("  NULL   (%llu rows matched%s)\n",
                static_cast<unsigned long long>(result->count),
                result->kind == AggKind::kRank ? "; rank out of range" : "");
  } else if (result->count == 0) {
    std::printf("  no rows matched\n");
  } else {
    std::printf("  %s = %.4f   (%llu rows, %.2f cycles/tuple)\n",
                AggKindToString(result->kind), result->value,
                static_cast<unsigned long long>(result->count), per_tuple);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  int arg = 1;
  if (argc > 2 && std::strcmp(argv[1], "--trace") == 0) {
    trace_path = argv[2];
    arg = 3;
    icp::obs::EnableTracing();
  }

  std::printf("building 1M-row trips table (distance, fare, tip [nullable], "
              "passengers, pickup_day)...\n");
  const icp::Table table = MakeTripsTable();
  icp::Engine engine(icp::ExecOptions{.threads = 4, .simd = true});

  if (argc == arg + 2 && std::strcmp(argv[arg], "-c") == 0) {
    RunStatement(engine, table, argv[arg + 1]);
    if (!trace_path.empty() && !icp::obs::WriteChromeTrace(trace_path)) {
      std::printf("  error: could not write trace to %s\n",
                  trace_path.c_str());
      return 1;
    }
    return 0;
  }

  std::printf("example: SELECT MEDIAN(fare) WHERE distance > 10000 AND tip "
              "IS NOT NULL\n");
  std::printf("type \\q to quit\n");
  std::string line;
  while (true) {
    std::printf("icp> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line) || line == "\\q") break;
    if (line.empty()) continue;
    RunStatement(engine, table, line);
  }
  if (!trace_path.empty() && !icp::obs::WriteChromeTrace(trace_path)) {
    std::printf("  error: could not write trace to %s\n", trace_path.c_str());
    return 1;
  }
  return 0;
}
