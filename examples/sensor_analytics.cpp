// Sensor fleet analytics: the "main-memory column store" scenario the
// paper's introduction motivates. A day of telemetry from a fleet of IoT
// sensors is held in memory as bit-packed columns; dashboard queries are
// filter scans plus aggregations, executed with every method/layout
// combination so their costs can be compared side by side.
//
// Build & run:   ./build/examples/sensor_analytics

#include <cstdio>
#include <vector>

#include "engine/engine.h"
#include "util/random.h"

namespace {

using namespace icp;

// 86400 seconds x N sensors would be large; sample at 4 Hz for a 200-sensor
// fleet: ~1.4M readings.
constexpr std::size_t kReadings = 4 * 1800 * 200;

struct Telemetry {
  std::vector<std::int64_t> sensor_id;    // 0..199
  std::vector<std::int64_t> temperature;  // milli-degrees, -20000..60000
  std::vector<std::int64_t> battery;      // percent 0..100
  std::vector<std::int64_t> rssi;         // dBm, -100..-30
  std::vector<std::int64_t> error_code;   // sparse dictionary
};

Telemetry Generate() {
  Random rng(99);
  Telemetry t;
  t.sensor_id.resize(kReadings);
  t.temperature.resize(kReadings);
  t.battery.resize(kReadings);
  t.rssi.resize(kReadings);
  t.error_code.resize(kReadings);
  const std::int64_t codes[5] = {0, 100, 204, 500, 503};
  for (std::size_t i = 0; i < kReadings; ++i) {
    t.sensor_id[i] = static_cast<std::int64_t>(rng.UniformInt(0, 199));
    t.temperature[i] =
        static_cast<std::int64_t>(rng.UniformInt(0, 80000)) - 20000;
    t.battery[i] = static_cast<std::int64_t>(rng.UniformInt(0, 100));
    t.rssi[i] = -static_cast<std::int64_t>(rng.UniformInt(30, 100));
    t.error_code[i] = codes[rng.Bernoulli(0.03) ? rng.UniformInt(1, 4) : 0];
  }
  return t;
}

Table BuildTable(const Telemetry& t, Layout layout) {
  Table table;
  ICP_CHECK(table.AddColumn("sensor_id", t.sensor_id, {.layout = layout})
                .ok());
  ICP_CHECK(
      table.AddColumn("temperature", t.temperature, {.layout = layout})
          .ok());
  ICP_CHECK(table.AddColumn("battery", t.battery, {.layout = layout}).ok());
  ICP_CHECK(table.AddColumn("rssi", t.rssi, {.layout = layout}).ok());
  ICP_CHECK(table
                .AddColumn("error_code", t.error_code,
                           {.layout = layout, .dictionary = true})
                .ok());
  return table;
}

void RunDashboard(const Table& table, const char* layout_name) {
  std::printf("\n=== layout %s ===\n", layout_name);
  const double n = static_cast<double>(table.num_rows());

  struct NamedQuery {
    const char* label;
    Query query;
  };
  const NamedQuery queries[] = {
      {"median temperature of weak-signal readings (rssi < -85)",
       Query{.agg = AggKind::kMedian,
             .agg_column = "temperature",
             .filter = FilterExpr::Compare("rssi", CompareOp::kLt, -85)}},
      {"min battery among sensors reporting errors",
       Query{.agg = AggKind::kMin,
             .agg_column = "battery",
             .filter = FilterExpr::Not(
                 FilterExpr::Compare("error_code", CompareOp::kEq, 0))}},
      {"avg temperature, healthy readings (no error, battery >= 20)",
       Query{.agg = AggKind::kAvg,
             .agg_column = "temperature",
             .filter = FilterExpr::And(
                 {FilterExpr::Compare("error_code", CompareOp::kEq, 0),
                  FilterExpr::Compare("battery", CompareOp::kGe, 20)})}},
      {"overheating readings on sensor 42 (> 45 C)",
       Query{.agg = AggKind::kCount,
             .agg_column = "temperature",
             .filter = FilterExpr::And(
                 {FilterExpr::Compare("sensor_id", CompareOp::kEq, 42),
                  FilterExpr::Compare("temperature", CompareOp::kGt,
                                      45000)})}},
  };

  for (const auto& [label, query] : queries) {
    Engine bp(ExecOptions{.method = AggMethod::kBitParallel});
    Engine nbp(ExecOptions{.method = AggMethod::kNonBitParallel});
    auto bp_result = bp.Execute(table, query);
    auto nbp_result = nbp.Execute(table, query);
    ICP_CHECK(bp_result.ok());
    ICP_CHECK(nbp_result.ok());
    ICP_CHECK(bp_result->count == nbp_result->count);
    std::printf("%-62s\n", label);
    std::printf("    answer = %.3f  (%llu rows)   agg: BP %.3f vs NBP %.3f "
                "cycles/tuple\n",
                bp_result->value,
                static_cast<unsigned long long>(bp_result->count),
                static_cast<double>(bp_result->agg_cycles) / n,
                static_cast<double>(nbp_result->agg_cycles) / n);
  }
}

}  // namespace

int main() {
  std::printf("generating %zu telemetry readings...\n", kReadings);
  const Telemetry telemetry = Generate();
  for (Layout layout : {Layout::kVbp, Layout::kHbp}) {
    const Table table = BuildTable(telemetry, layout);
    RunDashboard(table, LayoutToString(layout));
  }
  return 0;
}
