// Quickstart: pack a column, filter it with a bit-parallel scan, and
// aggregate it with the paper's bit-parallel algorithms — then do the same
// through the high-level engine API.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/hbp_aggregate.h"
#include "core/nbp_aggregate.h"
#include "core/vbp_aggregate.h"
#include "engine/engine.h"
#include "layout/vbp_column.h"
#include "scan/vbp_scanner.h"
#include "util/random.h"

int main() {
  using namespace icp;

  // ------------------------------------------------------------------
  // Low-level API: columns of unsigned k-bit codes.
  // ------------------------------------------------------------------
  // One million "age" values: 7-bit codes. A naive store would waste
  // 57 of every 64 register bits on them (paper Section I).
  const std::size_t n = 1'000'000;
  const int k = 7;
  Random rng(1);
  std::vector<std::uint64_t> ages(n);
  for (auto& a : ages) a = rng.UniformInt(0, 99);

  // Pack vertically (VBP): bit j of 64 consecutive values shares one word.
  const VbpColumn column = VbpColumn::Pack(ages, k);
  std::printf("packed %zu 7-bit values into %zu KiB (VBP)\n", n,
              column.MemoryBytes() / 1024);

  // Bit-parallel filter scan: age < 30, 64 comparisons per instruction.
  const FilterBitVector filter =
      VbpScanner::Scan(column, CompareOp::kLt, 30);
  std::printf("age < 30 matches %llu rows\n",
              static_cast<unsigned long long>(filter.CountOnes()));

  // Bit-parallel aggregation (the paper's contribution): no value is ever
  // reconstructed to plain form.
  const auto sum = vbp::Sum(column, filter);
  const auto median = vbp::Median(column, filter);
  std::printf("SUM(age)    = %llu\n",
              static_cast<unsigned long long>(sum));
  std::printf("MEDIAN(age) = %llu\n",
              static_cast<unsigned long long>(median.value()));

  // The NBP baseline gives the same answers by reconstructing each passing
  // value (paper Section III) — compare the implementations yourself:
  ICP_CHECK(nbp::Sum(column, filter) == sum);
  ICP_CHECK(nbp::Median(column, filter) == median);

  // ------------------------------------------------------------------
  // High-level API: tables, value-domain predicates, decoded results.
  // ------------------------------------------------------------------
  std::vector<std::int64_t> temperature(n);
  std::vector<std::int64_t> age_i64(ages.begin(), ages.end());
  for (auto& t : temperature) {
    t = static_cast<std::int64_t>(rng.UniformInt(0, 120)) - 40;  // -40..80
  }
  Table table;
  ICP_CHECK(table.AddColumn("age", age_i64, {.layout = Layout::kVbp}).ok());
  ICP_CHECK(
      table.AddColumn("temperature", temperature, {.layout = Layout::kHbp})
          .ok());

  Engine engine;  // single-threaded, scalar, bit-parallel
  Query query;
  query.agg = AggKind::kAvg;
  query.agg_column = "temperature";
  query.filter = FilterExpr::And(
      {FilterExpr::Between("age", 18, 35),
       FilterExpr::Compare("temperature", CompareOp::kGt, 0)});
  auto result = engine.Execute(table, query);
  ICP_CHECK(result.ok());
  std::printf(
      "\nSELECT AVG(temperature) WHERE age IN [18,35] AND temperature > 0\n"
      "  -> avg = %.3f over %llu rows "
      "(scan %.2f + agg %.2f cycles/tuple)\n",
      result->value, static_cast<unsigned long long>(result->count),
      static_cast<double>(result->scan_cycles) / static_cast<double>(n),
      static_cast<double>(result->agg_cycles) / static_cast<double>(n));
  return 0;
}
