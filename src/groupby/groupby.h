// Single-pass high-cardinality grouped aggregation.
//
// The engine's historical GROUP BY ran one bit-parallel scan per group
// code — O(groups x table) work that collapses past a few hundred groups.
// This operator instead makes one morsel-driven pass over the table: each
// worker slot keeps a thread-local fixed-size aggregation table keyed by
// dictionary codes (direct-indexed when the dictionary fits the local
// budget, open-addressed otherwise) and spills rows whose group cannot be
// admitted into radix partitions keyed by the code's high bits. A second
// parallel region then merges, per partition, the per-slot partial tables
// and the packed spill rows into one dense accumulator array and emits the
// non-empty groups in code order.
//
// The operator works in the code domain only (the caller decodes through
// the column encoder) and leans on the kernel registry where the work is
// bit-parallel: filter liveness is popcounted through kern::Ops()
// (popcount_words / popcount_and) and dead 64-row segments are skipped on
// the segment word, while the scatter into per-group accumulators is
// scalar per passing row — the part no bit-parallel layout can batch (see
// docs/groupby.md).
//
// Failure injection: `groupby/spill` fires on the spill-append path and
// `groupby/merge` once per merged partition; both latch and surface
// Status Internal after the region drains (no partial results escape).

#ifndef ICP_GROUPBY_GROUPBY_H_
#define ICP_GROUPBY_GROUPBY_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "parallel/executor.h"
#include "util/bits.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace icp::groupby {

/// Tuning knobs for one Execute call. The caller (engine) derives
/// local_table_bytes from ExecOptions::groupby_local_bytes; the query's
/// total local-table memory is local_table_bytes x the executor's slots,
/// so a governor-degraded grant shrinks it automatically.
struct Options {
  AggKind kind = AggKind::kCount;
  /// Per-slot local aggregation-table budget in bytes. Budgets too small
  /// for even one hash entry put the slot in pure-spill mode (every row
  /// spills) — the degenerate case the overflow tests pin down.
  std::size_t local_table_bytes = std::size_t{1} << 20;
  /// log2 of the radix-partition fan-out ceiling; partitions cover
  /// contiguous code ranges so merged groups concatenate in code order.
  int radix_bits = 6;
};

/// Work accounting for one Execute call (also mirrored into the
/// process-wide groupby.* counters at batch granularity).
struct Stats {
  std::uint64_t local_hits = 0;     // rows absorbed by a local table
  std::uint64_t spilled_rows = 0;   // rows packed into radix partitions
  std::uint64_t merge_entries = 0;  // per-slot partial entries folded
  std::uint64_t partitions = 0;     // radix partitions merged
  std::uint64_t groups = 0;         // non-empty groups emitted
  bool hashed = false;              // open-addressed local tables (vs direct)
};

/// Per-group accumulator in the code domain. `rows` counts every
/// filter-passing row of the group (group presence — a group whose agg
/// values are all NULL still exists); `count`/`sum`/`min`/`max` cover only
/// rows whose agg value is non-NULL, matching SQL aggregate semantics.
struct Accumulator {
  std::uint64_t rows = 0;
  std::uint64_t count = 0;
  UInt128 sum = 0;
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
};

/// Inputs in the code domain. Pointers are borrowed; they must stay valid
/// for the duration of Execute.
struct Input {
  /// One group code per row (the Table::Column::codes() array).
  const std::uint64_t* group_codes = nullptr;
  /// Dictionary size; every group code is < num_codes.
  std::uint64_t num_codes = 0;
  /// One agg code per row; may be null for COUNT (codes unused).
  const std::uint64_t* agg_codes = nullptr;
  /// Bit width of the agg codes (0 when agg_codes is null); decides
  /// whether a spilled row packs into one 64-bit word or two.
  int agg_bits = 0;
  /// Filter pass set ANDed with the group column's validity (NULL group
  /// rows belong to no group). Any values_per_segment; reshaped
  /// internally to 64-row segments.
  const FilterBitVector* filter = nullptr;
  /// Agg-column validity (1 = non-NULL), or null when the column has no
  /// NULLs. Any values_per_segment.
  const FilterBitVector* agg_validity = nullptr;
  std::size_t num_rows = 0;
};

/// Runs the single-pass operator on `ex` and returns the non-empty groups
/// as (group code, accumulator) pairs in ascending code order. Scratch
/// (local tables + merge accumulators) is metered through
/// ex.AccountScratch; kResourceExhausted when the budget is exhausted,
/// kCancelled / kDeadlineExceeded when `cancel` fires (both regions drain
/// cleanly first), Internal when an armed groupby/{spill,merge} failpoint
/// fires.
StatusOr<std::vector<std::pair<std::uint64_t, Accumulator>>> Execute(
    const Input& in, const Options& options, ParallelExecutor& ex,
    const CancelContext* cancel, Stats* stats);

}  // namespace icp::groupby

#endif  // ICP_GROUPBY_GROUPBY_H_
