#include "groupby/groupby.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>

#include "obs/obs.h"
#include "obs/trace.h"
#include "simd/dispatch.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace icp::groupby {
namespace {

// Open-addressing sentinel: dictionary codes are dense in [0, num_codes)
// and a dictionary of 2^64 - 1 entries cannot exist, so ~0 is never a key.
constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

// Fibonacci multiplicative mix; dictionary codes are dense small integers,
// so the multiply spreads consecutive codes across the table.
inline std::size_t HashCode(std::uint64_t code, std::size_t mask) {
  return static_cast<std::size_t>(code * 0x9E3779B97F4A7C15ull >> 32) & mask;
}

inline void Fold(Accumulator& acc, std::uint64_t code, bool valid) {
  acc.rows += 1;
  if (valid) {
    acc.count += 1;
    acc.sum += code;
    if (code < acc.min) acc.min = code;
    if (code > acc.max) acc.max = code;
  }
}

inline void Merge(Accumulator& into, const Accumulator& from) {
  into.rows += from.rows;
  into.count += from.count;
  into.sum += from.sum;
  if (from.min < into.min) into.min = from.min;
  if (from.max > into.max) into.max = from.max;
}

// One worker slot's pass-1 state: the local aggregation table plus the
// per-partition spill buffers. Only its owning slot touches it during the
// region (ParallelExecutor slot contract), so there is no synchronization.
struct LocalState {
  bool direct = false;
  std::size_t capacity = 0;  // hash slots; 0 = pure-spill mode
  std::size_t size = 0;
  std::size_t max_size = 0;
  std::vector<std::uint64_t> keys;
  std::vector<Accumulator> accs;
  std::vector<std::vector<Word>> spill;
  std::uint64_t local_hits = 0;
  std::uint64_t spilled_rows = 0;
};

// The local table slot for `code`, or nullptr when the row must spill
// (pure-spill mode, or an open-addressed table at its load-factor bound
// seeing a new key).
inline Accumulator* TableSlot(LocalState& st, std::uint64_t code) {
  if (st.direct) return &st.accs[code];
  if (st.capacity == 0) return nullptr;
  const std::size_t mask = st.capacity - 1;
  std::size_t i = HashCode(code, mask);
  while (true) {
    if (st.keys[i] == code) return &st.accs[i];
    if (st.keys[i] == kEmptyKey) {
      if (st.size >= st.max_size) return nullptr;
      st.keys[i] = code;
      ++st.size;
      return &st.accs[i];
    }
    i = (i + 1) & mask;
  }
}

// Injected-failure latch shared by both regions; first error wins.
enum InjectedError : int { kNone = 0, kSpillInjected = 1, kMergeInjected = 2 };

struct Partial {
  std::uint64_t code = 0;
  Accumulator acc;
};

}  // namespace

StatusOr<std::vector<std::pair<std::uint64_t, Accumulator>>> Execute(
    const Input& in, const Options& options, ParallelExecutor& ex,
    const CancelContext* cancel, Stats* stats) {
  ICP_CHECK(in.group_codes != nullptr);
  ICP_CHECK(in.filter != nullptr);
  ICP_CHECK_GE(options.radix_bits, 0);
  std::vector<std::pair<std::uint64_t, Accumulator>> results;
  if (in.num_codes == 0 || in.num_rows == 0) return results;

  // The pass iterates 64-row segments; reshape the (already validity-
  // intersected) filter and the agg validity once if they arrived in
  // another layout's shape.
  FilterBitVector reshaped_filter;
  const FilterBitVector* filter = in.filter;
  if (filter->values_per_segment() != kWordBits) {
    reshaped_filter = filter->Reshape(kWordBits);
    filter = &reshaped_filter;
  }
  FilterBitVector reshaped_validity;
  const FilterBitVector* validity = in.agg_validity;
  if (validity != nullptr && validity->values_per_segment() != kWordBits) {
    reshaped_validity = validity->Reshape(kWordBits);
    validity = &reshaped_validity;
  }
  const Word* fwords = filter->words();
  const Word* vwords = validity != nullptr ? validity->words() : nullptr;
  const std::size_t num_segments = filter->num_segments();

  // Bit-parallel liveness: the passing-row and non-NULL-row totals come
  // from the registry popcounts, and an all-dead filter exits before any
  // per-row work.
  const kern::KernelOps& ops = kern::Ops();
  const std::uint64_t passing = ops.popcount_words(fwords, num_segments);
  if (passing == 0) return results;
  if (vwords != nullptr &&
      ops.popcount_and(fwords, vwords, num_segments) == passing) {
    // No NULL agg value passes the filter: drop the per-row validity test
    // from the scatter loop.
    vwords = nullptr;
  }

  // Radix geometry: partitions are contiguous code ranges (high bits of
  // the code), so per-partition merge output concatenates in code order.
  const int group_bits = BitsFor(in.num_codes - 1);
  const int shift = std::max(0, group_bits - options.radix_bits);
  const std::size_t num_partitions =
      static_cast<std::size_t>((in.num_codes - 1) >> shift) + 1;
  const int agg_bits = in.agg_codes != nullptr ? in.agg_bits : 0;
  const bool one_word_spill = group_bits + agg_bits + 1 <= kWordBits;

  // Local-table mode from the per-slot budget: direct-indexed when the
  // whole dictionary fits, open-addressed otherwise, pure spill when not
  // even a minimal hash table fits.
  const std::size_t budget = options.local_table_bytes;
  const bool direct = in.num_codes * sizeof(Accumulator) <= budget;
  std::size_t capacity = 0;
  if (!direct) {
    constexpr std::size_t kEntryBytes =
        sizeof(Accumulator) + sizeof(std::uint64_t);
    std::size_t cap = std::size_t{1} << 3;
    while (cap * 2 * kEntryBytes <= budget) cap *= 2;
    if (cap * kEntryBytes <= budget) capacity = cap;
  }
  const std::size_t table_bytes =
      direct ? in.num_codes * sizeof(Accumulator)
             : capacity * (sizeof(Accumulator) + sizeof(std::uint64_t));

  const int slots = ex.max_slots();
  ICP_CHECK_GE(slots, 1);
  // Pass-1 local tables plus the merge phase's dense accumulators (the
  // partition ranges are disjoint, so they sum to num_codes entries).
  const std::size_t scratch =
      static_cast<std::size_t>(slots) * table_bytes +
      in.num_codes * sizeof(Accumulator);
  if (!ex.AccountScratch(scratch)) {
    return Status::ResourceExhausted(
        "group-by scratch budget exhausted (local tables + merge "
        "accumulators)");
  }

  std::vector<LocalState> locals(static_cast<std::size_t>(slots));
  for (LocalState& st : locals) {
    st.direct = direct;
    st.capacity = capacity;
    if (direct) {
      st.accs.resize(in.num_codes);
    } else if (capacity != 0) {
      st.keys.assign(capacity, kEmptyKey);
      st.accs.resize(capacity);
      st.max_size = capacity - capacity / 4;
    }
    st.spill.resize(num_partitions);
  }

  std::atomic<int> injected{kNone};
  const std::uint64_t* group_codes = in.group_codes;
  const std::uint64_t* agg_codes = in.agg_codes;

  {
    ICP_OBS_TRACE_SPAN("groupby.pass", 0);
    ex.ParallelFor(
        num_segments, cancel,
        [&](int slot, std::size_t begin, std::size_t end) {
          LocalState& st = locals[static_cast<std::size_t>(slot)];
          // order: relaxed — first-injection latch; the region barrier
          // orders it before the post-phase read.
          if (injected.load(std::memory_order_relaxed) != kNone) return;
          // cancellation: exempt — the executor polls the context
          // between subranges (per morsel / per cancel batch); one
          // subrange is the cancellation granularity of this pass.
          for (std::size_t seg = begin; seg < end; ++seg) {
            Word w = fwords[seg];
            if (w == 0) continue;  // dead 64-row segment: no per-row work
            const Word vw = vwords != nullptr ? vwords[seg] : ~Word{0};
            const std::size_t row0 = seg * kWordBits;
            while (w != 0) {
              const int bit = std::countl_zero(w);
              w &= ~(Word{1} << (kWordBits - 1 - bit));
              const std::size_t row = row0 + static_cast<std::size_t>(bit);
              const std::uint64_t g = group_codes[row];
              const bool valid =
                  ((vw >> (kWordBits - 1 - bit)) & Word{1}) != 0;
              const std::uint64_t a =
                  agg_codes != nullptr ? agg_codes[row] : 0;
              if (Accumulator* acc = TableSlot(st, g); acc != nullptr) {
                Fold(*acc, a, valid);
                ++st.local_hits;
                continue;
              }
              if (ICP_FAILPOINT("groupby/spill")) {
                // order: relaxed — injection latch; read post-barrier.
                injected.store(kSpillInjected, std::memory_order_relaxed);
                return;
              }
              std::vector<Word>& bucket = st.spill[g >> shift];
              if (one_word_spill) {
                bucket.push_back((g << (agg_bits + 1)) | (a << 1) |
                                 (valid ? 1 : 0));
              } else {
                bucket.push_back((g << 1) | (valid ? 1 : 0));
                bucket.push_back(a);
              }
              ++st.spilled_rows;
            }
          }
        });
  }
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  // order: relaxed — read after ParallelFor joined; the region barrier
  // ordered every worker's store.
  if (injected.load(std::memory_order_relaxed) == kSpillInjected) {
    return Status::Internal("injected group-by spill failure");
  }

  // Drain each slot's local table into per-partition partial lists so the
  // merge region can fold them without touching foreign hash tables.
  std::vector<std::vector<Partial>> partials(num_partitions);
  std::uint64_t merge_entries = 0;
  for (const LocalState& st : locals) {
    if (st.direct) {
      for (std::uint64_t c = 0; c < in.num_codes; ++c) {
        if (st.accs[c].rows == 0) continue;
        partials[c >> shift].push_back(Partial{c, st.accs[c]});
        ++merge_entries;
      }
    } else {
      for (std::size_t i = 0; i < st.capacity; ++i) {
        if (st.keys[i] == kEmptyKey) continue;
        partials[st.keys[i] >> shift].push_back(Partial{st.keys[i],
                                                        st.accs[i]});
        ++merge_entries;
      }
    }
  }

  std::vector<std::vector<std::pair<std::uint64_t, Accumulator>>> out_parts(
      num_partitions);
  const std::uint64_t agg_mask = LowMask(agg_bits);
  {
    ICP_OBS_TRACE_SPAN("groupby.merge", 0);
    ex.ParallelFor(
        num_partitions, cancel,
        [&](int, std::size_t begin, std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) {
            // order: relaxed — first-injection latch; read post-barrier.
            if (injected.load(std::memory_order_relaxed) != kNone) return;
            if (cancel != nullptr && cancel->ShouldStop()) return;
            if (ICP_FAILPOINT("groupby/merge")) {
              // order: relaxed — injection latch; read post-barrier.
              injected.store(kMergeInjected, std::memory_order_relaxed);
              return;
            }
            const std::uint64_t lo = static_cast<std::uint64_t>(p) << shift;
            const std::uint64_t hi = std::min<std::uint64_t>(
                in.num_codes, lo + (std::uint64_t{1} << shift));
            std::vector<Accumulator> dense(
                static_cast<std::size_t>(hi - lo));
            for (const Partial& pt : partials[p]) {
              Merge(dense[static_cast<std::size_t>(pt.code - lo)], pt.acc);
            }
            for (const LocalState& st : locals) {
              const std::vector<Word>& bucket = st.spill[p];
              if (one_word_spill) {
                for (const Word w : bucket) {
                  const std::uint64_t g = w >> (agg_bits + 1);
                  Fold(dense[static_cast<std::size_t>(g - lo)],
                       (w >> 1) & agg_mask, (w & 1) != 0);
                }
              } else {
                for (std::size_t i = 0; i + 1 < bucket.size(); i += 2) {
                  const std::uint64_t g = bucket[i] >> 1;
                  Fold(dense[static_cast<std::size_t>(g - lo)],
                       bucket[i + 1], (bucket[i] & 1) != 0);
                }
              }
            }
            std::vector<std::pair<std::uint64_t, Accumulator>>& out =
                out_parts[p];
            for (std::uint64_t c = lo; c < hi; ++c) {
              const Accumulator& acc =
                  dense[static_cast<std::size_t>(c - lo)];
              if (acc.rows != 0) out.emplace_back(c, acc);
            }
          }
        });
  }
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  // order: relaxed — read after ParallelFor joined; the region barrier
  // ordered every worker's store.
  if (injected.load(std::memory_order_relaxed) == kMergeInjected) {
    return Status::Internal("injected group-by merge failure");
  }

  std::size_t total_groups = 0;
  for (const auto& part : out_parts) total_groups += part.size();
  results.reserve(total_groups);
  for (auto& part : out_parts) {
    for (auto& entry : part) {
      results.push_back(std::move(entry));
    }
  }

  std::uint64_t local_hits = 0;
  std::uint64_t spilled_rows = 0;
  for (const LocalState& st : locals) {
    local_hits += st.local_hits;
    spilled_rows += st.spilled_rows;
  }
  ICP_OBS_ADD(GroupByLocalHits, local_hits);
  ICP_OBS_ADD(GroupBySpilledRows, spilled_rows);
  ICP_OBS_ADD(GroupByMergeEntries, merge_entries);
  ICP_OBS_ADD(GroupByPartitionsMerged, num_partitions);
  if (stats != nullptr) {
    stats->local_hits += local_hits;
    stats->spilled_rows += spilled_rows;
    stats->merge_entries += merge_entries;
    stats->partitions += num_partitions;
    stats->groups += results.size();
    stats->hashed = !direct && capacity != 0;
  }
  return results;
}

}  // namespace icp::groupby
