#include "encode/column_encoder.h"

#include <algorithm>

namespace icp {

ColumnEncoder ColumnEncoder::ForRange(std::int64_t min_value,
                                      std::int64_t max_value) {
  ICP_CHECK_LE(min_value, max_value);
  const std::uint64_t span = static_cast<std::uint64_t>(max_value) -
                             static_cast<std::uint64_t>(min_value);
  return ForRangeWithWidth(min_value, max_value, BitsFor(span));
}

ColumnEncoder ColumnEncoder::ForRangeWithWidth(std::int64_t min_value,
                                               std::int64_t max_value,
                                               int bit_width) {
  ICP_CHECK_LE(min_value, max_value);
  const std::uint64_t span = static_cast<std::uint64_t>(max_value) -
                             static_cast<std::uint64_t>(min_value);
  ICP_CHECK_GE(bit_width, BitsFor(span));
  ICP_CHECK_LE(bit_width, kWordBits - 1);
  ColumnEncoder enc;
  enc.min_value_ = min_value;
  enc.max_value_ = max_value;
  enc.bit_width_ = bit_width;
  return enc;
}

ColumnEncoder ColumnEncoder::ForDictionary(
    const std::vector<std::int64_t>& values) {
  ICP_CHECK(!values.empty());
  ColumnEncoder enc;
  enc.dictionary_ = values;
  std::sort(enc.dictionary_.begin(), enc.dictionary_.end());
  enc.dictionary_.erase(
      std::unique(enc.dictionary_.begin(), enc.dictionary_.end()),
      enc.dictionary_.end());
  enc.min_value_ = enc.dictionary_.front();
  enc.max_value_ = enc.dictionary_.back();
  enc.bit_width_ = BitsFor(enc.dictionary_.size() - 1);
  return enc;
}

ColumnEncoder ColumnEncoder::FitRange(
    const std::vector<std::int64_t>& values) {
  ICP_CHECK(!values.empty());
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return ForRange(*lo, *hi);
}

std::uint64_t ColumnEncoder::Encode(std::int64_t value) const {
  if (is_dictionary()) {
    const auto it =
        std::lower_bound(dictionary_.begin(), dictionary_.end(), value);
    ICP_CHECK(it != dictionary_.end() && *it == value);
    return static_cast<std::uint64_t>(it - dictionary_.begin());
  }
  ICP_CHECK(value >= min_value_ && value <= max_value_);
  return static_cast<std::uint64_t>(value) -
         static_cast<std::uint64_t>(min_value_);
}

std::int64_t ColumnEncoder::Decode(std::uint64_t code) const {
  if (is_dictionary()) {
    ICP_CHECK_LT(code, dictionary_.size());
    return dictionary_[code];
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(min_value_) +
                                   code);
}

std::vector<std::uint64_t> ColumnEncoder::EncodeAll(
    const std::vector<std::int64_t>& values) const {
  std::vector<std::uint64_t> codes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    codes[i] = Encode(values[i]);
  }
  return codes;
}

ConstantBound ColumnEncoder::EncodeLowerBound(std::int64_t constant,
                                              std::uint64_t* code) const {
  if (is_dictionary()) {
    const auto it =
        std::lower_bound(dictionary_.begin(), dictionary_.end(), constant);
    if (it == dictionary_.end()) return ConstantBound::kAboveDomain;
    *code = static_cast<std::uint64_t>(it - dictionary_.begin());
    return constant < dictionary_.front() ? ConstantBound::kBelowDomain
                                          : ConstantBound::kInDomain;
  }
  if (constant > max_value_) return ConstantBound::kAboveDomain;
  if (constant < min_value_) {
    *code = 0;
    return ConstantBound::kBelowDomain;
  }
  *code = Encode(constant);
  return ConstantBound::kInDomain;
}

ConstantBound ColumnEncoder::EncodeUpperBound(std::int64_t constant,
                                              std::uint64_t* code) const {
  if (is_dictionary()) {
    // Largest dictionary entry <= constant.
    const auto it =
        std::upper_bound(dictionary_.begin(), dictionary_.end(), constant);
    if (it == dictionary_.begin()) return ConstantBound::kBelowDomain;
    *code = static_cast<std::uint64_t>((it - dictionary_.begin()) - 1);
    return constant > dictionary_.back() ? ConstantBound::kAboveDomain
                                         : ConstantBound::kInDomain;
  }
  if (constant < min_value_) return ConstantBound::kBelowDomain;
  if (constant > max_value_) {
    *code = Encode(max_value_);
    return ConstantBound::kAboveDomain;
  }
  *code = Encode(constant);
  return ConstantBound::kInDomain;
}

bool ColumnEncoder::EncodeExact(std::int64_t constant,
                                std::uint64_t* code) const {
  if (is_dictionary()) {
    const auto it =
        std::lower_bound(dictionary_.begin(), dictionary_.end(), constant);
    if (it == dictionary_.end() || *it != constant) return false;
    *code = static_cast<std::uint64_t>(it - dictionary_.begin());
    return true;
  }
  if (constant < min_value_ || constant > max_value_) return false;
  *code = Encode(constant);
  return true;
}

}  // namespace icp
