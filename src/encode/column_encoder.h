// Order-preserving encoding of column values into unsigned k-bit codes.
//
// The paper's algorithms aggregate unsigned integers; realistic column types
// (signed ints, decimals with fixed scale, dates, low-cardinality strings)
// are mapped to codes with an order-preserving scheme (paper Section III,
// footnote 3, citing [7]):
//
//   * RangeEncoder  — code = value - min; k = bits(max - min). SUM/AVG/
//     MIN/MAX/MEDIAN of the original values can be recovered from aggregates
//     over codes (sum = code_sum + count * min, etc.).
//   * DictionaryEncoder — code = rank of the value in the sorted domain.
//     Order-preserving, so range predicates map to code ranges; only
//     MIN/MAX/MEDIAN/COUNT are decodable (SUM of ranks is meaningless).
//
// Encoding a predicate constant that falls outside (or between) domain
// values needs care: EncodeLowerBound/EncodeUpperBound map an arbitrary
// constant to the tightest code-domain bound with identical filter
// semantics, and report when the predicate degenerates.

#ifndef ICP_ENCODE_COLUMN_ENCODER_H_
#define ICP_ENCODE_COLUMN_ENCODER_H_

#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/check.h"
#include "util/status.h"

namespace icp {

/// Where a constant lands relative to the encodable domain.
enum class ConstantBound {
  kBelowDomain,  // constant < every encodable value
  kInDomain,     // exact or in-between mapping succeeded
  kAboveDomain,  // constant > every encodable value
};

class ColumnEncoder {
 public:
  ColumnEncoder() = default;

  /// Builds a range encoder for values in [min_value, max_value].
  static ColumnEncoder ForRange(std::int64_t min_value,
                                std::int64_t max_value);

  /// Builds a range encoder with an explicit bit width (>= required width).
  static ColumnEncoder ForRangeWithWidth(std::int64_t min_value,
                                         std::int64_t max_value,
                                         int bit_width);

  /// Builds a dictionary encoder over the distinct values of `values`.
  static ColumnEncoder ForDictionary(const std::vector<std::int64_t>& values);

  /// Fits a range encoder to the min/max of `values`.
  static ColumnEncoder FitRange(const std::vector<std::int64_t>& values);

  bool is_dictionary() const { return !dictionary_.empty(); }
  int bit_width() const { return bit_width_; }

  /// Number of valid codes: dictionary entries, or max - min + 1 for a
  /// range encoder (codes are dense in [0, num_codes())).
  std::uint64_t num_codes() const {
    if (is_dictionary()) return dictionary_.size();
    return static_cast<std::uint64_t>(max_value_) -
           static_cast<std::uint64_t>(min_value_) + 1;
  }
  std::int64_t min_value() const { return min_value_; }
  std::int64_t max_value() const { return max_value_; }

  /// Encodes a value known to be in-domain (aborts otherwise).
  std::uint64_t Encode(std::int64_t value) const;

  /// Decodes a code back to the original value domain.
  std::int64_t Decode(std::uint64_t code) const;

  /// Encodes every value of a column.
  std::vector<std::uint64_t> EncodeAll(
      const std::vector<std::int64_t>& values) const;

  /// Maps `constant` to the smallest code whose decoded value is >= constant
  /// (for predicates of the form v >= constant). Returns kAboveDomain if no
  /// such code exists.
  ConstantBound EncodeLowerBound(std::int64_t constant,
                                 std::uint64_t* code) const;

  /// Maps `constant` to the largest code whose decoded value is <= constant
  /// (for predicates of the form v <= constant). Returns kBelowDomain if no
  /// such code exists.
  ConstantBound EncodeUpperBound(std::int64_t constant,
                                 std::uint64_t* code) const;

  /// Maps `constant` to its exact code (for equality predicates). Returns
  /// false if the constant is not an encodable value.
  bool EncodeExact(std::int64_t constant, std::uint64_t* code) const;

 private:
  std::int64_t min_value_ = 0;
  std::int64_t max_value_ = 0;
  int bit_width_ = 1;
  std::vector<std::int64_t> dictionary_;  // sorted; empty => range encoder
};

}  // namespace icp

#endif  // ICP_ENCODE_COLUMN_ENCODER_H_
