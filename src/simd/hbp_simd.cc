#include "simd/hbp_simd.h"

#include <algorithm>
#include <array>
#include <vector>

#include "core/hbp_aggregate.h"
#include "core/in_word_sum.h"
#include "simd/dispatch.h"
#include "util/aligned_buffer.h"
#include "util/check.h"

namespace icp::simd {
namespace {

// 256-bit word of sub-segment t of segment-quad q in group g.
inline const Word* QuadWordPtr(const HbpColumn& column, int g, std::size_t q,
                               int s, int t) {
  return column.GroupData(g) + (q * s + t) * 4;
}

struct FieldCompareState256 {
  Word256 eq;
  Word256 lt;
  Word256 gt;

  void Reset(Word256 md) {
    eq = md;
    lt = Word256::Zero();
    gt = Word256::Zero();
  }

  void Step(Word256 x, Word256 c, Word256 md) {
    const Word256 ge = FieldGe256(x, c, md);
    const Word256 le = FieldGe256(c, x, md);
    lt = lt | (eq & (ge ^ md));
    gt = gt | (eq & (le ^ md));
    eq = eq & ge & le;
  }
};

Word256 ResultWord(CompareOp op, Word256 md, const FieldCompareState256& a,
                   const FieldCompareState256& b) {
  switch (op) {
    case CompareOp::kEq:
      return a.eq;
    case CompareOp::kNe:
      return md ^ a.eq;
    case CompareOp::kLt:
      return a.lt;
    case CompareOp::kLe:
      return a.lt | a.eq;
    case CompareOp::kGt:
      return a.gt;
    case CompareOp::kGe:
      return a.gt | a.eq;
    case CompareOp::kBetween:
      return (a.gt | a.eq) & (b.lt | b.eq);
  }
  return Word256::Zero();
}

inline Word256 ValueMaskFromDelimiters256(Word256 md, int tau) {
  return Sub64(md, md.Shr64(tau));
}

}  // namespace

FilterBitVector ScanHbp(const HbpColumn& column, CompareOp op,
                        std::uint64_t c1, std::uint64_t c2) {
  FilterBitVector out(column.num_values(), column.values_per_segment());
  ScanHbpRange(column, op, c1, c2, 0, NumQuads(column), &out);
  return out;
}

void ScanHbpRange(const HbpColumn& column, CompareOp op, std::uint64_t c1,
                  std::uint64_t c2, std::size_t quad_begin,
                  std::size_t quad_end, FilterBitVector* out) {
  ICP_CHECK_EQ(column.lanes(), 4);
  ICP_CHECK_EQ(out->values_per_segment(), column.values_per_segment());
  const int k = column.bit_width();
  const int tau = column.tau();
  const int s = column.field_width();
  const int num_groups = column.num_groups();
  const std::size_t live_segments = out->num_segments();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    for (std::size_t seg = quad_begin * 4;
         seg < quad_end * 4 && seg < live_segments; ++seg) {
      out->SetSegmentWord(seg, all ? out->ValidMask(seg) : 0);
    }
    return;
  }

  const bool dual = op == CompareOp::kBetween;
  const Word256 md = Word256::Broadcast(DelimiterMask(s));
  const Word group_mask = LowMask(tau);
  std::array<Word256, kWordBits> c1_packed;
  std::array<Word256, kWordBits> c2_packed;
  for (int g = 0; g < num_groups; ++g) {
    const int shift = column.GroupShift(g);
    c1_packed[g] =
        Word256::Broadcast(RepeatField((c1 >> shift) & group_mask, s));
    c2_packed[g] =
        Word256::Broadcast(RepeatField((c2 >> shift) & group_mask, s));
  }
  // All bits of a full segment word are meaningful except the vps padding.
  const Word256 full_valid =
      Word256::Broadcast(HighMask(column.values_per_segment()));

  std::array<FieldCompareState256, kWordBits> a;
  std::array<FieldCompareState256, kWordBits> b;
  Word* f_words = out->words();
  for (std::size_t q = quad_begin; q < quad_end; ++q) {
    for (int t = 0; t < s; ++t) {
      a[t].Reset(md);
      b[t].Reset(md);
    }
    for (int g = 0; g < num_groups; ++g) {
      const Word* base = QuadWordPtr(column, g, q, s, 0);
      Word256 any_eq = Word256::Zero();
      for (int t = 0; t < s; ++t) {
        const Word256 x = Word256::Load(base + t * 4);
        a[t].Step(x, c1_packed[g], md);
        any_eq = any_eq | a[t].eq;
        if (dual) {
          b[t].Step(x, c2_packed[g], md);
          any_eq = any_eq | b[t].eq;
        }
      }
      if (any_eq.IsZero() && g + 1 < num_groups) break;
    }
    Word256 filter = Word256::Zero();
    for (int t = 0; t < s; ++t) {
      filter = filter | ResultWord(op, md, a[t], b[t]).Shr64(t);
    }
    (filter & full_valid).Store(f_words + q * 4);
  }
  const std::size_t last = live_segments - 1;
  if (last >= quad_begin * 4 && last < quad_end * 4) {
    f_words[last] &= out->ValidMask(last);
  }
  // Clear padding-segment words beyond the live range (aggregate kernels
  // load them as part of the final quad).
  for (std::size_t seg = std::max(live_segments, quad_begin * 4);
       seg < quad_end * 4; ++seg) {
    f_words[seg] = 0;
  }
}

namespace {

// Replays InWordSumPlan's halving steps on four lanes.
class InWordSumPlan256 {
 public:
  explicit InWordSumPlan256(int s) : plan_(s, /*allow_multiply=*/false) {
    ICP_CHECK(!plan_.use_multiply());
    final_mask_ = Word256::Broadcast(plan_.final_mask());
    for (int i = 0; i < plan_.num_steps(); ++i) {
      masks_[i] = Word256::Broadcast(plan_.step_mask(i));
    }
    // Widened-accumulator plan: after step i the word holds packed partial
    // sums in slots of stride s*2^(i+1), each bounded by (2^(s-1)-1)*2^(i+1).
    // Several such words can be Add64-ed together before any slot overflows
    // its stride (or, for the truncated top slot, the end of the word), so
    // the tail of the halving cascade runs once per flush instead of once
    // per word. Pick the deepest prefix (at most 2 steps) that still leaves
    // a useful accumulation budget.
    int width = s;
    int count = kWordBits / s;
    UInt128 bound = LowMask(s - 1);
    for (int i = 0; i < plan_.num_steps() && i < 2; ++i) {
      width *= 2;
      bound *= 2;
      count = (count + 1) / 2;
      const int pos_top = (count - 1) * width;
      const int cap_bits = std::min(width, kWordBits - pos_top);
      const UInt128 slot_max = ((UInt128{1} << (cap_bits - 1)) - 1) * 2 + 1;
      const UInt128 budget = slot_max / bound;
      if (budget >= 8) {
        prefix_steps_ = i + 1;
        max_accum_ = budget > 65536 ? 65536
                                    : static_cast<std::size_t>(budget);
      }
    }
  }

  Word256 Apply(Word256 w) const {
    w = w.Shr64(plan_.align_shift());
    for (int i = 0; i < plan_.num_steps(); ++i) {
      w = Add64(w & masks_[i], w.Shr64(plan_.step_shift(i)) & masks_[i]);
    }
    return w & final_mask_;
  }

  // Align + the first prefix_steps() halving steps only; the result is a
  // packed partial-sum word suitable for Add64 accumulation.
  Word256 ApplyPrefix(Word256 w) const {
    w = w.Shr64(plan_.align_shift());
    for (int i = 0; i < prefix_steps_; ++i) {
      w = Add64(w & masks_[i], w.Shr64(plan_.step_shift(i)) & masks_[i]);
    }
    return w;
  }

  // Completes the reduction of an accumulated packed word.
  Word256 Finish(Word256 w) const {
    for (int i = prefix_steps_; i < plan_.num_steps(); ++i) {
      w = Add64(w & masks_[i], w.Shr64(plan_.step_shift(i)) & masks_[i]);
    }
    return w & final_mask_;
  }

  // Number of halving steps deferred until Finish(); 0 disables the
  // widened-accumulator path.
  int prefix_steps() const { return prefix_steps_; }
  // How many ApplyPrefix() results may be Add64-ed before Finish() must run.
  std::size_t max_accum() const { return max_accum_; }

 private:
  InWordSumPlan plan_;
  Word256 masks_[8];
  Word256 final_mask_;
  int prefix_steps_ = 0;
  std::size_t max_accum_ = 0;
};

}  // namespace

void AccumulateGroupSumsHbp(const HbpColumn& column,
                            const FilterBitVector& filter,
                            std::size_t quad_begin, std::size_t quad_end,
                            std::uint64_t* group_sums) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const int s = column.field_width();
  const int tau = column.tau();
  const int num_groups = column.num_groups();
  const Word256 dm = Word256::Broadcast(DelimiterMask(s));
  const InWordSumPlan256 plan(s);
  const Word* f_words = filter.words();
  Word256 acc[kWordBits];
  // Widened-accumulator variant (AVX2 tier): run only the first halving
  // steps per word and Add64 the packed partial sums; the rest of the
  // cascade runs once per flush. The scalar/sse tiers keep the one-full-
  // reduction-per-word baseline so the differential harness exercises both.
  if (kern::ActiveTier() == kern::Tier::kAvx2 && plan.prefix_steps() > 0 &&
      plan.max_accum() >= static_cast<std::size_t>(s)) {
    Word256 packed[kWordBits];
    std::size_t pending = 0;  // ApplyPrefix results added since last flush
    for (std::size_t q = quad_begin; q < quad_end; ++q) {
      if (pending + static_cast<std::size_t>(s) > plan.max_accum()) {
        for (int g = 0; g < num_groups; ++g) {
          acc[g] = Add64(acc[g], plan.Finish(packed[g]));
          packed[g] = Word256::Zero();
        }
        pending = 0;
      }
      const Word256 f = Word256::Load(f_words + q * 4);
      for (int t = 0; t < s; ++t) {
        const Word256 md = f.Shl64(t) & dm;
        const Word256 m = ValueMaskFromDelimiters256(md, tau);
        for (int g = 0; g < num_groups; ++g) {
          packed[g] = Add64(
              packed[g],
              plan.ApplyPrefix(
                  Word256::Load(QuadWordPtr(column, g, q, s, t)) & m));
        }
      }
      pending += static_cast<std::size_t>(s);
    }
    for (int g = 0; g < num_groups; ++g) {
      acc[g] = Add64(acc[g], plan.Finish(packed[g]));
    }
  } else {
    // Same loop order as the scalar kernel: the per-sub-segment value mask
    // is computed once and reused across word-groups.
    for (std::size_t q = quad_begin; q < quad_end; ++q) {
      const Word256 f = Word256::Load(f_words + q * 4);
      for (int t = 0; t < s; ++t) {
        const Word256 md = f.Shl64(t) & dm;
        const Word256 m = ValueMaskFromDelimiters256(md, tau);
        for (int g = 0; g < num_groups; ++g) {
          acc[g] = Add64(acc[g], plan.Apply(Word256::Load(QuadWordPtr(
                                                column, g, q, s, t)) &
                                            m));
        }
      }
    }
  }
  for (int g = 0; g < num_groups; ++g) {
    group_sums[g] +=
        acc[g].Lane(0) + acc[g].Lane(1) + acc[g].Lane(2) + acc[g].Lane(3);
  }
}

UInt128 SumHbp(const HbpColumn& column, const FilterBitVector& filter,
               const CancelContext* cancel) {
  std::uint64_t group_sums[kWordBits] = {};
  ForEachCancellableBatch(
      cancel, 0, NumQuads(column), [&](std::size_t b, std::size_t e) {
        AccumulateGroupSumsHbp(column, filter, b, e, group_sums);
      });
  return hbp::CombineGroupSums(column, group_sums);
}

void InitSubSlotExtremeHbp(const HbpColumn& column, bool is_min,
                           Word256* temp) {
  const Word256 fields =
      Word256::Broadcast(FieldValueMask(column.field_width()));
  for (int g = 0; g < column.num_groups(); ++g) {
    temp[g] = is_min ? fields : Word256::Zero();
  }
}

void SubSlotExtremeRangeHbp(const HbpColumn& column,
                            const FilterBitVector& filter,
                            std::size_t quad_begin, std::size_t quad_end,
                            bool is_min, Word256* temp) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const int s = column.field_width();
  const int tau = column.tau();
  const int num_groups = column.num_groups();
  const Word256 dm = Word256::Broadcast(DelimiterMask(s));
  const Word* f_words = filter.words();
  for (std::size_t q = quad_begin; q < quad_end; ++q) {
    const Word256 f = Word256::Load(f_words + q * 4);
    if (f.IsZero()) continue;
    const Word* bases[kWordBits];
    for (int g = 0; g < num_groups; ++g) {
      bases[g] = QuadWordPtr(column, g, q, s, 0);
    }
    for (int t = 0; t < s; ++t) {
      const Word256 md = f.Shl64(t) & dm;
      if (md.IsZero()) continue;
      Word256 eq = dm;
      Word256 replace = Word256::Zero();
      for (int g = 0; g < num_groups; ++g) {
        const Word256 x = Word256::Load(bases[g] + t * 4);
        const Word256 y = temp[g];
        const Word256 ge_xy = FieldGe256(x, y, dm);
        const Word256 ge_yx = FieldGe256(y, x, dm);
        replace = replace | (eq & ((is_min ? ge_xy : ge_yx) ^ dm));
        eq = eq & ge_xy & ge_yx;
        if (eq.IsZero() && g + 1 < num_groups) {
          // No field is still tied: the remaining groups cannot change
          // `replace`, but we must not read them either (early stop).
          break;
        }
      }
      replace = replace & md;
      if (replace.IsZero()) continue;
      const Word256 m = ValueMaskFromDelimiters256(replace, tau);
      for (int g = 0; g < num_groups; ++g) {
        temp[g] =
            (m & Word256::Load(bases[g] + t * 4)) | AndNot(m, temp[g]);
      }
    }
  }
}

std::uint64_t ExtremeOfSubSlotsHbp(const HbpColumn& column,
                                   const Word256* temp, bool is_min) {
  std::uint64_t best = 0;
  for (int lane = 0; lane < 4; ++lane) {
    Word lane_temp[kWordBits];
    for (int g = 0; g < column.num_groups(); ++g) {
      lane_temp[g] = temp[g].Lane(lane);
    }
    const std::uint64_t v = hbp::ExtremeOfSubSlots(column, lane_temp, is_min);
    if (lane == 0 || (is_min ? v < best : v > best)) best = v;
  }
  return best;
}

namespace {

std::optional<std::uint64_t> ExtremeHbp(const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        bool is_min,
                                        const CancelContext* cancel) {
  if (filter.CountOnes() == 0) return std::nullopt;
  Word256 temp[kWordBits];
  InitSubSlotExtremeHbp(column, is_min, temp);
  if (!ForEachCancellableBatch(
          cancel, 0, NumQuads(column), [&](std::size_t b, std::size_t e) {
            SubSlotExtremeRangeHbp(column, filter, b, e, is_min, temp);
          })) {
    return std::nullopt;
  }
  return ExtremeOfSubSlotsHbp(column, temp, is_min);
}

}  // namespace

std::optional<std::uint64_t> MinHbp(const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeHbp(column, filter, /*is_min=*/true, cancel);
}

std::optional<std::uint64_t> MaxHbp(const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeHbp(column, filter, /*is_min=*/false, cancel);
}

std::optional<std::uint64_t> RankSelectHbp(const HbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r,
                                           const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const std::uint64_t u = filter.CountOnes();
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t quads = NumQuads(column);
  WordBuffer v(quads * 4);
  for (std::size_t seg = 0; seg < filter.num_segments(); ++seg) {
    v[seg] = filter.SegmentWord(seg);
  }

  const int s = column.field_width();
  const int tau = column.tau();
  const Word dm_scalar = DelimiterMask(s);
  const Word256 dm = Word256::Broadcast(dm_scalar);
  const Word value_mask = LowMask(tau);
  std::vector<std::uint64_t> hist(std::size_t{1} << tau);

  std::uint64_t result = 0;
  for (int g = 0; g < column.num_groups(); ++g) {
    std::fill(hist.begin(), hist.end(), 0);
    // Histogram: scalar slot extraction per lane (Alg. 6's per-slot walk).
    if (!ForEachCancellableBatch(
            cancel, 0, quads, [&](std::size_t qb, std::size_t qe) {
              for (std::size_t q = qb; q < qe; ++q) {
                for (int lane = 0; lane < 4; ++lane) {
                  const Word cand = v[q * 4 + lane];
                  if (cand == 0) continue;
                  for (int t = 0; t < s; ++t) {
                    Word md = (cand << t) & dm_scalar;
                    const Word w = QuadWordPtr(column, g, q, s, t)[lane];
                    while (md != 0) {
                      const int p = CountTrailingZeros(md);
                      md &= md - 1;
                      ++hist[(w >> (p - tau)) & value_mask];
                    }
                  }
                }
              }
            })) {
      return std::nullopt;
    }
    std::uint64_t cum = 0;
    std::uint64_t bin = 0;
    while (cum + hist[bin] < r) {
      cum += hist[bin];
      ++bin;
    }
    r -= cum;
    result |= bin << column.GroupShift(g);
    if (g + 1 < column.num_groups()) {
      // Vectorized candidate narrowing with BIT-PARALLEL-EQUAL.
      const Word256 packed_bin = Word256::Broadcast(RepeatField(bin, s));
      if (!ForEachCancellableBatch(
              cancel, 0, quads, [&](std::size_t qb, std::size_t qe) {
                for (std::size_t q = qb; q < qe; ++q) {
                  Word256 cand = Word256::Load(v.data() + q * 4);
                  if (cand.IsZero()) continue;
                  const Word* base = QuadWordPtr(column, g, q, s, 0);
                  Word256 matches = Word256::Zero();
                  for (int t = 0; t < s; ++t) {
                    const Word256 x = Word256::Load(base + t * 4);
                    const Word256 eq = FieldGe256(x, packed_bin, dm) &
                                       FieldGe256(packed_bin, x, dm);
                    matches = matches | eq.Shr64(t);
                  }
                  (cand & matches).Store(v.data() + q * 4);
                }
              })) {
        return std::nullopt;
      }
    }
  }
  return result;
}

std::optional<std::uint64_t> MedianHbp(const HbpColumn& column,
                                       const FilterBitVector& filter,
                                       const CancelContext* cancel) {
  const std::uint64_t count = filter.CountOnes();
  if (count == 0) return std::nullopt;
  return RankSelectHbp(column, filter, LowerMedianRank(count), cancel);
}

AggregateResult AggregateHbp(const HbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank, const CancelContext* cancel) {
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = SumHbp(column, filter, cancel);
      break;
    case AggKind::kMin:
      result.value = MinHbp(column, filter, cancel);
      break;
    case AggKind::kMax:
      result.value = MaxHbp(column, filter, cancel);
      break;
    case AggKind::kMedian:
      result.value = MedianHbp(column, filter, cancel);
      break;
    case AggKind::kRank:
      result.value = RankSelectHbp(column, filter, rank, cancel);
      break;
  }
  return result;
}

}  // namespace icp::simd
