#include "simd/hbp_simd.h"

#include <algorithm>
#include <array>
#include <vector>

#include "core/hbp_aggregate.h"
#include "simd/dispatch.h"
#include "util/aligned_buffer.h"
#include "util/check.h"

namespace icp::simd {
namespace {

// 256-bit word of sub-segment t of segment-quad q in group g.
inline const Word* QuadWordPtr(const HbpColumn& column, int g, std::size_t q,
                               int s, int t) {
  return column.GroupData(g) + (q * s + t) * 4;
}

struct FieldCompareState256 {
  Word256 eq;
  Word256 lt;
  Word256 gt;

  void Reset(Word256 md) {
    eq = md;
    lt = Word256::Zero();
    gt = Word256::Zero();
  }

  void Step(Word256 x, Word256 c, Word256 md) {
    const Word256 ge = FieldGe256(x, c, md);
    const Word256 le = FieldGe256(c, x, md);
    lt = lt | (eq & (ge ^ md));
    gt = gt | (eq & (le ^ md));
    eq = eq & ge & le;
  }
};

Word256 ResultWord(CompareOp op, Word256 md, const FieldCompareState256& a,
                   const FieldCompareState256& b) {
  switch (op) {
    case CompareOp::kEq:
      return a.eq;
    case CompareOp::kNe:
      return md ^ a.eq;
    case CompareOp::kLt:
      return a.lt;
    case CompareOp::kLe:
      return a.lt | a.eq;
    case CompareOp::kGt:
      return a.gt;
    case CompareOp::kGe:
      return a.gt | a.eq;
    case CompareOp::kBetween:
      return (a.gt | a.eq) & (b.lt | b.eq);
  }
  return Word256::Zero();
}

}  // namespace

FilterBitVector ScanHbp(const HbpColumn& column, CompareOp op,
                        std::uint64_t c1, std::uint64_t c2,
                        ScanStats* stats) {
  FilterBitVector out(column.num_values(), column.values_per_segment());
  ScanHbpRange(column, op, c1, c2, 0, NumQuads(column), &out);
  // Model: s sub-segment words per group per segment.
  RecordModeledScan(column.num_segments(),
                    column.num_segments() *
                        static_cast<std::uint64_t>(column.num_groups()) *
                        static_cast<std::uint64_t>(column.field_width()),
                    stats);
  return out;
}

void ScanHbpRange(const HbpColumn& column, CompareOp op, std::uint64_t c1,
                  std::uint64_t c2, std::size_t quad_begin,
                  std::size_t quad_end, FilterBitVector* out) {
  ICP_CHECK_EQ(column.lanes(), 4);
  ICP_CHECK_EQ(out->values_per_segment(), column.values_per_segment());
  const int k = column.bit_width();
  const int tau = column.tau();
  const int s = column.field_width();
  const int num_groups = column.num_groups();
  const std::size_t live_segments = out->num_segments();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    for (std::size_t seg = quad_begin * 4;
         seg < quad_end * 4 && seg < live_segments; ++seg) {
      out->SetSegmentWord(seg, all ? out->ValidMask(seg) : 0);
    }
    return;
  }

  const bool dual = op == CompareOp::kBetween;
  const Word256 md = Word256::Broadcast(DelimiterMask(s));
  const Word group_mask = LowMask(tau);
  std::array<Word256, kWordBits> c1_packed;
  std::array<Word256, kWordBits> c2_packed;
  for (int g = 0; g < num_groups; ++g) {
    const int shift = column.GroupShift(g);
    c1_packed[g] =
        Word256::Broadcast(RepeatField((c1 >> shift) & group_mask, s));
    c2_packed[g] =
        Word256::Broadcast(RepeatField((c2 >> shift) & group_mask, s));
  }
  // All bits of a full segment word are meaningful except the vps padding.
  const Word256 full_valid =
      Word256::Broadcast(HighMask(column.values_per_segment()));

  std::array<FieldCompareState256, kWordBits> a;
  std::array<FieldCompareState256, kWordBits> b;
  Word* f_words = out->words();
  for (std::size_t q = quad_begin; q < quad_end; ++q) {
    for (int t = 0; t < s; ++t) {
      a[t].Reset(md);
      b[t].Reset(md);
    }
    for (int g = 0; g < num_groups; ++g) {
      const Word* base = QuadWordPtr(column, g, q, s, 0);
      Word256 any_eq = Word256::Zero();
      for (int t = 0; t < s; ++t) {
        const Word256 x = Word256::Load(base + t * 4);
        a[t].Step(x, c1_packed[g], md);
        any_eq = any_eq | a[t].eq;
        if (dual) {
          b[t].Step(x, c2_packed[g], md);
          any_eq = any_eq | b[t].eq;
        }
      }
      if (any_eq.IsZero() && g + 1 < num_groups) break;
    }
    Word256 filter = Word256::Zero();
    for (int t = 0; t < s; ++t) {
      filter = filter | ResultWord(op, md, a[t], b[t]).Shr64(t);
    }
    (filter & full_valid).Store(f_words + q * 4);
  }
  const std::size_t last = live_segments - 1;
  if (last >= quad_begin * 4 && last < quad_end * 4) {
    f_words[last] &= out->ValidMask(last);
  }
  // Clear padding-segment words beyond the live range (aggregate kernels
  // load them as part of the final quad).
  for (std::size_t seg = std::max(live_segments, quad_begin * 4);
       seg < quad_end * 4; ++seg) {
    f_words[seg] = 0;
  }
}

void AccumulateGroupSumsHbp(const HbpColumn& column,
                            const FilterBitVector& filter,
                            std::size_t quad_begin, std::size_t quad_end,
                            std::uint64_t* group_sums) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const int s = column.field_width();
  const int num_groups = column.num_groups();
  const Word* bases[kWordBits];
  for (int g = 0; g < num_groups; ++g) {
    bases[g] = QuadWordPtr(column, g, quad_begin, s, 0);
  }
  kern::Ops().hbp_sum(bases, num_groups, s, column.tau(), /*lanes=*/4,
                      filter.words() + quad_begin * 4,
                      quad_end - quad_begin, group_sums);
}

UInt128 SumHbp(const HbpColumn& column, const FilterBitVector& filter,
               const CancelContext* cancel) {
  std::uint64_t group_sums[kWordBits] = {};
  ForEachCancellableBatch(
      cancel, 0, NumQuads(column), [&](std::size_t b, std::size_t e) {
        AccumulateGroupSumsHbp(column, filter, b, e, group_sums);
      });
  return hbp::CombineGroupSums(column, group_sums);
}

void InitSubSlotExtremeHbp(const HbpColumn& column, bool is_min, Word* temp) {
  const Word fields = FieldValueMask(column.field_width());
  for (int i = 0; i < column.num_groups() * 4; ++i) {
    temp[i] = is_min ? fields : Word{0};
  }
}

void SubSlotExtremeRangeHbp(const HbpColumn& column,
                            const FilterBitVector& filter,
                            std::size_t quad_begin, std::size_t quad_end,
                            bool is_min, Word* temp) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const int s = column.field_width();
  const int num_groups = column.num_groups();
  const Word* bases[kWordBits];
  for (int g = 0; g < num_groups; ++g) {
    bases[g] = QuadWordPtr(column, g, quad_begin, s, 0);
  }
  kern::Ops().hbp_extreme_fold(bases, num_groups, s, column.tau(),
                               /*lanes=*/4, filter.words() + quad_begin * 4,
                               quad_end - quad_begin, is_min, temp, nullptr);
}

std::uint64_t ExtremeOfSubSlotsHbp(const HbpColumn& column, const Word* temp,
                                   bool is_min) {
  std::uint64_t best = 0;
  for (int lane = 0; lane < 4; ++lane) {
    Word lane_temp[kWordBits];
    for (int g = 0; g < column.num_groups(); ++g) {
      lane_temp[g] = temp[g * 4 + lane];
    }
    const std::uint64_t v = hbp::ExtremeOfSubSlots(column, lane_temp, is_min);
    if (lane == 0 || (is_min ? v < best : v > best)) best = v;
  }
  return best;
}

namespace {

std::optional<std::uint64_t> ExtremeHbp(const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        bool is_min,
                                        const CancelContext* cancel) {
  if (filter.CountOnes() == 0) return std::nullopt;
  Word temp[kWordBits * 4];
  InitSubSlotExtremeHbp(column, is_min, temp);
  if (!ForEachCancellableBatch(
          cancel, 0, NumQuads(column), [&](std::size_t b, std::size_t e) {
            SubSlotExtremeRangeHbp(column, filter, b, e, is_min, temp);
          })) {
    return std::nullopt;
  }
  return ExtremeOfSubSlotsHbp(column, temp, is_min);
}

}  // namespace

std::optional<std::uint64_t> MinHbp(const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeHbp(column, filter, /*is_min=*/true, cancel);
}

std::optional<std::uint64_t> MaxHbp(const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeHbp(column, filter, /*is_min=*/false, cancel);
}

std::optional<std::uint64_t> RankSelectHbp(const HbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r,
                                           const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const std::uint64_t u = filter.CountOnes();
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t quads = NumQuads(column);
  WordBuffer v(quads * 4);
  for (std::size_t seg = 0; seg < filter.num_segments(); ++seg) {
    v[seg] = filter.SegmentWord(seg);
  }

  const int s = column.field_width();
  const int tau = column.tau();
  const Word dm_scalar = DelimiterMask(s);
  const Word256 dm = Word256::Broadcast(dm_scalar);
  const Word value_mask = LowMask(tau);
  std::vector<std::uint64_t> hist(std::size_t{1} << tau);

  std::uint64_t result = 0;
  for (int g = 0; g < column.num_groups(); ++g) {
    std::fill(hist.begin(), hist.end(), 0);
    // Histogram: scalar slot extraction per lane (Alg. 6's per-slot walk).
    if (!ForEachCancellableBatch(
            cancel, 0, quads, [&](std::size_t qb, std::size_t qe) {
              for (std::size_t q = qb; q < qe; ++q) {
                for (int lane = 0; lane < 4; ++lane) {
                  const Word cand = v[q * 4 + lane];
                  if (cand == 0) continue;
                  for (int t = 0; t < s; ++t) {
                    Word md = (cand << t) & dm_scalar;
                    const Word w = QuadWordPtr(column, g, q, s, t)[lane];
                    while (md != 0) {
                      const int p = CountTrailingZeros(md);
                      md &= md - 1;
                      ++hist[(w >> (p - tau)) & value_mask];
                    }
                  }
                }
              }
            })) {
      return std::nullopt;
    }
    std::uint64_t cum = 0;
    std::uint64_t bin = 0;
    while (cum + hist[bin] < r) {
      cum += hist[bin];
      ++bin;
    }
    r -= cum;
    result |= bin << column.GroupShift(g);
    if (g + 1 < column.num_groups()) {
      // Vectorized candidate narrowing with BIT-PARALLEL-EQUAL.
      const Word256 packed_bin = Word256::Broadcast(RepeatField(bin, s));
      if (!ForEachCancellableBatch(
              cancel, 0, quads, [&](std::size_t qb, std::size_t qe) {
                for (std::size_t q = qb; q < qe; ++q) {
                  Word256 cand = Word256::Load(v.data() + q * 4);
                  if (cand.IsZero()) continue;
                  const Word* base = QuadWordPtr(column, g, q, s, 0);
                  Word256 matches = Word256::Zero();
                  for (int t = 0; t < s; ++t) {
                    const Word256 x = Word256::Load(base + t * 4);
                    const Word256 eq = FieldGe256(x, packed_bin, dm) &
                                       FieldGe256(packed_bin, x, dm);
                    matches = matches | eq.Shr64(t);
                  }
                  (cand & matches).Store(v.data() + q * 4);
                }
              })) {
        return std::nullopt;
      }
    }
  }
  return result;
}

std::optional<std::uint64_t> MedianHbp(const HbpColumn& column,
                                       const FilterBitVector& filter,
                                       const CancelContext* cancel) {
  const std::uint64_t count = filter.CountOnes();
  if (count == 0) return std::nullopt;
  return RankSelectHbp(column, filter, LowerMedianRank(count), cancel);
}

AggregateResult AggregateHbp(const HbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank, const CancelContext* cancel,
                             AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathHbp);
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = SumHbp(column, filter, cancel);
      break;
    case AggKind::kMin:
      result.value = MinHbp(column, filter, cancel);
      break;
    case AggKind::kMax:
      result.value = MaxHbp(column, filter, cancel);
      break;
    case AggKind::kMedian:
      result.value = MedianHbp(column, filter, cancel);
      break;
    case AggKind::kRank:
      result.value = RankSelectHbp(column, filter, rank, cancel);
      break;
  }
  if (kind != AggKind::kCount) CountFilterSegments(filter, stats);
  return result;
}

}  // namespace icp::simd
