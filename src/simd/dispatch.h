// Runtime kernel dispatch for the aggregation hot paths.
//
// Every positional-popcount / popcount / word-compare call site in the
// engine routes through a small registry of function pointers instead of
// ad-hoc `#ifdef __AVX2__` blocks. The registry is resolved once at
// startup:
//
//   tier = min(MaxSupportedTier(), ICP_FORCE_KERNEL if set)
//
// where MaxSupportedTier() consults cpuid (via __builtin_cpu_supports) on
// x86-64 and caps at kSse64 elsewhere. The AVX2 and AVX-512 kernels are
// compiled with function-level target(...) attributes, so they are always
// *linked* but only *selected* when the CPU actually has the features — a
// portable (-DICP_NATIVE_ARCH=OFF) binary still picks the best tier on
// capable hardware.
//
// Overrides, strongest first:
//   1. ForceTier(tier)            — programmatic, for tests and benchmarks;
//                                   ForceTier(std::nullopt) clears it.
//   2. ICP_FORCE_KERNEL=<tier>    — environment, read once at first use;
//                                   <tier> in {scalar, sse, avx2, avx512}.
// Both are clamped to MaxSupportedTier() so forcing "avx512" on a
// non-VPOPCNTDQ host degrades safely — and loudly: either path prints a
// one-line stderr note, and ForceTier() additionally bumps the
// kern.force_clamped counter, so a harness can't silently measure (or
// claim coverage for) a lower tier under a higher tier's name. Harnesses
// that iterate tiers should use EffectiveTier() to detect the clamp and
// skip instead of re-running a duplicate.
//
// To add a kernel: declare the per-tier implementations (see
// vbp_pospopcnt.h / agg_kernels.h), add a slot to KernelOps, fill it in
// the four tier tables in dispatch.cc, and call `kern::Ops().slot(...)`
// at the call site. docs/simd_dispatch.md walks through this.

#ifndef ICP_SIMD_DISPATCH_H_
#define ICP_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/bits.h"

namespace icp::kern {

enum class Tier : int {
  kScalar = 0,  // per-word POPCNT loops (the original baseline)
  kSse64 = 1,   // Harley-Seal CSA over plain 64-bit words; portable C++
  kAvx2 = 2,    // Harley-Seal over 256-bit registers, pshufb popcount
  kAvx512 = 3,  // 512-bit kernels built on VPOPCNTDQ (vpopcntq)
};

// Display / parse names: "scalar", "sse", "avx2", "avx512".
const char* TierName(Tier tier);
bool ParseTier(const char* name, Tier* out);

// Highest tier this CPU can run (cpuid on x86-64; kSse64 elsewhere).
Tier MaxSupportedTier();

// The tier whose ops table OpsFor(tier) actually returns — i.e. `tier`
// after clamping to MaxSupportedTier() and compile-time availability.
// Harnesses iterating tiers use this to dedupe clamped duplicates instead
// of reporting phantom coverage for tiers the host cannot run.
Tier EffectiveTier(Tier tier);

// The tier in effect right now (startup detection + overrides).
Tier ActiveTier();

// Programmatic override for tests/benchmarks; clamped to
// MaxSupportedTier() (clamping warns on stderr and bumps the
// kern.force_clamped counter). Pass std::nullopt to fall back to startup
// detection.
void ForceTier(std::optional<Tier> tier);

// Boolean combine operation for `combine_words`. Values are fixed — call
// sites pass them as raw ints through the kernel table.
enum class CombineOp : int {
  kAnd = 0,     // dst &= src
  kOr = 1,      // dst |= src
  kXor = 2,     // dst ^= src
  kAndNot = 3,  // dst &= ~src
};

// Scan-side statistics produced by the scanner kernels. Field meanings
// match scan::ScanStats (scan/predicate.h); the dispatch layer keeps its
// own mirror struct so it stays a leaf library.
struct ScanCounters {
  std::uint64_t words_examined = 0;
  std::uint64_t segments_processed = 0;
  std::uint64_t segments_early_stopped = 0;
};

// Aggregate-side statistics produced by the extreme-fold kernels. Field
// meanings match core::AggStats (core/aggregate.h).
struct FoldCounters {
  std::uint64_t folds = 0;
  std::uint64_t compare_early_stops = 0;
  std::uint64_t blends_skipped = 0;
  std::uint64_t segments_skipped = 0;
};

// The function-pointer bundle for one tier. All pointers are always
// non-null; per-tier implementations live in vbp_pospopcnt.h (positional
// and flat popcounts) and agg_kernels.h (everything else).
struct KernelOps {
  const char* name;

  // sums[j] += sum_i popcount(data[i*width+j] & filter[i]), lanes==1.
  void (*vbp_bit_sums)(const Word* data, const Word* filter, std::size_t n,
                       int width, std::uint64_t* sums);

  // Quad-interleaved (lanes==4) variant.
  void (*vbp_bit_sums_quads)(const Word* data, const Word* filter,
                             std::size_t num_quads, int width,
                             std::uint64_t* sums);

  // sum_i popcount(words[i])
  std::uint64_t (*popcount_words)(const Word* words, std::size_t n);

  // sum_i popcount(a[i] & b[i])
  std::uint64_t (*popcount_and)(const Word* a, const Word* b, std::size_t n);

  // In-place boolean combine: for i in [0,n):
  //   dst[i] (op)= src[i]  with op a CombineOp value (see above).
  // Backs FilterBitVector::And/Or/Xor/AndNot.
  void (*combine_words)(Word* dst, const Word* src, std::size_t n, int op);

  // Masked popcount over a strided plane — the rank/MEDIAN counting step.
  // For each unit u in [0,n) and lane l in [0,lanes):
  //   total += popcount(cand[u*lanes + l] & data[u*stride + l])
  // Units whose `lanes` candidate words are all zero are skipped (narrowed
  // away); kernels may exploit that for early exits but the result is the
  // same either way. `stride` is in words (lanes==1: width; lanes==4:
  // width*4).
  std::uint64_t (*masked_popcount)(const Word* data, std::size_t stride,
                                   int lanes, const Word* cand, std::size_t n);

  // HBP in-word SUM over a range of segments (units). For each unit u,
  // group g, sub-segment t in [0,s) and lane l in [0,lanes):
  //   word = bases[g][(u*s + t)*lanes + l]
  //   f    = filter[u*lanes + l]
  //   md   = (f << t) & DelimiterMask(s); if md == 0 the sub-segment
  //          contributes nothing
  //   m    = md - (md >> tau)   // value mask of selected fields
  //   group_sums[g] += InWordSum(word & m)   // field-wise sum, any plan
  // bases[g] points at the first word of the range for group g (already
  // offset by the caller); tau = s - 1.
  void (*hbp_sum)(const Word* const* bases, int num_groups, int s, int tau,
                  int lanes, const Word* filter, std::size_t n,
                  std::uint64_t* group_sums);

  // VBP MIN/MAX slot-fold over a range of segments (units). Bit-serial
  // compare cascade per unit: for group g, plane j of unit u lives at
  //   bases[g][(u*widths[g] + j)*lanes + l].
  // `temp` is the running extreme, plane j of group g at
  //   temp[(g*tau + j)*lanes + l]   (tau planes reserved per group).
  // Per unit: filter words all zero -> counters->segments_skipped++, next
  // unit. Otherwise counters->folds++, run the compare cascade over
  // groups/planes (is_min: candidate < extreme replaces; else >), break
  // out of the cascade early when no lane can still differ (counting
  // counters->compare_early_stops only when groups remain), and blend the
  // winning candidate planes into temp (skipping the blend, with
  // counters->blends_skipped++, when no lane wins). `counters` may be
  // null. Matches the scalar fold in core/vbp_aggregate.cc bit-for-bit,
  // stats included.
  void (*vbp_extreme_fold)(const Word* const* bases, const int* widths,
                           int num_groups, int tau, int lanes,
                           const Word* filter, std::size_t n, bool is_min,
                           Word* temp, FoldCounters* counters);

  // HBP MIN/MAX sub-slot fold. Group g's words for unit u sit at
  //   bases[g][(u*s + t)*lanes + l], t in [0,s); running extreme for
  // group g at temp[g*lanes + l] (fields packed in HBP form). Sub-segment
  // t participates only when md = (f << t) & DelimiterMask(s) is nonzero
  // for some lane; kernels MUST NOT read sub-segment t's data words when
  // every lane's md is zero (callers rely on this to fold single words
  // with n == 1). Counter semantics mirror vbp_extreme_fold with
  // per-(unit) skip counting. `counters` may be null.
  void (*hbp_extreme_fold)(const Word* const* bases, int num_groups, int s,
                           int tau, int lanes, const Word* filter,
                           std::size_t n, bool is_min, Word* temp,
                           FoldCounters* counters);

  // VBP scanner word-compare over segments (lanes==1). For segment i in
  // [0,n), group g with widths[g] planes at bases[g] + i*widths[g]:
  // run the bit-serial compare cascade for `op` (int-cast scan::CompareOp:
  // 0 eq, 1 ne, 2 lt, 3 le, 4 gt, 5 ge, 6 between) against the constant
  // bit patterns c1_bits (and c2_bits when op == 6), both laid out as
  // groups-major arrays of tau bits per group: bit for group g plane j at
  // c1_bits[g*tau + j].
  //   prior == nullptr: out[i] = raw compare result (caller applies the
  //     segment validity mask).
  //   prior != nullptr: segments with prior[i] == 0 are skipped entirely
  //     (out[i] = 0, never read, no stats); otherwise
  //     out[i] = result & prior[i].
  // Output words are bit-for-bit identical across tiers. Counters are
  // tier-dependent but internally consistent per tier: the vector tiers
  // process blocks of 4/8 segments and early-stop per block (a lane that
  // decides early rides along until its whole block decides), so
  //   segments_processed == n minus the prior-skipped segments,
  //   segments_early_stopped <= segments_processed, and
  //   words_examined counts plane words actually loaded per processed
  //   segment — between widths[0] and sum(widths) of them each.
  void (*vbp_scan)(const Word* const* bases, const int* widths,
                   int num_groups, int tau, int op, const bool* c1_bits,
                   const bool* c2_bits, std::size_t n, const Word* prior,
                   Word* out, ScanCounters* counters);

  // HBP scanner word-compare over segments (lanes==1). For segment i,
  // group g's sub-segment t at bases[g] + i*s + t; compare each data word
  // against the packed constants c1_packed[g] (and c2_packed[g] for
  // op == 6) with delimiter mask `md`, OR-ing `result >> t` into the
  // filter word. Prior-skip and counter semantics mirror vbp_scan
  // (words_examined counts sub-segment words actually loaded: between s
  // and num_groups*s per processed segment).
  void (*hbp_scan)(const Word* const* bases, int num_groups, int s, int op,
                   const Word* c1_packed, const Word* c2_packed, Word md,
                   std::size_t n, const Word* prior, Word* out,
                   ScanCounters* counters);
};

// Ops table for an explicit tier (clamped to MaxSupportedTier()).
const KernelOps& OpsFor(Tier tier);

// Ops table for ActiveTier(). Call sites should grab this once per
// aggregate, not per segment. Out of line so each grab can bump the
// per-tier kern.dispatch.* obs counter (batch granularity by the rule
// above; compiled out under ICP_OBS=0).
const KernelOps& Ops();

}  // namespace icp::kern

#endif  // ICP_SIMD_DISPATCH_H_
