// Runtime kernel dispatch for the aggregation hot paths.
//
// Every positional-popcount / popcount call site in the engine routes
// through a small registry of function pointers instead of ad-hoc
// `#ifdef __AVX2__` blocks. The registry is resolved once at startup:
//
//   tier = min(MaxSupportedTier(), ICP_FORCE_KERNEL if set)
//
// where MaxSupportedTier() consults cpuid (via __builtin_cpu_supports) on
// x86-64 and caps at kSse64 elsewhere. The AVX2 kernels are compiled with
// a function-level target("avx2") attribute, so they are always *linked*
// but only *selected* when the CPU actually has AVX2 — a portable
// (-DICP_NATIVE_ARCH=OFF) binary still picks the AVX2 tier on capable
// hardware.
//
// Overrides, strongest first:
//   1. ForceTier(tier)            — programmatic, for tests and benchmarks;
//                                   ForceTier(std::nullopt) clears it.
//   2. ICP_FORCE_KERNEL=<tier>    — environment, read once at first use;
//                                   <tier> in {scalar, sse, avx2}.
// Both are clamped to MaxSupportedTier() (with a one-line stderr warning
// for the env var) so forcing "avx2" on a non-AVX2 host degrades safely.
//
// To add a kernel: declare the per-tier implementations (see
// vbp_pospopcnt.h), add a slot to KernelOps, fill it in the three tier
// tables in dispatch.cc, and call `kern::Ops().slot(...)` at the call
// site. docs/simd_dispatch.md walks through this.

#ifndef ICP_SIMD_DISPATCH_H_
#define ICP_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/bits.h"

namespace icp::kern {

enum class Tier : int {
  kScalar = 0,  // per-word POPCNT loops (the original baseline)
  kSse64 = 1,   // Harley-Seal CSA over plain 64-bit words; portable C++
  kAvx2 = 2,    // Harley-Seal over 256-bit registers, pshufb popcount
};

// Display / parse names: "scalar", "sse", "avx2".
const char* TierName(Tier tier);
bool ParseTier(const char* name, Tier* out);

// Highest tier this CPU can run (cpuid on x86-64; kSse64 elsewhere).
Tier MaxSupportedTier();

// The tier in effect right now (startup detection + overrides).
Tier ActiveTier();

// Programmatic override for tests/benchmarks; clamped to
// MaxSupportedTier(). Pass std::nullopt to fall back to startup detection.
void ForceTier(std::optional<Tier> tier);

// The function-pointer bundle for one tier. All pointers are always
// non-null; signatures are documented in vbp_pospopcnt.h.
struct KernelOps {
  const char* name;

  // sums[j] += sum_i popcount(data[i*width+j] & filter[i]), lanes==1.
  void (*vbp_bit_sums)(const Word* data, const Word* filter, std::size_t n,
                       int width, std::uint64_t* sums);

  // Quad-interleaved (lanes==4) variant.
  void (*vbp_bit_sums_quads)(const Word* data, const Word* filter,
                             std::size_t num_quads, int width,
                             std::uint64_t* sums);

  // sum_i popcount(words[i])
  std::uint64_t (*popcount_words)(const Word* words, std::size_t n);

  // sum_i popcount(a[i] & b[i])
  std::uint64_t (*popcount_and)(const Word* a, const Word* b, std::size_t n);
};

// Ops table for an explicit tier (clamped to MaxSupportedTier()).
const KernelOps& OpsFor(Tier tier);

// Ops table for ActiveTier(). Call sites should grab this once per
// aggregate, not per segment.
inline const KernelOps& Ops() { return OpsFor(ActiveTier()); }

}  // namespace icp::kern

#endif  // ICP_SIMD_DISPATCH_H_
