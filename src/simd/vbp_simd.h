// 256-bit SIMD kernels for VBP scan and aggregation (paper Section IV-B).
//
// A lanes == 4 VbpColumn interleaves the words of four consecutive segments,
// so the same (bit, segment-quad) load brings one 256-bit register holding
// bit j of 256 values — VBP algorithms use only bitwise operations and
// popcounts, so they run unchanged on the wide word. Popcounts decompose
// into four scalar POPCNTs (no 256-bit POPCNT in AVX2), which is why the
// paper observes smaller SIMD gains for VBP than for HBP.
//
// All kernels take [quad_begin, quad_end) super-segment (segment-quad)
// ranges so the multi-threaded driver can partition work; full-range
// convenience wrappers are provided.

#ifndef ICP_SIMD_VBP_SIMD_H_
#define ICP_SIMD_VBP_SIMD_H_

#include <cstdint>
#include <optional>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/vbp_column.h"
#include "scan/predicate.h"
#include "simd/word256.h"
#include "util/cancellation.h"

namespace icp::simd {

/// Number of segment-quads of a lanes == 4 column.
inline std::size_t NumQuads(const VbpColumn& column) {
  return column.num_segments() / 4;
}

/// Bit-parallel scan; requires column.lanes() == 4. `stats`, when
/// non-null, receives the analytic model of RecordModeledScan (the SIMD
/// kernel is uninstrumented inside).
[[nodiscard]] FilterBitVector ScanVbp(const VbpColumn& column, CompareOp op,
                                      std::uint64_t c1, std::uint64_t c2 = 0,
                                      ScanStats* stats = nullptr);
void ScanVbpRange(const VbpColumn& column, CompareOp op, std::uint64_t c1,
                  std::uint64_t c2, std::size_t quad_begin,
                  std::size_t quad_end, FilterBitVector* out);

/// SUM: per-bit popcount accumulation on 256-bit words.
void AccumulateBitSumsVbp(const VbpColumn& column,
                          const FilterBitVector& filter,
                          std::size_t quad_begin, std::size_t quad_end,
                          std::uint64_t* bit_sums);
[[nodiscard]] UInt128 SumVbp(const VbpColumn& column,
                             const FilterBitVector& filter,
                             const CancelContext* cancel = nullptr);

/// MIN/MAX: 256-value slot-wise extreme state, 4*k words — plane j's four
/// lane words at temp[j*4 .. j*4+3] (the layout kern::vbp_extreme_fold
/// consumes; no alignment requirement).
void InitSlotExtremeVbp(int k, bool is_min, Word* temp);
void SlotExtremeRangeVbp(const VbpColumn& column,
                         const FilterBitVector& filter,
                         std::size_t quad_begin, std::size_t quad_end,
                         bool is_min, Word* temp);
/// Collapses a 256-slot state to the extreme value.
std::uint64_t ExtremeOfSlotsVbp(const Word* temp, int k, bool is_min);
[[nodiscard]] std::optional<std::uint64_t> MinVbp(
    const VbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);
[[nodiscard]] std::optional<std::uint64_t> MaxVbp(
    const VbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);

/// MEDIAN / r-selection on 256-bit candidate vectors.
[[nodiscard]] std::optional<std::uint64_t> RankSelectVbp(
    const VbpColumn& column, const FilterBitVector& filter, std::uint64_t r,
    const CancelContext* cancel = nullptr);
[[nodiscard]] std::optional<std::uint64_t> MedianVbp(
    const VbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);

/// Dispatcher mirroring vbp::Aggregate. `stats`, when non-null, carries
/// the CountFilterSegments liveness summary for every kind (the SIMD fold
/// kernels report no per-fold counters).
AggregateResult AggregateVbp(const VbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank = 0,
                             const CancelContext* cancel = nullptr,
                             AggStats* stats = nullptr);

}  // namespace icp::simd

#endif  // ICP_SIMD_VBP_SIMD_H_
