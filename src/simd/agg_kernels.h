// Per-tier implementations of the non-popcount KernelOps slots: the filter
// boolean combines, the rank/MEDIAN masked popcount, the HBP in-word SUM,
// the VBP/HBP MIN/MAX folds, and the scanner word-compare cascades.
//
// These are the hot paths the engine used to hand-roll per call site; they
// now live behind the dispatch registry (simd/dispatch.h) so one binary
// carries every implementation, ICP_FORCE_KERNEL covers them, and the
// differential harness exercises each tier.
//
// Layout conventions shared by all kernels (see layout/{vbp,hbp}_column.h):
//   * lanes == 1 (seg-major): unit == one segment; group g's word w of
//     unit u at bases[g][u*words_per_unit + w].
//   * lanes == 4 (quad-interleaved): unit == one segment-quad; the four
//     lanes of (unit, word) are contiguous at
//     bases[g][(u*words_per_unit + w)*4 .. +3], and the filter/candidate
//     words of a unit are contiguous too.
// The generic kernels accept any lanes in [1, 4]; the AVX2/AVX-512
// specializations fast-path lanes == 4 and fall back to the generic body
// otherwise. All kernels use unaligned loads, so temp/candidate buffers
// need no special alignment.
//
// The scanner kernels come in a scalar flavour (one segment at a time,
// shared by the scalar and sse tiers) and vectorized AVX2/AVX-512
// flavours (scan_kernels.cc) that run the compare cascades over blocks of
// 4/8 independent segments gathered into one register, early-stopping per
// block. Outputs are bit-for-bit identical across tiers; the counters are
// per-tier internally consistent (see the slot contracts in dispatch.h).

#ifndef ICP_SIMD_AGG_KERNELS_H_
#define ICP_SIMD_AGG_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/vbp_pospopcnt.h"  // ICP_POSPOPCNT_HAVE_AVX2 / _AVX512
#include "util/bits.h"

namespace icp::kern {

struct ScanCounters;
struct FoldCounters;

// ---------------------------------------------------------------------------
// Scalar tier (also the "sse" tier: the CSA trick has no purchase on these
// mask/compare-dominated loops, so the sse table reuses these entries).
// ---------------------------------------------------------------------------
void CombineWordsScalar(Word* dst, const Word* src, std::size_t n, int op);
std::uint64_t MaskedPopcountScalar(const Word* data, std::size_t stride,
                                   int lanes, const Word* cand, std::size_t n);
void HbpSumScalar(const Word* const* bases, int num_groups, int s, int tau,
                  int lanes, const Word* filter, std::size_t n,
                  std::uint64_t* group_sums);
void VbpExtremeFoldScalar(const Word* const* bases, const int* widths,
                          int num_groups, int tau, int lanes,
                          const Word* filter, std::size_t n, bool is_min,
                          Word* temp, FoldCounters* counters);
void HbpExtremeFoldScalar(const Word* const* bases, int num_groups, int s,
                          int tau, int lanes, const Word* filter,
                          std::size_t n, bool is_min, Word* temp,
                          FoldCounters* counters);

// ---------------------------------------------------------------------------
// Scalar scanner kernels (the scalar and sse tiers' vbp_scan / hbp_scan
// slots; also the ragged-tail fallback of the vector scanners).
// ---------------------------------------------------------------------------
void VbpScanKernel(const Word* const* bases, const int* widths,
                   int num_groups, int tau, int op, const bool* c1_bits,
                   const bool* c2_bits, std::size_t n, const Word* prior,
                   Word* out, ScanCounters* counters);
void HbpScanKernel(const Word* const* bases, int num_groups, int s, int op,
                   const Word* c1_packed, const Word* c2_packed, Word md,
                   std::size_t n, const Word* prior, Word* out,
                   ScanCounters* counters);

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
// AVX2 variants (function-level target("avx2"); linked everywhere, selected
// via cpuid). lanes != 4 falls back to the scalar body.
void CombineWordsAvx2(Word* dst, const Word* src, std::size_t n, int op);
std::uint64_t MaskedPopcountAvx2(const Word* data, std::size_t stride,
                                 int lanes, const Word* cand, std::size_t n);
// Widened-accumulator halving plan (AVX2 has no 64-bit lane multiply):
// per-word prefix steps + deferred cascade tail, flushed before overflow.
void HbpSumAvx2(const Word* const* bases, int num_groups, int s, int tau,
                int lanes, const Word* filter, std::size_t n,
                std::uint64_t* group_sums);
void VbpExtremeFoldAvx2(const Word* const* bases, const int* widths,
                        int num_groups, int tau, int lanes,
                        const Word* filter, std::size_t n, bool is_min,
                        Word* temp, FoldCounters* counters);
void HbpExtremeFoldAvx2(const Word* const* bases, int num_groups, int s,
                        int tau, int lanes, const Word* filter,
                        std::size_t n, bool is_min, Word* temp,
                        FoldCounters* counters);
// Vectorized scanners (scan_kernels.cc): 4 segments per block via masked
// 64-bit gathers, block-granular early stop.
void VbpScanAvx2(const Word* const* bases, const int* widths,
                 int num_groups, int tau, int op, const bool* c1_bits,
                 const bool* c2_bits, std::size_t n, const Word* prior,
                 Word* out, ScanCounters* counters);
void HbpScanAvx2(const Word* const* bases, int num_groups, int s, int op,
                 const Word* c1_packed, const Word* c2_packed, Word md,
                 std::size_t n, const Word* prior, Word* out,
                 ScanCounters* counters);
#endif

#if defined(ICP_POSPOPCNT_HAVE_AVX512)
// AVX-512 variants. The extreme folds have no AVX-512 version: their state
// is one 256-bit register set per quad, so widening to 512 bits would fold
// two quads whose early stops diverge — the avx512 tier reuses the AVX2
// fold kernels (see dispatch.cc).
void CombineWordsAvx512(Word* dst, const Word* src, std::size_t n, int op);
std::uint64_t MaskedPopcountAvx512(const Word* data, std::size_t stride,
                                   int lanes, const Word* cand,
                                   std::size_t n);
// Full multiply plan per word via vpmullq (AVX512DQ) — no widened
// accumulator needed.
void HbpSumAvx512(const Word* const* bases, int num_groups, int s, int tau,
                  int lanes, const Word* filter, std::size_t n,
                  std::uint64_t* group_sums);
// Vectorized scanners (scan_kernels.cc): 8 segments per block.
void VbpScanAvx512(const Word* const* bases, const int* widths,
                   int num_groups, int tau, int op, const bool* c1_bits,
                   const bool* c2_bits, std::size_t n, const Word* prior,
                   Word* out, ScanCounters* counters);
void HbpScanAvx512(const Word* const* bases, int num_groups, int s, int op,
                   const Word* c1_packed, const Word* c2_packed, Word md,
                   std::size_t n, const Word* prior, Word* out,
                   ScanCounters* counters);
#endif

}  // namespace icp::kern

#endif  // ICP_SIMD_AGG_KERNELS_H_
