#include "simd/vbp_pospopcnt.h"

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace icp::kern {
namespace {

// Carry-save adder: (high, low) <- low + a + b, bit-sliced. low accumulates
// the sum bit, high the carry (majority) bit.
inline void Csa(Word* h, Word* l, Word a, Word b) {
  const Word u = *l ^ a;
  *h = (*l & a) | (u & b);
  *l = u ^ b;
}

// Popcount of 8 words with a fresh CSA tree: 4 POPCNTs instead of 8.
inline std::uint64_t Popcount8(const Word* w) {
  Word ones = 0, twos = 0, fours = 0, eights = 0;
  Word twos_a = 0, twos_b = 0, fours_a = 0, fours_b = 0;
  Csa(&twos_a, &ones, w[0], w[1]);
  Csa(&twos_b, &ones, w[2], w[3]);
  Csa(&fours_a, &twos, twos_a, twos_b);
  Csa(&twos_a, &ones, w[4], w[5]);
  Csa(&twos_b, &ones, w[6], w[7]);
  Csa(&fours_b, &twos, twos_a, twos_b);
  Csa(&eights, &fours, fours_a, fours_b);
  return 8 * static_cast<std::uint64_t>(Popcount(eights)) +
         4 * static_cast<std::uint64_t>(Popcount(fours)) +
         2 * static_cast<std::uint64_t>(Popcount(twos)) +
         static_cast<std::uint64_t>(Popcount(ones));
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar tier
// ---------------------------------------------------------------------------

void VbpBitSumsScalar(const Word* data, const Word* filter, std::size_t n,
                      int width, std::uint64_t* sums) {
  const Word* base = data;
  for (std::size_t seg = 0; seg < n; ++seg) {
    const Word f = filter[seg];
    for (int j = 0; j < width; ++j) {
      sums[j] += Popcount(base[j] & f);
    }
    base += width;
  }
}

void VbpBitSumsQuadsScalar(const Word* data, const Word* filter,
                           std::size_t num_quads, int width,
                           std::uint64_t* sums) {
  for (std::size_t q = 0; q < num_quads; ++q) {
    const Word* f = filter + q * 4;
    const Word* base = data + q * width * 4;
    for (int j = 0; j < width; ++j) {
      const Word* p = base + j * 4;
      sums[j] += Popcount(p[0] & f[0]) + Popcount(p[1] & f[1]) +
                 Popcount(p[2] & f[2]) + Popcount(p[3] & f[3]);
    }
  }
}

std::uint64_t PopcountWordsScalar(const Word* words, std::size_t n) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += Popcount(words[i]);
  return count;
}

std::uint64_t PopcountAndScalar(const Word* a, const Word* b, std::size_t n) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += Popcount(a[i] & b[i]);
  return count;
}

// ---------------------------------------------------------------------------
// Csa64 tier ("sse": Harley–Seal on plain 64-bit registers)
// ---------------------------------------------------------------------------

void VbpBitSumsCsa64(const Word* data, const Word* filter, std::size_t n,
                     int width, std::uint64_t* sums) {
  std::size_t seg = 0;
  // Blocks of 8 segments; j is the inner loop so each 8*width-word block is
  // traversed once while it is L1-resident.
  for (; seg + 8 <= n; seg += 8) {
    const Word* block = data + seg * width;
    const Word* f = filter + seg;
    for (int j = 0; j < width; ++j) {
      Word w[8];
      for (int i = 0; i < 8; ++i) w[i] = block[i * width + j] & f[i];
      sums[j] += Popcount8(w);
    }
  }
  for (; seg < n; ++seg) {
    const Word* base = data + seg * width;
    const Word f = filter[seg];
    for (int j = 0; j < width; ++j) sums[j] += Popcount(base[j] & f);
  }
}

void VbpBitSumsQuadsCsa64(const Word* data, const Word* filter,
                          std::size_t num_quads, int width,
                          std::uint64_t* sums) {
  std::size_t q = 0;
  // Two quads give 8 lane words per plane — one fresh CSA tree each.
  for (; q + 2 <= num_quads; q += 2) {
    const Word* f = filter + q * 4;
    const Word* base = data + q * width * 4;
    for (int j = 0; j < width; ++j) {
      const Word* p0 = base + j * 4;
      const Word* p1 = p0 + width * 4;
      Word w[8];
      for (int l = 0; l < 4; ++l) {
        w[l] = p0[l] & f[l];
        w[4 + l] = p1[l] & f[4 + l];
      }
      sums[j] += Popcount8(w);
    }
  }
  if (q < num_quads) {
    const Word* f = filter + q * 4;
    const Word* base = data + q * width * 4;
    for (int j = 0; j < width; ++j) {
      const Word* p = base + j * 4;
      sums[j] += Popcount(p[0] & f[0]) + Popcount(p[1] & f[1]) +
                 Popcount(p[2] & f[2]) + Popcount(p[3] & f[3]);
    }
  }
}

std::uint64_t PopcountWordsCsa64(const Word* words, std::size_t n) {
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) count += Popcount8(words + i);
  for (; i < n; ++i) count += Popcount(words[i]);
  return count;
}

std::uint64_t PopcountAndCsa64(const Word* a, const Word* b, std::size_t n) {
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Word w[8];
    for (int l = 0; l < 8; ++l) w[l] = a[i + l] & b[i + l];
    count += Popcount8(w);
  }
  for (; i < n; ++i) count += Popcount(a[i] & b[i]);
  return count;
}

// ---------------------------------------------------------------------------
// AVX2 tier (Harley–Seal on 256-bit registers + Mula's pshufb popcount).
// Everything below carries target("avx2") so the translation unit compiles
// without -mavx2; dispatch.cc only hands these out when cpuid says AVX2.
// ---------------------------------------------------------------------------

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
namespace {

#define ICP_AVX2 __attribute__((target("avx2")))

// 4x64 per-lane popcounts via the nibble LUT + psadbw (Mula).
ICP_AVX2 inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

ICP_AVX2 inline std::uint64_t Hsum64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

ICP_AVX2 inline void Csa256(__m256i* h, __m256i* l, __m256i a, __m256i b) {
  const __m256i u = _mm256_xor_si256(*l, a);
  *h = _mm256_or_si256(_mm256_and_si256(*l, a), _mm256_and_si256(u, b));
  *l = _mm256_xor_si256(u, b);
}

// Running Harley–Seal state: sixteens are popcounted into `counter` as the
// stream is consumed; the lower levels flush once at the end.
struct HsState {
  __m256i ones, twos, fours, eights, counter;
};

ICP_AVX2 inline void HsInit(HsState* s) {
  s->ones = _mm256_setzero_si256();
  s->twos = _mm256_setzero_si256();
  s->fours = _mm256_setzero_si256();
  s->eights = _mm256_setzero_si256();
  s->counter = _mm256_setzero_si256();
}

// Feeds 16 vectors (already masked) into the state.
ICP_AVX2 inline void HsStep16(HsState* s, const __m256i* w) {
  __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
  Csa256(&twos_a, &s->ones, w[0], w[1]);
  Csa256(&twos_b, &s->ones, w[2], w[3]);
  Csa256(&fours_a, &s->twos, twos_a, twos_b);
  Csa256(&twos_a, &s->ones, w[4], w[5]);
  Csa256(&twos_b, &s->ones, w[6], w[7]);
  Csa256(&fours_b, &s->twos, twos_a, twos_b);
  Csa256(&eights_a, &s->fours, fours_a, fours_b);
  Csa256(&twos_a, &s->ones, w[8], w[9]);
  Csa256(&twos_b, &s->ones, w[10], w[11]);
  Csa256(&fours_a, &s->twos, twos_a, twos_b);
  Csa256(&twos_a, &s->ones, w[12], w[13]);
  Csa256(&twos_b, &s->ones, w[14], w[15]);
  Csa256(&fours_b, &s->twos, twos_a, twos_b);
  Csa256(&eights_b, &s->fours, fours_a, fours_b);
  Csa256(&sixteens, &s->eights, eights_a, eights_b);
  s->counter = _mm256_add_epi64(s->counter, Popcount256(sixteens));
}

ICP_AVX2 inline std::uint64_t HsFlush(const HsState* s) {
  __m256i total = _mm256_slli_epi64(s->counter, 4);
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(Popcount256(s->eights), 3));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(Popcount256(s->fours), 2));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(Popcount256(s->twos), 1));
  total = _mm256_add_epi64(total, Popcount256(s->ones));
  return Hsum64(total);
}

ICP_AVX2 inline __m256i LoadU(const Word* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

}  // namespace

ICP_AVX2 void VbpBitSumsQuadsAvx2(const Word* data, const Word* filter,
                                  std::size_t num_quads, int width,
                                  std::uint64_t* sums) {
  // Per-plane running Harley–Seal state; blocks of 16 quads keep one pass
  // over memory (the block is L1-resident across the j loop) while the CSA
  // tree replaces 16 lane-popcount sequences per plane with one.
  HsState state[kWordBits];
  for (int j = 0; j < width; ++j) HsInit(&state[j]);
  const std::size_t stride = static_cast<std::size_t>(width) * 4;
  std::size_t q = 0;
  for (; q + 16 <= num_quads; q += 16) {
    const Word* f = filter + q * 4;
    const Word* base = data + q * stride;
    for (int j = 0; j < width; ++j) {
      const Word* p = base + j * 4;
      __m256i w[16];
      for (int i = 0; i < 16; ++i) {
        w[i] = _mm256_and_si256(LoadU(p + i * stride), LoadU(f + i * 4));
      }
      HsStep16(&state[j], w);
    }
  }
  for (int j = 0; j < width; ++j) sums[j] += HsFlush(&state[j]);
  // Ragged tail: one vector popcount per plane word.
  for (; q < num_quads; ++q) {
    const Word* f = filter + q * 4;
    const Word* base = data + q * stride;
    for (int j = 0; j < width; ++j) {
      const __m256i w = _mm256_and_si256(LoadU(base + j * 4), LoadU(f));
      sums[j] += Hsum64(Popcount256(w));
    }
  }
}

ICP_AVX2 std::uint64_t PopcountWordsAvx2(const Word* words, std::size_t n) {
  HsState state;
  HsInit(&state);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i w[16];
    for (int v = 0; v < 16; ++v) w[v] = LoadU(words + i + v * 4);
    HsStep16(&state, w);
  }
  std::uint64_t count = HsFlush(&state);
  for (; i + 4 <= n; i += 4) count += Hsum64(Popcount256(LoadU(words + i)));
  for (; i < n; ++i) count += Popcount(words[i]);
  return count;
}

ICP_AVX2 std::uint64_t PopcountAndAvx2(const Word* a, const Word* b,
                                       std::size_t n) {
  HsState state;
  HsInit(&state);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i w[16];
    for (int v = 0; v < 16; ++v) {
      w[v] = _mm256_and_si256(LoadU(a + i + v * 4), LoadU(b + i + v * 4));
    }
    HsStep16(&state, w);
  }
  std::uint64_t count = HsFlush(&state);
  for (; i + 4 <= n; i += 4) {
    count += Hsum64(
        Popcount256(_mm256_and_si256(LoadU(a + i), LoadU(b + i))));
  }
  for (; i < n; ++i) count += Popcount(a[i] & b[i]);
  return count;
}

#undef ICP_AVX2
#endif  // ICP_POSPOPCNT_HAVE_AVX2

// ---------------------------------------------------------------------------
// AVX-512 tier. VPOPCNTDQ's vpopcntq counts 8 words per instruction, so no
// Harley–Seal tree is needed: load, mask, popcount, add. The target list
// includes BW/DQ/VL so the kernels may use 256-bit EVEX forms for ragged
// tails. Everything compiles without -mavx512*; dispatch.cc only hands
// these out when cpuid reports the full feature set.
// ---------------------------------------------------------------------------

#if defined(ICP_POSPOPCNT_HAVE_AVX512)
namespace {

#define ICP_AVX512                 \
  __attribute__((target(          \
      "avx512f,avx512bw,avx512dq,avx512vl,avx512vpopcntdq")))

ICP_AVX512 inline __m512i LoadU512(const Word* p) {
  return _mm512_loadu_si512(static_cast<const void*>(p));
}

// Zero-extending 256-bit load (upper half guaranteed zero, unlike the
// cast intrinsic) — used for the odd tail quad.
ICP_AVX512 inline __m512i LoadU256Zext(const Word* p) {
  return _mm512_zextsi256_si512(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

}  // namespace

namespace {

ICP_AVX512 inline __m512i Broadcast256(const Word* p) {
  return _mm512_broadcast_i64x4(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

// One harvesting pass over all 2-quad blocks for block-vector indices
// [m0, m0+kVecs) of VbpBitSumsQuadsAvx512's decomposition. `p` points at
// vector m0 of block 0, `f` at the filter words those vectors' lanes need
// (block 0); they advance by `block` / 8 words per block. kVecs is a
// compile-time count so acc[] stays in registers (width is a runtime
// value — indexing a width-sized accumulator array from the block loop
// would spill it to the stack) and the kVecs data loads per block hit
// consecutive cache lines. kIdentity selects the filter shape: the
// straddling vector (odd width, alone in its pass) reads all eight
// filter words verbatim; every other vector has both halves inside one
// quad, so the whole chunk shares one vbroadcasti64x4 of that quad's
// four words — a pure load-port uop, leaving vpopcntq as the loop's only
// port-5 work.
template <int kVecs, bool kIdentity>
ICP_AVX512 inline void QuadHarvestPass(const Word* p, const Word* f,
                                       std::size_t num_blocks,
                                       std::size_t block, __m512i* out) {
  __m512i acc[kVecs];
  for (int v = 0; v < kVecs; ++v) acc[v] = _mm512_setzero_si512();
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const Word* pb = p + b * block;
    const __m512i fb =
        kIdentity ? LoadU512(f + b * 8) : Broadcast256(f + b * 8);
    for (int v = 0; v < kVecs; ++v) {
      acc[v] = _mm512_add_epi64(
          acc[v],
          _mm512_popcnt_epi64(_mm512_and_si512(LoadU512(pb + 8 * v), fb)));
    }
  }
  for (int v = 0; v < kVecs; ++v) out[v] = acc[v];
}

// Runs QuadHarvestPass over vector indices [m0, m_end) in chunks of up to
// four, harvesting each vector's lanes into the two plane sums they
// represent: lanes 0-3 are plane (2m) mod width, lanes 4-7 plane (2m+1)
// mod width.
ICP_AVX512 inline void HarvestRegion(const Word* data, const Word* f,
                                     int m0, int m_end,
                                     std::size_t num_blocks,
                                     std::size_t block, int width,
                                     std::uint64_t* sums) {
  for (int m = m0; m < m_end;) {
    __m512i acc[4];
    const int chunk = m_end - m >= 4 ? 4 : m_end - m;
    switch (chunk) {
      case 4:
        QuadHarvestPass<4, false>(data + 8 * m, f, num_blocks, block, acc);
        break;
      case 3:
        QuadHarvestPass<3, false>(data + 8 * m, f, num_blocks, block, acc);
        break;
      case 2:
        QuadHarvestPass<2, false>(data + 8 * m, f, num_blocks, block, acc);
        break;
      default:
        QuadHarvestPass<1, false>(data + 8 * m, f, num_blocks, block, acc);
        break;
    }
    for (int v = 0; v < chunk; ++v) {
      alignas(64) Word lanes[8];
      _mm512_store_si512(static_cast<void*>(lanes), acc[v]);
      const int plane_lo = (2 * (m + v)) % width;
      const int plane_hi = (2 * (m + v) + 1) % width;
      sums[plane_lo] += lanes[0] + lanes[1] + lanes[2] + lanes[3];
      sums[plane_hi] += lanes[4] + lanes[5] + lanes[6] + lanes[7];
    }
    m += chunk;
  }
}

}  // namespace

ICP_AVX512 void VbpBitSumsQuadsAvx512(const Word* data, const Word* filter,
                                      std::size_t num_quads, int width,
                                      std::uint64_t* sums) {
  // Harvesting positional popcount (after Clausecker–Lemire–Schintke): a
  // 2-quad block of the quad-interleaved layout is width*8 CONTIGUOUS
  // words — exactly `width` full 512-bit loads, no strided half-register
  // gathering. Lane l of block vector m holds word w = 8m+l, which
  // belongs to quad w/(4*width) of the pair and plane (w%(4*width))/4;
  // both are static in (m, width) because each aligned 4-lane half of a
  // vector sits inside one 4-word plane run. The kernel therefore sweeps
  // the blocks in passes over chunks of up to four vector indices
  // (HarvestRegion / QuadHarvestPass above), keeping each vector's
  // popcount accumulator in a register for the whole sweep and re-reading
  // the small filter array once per pass as broadcast loads. Vectors
  // before the quad boundary broadcast the first quad's four filter
  // words, vectors after it the second quad's, and the one straddling
  // vector (odd width) gets a pass of its own that reads the eight words
  // verbatim.
  const int half = width / 2;  // vectors fully inside the first quad
  const bool straddle = (width & 1) != 0;
  const std::size_t stride = static_cast<std::size_t>(width) * 4;
  const std::size_t block = stride * 2;
  const std::size_t num_blocks = num_quads / 2;
  HarvestRegion(data, filter, 0, half, num_blocks, block, width, sums);
  if (straddle) {
    __m512i acc[1];
    QuadHarvestPass<1, true>(data + 8 * half, filter, num_blocks, block,
                             acc);
    alignas(64) Word lanes[8];
    _mm512_store_si512(static_cast<void*>(lanes), acc[0]);
    sums[width - 1] += lanes[0] + lanes[1] + lanes[2] + lanes[3];
    sums[0] += lanes[4] + lanes[5] + lanes[6] + lanes[7];
  }
  HarvestRegion(data, filter + 4, half + (straddle ? 1 : 0), width,
                num_blocks, block, width, sums);
  const std::size_t q = num_blocks * 2;
  if (q < num_quads) {
    // Odd tail quad: zero-extended 256-bit loads (the upper popcounts
    // are 0), accumulated straight into sums.
    const Word* base = data + q * stride;
    const __m512i f = LoadU256Zext(filter + q * 4);
    for (int j = 0; j < width; ++j) {
      const __m512i w = _mm512_and_si512(LoadU256Zext(base + j * 4), f);
      sums[j] += static_cast<std::uint64_t>(
          _mm512_reduce_add_epi64(_mm512_popcnt_epi64(w)));
    }
  }
}

ICP_AVX512 std::uint64_t PopcountWordsAvx512(const Word* words,
                                             std::size_t n) {
  // Two accumulators break the add dependency chain.
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(LoadU512(words + i)));
    acc1 = _mm512_add_epi64(acc1,
                            _mm512_popcnt_epi64(LoadU512(words + i + 8)));
  }
  if (i + 8 <= n) {
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(LoadU512(words + i)));
    i += 8;
  }
  std::uint64_t count = static_cast<std::uint64_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
  for (; i < n; ++i) count += Popcount(words[i]);
  return count;
}

ICP_AVX512 std::uint64_t PopcountAndAvx512(const Word* a, const Word* b,
                                           std::size_t n) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(
                  _mm512_and_si512(LoadU512(a + i), LoadU512(b + i))));
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(_mm512_and_si512(LoadU512(a + i + 8),
                                                   LoadU512(b + i + 8))));
  }
  if (i + 8 <= n) {
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(
                  _mm512_and_si512(LoadU512(a + i), LoadU512(b + i))));
    i += 8;
  }
  std::uint64_t count = static_cast<std::uint64_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
  for (; i < n; ++i) count += Popcount(a[i] & b[i]);
  return count;
}

#undef ICP_AVX512
#endif  // ICP_POSPOPCNT_HAVE_AVX512

}  // namespace icp::kern
