// 256-bit SIMD kernels for HBP scan and aggregation (paper Section IV-B).
//
// HBP algorithms rely on shifts, additions and subtractions whose carries
// must stay inside a segment; AVX2 provides them per 64-bit lane, so the
// kernels run four independent 64-bit algorithm instances — one segment per
// lane — exactly as the paper describes. A lanes == 4 HbpColumn interleaves
// four consecutive segments' words so each (group, sub-segment) access is
// one aligned 256-bit load, and the four segments' filter words are
// contiguous in the filter bit vector.
//
// The SUM / MIN/MAX / rank counting loops route through the kernel
// registry (simd/dispatch.h) with lanes == 4; the per-tier bodies —
// including the AVX2 widened-accumulator IN-WORD-SUM and the AVX-512
// vpmullq multiply plan — live in simd/agg_kernels.cc.

#ifndef ICP_SIMD_HBP_SIMD_H_
#define ICP_SIMD_HBP_SIMD_H_

#include <cstdint>
#include <optional>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/hbp_column.h"
#include "scan/predicate.h"
#include "simd/word256.h"
#include "util/cancellation.h"

namespace icp::simd {

/// Number of segment-quads of a lanes == 4 column.
inline std::size_t NumQuads(const HbpColumn& column) {
  return column.num_segments() / 4;
}

/// Per-field X >= C on four lanes (delimiter-borrow trick per lane).
inline Word256 FieldGe256(Word256 x, Word256 c, Word256 md) {
  return Sub64(x | md, c) & md;
}

/// Bit-parallel scan; requires column.lanes() == 4. `stats`, when
/// non-null, receives the analytic model of RecordModeledScan (the SIMD
/// kernel is uninstrumented inside).
[[nodiscard]] FilterBitVector ScanHbp(const HbpColumn& column, CompareOp op,
                                      std::uint64_t c1, std::uint64_t c2 = 0,
                                      ScanStats* stats = nullptr);
void ScanHbpRange(const HbpColumn& column, CompareOp op, std::uint64_t c1,
                  std::uint64_t c2, std::size_t quad_begin,
                  std::size_t quad_end, FilterBitVector* out);

/// SUM: vectorized GET-VALUE-FILTER + IN-WORD-SUM per lane.
void AccumulateGroupSumsHbp(const HbpColumn& column,
                            const FilterBitVector& filter,
                            std::size_t quad_begin, std::size_t quad_end,
                            std::uint64_t* group_sums);
[[nodiscard]] UInt128 SumHbp(const HbpColumn& column,
                             const FilterBitVector& filter,
                             const CancelContext* cancel = nullptr);

/// MIN/MAX: four running extreme sub-segments (one per lane), 4 words per
/// group — group g's lane words at temp[g*4 .. g*4+3] (the layout
/// kern::hbp_extreme_fold consumes; no alignment requirement).
void InitSubSlotExtremeHbp(const HbpColumn& column, bool is_min, Word* temp);
void SubSlotExtremeRangeHbp(const HbpColumn& column,
                            const FilterBitVector& filter,
                            std::size_t quad_begin, std::size_t quad_end,
                            bool is_min, Word* temp);
std::uint64_t ExtremeOfSubSlotsHbp(const HbpColumn& column, const Word* temp,
                                   bool is_min);
[[nodiscard]] std::optional<std::uint64_t> MinHbp(
    const HbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);
[[nodiscard]] std::optional<std::uint64_t> MaxHbp(
    const HbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);

/// MEDIAN / r-selection: vectorized candidate narrowing; histogram slot
/// extraction stays scalar per lane (gather-style work, as in Alg. 6).
[[nodiscard]] std::optional<std::uint64_t> RankSelectHbp(
    const HbpColumn& column, const FilterBitVector& filter, std::uint64_t r,
    const CancelContext* cancel = nullptr);
[[nodiscard]] std::optional<std::uint64_t> MedianHbp(
    const HbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);

/// Dispatcher mirroring hbp::Aggregate. `stats`, when non-null, carries
/// the CountFilterSegments liveness summary for every kind (the SIMD fold
/// kernels report no per-fold counters).
AggregateResult AggregateHbp(const HbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank = 0,
                             const CancelContext* cancel = nullptr,
                             AggStats* stats = nullptr);

}  // namespace icp::simd

#endif  // ICP_SIMD_HBP_SIMD_H_
