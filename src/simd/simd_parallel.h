// Combined multi-threading + SIMD drivers (the shaded bars of Fig. 8).
//
// Segment-quads are partitioned across the pool's workers; each worker runs
// the 256-bit Range kernels from vbp_simd.h / hbp_simd.h and partial states
// merge exactly as in parallel/parallel_aggregate.cc.

#ifndef ICP_SIMD_SIMD_PARALLEL_H_
#define ICP_SIMD_SIMD_PARALLEL_H_

#include <cstdint>
#include <optional>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/hbp_column.h"
#include "layout/vbp_column.h"
#include "parallel/thread_pool.h"
#include "scan/predicate.h"
#include "simd/hbp_simd.h"
#include "simd/vbp_simd.h"
#include "util/cancellation.h"

namespace icp::simd {

/// `stats`, when non-null, receives the analytic RecordModeledScan model
/// (once, on the calling thread — not per worker).
FilterBitVector ScanVbp(ThreadPool& pool, const VbpColumn& column,
                        CompareOp op, std::uint64_t c1, std::uint64_t c2 = 0,
                        ScanStats* stats = nullptr);
FilterBitVector ScanHbp(ThreadPool& pool, const HbpColumn& column,
                        CompareOp op, std::uint64_t c1, std::uint64_t c2 = 0,
                        ScanStats* stats = nullptr);

UInt128 SumVbp(ThreadPool& pool, const VbpColumn& column,
               const FilterBitVector& filter,
               const CancelContext* cancel = nullptr);
UInt128 SumHbp(ThreadPool& pool, const HbpColumn& column,
               const FilterBitVector& filter,
               const CancelContext* cancel = nullptr);

std::optional<std::uint64_t> MinVbp(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> MaxVbp(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> MinHbp(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> MaxHbp(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);

std::optional<std::uint64_t> RankSelectVbp(ThreadPool& pool,
                                           const VbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r,
                                           const CancelContext* cancel =
                                               nullptr);
std::optional<std::uint64_t> RankSelectHbp(ThreadPool& pool,
                                           const HbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r,
                                           const CancelContext* cancel =
                                               nullptr);
std::optional<std::uint64_t> MedianVbp(ThreadPool& pool,
                                       const VbpColumn& column,
                                       const FilterBitVector& filter,
                                       const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> MedianHbp(ThreadPool& pool,
                                       const HbpColumn& column,
                                       const FilterBitVector& filter,
                                       const CancelContext* cancel = nullptr);

/// `stats`, when non-null, carries the CountFilterSegments liveness
/// summary (the SIMD fold kernels report no per-fold counters).
AggregateResult AggregateVbp(ThreadPool& pool, const VbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank = 0,
                             const CancelContext* cancel = nullptr,
                             AggStats* stats = nullptr);
AggregateResult AggregateHbp(ThreadPool& pool, const HbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank = 0,
                             const CancelContext* cancel = nullptr,
                             AggStats* stats = nullptr);

}  // namespace icp::simd

#endif  // ICP_SIMD_SIMD_PARALLEL_H_
