// Combined multi-threading + SIMD drivers (the shaded bars of Fig. 8).
//
// Segment-quads are partitioned across the pool's workers; each worker runs
// the 256-bit Range kernels from vbp_simd.h / hbp_simd.h and partial states
// merge exactly as in parallel/parallel_aggregate.cc.

#ifndef ICP_SIMD_SIMD_PARALLEL_H_
#define ICP_SIMD_SIMD_PARALLEL_H_

#include <cstdint>
#include <optional>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/hbp_column.h"
#include "layout/vbp_column.h"
#include "parallel/thread_pool.h"
#include "scan/predicate.h"
#include "simd/hbp_simd.h"
#include "simd/vbp_simd.h"

namespace icp::simd {

FilterBitVector ScanVbp(ThreadPool& pool, const VbpColumn& column,
                        CompareOp op, std::uint64_t c1, std::uint64_t c2 = 0);
FilterBitVector ScanHbp(ThreadPool& pool, const HbpColumn& column,
                        CompareOp op, std::uint64_t c1, std::uint64_t c2 = 0);

UInt128 SumVbp(ThreadPool& pool, const VbpColumn& column,
               const FilterBitVector& filter);
UInt128 SumHbp(ThreadPool& pool, const HbpColumn& column,
               const FilterBitVector& filter);

std::optional<std::uint64_t> MinVbp(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter);
std::optional<std::uint64_t> MaxVbp(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter);
std::optional<std::uint64_t> MinHbp(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter);
std::optional<std::uint64_t> MaxHbp(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter);

std::optional<std::uint64_t> RankSelectVbp(ThreadPool& pool,
                                           const VbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r);
std::optional<std::uint64_t> RankSelectHbp(ThreadPool& pool,
                                           const HbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r);
std::optional<std::uint64_t> MedianVbp(ThreadPool& pool,
                                       const VbpColumn& column,
                                       const FilterBitVector& filter);
std::optional<std::uint64_t> MedianHbp(ThreadPool& pool,
                                       const HbpColumn& column,
                                       const FilterBitVector& filter);

AggregateResult AggregateVbp(ThreadPool& pool, const VbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank = 0);
AggregateResult AggregateHbp(ThreadPool& pool, const HbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank = 0);

}  // namespace icp::simd

#endif  // ICP_SIMD_SIMD_PARALLEL_H_
