// Positional-popcount kernels for the VBP bit-plane aggregates.
//
// The inner loop of VBP SUM/AVG (Algorithm 1) is, per bit plane j,
// sum_seg popcount(W_j(seg) & F(seg)) — a filter-masked positional
// population count. Following "Faster Positional-Population Counts for
// AVX2, AVX-512, and ASIMD" (Clausecker, Lemire & Schintke, 2024), the
// plain one-POPCNT-per-word loop can be reformulated with carry-save
// adders (Harley–Seal): groups of masked words are CSA-compressed into
// ones/twos/fours/... partial counters so only a fraction of the words
// need an actual population count.
//
// Three implementations per entry point, one per dispatch tier
// (simd/dispatch.h):
//   * Scalar  — the original per-word POPCNT loop (the correctness
//               baseline, and what every pre-registry build ran).
//   * Csa64   — Harley–Seal over 64-bit words; portable C++, runs on any
//               CPU (the "sse" tier: plain 64-bit registers).
//   * Avx2    — Harley–Seal over 256-bit registers with the pshufb
//               nibble-LUT vector popcount (Mula), compiled with a
//               function-level target("avx2") attribute so it exists even
//               in non-native builds and is selected at runtime via cpuid.
//
// Two memory layouts are served (see layout/vbp_column.h):
//   * lanes == 1 (seg-major): plane j of segment seg at data[seg*width+j];
//   * lanes == 4 (quad-interleaved): plane j of quad q occupies the four
//     contiguous words data[(q*width+j)*4 .. +3], with the quad's filter
//     words contiguous too — the layout the 256-bit kernels load directly.
//
// The word-array popcounts (COUNT, filter cardinality) share the same CSA
// machinery.

#ifndef ICP_SIMD_VBP_POSPOPCNT_H_
#define ICP_SIMD_VBP_POSPOPCNT_H_

#include <cstddef>
#include <cstdint>

#include "util/bits.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ICP_POSPOPCNT_HAVE_AVX2 1
#define ICP_POSPOPCNT_HAVE_AVX512 1
#endif

namespace icp::kern {

// ---------------------------------------------------------------------------
// Masked positional popcount, lanes == 1 seg-major layout.
//   sums[j] += sum_{i < n} popcount(data[i*width + j] & filter[i])
// for j in [0, width). `data` points at the first segment's plane-0 word.
// ---------------------------------------------------------------------------
void VbpBitSumsScalar(const Word* data, const Word* filter, std::size_t n,
                      int width, std::uint64_t* sums);
void VbpBitSumsCsa64(const Word* data, const Word* filter, std::size_t n,
                     int width, std::uint64_t* sums);

// ---------------------------------------------------------------------------
// Masked positional popcount, lanes == 4 quad-interleaved layout.
//   sums[j] += sum_{q < num_quads} sum_{l < 4}
//                popcount(data[(q*width + j)*4 + l] & filter[q*4 + l])
// `data` points at the first quad's plane-0 word, `filter` at the first
// quad's four filter words.
// ---------------------------------------------------------------------------
void VbpBitSumsQuadsScalar(const Word* data, const Word* filter,
                           std::size_t num_quads, int width,
                           std::uint64_t* sums);
void VbpBitSumsQuadsCsa64(const Word* data, const Word* filter,
                          std::size_t num_quads, int width,
                          std::uint64_t* sums);

// ---------------------------------------------------------------------------
// Word-array popcounts (COUNT and the filter-cardinality hot spots).
// ---------------------------------------------------------------------------
std::uint64_t PopcountWordsScalar(const Word* words, std::size_t n);
std::uint64_t PopcountWordsCsa64(const Word* words, std::size_t n);
std::uint64_t PopcountAndScalar(const Word* a, const Word* b, std::size_t n);
std::uint64_t PopcountAndCsa64(const Word* a, const Word* b, std::size_t n);

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
// AVX2 Harley–Seal variants. Safe to *link* everywhere (target attribute);
// only call them when cpuid reports AVX2 — dispatch.cc guarantees that.
void VbpBitSumsQuadsAvx2(const Word* data, const Word* filter,
                         std::size_t num_quads, int width,
                         std::uint64_t* sums);
std::uint64_t PopcountWordsAvx2(const Word* words, std::size_t n);
std::uint64_t PopcountAndAvx2(const Word* a, const Word* b, std::size_t n);
#endif

#if defined(ICP_POSPOPCNT_HAVE_AVX512)
// AVX-512 variants built on VPOPCNTDQ's vpopcntq (one 8-word popcount per
// instruction — no CSA tree needed). Compiled with a function-level
// target("avx512f,avx512bw,avx512dq,avx512vl,avx512vpopcntdq") attribute;
// dispatch.cc only hands these out when cpuid reports the full feature set.
void VbpBitSumsQuadsAvx512(const Word* data, const Word* filter,
                           std::size_t num_quads, int width,
                           std::uint64_t* sums);
std::uint64_t PopcountWordsAvx512(const Word* words, std::size_t n);
std::uint64_t PopcountAndAvx512(const Word* a, const Word* b, std::size_t n);
#endif

}  // namespace icp::kern

#endif  // ICP_SIMD_VBP_POSPOPCNT_H_
