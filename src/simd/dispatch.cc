#include "simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/obs.h"
#include "simd/agg_kernels.h"
#include "simd/vbp_pospopcnt.h"

namespace icp::kern {
namespace {

const KernelOps kScalarOps = {
    .name = "scalar",
    .vbp_bit_sums = VbpBitSumsScalar,
    .vbp_bit_sums_quads = VbpBitSumsQuadsScalar,
    .popcount_words = PopcountWordsScalar,
    .popcount_and = PopcountAndScalar,
    .combine_words = CombineWordsScalar,
    .masked_popcount = MaskedPopcountScalar,
    .hbp_sum = HbpSumScalar,
    .vbp_extreme_fold = VbpExtremeFoldScalar,
    .hbp_extreme_fold = HbpExtremeFoldScalar,
    .vbp_scan = VbpScanKernel,
    .hbp_scan = HbpScanKernel,
};

// The CSA trick only pays off on popcount-dominated loops; the compare/
// mask-dominated slots reuse the scalar kernels (agg_kernels.h explains).
const KernelOps kSse64Ops = {
    .name = "sse",
    .vbp_bit_sums = VbpBitSumsCsa64,
    .vbp_bit_sums_quads = VbpBitSumsQuadsCsa64,
    .popcount_words = PopcountWordsCsa64,
    .popcount_and = PopcountAndCsa64,
    .combine_words = CombineWordsScalar,
    .masked_popcount = MaskedPopcountScalar,
    .hbp_sum = HbpSumScalar,
    .vbp_extreme_fold = VbpExtremeFoldScalar,
    .hbp_extreme_fold = HbpExtremeFoldScalar,
    .vbp_scan = VbpScanKernel,
    .hbp_scan = HbpScanKernel,
};

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
// The lanes==1 seg-major layout strides plane words `width` apart, which
// 256-bit loads cannot exploit; the AVX2 tier keeps the Csa64 kernel for
// that slot and upgrades the contiguous-layout entry points.
//
// When the build itself targets AVX-512 VPOPCNTDQ (-march=native on a
// capable host), the compiler vectorizes the plain loops in
// PopcountWordsScalar/PopcountAndScalar with vpopcntq %zmm — 8 words per
// instruction — which measures ~1.7x faster than 256-bit Harley–Seal
// (see BENCH_kernels.json). The flat-popcount slots keep the compiler's
// code in that configuration; the positional kernels still win on AVX2
// because their per-plane accumulation defeats auto-vectorization. The
// avx512 tier below owns vpopcntq explicitly, independent of build flags.
const KernelOps kAvx2Ops = {
    .name = "avx2",
    .vbp_bit_sums = VbpBitSumsCsa64,
    .vbp_bit_sums_quads = VbpBitSumsQuadsAvx2,
#if defined(__AVX512VPOPCNTDQ__)
    .popcount_words = PopcountWordsScalar,
    .popcount_and = PopcountAndScalar,
#else
    .popcount_words = PopcountWordsAvx2,
    .popcount_and = PopcountAndAvx2,
#endif
    .combine_words = CombineWordsAvx2,
    .masked_popcount = MaskedPopcountAvx2,
    .hbp_sum = HbpSumAvx2,
    .vbp_extreme_fold = VbpExtremeFoldAvx2,
    .hbp_extreme_fold = HbpExtremeFoldAvx2,
    .vbp_scan = VbpScanAvx2,
    .hbp_scan = HbpScanAvx2,
};
#endif

#if defined(ICP_POSPOPCNT_HAVE_AVX512)
// The extreme folds reuse the AVX2 kernels: fold state is one 256-bit
// register set per quad, and widening to 512 bits would chain two quads
// whose early stops diverge (agg_kernels.h documents this).
const KernelOps kAvx512Ops = {
    .name = "avx512",
    .vbp_bit_sums = VbpBitSumsCsa64,
    .vbp_bit_sums_quads = VbpBitSumsQuadsAvx512,
    .popcount_words = PopcountWordsAvx512,
    .popcount_and = PopcountAndAvx512,
    .combine_words = CombineWordsAvx512,
    .masked_popcount = MaskedPopcountAvx512,
    .hbp_sum = HbpSumAvx512,
    .vbp_extreme_fold = VbpExtremeFoldAvx2,
    .hbp_extreme_fold = HbpExtremeFoldAvx2,
    .vbp_scan = VbpScanAvx512,
    .hbp_scan = HbpScanAvx512,
};
#endif

// -1 = no programmatic override; otherwise a Tier value.
std::atomic<int> g_forced_tier{-1};

Tier ClampToSupported(Tier tier) {
  return static_cast<int>(tier) > static_cast<int>(MaxSupportedTier())
             ? MaxSupportedTier()
             : tier;
}

Tier DetectStartupTier() {
  Tier tier = MaxSupportedTier();
  // getenv is read exactly once, from the magic-static initializer in
  // StartupTier(), before any worker thread exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("ICP_FORCE_KERNEL")) {
    Tier forced;
    if (!ParseTier(env, &forced)) {
      std::fprintf(
          stderr,
          "icp: ignoring ICP_FORCE_KERNEL=%s (want scalar|sse|avx2|avx512)\n",
          env);
    } else if (static_cast<int>(forced) > static_cast<int>(tier)) {
      std::fprintf(stderr,
                   "icp: ICP_FORCE_KERNEL=%s unsupported on this CPU; "
                   "using %s\n",
                   env, TierName(tier));
    } else {
      tier = forced;
    }
  }
  return tier;
}

Tier StartupTier() {
  static const Tier tier = DetectStartupTier();
  return tier;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse64:
      return "sse";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseTier(const char* name, Tier* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = Tier::kScalar;
  } else if (std::strcmp(name, "sse") == 0) {
    *out = Tier::kSse64;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = Tier::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = Tier::kAvx512;
  } else {
    return false;
  }
  return true;
}

Tier MaxSupportedTier() {
#if defined(ICP_POSPOPCNT_HAVE_AVX2)
  static const Tier max_tier = [] {
#if defined(ICP_POSPOPCNT_HAVE_AVX512)
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vpopcntdq")) {
      return Tier::kAvx512;
    }
#endif
    return __builtin_cpu_supports("avx2") ? Tier::kAvx2 : Tier::kSse64;
  }();
  return max_tier;
#else
  return Tier::kSse64;
#endif
}

Tier EffectiveTier(Tier tier) {
  // Round-trip through the selected table's name so compile-time #if
  // fallbacks in OpsFor are reflected too, not just the cpuid clamp.
  Tier out = Tier::kScalar;
  ParseTier(OpsFor(tier).name, &out);
  return out;
}

Tier ActiveTier() {
  // order: relaxed — a self-contained int; callers only need the value,
  // no table state is published through the override.
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  return StartupTier();
}

void ForceTier(std::optional<Tier> tier) {
  if (!tier.has_value()) {
    // order: relaxed — clearing the override; see ActiveTier's load.
    g_forced_tier.store(-1, std::memory_order_relaxed);
    return;
  }
  const Tier clamped = ClampToSupported(*tier);
  if (clamped != *tier) {
    // Surface the clamp: a harness forcing an unsupported tier would
    // otherwise silently measure (and report coverage for) a lower one.
    ICP_OBS_INCREMENT(KernForceClamped);
    std::fprintf(stderr,
                 "icp: ForceTier(%s) unsupported on this CPU; using %s\n",
                 TierName(*tier), TierName(clamped));
  }
  // order: relaxed — the tier tables are immutable statics; only the
  // selector index changes, so no ordering is needed.
  g_forced_tier.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

const KernelOps& Ops() {
  const KernelOps& ops = OpsFor(ActiveTier());
#if ICP_OBS
  // Counts the tier actually handed out (post-clamp), not the requested
  // one, so the counters agree with EffectiveTier-based reporting.
  Tier effective = Tier::kScalar;
  ParseTier(ops.name, &effective);
  switch (effective) {
    case Tier::kScalar:
      ICP_OBS_INCREMENT(KernDispatchScalar);
      break;
    case Tier::kSse64:
      ICP_OBS_INCREMENT(KernDispatchSse);
      break;
    case Tier::kAvx2:
      ICP_OBS_INCREMENT(KernDispatchAvx2);
      break;
    case Tier::kAvx512:
      ICP_OBS_INCREMENT(KernDispatchAvx512);
      break;
  }
#endif
  return ops;
}

const KernelOps& OpsFor(Tier tier) {
  switch (ClampToSupported(tier)) {
    case Tier::kScalar:
      return kScalarOps;
    case Tier::kSse64:
      return kSse64Ops;
    case Tier::kAvx2:
#if defined(ICP_POSPOPCNT_HAVE_AVX2)
      return kAvx2Ops;
#else
      return kSse64Ops;
#endif
    case Tier::kAvx512:
#if defined(ICP_POSPOPCNT_HAVE_AVX512)
      return kAvx512Ops;
#elif defined(ICP_POSPOPCNT_HAVE_AVX2)
      return kAvx2Ops;
#else
      return kSse64Ops;
#endif
  }
  return kScalarOps;
}

}  // namespace icp::kern
