#include "simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/vbp_pospopcnt.h"

namespace icp::kern {
namespace {

const KernelOps kScalarOps = {
    "scalar",          VbpBitSumsScalar, VbpBitSumsQuadsScalar,
    PopcountWordsScalar, PopcountAndScalar,
};

const KernelOps kSse64Ops = {
    "sse",            VbpBitSumsCsa64, VbpBitSumsQuadsCsa64,
    PopcountWordsCsa64, PopcountAndCsa64,
};

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
// The lanes==1 seg-major layout strides plane words `width` apart, which
// 256-bit loads cannot exploit; the AVX2 tier keeps the Csa64 kernel for
// that slot and upgrades the contiguous-layout entry points.
//
// When the build itself targets AVX-512 VPOPCNTDQ (-march=native on a
// capable host), the compiler vectorizes the plain loops in
// PopcountWordsScalar/PopcountAndScalar with vpopcntq %zmm — 8 words per
// instruction — which measures ~1.7x faster than 256-bit Harley–Seal
// (see BENCH_kernels.json). The flat-popcount slots keep the compiler's
// code in that configuration; the positional kernels still win on AVX2
// because their per-plane accumulation defeats auto-vectorization.
const KernelOps kAvx2Ops = {
    "avx2",           VbpBitSumsCsa64, VbpBitSumsQuadsAvx2,
#if defined(__AVX512VPOPCNTDQ__)
    PopcountWordsScalar, PopcountAndScalar,
#else
    PopcountWordsAvx2, PopcountAndAvx2,
#endif
};
#endif

// -1 = no programmatic override; otherwise a Tier value.
std::atomic<int> g_forced_tier{-1};

Tier ClampToSupported(Tier tier) {
  return static_cast<int>(tier) > static_cast<int>(MaxSupportedTier())
             ? MaxSupportedTier()
             : tier;
}

Tier DetectStartupTier() {
  Tier tier = MaxSupportedTier();
  if (const char* env = std::getenv("ICP_FORCE_KERNEL")) {
    Tier forced;
    if (!ParseTier(env, &forced)) {
      std::fprintf(stderr,
                   "icp: ignoring ICP_FORCE_KERNEL=%s (want scalar|sse|avx2)\n",
                   env);
    } else if (static_cast<int>(forced) > static_cast<int>(tier)) {
      std::fprintf(stderr,
                   "icp: ICP_FORCE_KERNEL=%s unsupported on this CPU; "
                   "using %s\n",
                   env, TierName(tier));
    } else {
      tier = forced;
    }
  }
  return tier;
}

Tier StartupTier() {
  static const Tier tier = DetectStartupTier();
  return tier;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse64:
      return "sse";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseTier(const char* name, Tier* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = Tier::kScalar;
  } else if (std::strcmp(name, "sse") == 0) {
    *out = Tier::kSse64;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = Tier::kAvx2;
  } else {
    return false;
  }
  return true;
}

Tier MaxSupportedTier() {
#if defined(ICP_POSPOPCNT_HAVE_AVX2)
  static const bool have_avx2 = __builtin_cpu_supports("avx2");
  return have_avx2 ? Tier::kAvx2 : Tier::kSse64;
#else
  return Tier::kSse64;
#endif
}

Tier ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  return StartupTier();
}

void ForceTier(std::optional<Tier> tier) {
  g_forced_tier.store(
      tier.has_value() ? static_cast<int>(ClampToSupported(*tier)) : -1,
      std::memory_order_relaxed);
}

const KernelOps& OpsFor(Tier tier) {
  switch (ClampToSupported(tier)) {
    case Tier::kScalar:
      return kScalarOps;
    case Tier::kSse64:
      return kSse64Ops;
    case Tier::kAvx2:
#if defined(ICP_POSPOPCNT_HAVE_AVX2)
      return kAvx2Ops;
#else
      return kSse64Ops;
#endif
  }
  return kScalarOps;
}

}  // namespace icp::kern
