#include "simd/simd_parallel.h"

#include <vector>

#include "core/hbp_aggregate.h"
#include "core/vbp_aggregate.h"
#include "parallel/parallel_aggregate.h"
#include "simd/dispatch.h"
#include "util/aligned_buffer.h"
#include "util/check.h"

namespace icp::simd {
namespace {

constexpr int kMaxThreads = 256;

}  // namespace

FilterBitVector ScanVbp(ThreadPool& pool, const VbpColumn& column,
                        CompareOp op, std::uint64_t c1, std::uint64_t c2,
                        ScanStats* stats) {
  FilterBitVector out(column.num_values(), VbpColumn::kValuesPerSegment);
  pool.ParallelFor(NumQuads(column), [&](std::size_t begin, std::size_t end) {
    ScanVbpRange(column, op, c1, c2, begin, end, &out);
  });
  RecordModeledScan(column.num_segments(),
                    column.num_segments() *
                        static_cast<std::uint64_t>(column.bit_width()),
                    stats);
  return out;
}

FilterBitVector ScanHbp(ThreadPool& pool, const HbpColumn& column,
                        CompareOp op, std::uint64_t c1, std::uint64_t c2,
                        ScanStats* stats) {
  FilterBitVector out(column.num_values(), column.values_per_segment());
  pool.ParallelFor(NumQuads(column), [&](std::size_t begin, std::size_t end) {
    ScanHbpRange(column, op, c1, c2, begin, end, &out);
  });
  RecordModeledScan(column.num_segments(),
                    column.num_segments() *
                        static_cast<std::uint64_t>(column.num_groups()) *
                        static_cast<std::uint64_t>(column.field_width()),
                    stats);
  return out;
}

UInt128 SumVbp(ThreadPool& pool, const VbpColumn& column,
               const FilterBitVector& filter, const CancelContext* cancel) {
  const int k = column.bit_width();
  std::vector<std::uint64_t> bit_sums(
      static_cast<std::size_t>(pool.num_threads()) * kWordBits, 0);
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(NumQuads(column), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          AccumulateBitSumsVbp(column, filter, b, e,
                               bit_sums.data() + index * kWordBits);
        });
  });
  for (int i = 1; i < pool.num_threads(); ++i) {
    for (int j = 0; j < k; ++j) bit_sums[j] += bit_sums[i * kWordBits + j];
  }
  return vbp::CombineBitSums(bit_sums.data(), k);
}

UInt128 SumHbp(ThreadPool& pool, const HbpColumn& column,
               const FilterBitVector& filter, const CancelContext* cancel) {
  std::vector<std::uint64_t> group_sums(
      static_cast<std::size_t>(pool.num_threads()) * kWordBits, 0);
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(NumQuads(column), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          AccumulateGroupSumsHbp(column, filter, b, e,
                                 group_sums.data() + index * kWordBits);
        });
  });
  for (int i = 1; i < pool.num_threads(); ++i) {
    for (int g = 0; g < column.num_groups(); ++g) {
      group_sums[g] += group_sums[i * kWordBits + g];
    }
  }
  return hbp::CombineGroupSums(column, group_sums.data());
}

namespace {

std::optional<std::uint64_t> ExtremeVbpMt(ThreadPool& pool,
                                          const VbpColumn& column,
                                          const FilterBitVector& filter,
                                          bool is_min,
                                          const CancelContext* cancel) {
  if (par::Count(pool, filter) == 0) return std::nullopt;
  const int k = column.bit_width();
  std::vector<Word> temps(
      static_cast<std::size_t>(pool.num_threads()) * kWordBits * 4);
  pool.RunPerThread([&](int index) {
    Word* temp = temps.data() + index * kWordBits * 4;
    InitSlotExtremeVbp(k, is_min, temp);
    const auto [begin, end] =
        PartitionRange(NumQuads(column), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          SlotExtremeRangeVbp(column, filter, b, e, is_min, temp);
        });
  });
  if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
  std::uint64_t best = 0;
  for (int i = 0; i < pool.num_threads(); ++i) {
    const std::uint64_t v =
        ExtremeOfSlotsVbp(temps.data() + i * kWordBits * 4, k, is_min);
    if (i == 0 || (is_min ? v < best : v > best)) best = v;
  }
  return best;
}

std::optional<std::uint64_t> ExtremeHbpMt(ThreadPool& pool,
                                          const HbpColumn& column,
                                          const FilterBitVector& filter,
                                          bool is_min,
                                          const CancelContext* cancel) {
  if (par::Count(pool, filter) == 0) return std::nullopt;
  std::vector<Word> temps(
      static_cast<std::size_t>(pool.num_threads()) * kWordBits * 4);
  pool.RunPerThread([&](int index) {
    Word* temp = temps.data() + index * kWordBits * 4;
    InitSubSlotExtremeHbp(column, is_min, temp);
    const auto [begin, end] =
        PartitionRange(NumQuads(column), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          SubSlotExtremeRangeHbp(column, filter, b, e, is_min, temp);
        });
  });
  if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
  std::uint64_t best = 0;
  for (int i = 0; i < pool.num_threads(); ++i) {
    const std::uint64_t v = ExtremeOfSubSlotsHbp(
        column, temps.data() + i * kWordBits * 4, is_min);
    if (i == 0 || (is_min ? v < best : v > best)) best = v;
  }
  return best;
}

}  // namespace

std::optional<std::uint64_t> MinVbp(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeVbpMt(pool, column, filter, /*is_min=*/true, cancel);
}
std::optional<std::uint64_t> MaxVbp(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeVbpMt(pool, column, filter, /*is_min=*/false, cancel);
}
std::optional<std::uint64_t> MinHbp(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeHbpMt(pool, column, filter, /*is_min=*/true, cancel);
}
std::optional<std::uint64_t> MaxHbp(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeHbpMt(pool, column, filter, /*is_min=*/false, cancel);
}

std::optional<std::uint64_t> RankSelectVbp(ThreadPool& pool,
                                           const VbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r,
                                           const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 4);
  ICP_CHECK_LE(pool.num_threads(), kMaxThreads);
  std::uint64_t u = par::Count(pool, filter);
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t quads = NumQuads(column);
  WordBuffer v(quads * 4);
  for (std::size_t seg = 0; seg < filter.num_segments(); ++seg) {
    v[seg] = filter.SegmentWord(seg);
  }

  const int k = column.bit_width();
  const int tau = column.tau();
  std::uint64_t partial[kMaxThreads];
  std::uint64_t result = 0;
  for (int jb = 0; jb < k; ++jb) {
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    const int g = jb / tau;
    const int j = jb - g * tau;
    const int width = column.GroupWidth(g);
    pool.RunPerThread([&](int index) {
      const auto [begin, end] =
          PartitionRange(quads, pool.num_threads(), index);
      const kern::KernelOps& ops = kern::Ops();
      std::uint64_t c = 0;
      ForEachCancellableBatch(
          cancel, begin, end, [&](std::size_t qb, std::size_t qe) {
            c += ops.masked_popcount(
                column.GroupData(g) + (qb * width + j) * 4,
                static_cast<std::size_t>(width) * 4, /*lanes=*/4,
                v.data() + qb * 4, qe - qb);
          });
      partial[index] = c;
    });
    std::uint64_t c = 0;
    for (int i = 0; i < pool.num_threads(); ++i) c += partial[i];
    const bool bit_is_one = u - c < r;
    if (bit_is_one) {
      result |= std::uint64_t{1} << (k - 1 - jb);
      r -= u - c;
      u = c;
    } else {
      u -= c;
    }
    pool.RunPerThread([&](int index) {
      const auto [begin, end] =
          PartitionRange(quads, pool.num_threads(), index);
      ForEachCancellableBatch(
          cancel, begin, end, [&](std::size_t qb, std::size_t qe) {
            for (std::size_t q = qb; q < qe; ++q) {
              Word256 cand = Word256::Load(v.data() + q * 4);
              if (cand.IsZero()) continue;
              const Word* ptr = column.GroupData(g) + (q * width + j) * 4;
              const Word256 x = Word256::Load(ptr);
              cand = bit_is_one ? (cand & x) : AndNot(x, cand);
              cand.Store(v.data() + q * 4);
            }
          });
    });
  }
  if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
  return result;
}

std::optional<std::uint64_t> RankSelectHbp(ThreadPool& pool,
                                           const HbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r,
                                           const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const std::uint64_t u = par::Count(pool, filter);
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t quads = NumQuads(column);
  WordBuffer v(quads * 4);
  for (std::size_t seg = 0; seg < filter.num_segments(); ++seg) {
    v[seg] = filter.SegmentWord(seg);
  }

  const int s = column.field_width();
  const int tau = column.tau();
  const Word dm_scalar = DelimiterMask(s);
  const Word256 dm = Word256::Broadcast(dm_scalar);
  const Word value_mask = LowMask(tau);
  const std::size_t bins = std::size_t{1} << tau;
  std::vector<std::uint64_t> hists(
      static_cast<std::size_t>(pool.num_threads()) * bins);

  std::uint64_t result = 0;
  for (int g = 0; g < column.num_groups(); ++g) {
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    std::fill(hists.begin(), hists.end(), 0);
    pool.RunPerThread([&](int index) {
      const auto [begin, end] =
          PartitionRange(quads, pool.num_threads(), index);
      std::uint64_t* hist = hists.data() + index * bins;
      ForEachCancellableBatch(
          cancel, begin, end, [&](std::size_t qb, std::size_t qe) {
            for (std::size_t q = qb; q < qe; ++q) {
              for (int lane = 0; lane < 4; ++lane) {
                const Word cand = v[q * 4 + lane];
                if (cand == 0) continue;
                for (int t = 0; t < s; ++t) {
                  Word md = (cand << t) & dm_scalar;
                  const Word w = column.GroupData(g)[(q * s + t) * 4 + lane];
                  while (md != 0) {
                    const int p = CountTrailingZeros(md);
                    md &= md - 1;
                    ++hist[(w >> (p - tau)) & value_mask];
                  }
                }
              }
            }
          });
    });
    // A cancelled histogram pass may not cover all candidates; bail out
    // before the cumulative walk uses it.
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    for (int i = 1; i < pool.num_threads(); ++i) {
      for (std::size_t b = 0; b < bins; ++b) hists[b] += hists[i * bins + b];
    }
    std::uint64_t cum = 0;
    std::uint64_t bin = 0;
    while (cum + hists[bin] < r) {
      cum += hists[bin];
      ++bin;
    }
    r -= cum;
    result |= bin << column.GroupShift(g);
    if (g + 1 < column.num_groups()) {
      const Word256 packed_bin = Word256::Broadcast(RepeatField(bin, s));
      pool.RunPerThread([&](int index) {
        const auto [begin, end] =
            PartitionRange(quads, pool.num_threads(), index);
        ForEachCancellableBatch(
            cancel, begin, end, [&](std::size_t qb, std::size_t qe) {
              for (std::size_t q = qb; q < qe; ++q) {
                Word256 cand = Word256::Load(v.data() + q * 4);
                if (cand.IsZero()) continue;
                const Word* base = column.GroupData(g) + q * s * 4;
                Word256 matches = Word256::Zero();
                for (int t = 0; t < s; ++t) {
                  const Word256 x = Word256::Load(base + t * 4);
                  const Word256 eq = FieldGe256(x, packed_bin, dm) &
                                     FieldGe256(packed_bin, x, dm);
                  matches = matches | eq.Shr64(t);
                }
                (cand & matches).Store(v.data() + q * 4);
              }
            });
      });
    }
  }
  if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
  return result;
}

std::optional<std::uint64_t> MedianVbp(ThreadPool& pool,
                                       const VbpColumn& column,
                                       const FilterBitVector& filter,
                                       const CancelContext* cancel) {
  const std::uint64_t count = par::Count(pool, filter);
  if (count == 0) return std::nullopt;
  return RankSelectVbp(pool, column, filter, LowerMedianRank(count), cancel);
}

std::optional<std::uint64_t> MedianHbp(ThreadPool& pool,
                                       const HbpColumn& column,
                                       const FilterBitVector& filter,
                                       const CancelContext* cancel) {
  const std::uint64_t count = par::Count(pool, filter);
  if (count == 0) return std::nullopt;
  return RankSelectHbp(pool, column, filter, LowerMedianRank(count), cancel);
}

AggregateResult AggregateVbp(ThreadPool& pool, const VbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank, const CancelContext* cancel,
                             AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathVbp);
  AggregateResult result;
  result.kind = kind;
  result.count = par::Count(pool, filter);
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = SumVbp(pool, column, filter, cancel);
      break;
    case AggKind::kMin:
      result.value = MinVbp(pool, column, filter, cancel);
      break;
    case AggKind::kMax:
      result.value = MaxVbp(pool, column, filter, cancel);
      break;
    case AggKind::kMedian:
      result.value = MedianVbp(pool, column, filter, cancel);
      break;
    case AggKind::kRank:
      result.value = RankSelectVbp(pool, column, filter, rank, cancel);
      break;
  }
  if (kind != AggKind::kCount) CountFilterSegments(filter, stats);
  return result;
}

AggregateResult AggregateHbp(ThreadPool& pool, const HbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank, const CancelContext* cancel,
                             AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathHbp);
  AggregateResult result;
  result.kind = kind;
  result.count = par::Count(pool, filter);
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = SumHbp(pool, column, filter, cancel);
      break;
    case AggKind::kMin:
      result.value = MinHbp(pool, column, filter, cancel);
      break;
    case AggKind::kMax:
      result.value = MaxHbp(pool, column, filter, cancel);
      break;
    case AggKind::kMedian:
      result.value = MedianHbp(pool, column, filter, cancel);
      break;
    case AggKind::kRank:
      result.value = RankSelectHbp(pool, column, filter, rank, cancel);
      break;
  }
  if (kind != AggKind::kCount) CountFilterSegments(filter, stats);
  return result;
}

}  // namespace icp::simd
