#include "simd/agg_kernels.h"

#include "core/in_word_sum.h"  // header-only; no core link dependency
#include "simd/dispatch.h"
#include "util/check.h"

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace icp::kern {
namespace {

// Largest lane count any layout produces (lanes == 4 quad-interleaving).
constexpr int kMaxLanes = 4;

// Integer CompareOp encoding shared with scan/predicate.h (the scanner call
// sites static_assert the mapping).
constexpr int kOpEq = 0;
constexpr int kOpNe = 1;
constexpr int kOpLt = 2;
constexpr int kOpLe = 3;
constexpr int kOpGt = 4;
constexpr int kOpGe = 5;
constexpr int kOpBetween = 6;

// Per-field X >= C under delimiter mask `md` (the paper's borrow trick).
inline Word FieldGe(Word x, Word c, Word md) { return ((x | md) - c) & md; }

// GET-VALUE-FILTER step 2: delimiter filter -> value mask.
inline Word ValueMaskFromDelimiters(Word md, int tau) {
  return md - (md >> tau);
}

}  // namespace

// ---------------------------------------------------------------------------
// combine_words
// ---------------------------------------------------------------------------

void CombineWordsScalar(Word* dst, const Word* src, std::size_t n, int op) {
  switch (static_cast<CombineOp>(op)) {
    case CombineOp::kAnd:
      for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
      break;
    case CombineOp::kOr:
      for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
      break;
    case CombineOp::kXor:
      for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
      break;
    case CombineOp::kAndNot:
      for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
      break;
  }
}

// ---------------------------------------------------------------------------
// masked_popcount
// ---------------------------------------------------------------------------

std::uint64_t MaskedPopcountScalar(const Word* data, std::size_t stride,
                                   int lanes, const Word* cand,
                                   std::size_t n) {
  ICP_DCHECK(lanes >= 1 && lanes <= kMaxLanes);
  std::uint64_t count = 0;
  for (std::size_t u = 0; u < n; ++u) {
    const Word* c = cand + u * lanes;
    Word any = 0;
    for (int l = 0; l < lanes; ++l) any |= c[l];
    if (any == 0) continue;  // unit fully narrowed away
    const Word* w = data + u * stride;
    for (int l = 0; l < lanes; ++l) count += Popcount(c[l] & w[l]);
  }
  return count;
}

// ---------------------------------------------------------------------------
// hbp_sum
// ---------------------------------------------------------------------------

void HbpSumScalar(const Word* const* bases, int num_groups, int s, int tau,
                  int lanes, const Word* filter, std::size_t n,
                  std::uint64_t* group_sums) {
  ICP_DCHECK(lanes >= 1 && lanes <= kMaxLanes);
  const Word dm = DelimiterMask(s);
  const InWordSumPlan plan(s);
  std::uint64_t acc[kWordBits] = {};
  for (std::size_t u = 0; u < n; ++u) {
    const Word* f = filter + u * lanes;
    for (int t = 0; t < s; ++t) {
      Word m[kMaxLanes];
      for (int l = 0; l < lanes; ++l) {
        const Word md = (f[l] << t) & dm;
        m[l] = ValueMaskFromDelimiters(md, tau);
      }
      for (int g = 0; g < num_groups; ++g) {
        const Word* w =
            bases[g] + (u * static_cast<std::size_t>(s) + t) * lanes;
        for (int l = 0; l < lanes; ++l) acc[g] += plan.Apply(w[l] & m[l]);
      }
    }
  }
  for (int g = 0; g < num_groups; ++g) group_sums[g] += acc[g];
}

// ---------------------------------------------------------------------------
// vbp_extreme_fold
// ---------------------------------------------------------------------------

void VbpExtremeFoldScalar(const Word* const* bases, const int* widths,
                          int num_groups, int tau, int lanes,
                          const Word* filter, std::size_t n, bool is_min,
                          Word* temp, FoldCounters* counters) {
  ICP_DCHECK(lanes >= 1 && lanes <= kMaxLanes);
  for (std::size_t u = 0; u < n; ++u) {
    const Word* f = filter + u * lanes;
    Word f_any = 0;
    for (int l = 0; l < lanes; ++l) f_any |= f[l];
    if (f_any == 0) {
      if (counters != nullptr) ++counters->segments_skipped;
      continue;  // nothing passes in this unit
    }
    if (counters != nullptr) ++counters->folds;
    Word eq[kMaxLanes];
    Word replace[kMaxLanes];  // M_lt for MIN, M_gt for MAX
    for (int l = 0; l < lanes; ++l) {
      eq[l] = ~Word{0};
      replace[l] = 0;
    }
    for (int g = 0; g < num_groups; ++g) {
      const int width = widths[g];
      const Word* base =
          bases[g] + u * static_cast<std::size_t>(width) * lanes;
      for (int j = 0; j < width; ++j) {
        const Word* x = base + j * lanes;
        const Word* y = temp + (g * tau + j) * lanes;
        for (int l = 0; l < lanes; ++l) {
          replace[l] |=
              is_min ? (eq[l] & ~x[l] & y[l]) : (eq[l] & x[l] & ~y[l]);
          eq[l] &= ~(x[l] ^ y[l]);
        }
      }
      Word eq_any = 0;
      for (int l = 0; l < lanes; ++l) eq_any |= eq[l];
      // Early stop: every slot's comparison is decided.
      if (eq_any == 0) {
        if (counters != nullptr && g + 1 < num_groups) {
          ++counters->compare_early_stops;
        }
        break;
      }
    }
    Word rep_any = 0;
    for (int l = 0; l < lanes; ++l) {
      replace[l] &= f[l];
      rep_any |= replace[l];
    }
    if (rep_any == 0) {
      if (counters != nullptr) ++counters->blends_skipped;
      continue;  // no slot improves; skip the blend pass
    }
    for (int g = 0; g < num_groups; ++g) {
      const int width = widths[g];
      const Word* base =
          bases[g] + u * static_cast<std::size_t>(width) * lanes;
      for (int j = 0; j < width; ++j) {
        const Word* x = base + j * lanes;
        Word* y = temp + (g * tau + j) * lanes;
        for (int l = 0; l < lanes; ++l) {
          y[l] = (replace[l] & x[l]) | (~replace[l] & y[l]);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hbp_extreme_fold
// ---------------------------------------------------------------------------

void HbpExtremeFoldScalar(const Word* const* bases, int num_groups, int s,
                          int tau, int lanes, const Word* filter,
                          std::size_t n, bool is_min, Word* temp,
                          FoldCounters* counters) {
  ICP_DCHECK(lanes >= 1 && lanes <= kMaxLanes);
  const Word dm = DelimiterMask(s);
  for (std::size_t u = 0; u < n; ++u) {
    const Word* f = filter + u * lanes;
    Word f_any = 0;
    for (int l = 0; l < lanes; ++l) f_any |= f[l];
    if (f_any == 0) {
      if (counters != nullptr) ++counters->segments_skipped;
      continue;
    }
    for (int t = 0; t < s; ++t) {
      Word md[kMaxLanes];
      Word md_any = 0;
      for (int l = 0; l < lanes; ++l) {
        md[l] = (f[l] << t) & dm;
        md_any |= md[l];
      }
      // Contract: never touch sub-segment t's data when no lane selects a
      // field in it (callers fold single out-of-range-adjacent words).
      if (md_any == 0) continue;
      if (counters != nullptr) ++counters->folds;
      const std::size_t word_off =
          (u * static_cast<std::size_t>(s) + t) * lanes;
      Word eq[kMaxLanes];
      Word replace[kMaxLanes];
      for (int l = 0; l < lanes; ++l) {
        eq[l] = dm;
        replace[l] = 0;
      }
      for (int g = 0; g < num_groups; ++g) {
        const Word* x = bases[g] + word_off;
        const Word* y = temp + g * lanes;
        Word eq_any = 0;
        for (int l = 0; l < lanes; ++l) {
          const Word ge_xy = FieldGe(x[l], y[l], dm);
          const Word ge_yx = FieldGe(y[l], x[l], dm);
          replace[l] |= eq[l] & ((is_min ? ge_xy : ge_yx) ^ dm);
          eq[l] &= ge_xy & ge_yx;
          eq_any |= eq[l];
        }
        if (eq_any == 0) {
          if (counters != nullptr && g + 1 < num_groups) {
            ++counters->compare_early_stops;
          }
          break;  // every field decided: early stop
        }
      }
      Word m[kMaxLanes];
      Word rep_any = 0;
      for (int l = 0; l < lanes; ++l) {
        replace[l] &= md[l];
        rep_any |= replace[l];
        m[l] = ValueMaskFromDelimiters(replace[l], tau);
      }
      if (rep_any == 0) {
        if (counters != nullptr) ++counters->blends_skipped;
        continue;
      }
      for (int g = 0; g < num_groups; ++g) {
        const Word* x = bases[g] + word_off;
        Word* y = temp + g * lanes;
        for (int l = 0; l < lanes; ++l) {
          y[l] = (m[l] & x[l]) | (~m[l] & y[l]);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// vbp_scan (shared by every tier)
// ---------------------------------------------------------------------------

namespace {

// Per-segment comparison state against one constant (MSB-to-LSB cascade).
struct VbpCompareState {
  Word eq = ~Word{0};
  Word lt = 0;
  Word gt = 0;

  void Step(Word x, bool c_bit) {
    if (c_bit) {
      lt |= eq & ~x;
      eq &= x;
    } else {
      gt |= eq & x;
      eq &= ~x;
    }
  }
};

Word VbpResultWord(int op, const VbpCompareState& a,
                   const VbpCompareState& b) {
  switch (op) {
    case kOpEq:
      return a.eq;
    case kOpNe:
      return ~a.eq;
    case kOpLt:
      return a.lt;
    case kOpLe:
      return a.lt | a.eq;
    case kOpGt:
      return a.gt;
    case kOpGe:
      return a.gt | a.eq;
    case kOpBetween:
      // v >= c1 && v <= c2.
      return (a.gt | a.eq) & (b.lt | b.eq);
  }
  return 0;
}

}  // namespace

void VbpScanKernel(const Word* const* bases, const int* widths,
                   int num_groups, int tau, int op, const bool* c1_bits,
                   const bool* c2_bits, std::size_t n, const Word* prior,
                   Word* out, ScanCounters* counters) {
  const bool dual = op == kOpBetween;
  for (std::size_t i = 0; i < n; ++i) {
    if (prior != nullptr && prior[i] == 0) {
      out[i] = 0;  // segment already empty: skip its words
      continue;
    }
    if (counters != nullptr) ++counters->segments_processed;
    VbpCompareState a;
    VbpCompareState b;
    for (int g = 0; g < num_groups; ++g) {
      const int width = widths[g];
      const Word* base = bases[g] + i * static_cast<std::size_t>(width);
      for (int j = 0; j < width; ++j) {
        const Word x = base[j];
        const int jb = g * tau + j;
        a.Step(x, c1_bits[jb]);
        if (dual) b.Step(x, c2_bits[jb]);
      }
      if (counters != nullptr) counters->words_examined += width;
      if ((a.eq | (dual ? b.eq : Word{0})) == 0 && g + 1 < num_groups) {
        if (counters != nullptr) ++counters->segments_early_stopped;
        break;
      }
    }
    const Word r = VbpResultWord(op, a, b);
    out[i] = prior != nullptr ? (r & prior[i]) : r;
  }
}

// ---------------------------------------------------------------------------
// hbp_scan (shared by every tier)
// ---------------------------------------------------------------------------

namespace {

// Per-sub-segment comparison state in delimiter space.
struct HbpCompareState {
  Word eq = 0;
  Word lt = 0;
  Word gt = 0;

  void Reset(Word delimiter_mask) {
    eq = delimiter_mask;
    lt = 0;
    gt = 0;
  }

  void Step(Word x, Word c, Word md) {
    const Word ge = FieldGe(x, c, md);
    const Word le = FieldGe(c, x, md);
    lt |= eq & (ge ^ md);
    gt |= eq & (le ^ md);
    eq &= ge & le;
  }
};

Word HbpResultWord(int op, Word md, const HbpCompareState& a,
                   const HbpCompareState& b) {
  switch (op) {
    case kOpEq:
      return a.eq;
    case kOpNe:
      return md ^ a.eq;
    case kOpLt:
      return a.lt;
    case kOpLe:
      return a.lt | a.eq;
    case kOpGt:
      return a.gt;
    case kOpGe:
      return a.gt | a.eq;
    case kOpBetween:
      return (a.gt | a.eq) & (b.lt | b.eq);
  }
  return 0;
}

}  // namespace

void HbpScanKernel(const Word* const* bases, int num_groups, int s, int op,
                   const Word* c1_packed, const Word* c2_packed, Word md,
                   std::size_t n, const Word* prior, Word* out,
                   ScanCounters* counters) {
  const bool dual = op == kOpBetween;
  HbpCompareState a[kWordBits];
  HbpCompareState b[kWordBits];
  for (std::size_t i = 0; i < n; ++i) {
    if (prior != nullptr && prior[i] == 0) {
      out[i] = 0;
      continue;
    }
    if (counters != nullptr) ++counters->segments_processed;
    for (int t = 0; t < s; ++t) {
      a[t].Reset(md);
      b[t].Reset(md);
    }
    for (int g = 0; g < num_groups; ++g) {
      const Word* base = bases[g] + i * static_cast<std::size_t>(s);
      Word any_eq = 0;
      for (int t = 0; t < s; ++t) {
        const Word x = base[t];
        a[t].Step(x, c1_packed[g], md);
        any_eq |= a[t].eq;
        if (dual) {
          b[t].Step(x, c2_packed[g], md);
          any_eq |= b[t].eq;
        }
      }
      if (counters != nullptr) counters->words_examined += s;
      if (any_eq == 0 && g + 1 < num_groups) {
        if (counters != nullptr) ++counters->segments_early_stopped;
        break;
      }
    }
    Word filter = 0;
    for (int t = 0; t < s; ++t) {
      filter |= HbpResultWord(op, md, a[t], b[t]) >> t;
    }
    out[i] = prior != nullptr ? (filter & prior[i]) : filter;
  }
}

// ---------------------------------------------------------------------------
// AVX2 tier. Function-level target("avx2") so the TU compiles without
// -mavx2; dispatch.cc only hands these out when cpuid reports AVX2.
// ---------------------------------------------------------------------------

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
namespace {

#define ICP_AVX2 __attribute__((target("avx2")))

ICP_AVX2 inline __m256i LoadU(const Word* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

ICP_AVX2 inline void StoreU(Word* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// 4x64 per-lane popcounts via the nibble LUT + psadbw (Mula).
ICP_AVX2 inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

ICP_AVX2 inline std::uint64_t Hsum64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

ICP_AVX2 inline __m256i FieldGe256(__m256i x, __m256i c, __m256i md) {
  return _mm256_and_si256(
      _mm256_sub_epi64(_mm256_or_si256(x, md), c), md);
}

// Widened-accumulator bookkeeping for the AVX2 HBP SUM kernel: after the
// plan's step i the word holds packed partial sums in slots of stride
// s*2^(i+1), each bounded by (2^(s-1)-1)*2^(i+1). Several such words can be
// added before any slot overflows its stride (or, for the truncated top
// slot, the end of the word), so the tail of the halving cascade runs once
// per flush instead of once per word. Picks the deepest prefix (at most 2
// steps) that still leaves a useful accumulation budget.
struct HbpSumAccumPlan {
  int prefix_steps = 0;
  std::size_t max_accum = 0;

  explicit HbpSumAccumPlan(const InWordSumPlan& plan, int s) {
    int width = s;
    int count = kWordBits / s;
    UInt128 bound = LowMask(s - 1);
    for (int i = 0; i < plan.num_steps() && i < 2; ++i) {
      width *= 2;
      bound *= 2;
      count = (count + 1) / 2;
      const int pos_top = (count - 1) * width;
      const int cap_bits =
          width < kWordBits - pos_top ? width : kWordBits - pos_top;
      const UInt128 slot_max = ((UInt128{1} << (cap_bits - 1)) - 1) * 2 + 1;
      const UInt128 budget = slot_max / bound;
      if (budget >= 8) {
        prefix_steps = i + 1;
        max_accum =
            budget > 65536 ? 65536 : static_cast<std::size_t>(budget);
      }
    }
  }
};

}  // namespace

ICP_AVX2 void CombineWordsAvx2(Word* dst, const Word* src, std::size_t n,
                               int op) {
  std::size_t i = 0;
  switch (static_cast<CombineOp>(op)) {
    case CombineOp::kAnd:
      for (; i + 4 <= n; i += 4) {
        StoreU(dst + i, _mm256_and_si256(LoadU(dst + i), LoadU(src + i)));
      }
      for (; i < n; ++i) dst[i] &= src[i];
      break;
    case CombineOp::kOr:
      for (; i + 4 <= n; i += 4) {
        StoreU(dst + i, _mm256_or_si256(LoadU(dst + i), LoadU(src + i)));
      }
      for (; i < n; ++i) dst[i] |= src[i];
      break;
    case CombineOp::kXor:
      for (; i + 4 <= n; i += 4) {
        StoreU(dst + i, _mm256_xor_si256(LoadU(dst + i), LoadU(src + i)));
      }
      for (; i < n; ++i) dst[i] ^= src[i];
      break;
    case CombineOp::kAndNot:
      for (; i + 4 <= n; i += 4) {
        StoreU(dst + i, _mm256_andnot_si256(LoadU(src + i), LoadU(dst + i)));
      }
      for (; i < n; ++i) dst[i] &= ~src[i];
      break;
  }
}

ICP_AVX2 std::uint64_t MaskedPopcountAvx2(const Word* data,
                                          std::size_t stride, int lanes,
                                          const Word* cand, std::size_t n) {
  if (lanes != 4) return MaskedPopcountScalar(data, stride, lanes, cand, n);
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t u = 0; u < n; ++u) {
    const __m256i c = LoadU(cand + u * 4);
    if (_mm256_testz_si256(c, c)) continue;
    const __m256i w = _mm256_and_si256(c, LoadU(data + u * stride));
    acc = _mm256_add_epi64(acc, Popcount256(w));
  }
  return Hsum64(acc);
}

ICP_AVX2 void HbpSumAvx2(const Word* const* bases, int num_groups, int s,
                         int tau, int lanes, const Word* filter,
                         std::size_t n, std::uint64_t* group_sums) {
  if (lanes != 4) {
    HbpSumScalar(bases, num_groups, s, tau, lanes, filter, n, group_sums);
    return;
  }
  // Pure halving plan: AVX2 has no 64-bit lane multiply.
  const InWordSumPlan plan(s, /*allow_multiply=*/false);
  const HbpSumAccumPlan accum(plan, s);
  const __m256i dm = _mm256_set1_epi64x(
      static_cast<long long>(DelimiterMask(s)));
  __m256i masks[8];
  for (int i = 0; i < plan.num_steps(); ++i) {
    masks[i] = _mm256_set1_epi64x(static_cast<long long>(plan.step_mask(i)));
  }
  const __m256i final_mask =
      _mm256_set1_epi64x(static_cast<long long>(plan.final_mask()));
  __m256i acc[kWordBits];
  for (int g = 0; g < num_groups; ++g) acc[g] = _mm256_setzero_si256();

  if (accum.prefix_steps > 0 &&
      accum.max_accum >= static_cast<std::size_t>(s)) {
    __m256i packed[kWordBits];
    for (int g = 0; g < num_groups; ++g) packed[g] = _mm256_setzero_si256();
    std::size_t pending = 0;  // prefix results added since the last flush
    for (std::size_t u = 0; u < n; ++u) {
      if (pending + static_cast<std::size_t>(s) > accum.max_accum) {
        for (int g = 0; g < num_groups; ++g) {
          __m256i w = packed[g];
          for (int i = accum.prefix_steps; i < plan.num_steps(); ++i) {
            w = _mm256_add_epi64(
                _mm256_and_si256(w, masks[i]),
                _mm256_and_si256(_mm256_srli_epi64(w, plan.step_shift(i)),
                                 masks[i]));
          }
          acc[g] = _mm256_add_epi64(acc[g], _mm256_and_si256(w, final_mask));
          packed[g] = _mm256_setzero_si256();
        }
        pending = 0;
      }
      const __m256i f = LoadU(filter + u * 4);
      for (int t = 0; t < s; ++t) {
        const __m256i md = _mm256_and_si256(_mm256_slli_epi64(f, t), dm);
        const __m256i m = _mm256_sub_epi64(md, _mm256_srli_epi64(md, tau));
        for (int g = 0; g < num_groups; ++g) {
          __m256i w = _mm256_and_si256(
              LoadU(bases[g] + (u * static_cast<std::size_t>(s) + t) * 4),
              m);
          w = _mm256_srli_epi64(w, plan.align_shift());
          for (int i = 0; i < accum.prefix_steps; ++i) {
            w = _mm256_add_epi64(
                _mm256_and_si256(w, masks[i]),
                _mm256_and_si256(_mm256_srli_epi64(w, plan.step_shift(i)),
                                 masks[i]));
          }
          packed[g] = _mm256_add_epi64(packed[g], w);
        }
      }
      pending += static_cast<std::size_t>(s);
    }
    for (int g = 0; g < num_groups; ++g) {
      __m256i w = packed[g];
      for (int i = accum.prefix_steps; i < plan.num_steps(); ++i) {
        w = _mm256_add_epi64(
            _mm256_and_si256(w, masks[i]),
            _mm256_and_si256(_mm256_srli_epi64(w, plan.step_shift(i)),
                             masks[i]));
      }
      acc[g] = _mm256_add_epi64(acc[g], _mm256_and_si256(w, final_mask));
    }
  } else {
    // Full halving reduction per word.
    for (std::size_t u = 0; u < n; ++u) {
      const __m256i f = LoadU(filter + u * 4);
      for (int t = 0; t < s; ++t) {
        const __m256i md = _mm256_and_si256(_mm256_slli_epi64(f, t), dm);
        const __m256i m = _mm256_sub_epi64(md, _mm256_srli_epi64(md, tau));
        for (int g = 0; g < num_groups; ++g) {
          __m256i w = _mm256_and_si256(
              LoadU(bases[g] + (u * static_cast<std::size_t>(s) + t) * 4),
              m);
          w = _mm256_srli_epi64(w, plan.align_shift());
          for (int i = 0; i < plan.num_steps(); ++i) {
            w = _mm256_add_epi64(
                _mm256_and_si256(w, masks[i]),
                _mm256_and_si256(_mm256_srli_epi64(w, plan.step_shift(i)),
                                 masks[i]));
          }
          acc[g] = _mm256_add_epi64(acc[g], _mm256_and_si256(w, final_mask));
        }
      }
    }
  }
  for (int g = 0; g < num_groups; ++g) {
    alignas(32) Word lanes_out[4];
    StoreU(lanes_out, acc[g]);
    group_sums[g] +=
        lanes_out[0] + lanes_out[1] + lanes_out[2] + lanes_out[3];
  }
}

ICP_AVX2 void VbpExtremeFoldAvx2(const Word* const* bases, const int* widths,
                                 int num_groups, int tau, int lanes,
                                 const Word* filter, std::size_t n,
                                 bool is_min, Word* temp,
                                 FoldCounters* counters) {
  if (lanes != 4) {
    VbpExtremeFoldScalar(bases, widths, num_groups, tau, lanes, filter, n,
                         is_min, temp, counters);
    return;
  }
  for (std::size_t u = 0; u < n; ++u) {
    const __m256i f = LoadU(filter + u * 4);
    if (_mm256_testz_si256(f, f)) {
      if (counters != nullptr) ++counters->segments_skipped;
      continue;
    }
    if (counters != nullptr) ++counters->folds;
    __m256i eq = _mm256_set1_epi64x(-1);
    __m256i replace = _mm256_setzero_si256();
    for (int g = 0; g < num_groups; ++g) {
      const int width = widths[g];
      const Word* base = bases[g] + u * static_cast<std::size_t>(width) * 4;
      for (int j = 0; j < width; ++j) {
        const __m256i x = LoadU(base + j * 4);
        const __m256i y = LoadU(temp + (g * tau + j) * 4);
        const __m256i wins = is_min ? _mm256_andnot_si256(x, y)
                                    : _mm256_andnot_si256(y, x);
        replace = _mm256_or_si256(replace, _mm256_and_si256(eq, wins));
        eq = _mm256_andnot_si256(_mm256_xor_si256(x, y), eq);
      }
      if (_mm256_testz_si256(eq, eq)) {
        if (counters != nullptr && g + 1 < num_groups) {
          ++counters->compare_early_stops;
        }
        break;
      }
    }
    replace = _mm256_and_si256(replace, f);
    if (_mm256_testz_si256(replace, replace)) {
      if (counters != nullptr) ++counters->blends_skipped;
      continue;
    }
    for (int g = 0; g < num_groups; ++g) {
      const int width = widths[g];
      const Word* base = bases[g] + u * static_cast<std::size_t>(width) * 4;
      for (int j = 0; j < width; ++j) {
        const __m256i x = LoadU(base + j * 4);
        Word* yp = temp + (g * tau + j) * 4;
        StoreU(yp, _mm256_or_si256(_mm256_and_si256(replace, x),
                                   _mm256_andnot_si256(replace, LoadU(yp))));
      }
    }
  }
}

ICP_AVX2 void HbpExtremeFoldAvx2(const Word* const* bases, int num_groups,
                                 int s, int tau, int lanes,
                                 const Word* filter, std::size_t n,
                                 bool is_min, Word* temp,
                                 FoldCounters* counters) {
  if (lanes != 4) {
    HbpExtremeFoldScalar(bases, num_groups, s, tau, lanes, filter, n, is_min,
                         temp, counters);
    return;
  }
  const __m256i dm =
      _mm256_set1_epi64x(static_cast<long long>(DelimiterMask(s)));
  for (std::size_t u = 0; u < n; ++u) {
    const __m256i f = LoadU(filter + u * 4);
    if (_mm256_testz_si256(f, f)) {
      if (counters != nullptr) ++counters->segments_skipped;
      continue;
    }
    for (int t = 0; t < s; ++t) {
      const __m256i md = _mm256_and_si256(_mm256_slli_epi64(f, t), dm);
      if (_mm256_testz_si256(md, md)) continue;
      if (counters != nullptr) ++counters->folds;
      const std::size_t word_off =
          (u * static_cast<std::size_t>(s) + t) * 4;
      __m256i eq = dm;
      __m256i replace = _mm256_setzero_si256();
      for (int g = 0; g < num_groups; ++g) {
        const __m256i x = LoadU(bases[g] + word_off);
        const __m256i y = LoadU(temp + g * 4);
        const __m256i ge_xy = FieldGe256(x, y, dm);
        const __m256i ge_yx = FieldGe256(y, x, dm);
        replace = _mm256_or_si256(
            replace,
            _mm256_and_si256(
                eq, _mm256_xor_si256(is_min ? ge_xy : ge_yx, dm)));
        eq = _mm256_and_si256(eq, _mm256_and_si256(ge_xy, ge_yx));
        if (_mm256_testz_si256(eq, eq)) {
          if (counters != nullptr && g + 1 < num_groups) {
            ++counters->compare_early_stops;
          }
          break;
        }
      }
      replace = _mm256_and_si256(replace, md);
      if (_mm256_testz_si256(replace, replace)) {
        if (counters != nullptr) ++counters->blends_skipped;
        continue;
      }
      const __m256i m =
          _mm256_sub_epi64(replace, _mm256_srli_epi64(replace, tau));
      for (int g = 0; g < num_groups; ++g) {
        const __m256i x = LoadU(bases[g] + word_off);
        Word* yp = temp + g * 4;
        StoreU(yp, _mm256_or_si256(_mm256_and_si256(m, x),
                                   _mm256_andnot_si256(m, LoadU(yp))));
      }
    }
  }
}

#undef ICP_AVX2
#endif  // ICP_POSPOPCNT_HAVE_AVX2

// ---------------------------------------------------------------------------
// AVX-512 tier (VPOPCNTDQ + DQ's 64-bit lane multiply).
// ---------------------------------------------------------------------------

#if defined(ICP_POSPOPCNT_HAVE_AVX512)
namespace {

#define ICP_AVX512                 \
  __attribute__((target(          \
      "avx512f,avx512bw,avx512dq,avx512vl,avx512vpopcntdq")))

ICP_AVX512 inline __m512i LoadU512(const Word* p) {
  return _mm512_loadu_si512(static_cast<const void*>(p));
}

ICP_AVX512 inline void StoreU512(Word* p, __m512i v) {
  _mm512_storeu_si512(static_cast<void*>(p), v);
}

ICP_AVX512 inline __m512i LoadU256Zext512(const Word* p) {
  return _mm512_zextsi256_si512(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

// One zmm holding units u and u+1 of a lanes==4 stream strided by `stride`.
ICP_AVX512 inline __m512i LoadUnitPair(const Word* p, std::size_t stride) {
  return _mm512_inserti64x4(
      _mm512_castsi256_si512(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + stride)), 1);
}

}  // namespace

ICP_AVX512 void CombineWordsAvx512(Word* dst, const Word* src, std::size_t n,
                                   int op) {
  std::size_t i = 0;
  switch (static_cast<CombineOp>(op)) {
    case CombineOp::kAnd:
      for (; i + 8 <= n; i += 8) {
        StoreU512(dst + i,
                  _mm512_and_si512(LoadU512(dst + i), LoadU512(src + i)));
      }
      for (; i < n; ++i) dst[i] &= src[i];
      break;
    case CombineOp::kOr:
      for (; i + 8 <= n; i += 8) {
        StoreU512(dst + i,
                  _mm512_or_si512(LoadU512(dst + i), LoadU512(src + i)));
      }
      for (; i < n; ++i) dst[i] |= src[i];
      break;
    case CombineOp::kXor:
      for (; i + 8 <= n; i += 8) {
        StoreU512(dst + i,
                  _mm512_xor_si512(LoadU512(dst + i), LoadU512(src + i)));
      }
      for (; i < n; ++i) dst[i] ^= src[i];
      break;
    case CombineOp::kAndNot:
      for (; i + 8 <= n; i += 8) {
        StoreU512(dst + i,
                  _mm512_andnot_si512(LoadU512(src + i), LoadU512(dst + i)));
      }
      for (; i < n; ++i) dst[i] &= ~src[i];
      break;
  }
}

ICP_AVX512 std::uint64_t MaskedPopcountAvx512(const Word* data,
                                              std::size_t stride, int lanes,
                                              const Word* cand,
                                              std::size_t n) {
  if (lanes != 4) return MaskedPopcountScalar(data, stride, lanes, cand, n);
  __m512i acc = _mm512_setzero_si512();
  std::size_t u = 0;
  for (; u + 2 <= n; u += 2) {
    const __m512i c = LoadU512(cand + u * 4);  // both units' words adjoin
    if (_mm512_test_epi64_mask(c, c) == 0) continue;
    const __m512i w = LoadUnitPair(data + u * stride, stride);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_and_si512(c, w)));
  }
  if (u < n) {
    const __m512i c = LoadU256Zext512(cand + u * 4);
    if (_mm512_test_epi64_mask(c, c) != 0) {
      const __m512i w = LoadU256Zext512(data + u * stride);
      acc = _mm512_add_epi64(acc,
                             _mm512_popcnt_epi64(_mm512_and_si512(c, w)));
    }
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
}

ICP_AVX512 void HbpSumAvx512(const Word* const* bases, int num_groups, int s,
                             int tau, int lanes, const Word* filter,
                             std::size_t n, std::uint64_t* group_sums) {
  if (lanes != 4) {
    HbpSumScalar(bases, num_groups, s, tau, lanes, filter, n, group_sums);
    return;
  }
  // Full multiply plan per word: vpmullq (AVX512DQ) restores the 64-bit
  // lane multiply that AVX2 lacks, so no widened accumulator is needed.
  const InWordSumPlan plan(s);
  const __m512i dm =
      _mm512_set1_epi64(static_cast<long long>(DelimiterMask(s)));
  __m512i masks[8];
  for (int i = 0; i < plan.num_steps(); ++i) {
    masks[i] = _mm512_set1_epi64(static_cast<long long>(plan.step_mask(i)));
  }
  const __m512i final_mask =
      _mm512_set1_epi64(static_cast<long long>(plan.final_mask()));
  const __m512i multiplier =
      _mm512_set1_epi64(static_cast<long long>(plan.multiplier()));
  const std::size_t unit_stride = static_cast<std::size_t>(s) * 4;
  __m512i acc[kWordBits];
  for (int g = 0; g < num_groups; ++g) acc[g] = _mm512_setzero_si512();
  std::size_t u = 0;
  for (; u + 2 <= n; u += 2) {
    const __m512i f = LoadU512(filter + u * 4);
    for (int t = 0; t < s; ++t) {
      const __m512i md = _mm512_and_si512(_mm512_slli_epi64(f, t), dm);
      const __m512i m = _mm512_sub_epi64(md, _mm512_srli_epi64(md, tau));
      for (int g = 0; g < num_groups; ++g) {
        __m512i w = _mm512_and_si512(
            LoadUnitPair(bases[g] + u * unit_stride + t * 4, unit_stride),
            m);
        w = _mm512_srli_epi64(w, plan.align_shift());
        for (int i = 0; i < plan.num_steps(); ++i) {
          w = _mm512_add_epi64(
              _mm512_and_si512(w, masks[i]),
              _mm512_and_si512(_mm512_srli_epi64(w, plan.step_shift(i)),
                               masks[i]));
        }
        if (plan.use_multiply()) {
          w = _mm512_srli_epi64(_mm512_mullo_epi64(w, multiplier),
                                plan.final_shift());
        }
        acc[g] = _mm512_add_epi64(acc[g], _mm512_and_si512(w, final_mask));
      }
    }
  }
  if (u < n) {
    // Tail unit: zero-extended loads; the upper lanes' value masks are zero
    // so they contribute nothing.
    const __m512i f = LoadU256Zext512(filter + u * 4);
    for (int t = 0; t < s; ++t) {
      const __m512i md = _mm512_and_si512(_mm512_slli_epi64(f, t), dm);
      const __m512i m = _mm512_sub_epi64(md, _mm512_srli_epi64(md, tau));
      for (int g = 0; g < num_groups; ++g) {
        __m512i w = _mm512_and_si512(
            LoadU256Zext512(bases[g] + u * unit_stride + t * 4), m);
        w = _mm512_srli_epi64(w, plan.align_shift());
        for (int i = 0; i < plan.num_steps(); ++i) {
          w = _mm512_add_epi64(
              _mm512_and_si512(w, masks[i]),
              _mm512_and_si512(_mm512_srli_epi64(w, plan.step_shift(i)),
                               masks[i]));
        }
        if (plan.use_multiply()) {
          w = _mm512_srli_epi64(_mm512_mullo_epi64(w, multiplier),
                                plan.final_shift());
        }
        acc[g] = _mm512_add_epi64(acc[g], _mm512_and_si512(w, final_mask));
      }
    }
  }
  for (int g = 0; g < num_groups; ++g) {
    group_sums[g] +=
        static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc[g]));
  }
}

#undef ICP_AVX512
#endif  // ICP_POSPOPCNT_HAVE_AVX512

}  // namespace icp::kern
