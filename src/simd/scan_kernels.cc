// Vectorized scanner kernels: the vbp_scan / hbp_scan KernelOps slots for
// the avx2 and avx512 tiers.
//
// The scalar scanners (agg_kernels.cc) walk one segment at a time, so one
// segment's early stop never helps its neighbours. The vector kernels here
// instead run the same bit-serial compare cascades over BLOCKS of
// independent segments — 4 per 256-bit register (AVX2) or 8 per 512-bit
// register (AVX-512) — with the cascade state (eq/lt/gt words) held in
// vector registers, one lane per segment:
//
//   * VBP (lanes==1 seg-major): plane j of segments i..i+3 sits at
//     bases[g] + i*width + j, strided `width` words apart — a masked
//     64-bit gather per plane assembles the block's words.
//   * HBP: sub-segment t of segments i..i+3 sits at bases[g] + i*s + t,
//     strided `s` words apart — same gather shape, with the per-field
//     borrow-trick compare (FieldGe) applied lane-wise.
//
// Early stopping is preserved at block granularity: the block abandons the
// remaining word groups when EVERY lane's equality word has gone to zero.
// A lane that decides early therefore rides along until its whole block
// decides, which is exactly why the ScanCounters contract (dispatch.h)
// makes the counters per-tier internally consistent rather than bit-equal
// across tiers; the OUTPUT words are bit-for-bit identical to the scalar
// cascade for every op, prior and layout.
//
// Prior-skip contract: lanes whose prior word is zero are masked out of
// the gathers (never read), excluded from the counters, and forced to
// produce a zero output word by starting their eq state at zero. Blocks
// whose four/eight prior words are all zero are skipped outright. The
// ragged tail (n mod 4/8 segments) falls back to the scalar kernels with
// rebased pointers, so the counters stay consistent.

#include "simd/agg_kernels.h"
#include "simd/dispatch.h"

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace icp::kern {
namespace {

// Integer CompareOp encoding shared with scan/predicate.h (the scanner
// call sites static_assert the mapping).
[[maybe_unused]] constexpr int kOpEq = 0;
[[maybe_unused]] constexpr int kOpNe = 1;
[[maybe_unused]] constexpr int kOpLt = 2;
[[maybe_unused]] constexpr int kOpLe = 3;
[[maybe_unused]] constexpr int kOpGt = 4;
[[maybe_unused]] constexpr int kOpGe = 5;
[[maybe_unused]] constexpr int kOpBetween = 6;

}  // namespace

#if defined(ICP_POSPOPCNT_HAVE_AVX2)
namespace {

#define ICP_AVX2 __attribute__((target("avx2")))

ICP_AVX2 inline __m256i LoadU(const Word* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

ICP_AVX2 inline void StoreU(Word* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// Per-field X >= C under delimiter mask `md` (the paper's borrow trick).
ICP_AVX2 inline __m256i FieldGe256(__m256i x, __m256i c, __m256i md) {
  return _mm256_and_si256(_mm256_sub_epi64(_mm256_or_si256(x, md), c), md);
}

// Lane-wise VbpResultWord (agg_kernels.cc): op -> result from the cascade
// state words.
ICP_AVX2 inline __m256i VbpResult256(int op, __m256i a_eq, __m256i a_lt,
                                     __m256i a_gt, __m256i b_eq,
                                     __m256i b_lt) {
  switch (op) {
    case kOpEq:
      return a_eq;
    case kOpNe:
      return _mm256_xor_si256(a_eq, _mm256_set1_epi64x(-1));
    case kOpLt:
      return a_lt;
    case kOpLe:
      return _mm256_or_si256(a_lt, a_eq);
    case kOpGt:
      return a_gt;
    case kOpGe:
      return _mm256_or_si256(a_gt, a_eq);
    case kOpBetween:
      return _mm256_and_si256(_mm256_or_si256(a_gt, a_eq),
                              _mm256_or_si256(b_lt, b_eq));
  }
  return _mm256_setzero_si256();
}

// Lane-wise HbpResultWord: same selection in delimiter space.
ICP_AVX2 inline __m256i HbpResult256(int op, __m256i md, __m256i a_eq,
                                     __m256i a_lt, __m256i a_gt,
                                     __m256i b_eq, __m256i b_lt) {
  switch (op) {
    case kOpEq:
      return a_eq;
    case kOpNe:
      return _mm256_xor_si256(md, a_eq);
    case kOpLt:
      return a_lt;
    case kOpLe:
      return _mm256_or_si256(a_lt, a_eq);
    case kOpGt:
      return a_gt;
    case kOpGe:
      return _mm256_or_si256(a_gt, a_eq);
    case kOpBetween:
      return _mm256_and_si256(_mm256_or_si256(a_gt, a_eq),
                              _mm256_or_si256(b_lt, b_eq));
  }
  return _mm256_setzero_si256();
}

}  // namespace

ICP_AVX2 void VbpScanAvx2(const Word* const* bases, const int* widths,
                          int num_groups, int tau, int op,
                          const bool* c1_bits, const bool* c2_bits,
                          std::size_t n, const Word* prior, Word* out,
                          ScanCounters* counters) {
  const bool dual = op == kOpBetween;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i active = ones;
    __m256i pr = ones;
    int num_active = 4;
    if (prior != nullptr) {
      pr = LoadU(prior + i);
      active = _mm256_xor_si256(_mm256_cmpeq_epi64(pr, zero), ones);
      if (_mm256_testz_si256(active, active)) {
        StoreU(out + i, zero);  // whole block already empty
        continue;
      }
      num_active = __builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(active))));
    }
    if (counters != nullptr) {
      counters->segments_processed +=
          static_cast<std::uint64_t>(num_active);
    }
    // Inactive lanes start with eq == 0, so they accumulate nothing and
    // never block the all-lanes early stop.
    __m256i a_eq = active;
    __m256i a_lt = zero;
    __m256i a_gt = zero;
    __m256i b_eq = dual ? active : zero;
    __m256i b_lt = zero;
    __m256i b_gt = zero;
    for (int g = 0; g < num_groups; ++g) {
      const int width = widths[g];
      const Word* base = bases[g] + i * static_cast<std::size_t>(width);
      const __m256i idx = _mm256_setr_epi64x(
          0, static_cast<long long>(width),
          static_cast<long long>(2 * width),
          static_cast<long long>(3 * width));
      for (int j = 0; j < width; ++j) {
        const __m256i x = _mm256_mask_i64gather_epi64(
            zero, reinterpret_cast<const long long*>(base + j), idx, active,
            8);
        const int jb = g * tau + j;
        if (c1_bits[jb]) {
          a_lt = _mm256_or_si256(a_lt, _mm256_andnot_si256(x, a_eq));
          a_eq = _mm256_and_si256(a_eq, x);
        } else {
          a_gt = _mm256_or_si256(a_gt, _mm256_and_si256(a_eq, x));
          a_eq = _mm256_andnot_si256(x, a_eq);
        }
        if (dual) {
          if (c2_bits[jb]) {
            b_lt = _mm256_or_si256(b_lt, _mm256_andnot_si256(x, b_eq));
            b_eq = _mm256_and_si256(b_eq, x);
          } else {
            b_gt = _mm256_or_si256(b_gt, _mm256_and_si256(b_eq, x));
            b_eq = _mm256_andnot_si256(x, b_eq);
          }
        }
      }
      if (counters != nullptr) {
        counters->words_examined += static_cast<std::uint64_t>(width) *
                                    static_cast<std::uint64_t>(num_active);
      }
      const __m256i eq_any = dual ? _mm256_or_si256(a_eq, b_eq) : a_eq;
      if (_mm256_testz_si256(eq_any, eq_any) && g + 1 < num_groups) {
        if (counters != nullptr) {
          counters->segments_early_stopped +=
              static_cast<std::uint64_t>(num_active);
        }
        break;
      }
    }
    __m256i r = VbpResult256(op, a_eq, a_lt, a_gt, b_eq, b_lt);
    if (prior != nullptr) r = _mm256_and_si256(r, pr);
    StoreU(out + i, r);
  }
  if (i < n) {
    const Word* tail_bases[kWordBits];
    for (int g = 0; g < num_groups; ++g) {
      tail_bases[g] = bases[g] + i * static_cast<std::size_t>(widths[g]);
    }
    VbpScanKernel(tail_bases, widths, num_groups, tau, op, c1_bits, c2_bits,
                  n - i, prior != nullptr ? prior + i : nullptr, out + i,
                  counters);
  }
}

ICP_AVX2 void HbpScanAvx2(const Word* const* bases, int num_groups, int s,
                          int op, const Word* c1_packed,
                          const Word* c2_packed, Word md, std::size_t n,
                          const Word* prior, Word* out,
                          ScanCounters* counters) {
  const bool dual = op == kOpBetween;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i mdv = _mm256_set1_epi64x(static_cast<long long>(md));
  const __m256i idx = _mm256_setr_epi64x(0, static_cast<long long>(s),
                                         static_cast<long long>(2 * s),
                                         static_cast<long long>(3 * s));
  __m256i a_eq[kWordBits];
  __m256i a_lt[kWordBits];
  __m256i a_gt[kWordBits];
  __m256i b_eq[kWordBits];
  __m256i b_lt[kWordBits];
  __m256i b_gt[kWordBits];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i active = ones;
    __m256i pr = ones;
    int num_active = 4;
    if (prior != nullptr) {
      pr = LoadU(prior + i);
      active = _mm256_xor_si256(_mm256_cmpeq_epi64(pr, zero), ones);
      if (_mm256_testz_si256(active, active)) {
        StoreU(out + i, zero);
        continue;
      }
      num_active = __builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(active))));
    }
    if (counters != nullptr) {
      counters->segments_processed +=
          static_cast<std::uint64_t>(num_active);
    }
    const __m256i eq0 = _mm256_and_si256(active, mdv);
    for (int t = 0; t < s; ++t) {
      a_eq[t] = eq0;
      a_lt[t] = zero;
      a_gt[t] = zero;
      if (dual) {
        b_eq[t] = eq0;
        b_lt[t] = zero;
        b_gt[t] = zero;
      }
    }
    for (int g = 0; g < num_groups; ++g) {
      const Word* base = bases[g] + i * static_cast<std::size_t>(s);
      const __m256i c1 =
          _mm256_set1_epi64x(static_cast<long long>(c1_packed[g]));
      const __m256i c2 =
          _mm256_set1_epi64x(static_cast<long long>(c2_packed[g]));
      __m256i any_eq = zero;
      for (int t = 0; t < s; ++t) {
        const __m256i x = _mm256_mask_i64gather_epi64(
            zero, reinterpret_cast<const long long*>(base + t), idx, active,
            8);
        const __m256i ge1 = FieldGe256(x, c1, mdv);
        const __m256i le1 = FieldGe256(c1, x, mdv);
        a_lt[t] = _mm256_or_si256(
            a_lt[t], _mm256_and_si256(a_eq[t], _mm256_xor_si256(ge1, mdv)));
        a_gt[t] = _mm256_or_si256(
            a_gt[t], _mm256_and_si256(a_eq[t], _mm256_xor_si256(le1, mdv)));
        a_eq[t] = _mm256_and_si256(a_eq[t], _mm256_and_si256(ge1, le1));
        any_eq = _mm256_or_si256(any_eq, a_eq[t]);
        if (dual) {
          const __m256i ge2 = FieldGe256(x, c2, mdv);
          const __m256i le2 = FieldGe256(c2, x, mdv);
          b_lt[t] = _mm256_or_si256(
              b_lt[t],
              _mm256_and_si256(b_eq[t], _mm256_xor_si256(ge2, mdv)));
          b_gt[t] = _mm256_or_si256(
              b_gt[t],
              _mm256_and_si256(b_eq[t], _mm256_xor_si256(le2, mdv)));
          b_eq[t] = _mm256_and_si256(b_eq[t], _mm256_and_si256(ge2, le2));
          any_eq = _mm256_or_si256(any_eq, b_eq[t]);
        }
      }
      if (counters != nullptr) {
        counters->words_examined += static_cast<std::uint64_t>(s) *
                                    static_cast<std::uint64_t>(num_active);
      }
      if (_mm256_testz_si256(any_eq, any_eq) && g + 1 < num_groups) {
        if (counters != nullptr) {
          counters->segments_early_stopped +=
              static_cast<std::uint64_t>(num_active);
        }
        break;
      }
    }
    __m256i filter = zero;
    for (int t = 0; t < s; ++t) {
      const __m256i r = HbpResult256(op, mdv, a_eq[t], a_lt[t], a_gt[t],
                                     dual ? b_eq[t] : zero,
                                     dual ? b_lt[t] : zero);
      filter = _mm256_or_si256(filter, _mm256_srli_epi64(r, t));
    }
    if (prior != nullptr) filter = _mm256_and_si256(filter, pr);
    StoreU(out + i, filter);
  }
  if (i < n) {
    const Word* tail_bases[kWordBits];
    for (int g = 0; g < num_groups; ++g) {
      tail_bases[g] = bases[g] + i * static_cast<std::size_t>(s);
    }
    HbpScanKernel(tail_bases, num_groups, s, op, c1_packed, c2_packed, md,
                  n - i, prior != nullptr ? prior + i : nullptr, out + i,
                  counters);
  }
}

#undef ICP_AVX2
#endif  // ICP_POSPOPCNT_HAVE_AVX2

#if defined(ICP_POSPOPCNT_HAVE_AVX512)
namespace {

#define ICP_AVX512                 \
  __attribute__((target(          \
      "avx512f,avx512bw,avx512dq,avx512vl,avx512vpopcntdq")))

ICP_AVX512 inline __m512i LoadU512(const Word* p) {
  return _mm512_loadu_si512(static_cast<const void*>(p));
}

ICP_AVX512 inline void StoreU512(Word* p, __m512i v) {
  _mm512_storeu_si512(static_cast<void*>(p), v);
}

ICP_AVX512 inline __m512i FieldGe512(__m512i x, __m512i c, __m512i md) {
  return _mm512_and_si512(_mm512_sub_epi64(_mm512_or_si512(x, md), c), md);
}

ICP_AVX512 inline __m512i VbpResult512(int op, __m512i a_eq, __m512i a_lt,
                                       __m512i a_gt, __m512i b_eq,
                                       __m512i b_lt) {
  switch (op) {
    case kOpEq:
      return a_eq;
    case kOpNe:
      return _mm512_xor_si512(a_eq, _mm512_set1_epi64(-1));
    case kOpLt:
      return a_lt;
    case kOpLe:
      return _mm512_or_si512(a_lt, a_eq);
    case kOpGt:
      return a_gt;
    case kOpGe:
      return _mm512_or_si512(a_gt, a_eq);
    case kOpBetween:
      return _mm512_and_si512(_mm512_or_si512(a_gt, a_eq),
                              _mm512_or_si512(b_lt, b_eq));
  }
  return _mm512_setzero_si512();
}

ICP_AVX512 inline __m512i HbpResult512(int op, __m512i md, __m512i a_eq,
                                       __m512i a_lt, __m512i a_gt,
                                       __m512i b_eq, __m512i b_lt) {
  switch (op) {
    case kOpEq:
      return a_eq;
    case kOpNe:
      return _mm512_xor_si512(md, a_eq);
    case kOpLt:
      return a_lt;
    case kOpLe:
      return _mm512_or_si512(a_lt, a_eq);
    case kOpGt:
      return a_gt;
    case kOpGe:
      return _mm512_or_si512(a_gt, a_eq);
    case kOpBetween:
      return _mm512_and_si512(_mm512_or_si512(a_gt, a_eq),
                              _mm512_or_si512(b_lt, b_eq));
  }
  return _mm512_setzero_si512();
}

}  // namespace

ICP_AVX512 void VbpScanAvx512(const Word* const* bases, const int* widths,
                              int num_groups, int tau, int op,
                              const bool* c1_bits, const bool* c2_bits,
                              std::size_t n, const Word* prior, Word* out,
                              ScanCounters* counters) {
  const bool dual = op == kOpBetween;
  const __m512i zero = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __mmask8 active = 0xff;
    __m512i pr = _mm512_set1_epi64(-1);
    if (prior != nullptr) {
      pr = LoadU512(prior + i);
      active = _mm512_test_epi64_mask(pr, pr);
      if (active == 0) {
        StoreU512(out + i, zero);
        continue;
      }
    }
    const int num_active = __builtin_popcount(active);
    if (counters != nullptr) {
      counters->segments_processed +=
          static_cast<std::uint64_t>(num_active);
    }
    __m512i a_eq = _mm512_movm_epi64(active);
    __m512i a_lt = zero;
    __m512i a_gt = zero;
    __m512i b_eq = dual ? a_eq : zero;
    __m512i b_lt = zero;
    __m512i b_gt = zero;
    for (int g = 0; g < num_groups; ++g) {
      const int width = widths[g];
      const Word* base = bases[g] + i * static_cast<std::size_t>(width);
      const __m512i idx = _mm512_setr_epi64(
          0, static_cast<long long>(width),
          static_cast<long long>(2 * width),
          static_cast<long long>(3 * width),
          static_cast<long long>(4 * width),
          static_cast<long long>(5 * width),
          static_cast<long long>(6 * width),
          static_cast<long long>(7 * width));
      for (int j = 0; j < width; ++j) {
        const __m512i x = _mm512_mask_i64gather_epi64(
            zero, active, idx, static_cast<const void*>(base + j), 8);
        const int jb = g * tau + j;
        if (c1_bits[jb]) {
          a_lt = _mm512_or_si512(a_lt, _mm512_andnot_si512(x, a_eq));
          a_eq = _mm512_and_si512(a_eq, x);
        } else {
          a_gt = _mm512_or_si512(a_gt, _mm512_and_si512(a_eq, x));
          a_eq = _mm512_andnot_si512(x, a_eq);
        }
        if (dual) {
          if (c2_bits[jb]) {
            b_lt = _mm512_or_si512(b_lt, _mm512_andnot_si512(x, b_eq));
            b_eq = _mm512_and_si512(b_eq, x);
          } else {
            b_gt = _mm512_or_si512(b_gt, _mm512_and_si512(b_eq, x));
            b_eq = _mm512_andnot_si512(x, b_eq);
          }
        }
      }
      if (counters != nullptr) {
        counters->words_examined += static_cast<std::uint64_t>(width) *
                                    static_cast<std::uint64_t>(num_active);
      }
      const __m512i eq_any = dual ? _mm512_or_si512(a_eq, b_eq) : a_eq;
      if (_mm512_test_epi64_mask(eq_any, eq_any) == 0 &&
          g + 1 < num_groups) {
        if (counters != nullptr) {
          counters->segments_early_stopped +=
              static_cast<std::uint64_t>(num_active);
        }
        break;
      }
    }
    __m512i r = VbpResult512(op, a_eq, a_lt, a_gt, b_eq, b_lt);
    if (prior != nullptr) r = _mm512_and_si512(r, pr);
    StoreU512(out + i, r);
  }
  if (i < n) {
    const Word* tail_bases[kWordBits];
    for (int g = 0; g < num_groups; ++g) {
      tail_bases[g] = bases[g] + i * static_cast<std::size_t>(widths[g]);
    }
    VbpScanKernel(tail_bases, widths, num_groups, tau, op, c1_bits, c2_bits,
                  n - i, prior != nullptr ? prior + i : nullptr, out + i,
                  counters);
  }
}

ICP_AVX512 void HbpScanAvx512(const Word* const* bases, int num_groups,
                              int s, int op, const Word* c1_packed,
                              const Word* c2_packed, Word md, std::size_t n,
                              const Word* prior, Word* out,
                              ScanCounters* counters) {
  const bool dual = op == kOpBetween;
  const __m512i zero = _mm512_setzero_si512();
  const __m512i mdv = _mm512_set1_epi64(static_cast<long long>(md));
  const __m512i idx = _mm512_setr_epi64(
      0, static_cast<long long>(s), static_cast<long long>(2 * s),
      static_cast<long long>(3 * s), static_cast<long long>(4 * s),
      static_cast<long long>(5 * s), static_cast<long long>(6 * s),
      static_cast<long long>(7 * s));
  __m512i a_eq[kWordBits];
  __m512i a_lt[kWordBits];
  __m512i a_gt[kWordBits];
  __m512i b_eq[kWordBits];
  __m512i b_lt[kWordBits];
  __m512i b_gt[kWordBits];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __mmask8 active = 0xff;
    __m512i pr = _mm512_set1_epi64(-1);
    if (prior != nullptr) {
      pr = LoadU512(prior + i);
      active = _mm512_test_epi64_mask(pr, pr);
      if (active == 0) {
        StoreU512(out + i, zero);
        continue;
      }
    }
    const int num_active = __builtin_popcount(active);
    if (counters != nullptr) {
      counters->segments_processed +=
          static_cast<std::uint64_t>(num_active);
    }
    const __m512i eq0 = _mm512_maskz_mov_epi64(active, mdv);
    for (int t = 0; t < s; ++t) {
      a_eq[t] = eq0;
      a_lt[t] = zero;
      a_gt[t] = zero;
      if (dual) {
        b_eq[t] = eq0;
        b_lt[t] = zero;
        b_gt[t] = zero;
      }
    }
    for (int g = 0; g < num_groups; ++g) {
      const Word* base = bases[g] + i * static_cast<std::size_t>(s);
      const __m512i c1 =
          _mm512_set1_epi64(static_cast<long long>(c1_packed[g]));
      const __m512i c2 =
          _mm512_set1_epi64(static_cast<long long>(c2_packed[g]));
      __m512i any_eq = zero;
      for (int t = 0; t < s; ++t) {
        const __m512i x = _mm512_mask_i64gather_epi64(
            zero, active, idx, static_cast<const void*>(base + t), 8);
        const __m512i ge1 = FieldGe512(x, c1, mdv);
        const __m512i le1 = FieldGe512(c1, x, mdv);
        a_lt[t] = _mm512_or_si512(
            a_lt[t], _mm512_and_si512(a_eq[t], _mm512_xor_si512(ge1, mdv)));
        a_gt[t] = _mm512_or_si512(
            a_gt[t], _mm512_and_si512(a_eq[t], _mm512_xor_si512(le1, mdv)));
        a_eq[t] = _mm512_and_si512(a_eq[t], _mm512_and_si512(ge1, le1));
        any_eq = _mm512_or_si512(any_eq, a_eq[t]);
        if (dual) {
          const __m512i ge2 = FieldGe512(x, c2, mdv);
          const __m512i le2 = FieldGe512(c2, x, mdv);
          b_lt[t] = _mm512_or_si512(
              b_lt[t],
              _mm512_and_si512(b_eq[t], _mm512_xor_si512(ge2, mdv)));
          b_gt[t] = _mm512_or_si512(
              b_gt[t],
              _mm512_and_si512(b_eq[t], _mm512_xor_si512(le2, mdv)));
          b_eq[t] = _mm512_and_si512(b_eq[t], _mm512_and_si512(ge2, le2));
          any_eq = _mm512_or_si512(any_eq, b_eq[t]);
        }
      }
      if (counters != nullptr) {
        counters->words_examined += static_cast<std::uint64_t>(s) *
                                    static_cast<std::uint64_t>(num_active);
      }
      if (_mm512_test_epi64_mask(any_eq, any_eq) == 0 &&
          g + 1 < num_groups) {
        if (counters != nullptr) {
          counters->segments_early_stopped +=
              static_cast<std::uint64_t>(num_active);
        }
        break;
      }
    }
    __m512i filter = zero;
    for (int t = 0; t < s; ++t) {
      const __m512i r = HbpResult512(op, mdv, a_eq[t], a_lt[t], a_gt[t],
                                     dual ? b_eq[t] : zero,
                                     dual ? b_lt[t] : zero);
      filter = _mm512_or_si512(filter, _mm512_srli_epi64(r, t));
    }
    if (prior != nullptr) filter = _mm512_and_si512(filter, pr);
    StoreU512(out + i, filter);
  }
  if (i < n) {
    const Word* tail_bases[kWordBits];
    for (int g = 0; g < num_groups; ++g) {
      tail_bases[g] = bases[g] + i * static_cast<std::size_t>(s);
    }
    HbpScanKernel(tail_bases, num_groups, s, op, c1_packed, c2_packed, md,
                  n - i, prior != nullptr ? prior + i : nullptr, out + i,
                  counters);
  }
}

#undef ICP_AVX512
#endif  // ICP_POSPOPCNT_HAVE_AVX512

}  // namespace icp::kern
