// 256-bit word abstraction for the SIMD kernels (paper Section IV-B).
//
// VBP treats a 256-bit register as one wide word (a segment of 256 values:
// only bitwise ops and popcount are needed). HBP runs four independent
// 64-bit algorithm instances in the four lanes: additions/subtractions/shifts
// are 64-bit lane operations, which is exactly the paper's configuration
// ("we run four instances of 64-bit algorithms in the 256-bit SIMD
// registers"). There is no 256-bit POPCNT in AVX2, so popcounts decompose
// into four scalar POPCNTs — the bottleneck the paper highlights for
// VBP-heavy algorithms.
//
// When the build targets a CPU without AVX2 the same interface is provided
// by a portable four-lane implementation, keeping all SIMD-path code
// compilable and testable everywhere.

#ifndef ICP_SIMD_WORD256_H_
#define ICP_SIMD_WORD256_H_

#include <cstdint>

#include "util/bits.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define ICP_HAVE_AVX2 1
#endif

namespace icp {

/// True when the build uses real AVX2 instructions for Word256.
constexpr bool kHaveAvx2 =
#if defined(ICP_HAVE_AVX2)
    true;
#else
    false;
#endif

#if defined(ICP_HAVE_AVX2)

class Word256 {
 public:
  Word256() : v_(_mm256_setzero_si256()) {}
  explicit Word256(__m256i v) : v_(v) {}

  /// Loads 4 words from a 32-byte-aligned address.
  static Word256 Load(const Word* p) {
    return Word256(_mm256_load_si256(reinterpret_cast<const __m256i*>(p)));
  }
  void Store(Word* p) const {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v_);
  }

  static Word256 Broadcast(Word w) {
    return Word256(_mm256_set1_epi64x(static_cast<long long>(w)));
  }
  static Word256 Zero() { return Word256(); }
  static Word256 Ones() {
    return Word256(_mm256_set1_epi64x(-1));
  }

  friend Word256 operator&(Word256 a, Word256 b) {
    return Word256(_mm256_and_si256(a.v_, b.v_));
  }
  friend Word256 operator|(Word256 a, Word256 b) {
    return Word256(_mm256_or_si256(a.v_, b.v_));
  }
  friend Word256 operator^(Word256 a, Word256 b) {
    return Word256(_mm256_xor_si256(a.v_, b.v_));
  }
  Word256 operator~() const {
    return Word256(_mm256_xor_si256(v_, _mm256_set1_epi64x(-1)));
  }
  /// ~a & b (one VPANDN).
  friend Word256 AndNot(Word256 a, Word256 b) {
    return Word256(_mm256_andnot_si256(a.v_, b.v_));
  }

  /// Per-64-bit-lane arithmetic (no carries cross lanes — the HBP property).
  friend Word256 Add64(Word256 a, Word256 b) {
    return Word256(_mm256_add_epi64(a.v_, b.v_));
  }
  friend Word256 Sub64(Word256 a, Word256 b) {
    return Word256(_mm256_sub_epi64(a.v_, b.v_));
  }
  Word256 Shl64(int bits) const {
    return Word256(_mm256_slli_epi64(v_, bits));
  }
  Word256 Shr64(int bits) const {
    return Word256(_mm256_srli_epi64(v_, bits));
  }

  bool IsZero() const { return _mm256_testz_si256(v_, v_) != 0; }

  Word Lane(int i) const {
    alignas(32) Word lanes[4];
    Store(lanes);
    return lanes[i];
  }

  /// Sum of the popcounts of the four lanes (4 scalar POPCNTs; see header
  /// comment).
  int PopcountSum() const {
    alignas(32) Word lanes[4];
    Store(lanes);
    return Popcount(lanes[0]) + Popcount(lanes[1]) + Popcount(lanes[2]) +
           Popcount(lanes[3]);
  }

 private:
  __m256i v_;
};

#else  // portable fallback

class Word256 {
 public:
  Word256() : lanes_{0, 0, 0, 0} {}

  static Word256 Load(const Word* p) {
    Word256 out;
    for (int i = 0; i < 4; ++i) out.lanes_[i] = p[i];
    return out;
  }
  void Store(Word* p) const {
    for (int i = 0; i < 4; ++i) p[i] = lanes_[i];
  }

  static Word256 Broadcast(Word w) {
    Word256 out;
    for (auto& lane : out.lanes_) lane = w;
    return out;
  }
  static Word256 Zero() { return Word256(); }
  static Word256 Ones() { return Broadcast(~Word{0}); }

  friend Word256 operator&(Word256 a, Word256 b) {
    return Apply(a, b, [](Word x, Word y) { return x & y; });
  }
  friend Word256 operator|(Word256 a, Word256 b) {
    return Apply(a, b, [](Word x, Word y) { return x | y; });
  }
  friend Word256 operator^(Word256 a, Word256 b) {
    return Apply(a, b, [](Word x, Word y) { return x ^ y; });
  }
  Word256 operator~() const {
    Word256 out;
    for (int i = 0; i < 4; ++i) out.lanes_[i] = ~lanes_[i];
    return out;
  }
  friend Word256 AndNot(Word256 a, Word256 b) {
    return Apply(a, b, [](Word x, Word y) { return ~x & y; });
  }
  friend Word256 Add64(Word256 a, Word256 b) {
    return Apply(a, b, [](Word x, Word y) { return x + y; });
  }
  friend Word256 Sub64(Word256 a, Word256 b) {
    return Apply(a, b, [](Word x, Word y) { return x - y; });
  }
  Word256 Shl64(int bits) const {
    Word256 out;
    for (int i = 0; i < 4; ++i) out.lanes_[i] = lanes_[i] << bits;
    return out;
  }
  Word256 Shr64(int bits) const {
    Word256 out;
    for (int i = 0; i < 4; ++i) out.lanes_[i] = lanes_[i] >> bits;
    return out;
  }

  bool IsZero() const {
    return (lanes_[0] | lanes_[1] | lanes_[2] | lanes_[3]) == 0;
  }
  Word Lane(int i) const { return lanes_[i]; }
  int PopcountSum() const {
    return Popcount(lanes_[0]) + Popcount(lanes_[1]) + Popcount(lanes_[2]) +
           Popcount(lanes_[3]);
  }

 private:
  template <typename Fn>
  static Word256 Apply(const Word256& a, const Word256& b, Fn fn) {
    Word256 out;
    for (int i = 0; i < 4; ++i) out.lanes_[i] = fn(a.lanes_[i], b.lanes_[i]);
    return out;
  }

  Word lanes_[4];
};

#endif  // ICP_HAVE_AVX2

}  // namespace icp

#endif  // ICP_SIMD_WORD256_H_
