#include "simd/vbp_simd.h"

#include <algorithm>
#include <array>

#include "core/vbp_aggregate.h"
#include "simd/dispatch.h"
#include "util/aligned_buffer.h"
#include "util/check.h"

namespace icp::simd {
namespace {

struct CompareState256 {
  Word256 eq = Word256::Ones();
  Word256 lt = Word256::Zero();
  Word256 gt = Word256::Zero();

  void Step(Word256 x, bool c_bit) {
    if (c_bit) {
      lt = lt | AndNot(x, eq);
      eq = eq & x;
    } else {
      gt = gt | (eq & x);
      eq = AndNot(x, eq);
    }
  }
};

Word256 ResultWord(CompareOp op, const CompareState256& a,
                   const CompareState256& b) {
  switch (op) {
    case CompareOp::kEq:
      return a.eq;
    case CompareOp::kNe:
      return ~a.eq;
    case CompareOp::kLt:
      return a.lt;
    case CompareOp::kLe:
      return a.lt | a.eq;
    case CompareOp::kGt:
      return a.gt;
    case CompareOp::kGe:
      return a.gt | a.eq;
    case CompareOp::kBetween:
      return (a.gt | a.eq) & (b.lt | b.eq);
  }
  return Word256::Zero();
}

// 256-bit word of bit j of segment-quad q in group g.
inline const Word* QuadWordPtr(const VbpColumn& column, int g, std::size_t q,
                               int width, int j) {
  return column.GroupData(g) + (q * width + j) * 4;
}

}  // namespace

FilterBitVector ScanVbp(const VbpColumn& column, CompareOp op,
                        std::uint64_t c1, std::uint64_t c2,
                        ScanStats* stats) {
  FilterBitVector out(column.num_values(), VbpColumn::kValuesPerSegment);
  ScanVbpRange(column, op, c1, c2, 0, NumQuads(column), &out);
  // Model: k bit-plane words per segment, no early-stop attribution.
  RecordModeledScan(column.num_segments(),
                    column.num_segments() *
                        static_cast<std::uint64_t>(column.bit_width()),
                    stats);
  return out;
}

void ScanVbpRange(const VbpColumn& column, CompareOp op, std::uint64_t c1,
                  std::uint64_t c2, std::size_t quad_begin,
                  std::size_t quad_end, FilterBitVector* out) {
  ICP_CHECK_EQ(column.lanes(), 4);
  ICP_CHECK_EQ(out->values_per_segment(), VbpColumn::kValuesPerSegment);
  const int k = column.bit_width();
  const int tau = column.tau();
  const int num_groups = column.num_groups();
  const std::size_t live_segments = out->num_segments();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    for (std::size_t seg = quad_begin * 4;
         seg < quad_end * 4 && seg < live_segments; ++seg) {
      out->SetSegmentWord(seg, all ? out->ValidMask(seg) : 0);
    }
    return;
  }

  const bool dual = op == CompareOp::kBetween;
  std::array<bool, kWordBits> c1_bits{};
  std::array<bool, kWordBits> c2_bits{};
  for (int j = 0; j < k; ++j) {
    c1_bits[j] = (c1 >> (k - 1 - j)) & 1;
    c2_bits[j] = (c2 >> (k - 1 - j)) & 1;
  }

  Word* f_words = out->words();
  for (std::size_t q = quad_begin; q < quad_end; ++q) {
    CompareState256 a;
    CompareState256 b;
    for (int g = 0; g < num_groups; ++g) {
      const int width = column.GroupWidth(g);
      const Word* base = QuadWordPtr(column, g, q, width, 0);
      for (int j = 0; j < width; ++j) {
        const Word256 x = Word256::Load(base + j * 4);
        a.Step(x, c1_bits[g * tau + j]);
        if (dual) b.Step(x, c2_bits[g * tau + j]);
      }
      if ((a.eq | (dual ? b.eq : Word256::Zero())).IsZero() &&
          g + 1 < num_groups) {
        break;
      }
    }
    // Stores past the live segment count land in WordBuffer's zero padding.
    ResultWord(op, a, b).Store(f_words + q * 4);
  }
  // Re-mask the ragged tail segment (the store above may have set its
  // padding bits from the zero-packed padding values), and clear the
  // padding-segment words beyond the live range — SIMD aggregate kernels
  // load them as part of the final quad.
  const std::size_t last = live_segments - 1;
  if (last >= quad_begin * 4 && last < quad_end * 4) {
    f_words[last] &= out->ValidMask(last);
  }
  for (std::size_t seg = std::max(live_segments, quad_begin * 4);
       seg < quad_end * 4; ++seg) {
    f_words[seg] = 0;
  }
}

void AccumulateBitSumsVbp(const VbpColumn& column,
                          const FilterBitVector& filter,
                          std::size_t quad_begin, std::size_t quad_end,
                          std::uint64_t* bit_sums) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const int tau = column.tau();
  const Word* f_words = filter.words();
  const kern::KernelOps& ops = kern::Ops();
  for (int g = 0; g < column.num_groups(); ++g) {
    const int width = column.GroupWidth(g);
    ops.vbp_bit_sums_quads(QuadWordPtr(column, g, quad_begin, width, 0),
                           f_words + quad_begin * 4, quad_end - quad_begin,
                           width, bit_sums + g * tau);
  }
}

UInt128 SumVbp(const VbpColumn& column, const FilterBitVector& filter,
               const CancelContext* cancel) {
  std::uint64_t bit_sums[kWordBits] = {};
  ForEachCancellableBatch(
      cancel, 0, NumQuads(column), [&](std::size_t b, std::size_t e) {
        AccumulateBitSumsVbp(column, filter, b, e, bit_sums);
      });
  return vbp::CombineBitSums(bit_sums, column.bit_width());
}

void InitSlotExtremeVbp(int k, bool is_min, Word* temp) {
  for (int i = 0; i < k * 4; ++i) {
    temp[i] = is_min ? ~Word{0} : Word{0};
  }
}

void SlotExtremeRangeVbp(const VbpColumn& column,
                         const FilterBitVector& filter,
                         std::size_t quad_begin, std::size_t quad_end,
                         bool is_min, Word* temp) {
  ICP_CHECK_EQ(column.lanes(), 4);
  const int num_groups = column.num_groups();
  const Word* bases[kWordBits];
  int widths[kWordBits];
  for (int g = 0; g < num_groups; ++g) {
    widths[g] = column.GroupWidth(g);
    bases[g] = QuadWordPtr(column, g, quad_begin, widths[g], 0);
  }
  kern::Ops().vbp_extreme_fold(bases, widths, num_groups, column.tau(),
                               /*lanes=*/4, filter.words() + quad_begin * 4,
                               quad_end - quad_begin, is_min, temp, nullptr);
}

std::uint64_t ExtremeOfSlotsVbp(const Word* temp, int k, bool is_min) {
  std::uint64_t best = 0;
  for (int lane = 0; lane < 4; ++lane) {
    Word lane_temp[kWordBits];
    for (int j = 0; j < k; ++j) lane_temp[j] = temp[j * 4 + lane];
    const std::uint64_t v = vbp::ExtremeOfSlots(lane_temp, k, is_min);
    if (lane == 0 || (is_min ? v < best : v > best)) best = v;
  }
  return best;
}

namespace {

std::optional<std::uint64_t> ExtremeVbp(const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        bool is_min,
                                        const CancelContext* cancel) {
  if (filter.CountOnes() == 0) return std::nullopt;
  const int k = column.bit_width();
  Word temp[kWordBits * 4];
  InitSlotExtremeVbp(k, is_min, temp);
  if (!ForEachCancellableBatch(
          cancel, 0, NumQuads(column), [&](std::size_t b, std::size_t e) {
            SlotExtremeRangeVbp(column, filter, b, e, is_min, temp);
          })) {
    return std::nullopt;
  }
  return ExtremeOfSlotsVbp(temp, k, is_min);
}

}  // namespace

std::optional<std::uint64_t> MinVbp(const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeVbp(column, filter, /*is_min=*/true, cancel);
}

std::optional<std::uint64_t> MaxVbp(const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return ExtremeVbp(column, filter, /*is_min=*/false, cancel);
}

std::optional<std::uint64_t> RankSelectVbp(const VbpColumn& column,
                                           const FilterBitVector& filter,
                                           std::uint64_t r,
                                           const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 4);
  std::uint64_t u = filter.CountOnes();
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t quads = NumQuads(column);
  WordBuffer v(quads * 4);
  for (std::size_t seg = 0; seg < filter.num_segments(); ++seg) {
    v[seg] = filter.SegmentWord(seg);
  }

  const int k = column.bit_width();
  const int tau = column.tau();
  std::uint64_t result = 0;
  for (int jb = 0; jb < k; ++jb) {
    const int g = jb / tau;
    const int j = jb - g * tau;
    const int width = column.GroupWidth(g);
    std::uint64_t c = 0;
    const kern::KernelOps& ops = kern::Ops();
    const bool ok = ForEachCancellableBatch(
        cancel, 0, quads, [&](std::size_t qb, std::size_t qe) {
          c += ops.masked_popcount(QuadWordPtr(column, g, qb, width, j),
                                   static_cast<std::size_t>(width) * 4,
                                   /*lanes=*/4, v.data() + qb * 4, qe - qb);
        });
    if (!ok) return std::nullopt;
    const bool bit_is_one = u - c < r;
    if (bit_is_one) {
      result |= std::uint64_t{1} << (k - 1 - jb);
      r -= u - c;
      u = c;
    } else {
      u -= c;
    }
    if (!ForEachCancellableBatch(
            cancel, 0, quads, [&](std::size_t qb, std::size_t qe) {
              for (std::size_t q = qb; q < qe; ++q) {
                Word256 cand = Word256::Load(v.data() + q * 4);
                if (cand.IsZero()) continue;
                const Word256 x =
                    Word256::Load(QuadWordPtr(column, g, q, width, j));
                cand = bit_is_one ? (cand & x) : AndNot(x, cand);
                cand.Store(v.data() + q * 4);
              }
            })) {
      return std::nullopt;
    }
  }
  return result;
}

std::optional<std::uint64_t> MedianVbp(const VbpColumn& column,
                                       const FilterBitVector& filter,
                                       const CancelContext* cancel) {
  const std::uint64_t count = filter.CountOnes();
  if (count == 0) return std::nullopt;
  return RankSelectVbp(column, filter, LowerMedianRank(count), cancel);
}

AggregateResult AggregateVbp(const VbpColumn& column,
                             const FilterBitVector& filter, AggKind kind,
                             std::uint64_t rank, const CancelContext* cancel,
                             AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathVbp);
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = SumVbp(column, filter, cancel);
      break;
    case AggKind::kMin:
      result.value = MinVbp(column, filter, cancel);
      break;
    case AggKind::kMax:
      result.value = MaxVbp(column, filter, cancel);
      break;
    case AggKind::kMedian:
      result.value = MedianVbp(column, filter, cancel);
      break;
    case AggKind::kRank:
      result.value = RankSelectVbp(column, filter, rank, cancel);
      break;
  }
  if (kind != AggKind::kCount) CountFilterSegments(filter, stats);
  return result;
}

}  // namespace icp::simd
