#include "layout/vbp_column.h"

namespace icp {

VbpColumn VbpColumn::Pack(const std::uint64_t* codes, std::size_t n, int k,
                          Options options) {
  ICP_CHECK(k >= 1 && k <= kWordBits - 1);
  // A bit-group wider than the value is meaningless; clamp so column specs
  // can reuse one tau across columns of different widths.
  int tau = options.tau == 0 ? DefaultVbpTau(k) : options.tau;
  if (tau > k) tau = k;
  ICP_CHECK_GE(tau, 1);
  ICP_CHECK(options.lanes == 1 || options.lanes == 4);

  VbpColumn col;
  col.num_values_ = n;
  col.k_ = k;
  col.tau_ = tau;
  col.lanes_ = options.lanes;
  const std::size_t raw_segments = CeilDiv(n, kValuesPerSegment);
  col.num_segments_ =
      CeilDiv(raw_segments, options.lanes) * options.lanes;
  // num_segments_ must be >= 1 so kernels can assume non-empty columns.
  if (col.num_segments_ == 0) col.num_segments_ = options.lanes;

  const int num_groups = static_cast<int>(CeilDiv(k, tau));
  col.groups_.reserve(num_groups);
  for (int g = 0; g < num_groups; ++g) {
    const int width = g + 1 < num_groups ? tau : k - g * tau;
    col.groups_.emplace_back(col.num_segments_ * width);
  }
  if (!col.storage_ok()) return col;  // caller surfaces the failed alloc

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = codes[i];
    ICP_DCHECK(k == kWordBits || v < (std::uint64_t{1} << k));
    const std::size_t seg = i / kValuesPerSegment;
    const int bit_pos =
        kWordBits - 1 - static_cast<int>(i % kValuesPerSegment);
    for (int j = 0; j < k; ++j) {
      if ((v >> (k - 1 - j)) & 1) {
        const int g = j / tau;
        const int jj = j - g * tau;
        col.groups_[g][col.WordIndex(g, seg, jj)] |= Word{1} << bit_pos;
      }
    }
  }
  return col;
}

std::uint64_t VbpColumn::GetValue(std::size_t i) const {
  ICP_DCHECK(i < num_values_);
  const std::size_t seg = i / kValuesPerSegment;
  const int bit_pos = kWordBits - 1 - static_cast<int>(i % kValuesPerSegment);
  std::uint64_t v = 0;
  for (int j = 0; j < k_; ++j) {
    const int g = j / tau_;
    const int jj = j - g * tau_;
    const Word w = groups_[g][WordIndex(g, seg, jj)];
    v |= ((w >> bit_pos) & 1) << (k_ - 1 - j);
  }
  return v;
}

std::size_t VbpColumn::MemoryBytes() const {
  std::size_t words = 0;
  for (const auto& group : groups_) words += group.size();
  return words * sizeof(Word);
}

}  // namespace icp
