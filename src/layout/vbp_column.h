// VBP (vertical bit packing) column storage — paper Section II-A / II-C.
//
// Bit j (0 = most significant) of the 64 values of segment `seg` is one
// 64-bit word; slot i of the segment (value number i, 0-based) maps to bit
// position 63 - i, so the paper's v_1 is the MSB. Bits are clustered into
// bit-groups of `tau` bits (the last group may be narrower); the words of
// bit-group g across all segments are stored contiguously (a word-group
// region) so that a scan that early-stops after group g never touches the
// cache lines of groups g+1..B-1.

#ifndef ICP_LAYOUT_VBP_COLUMN_H_
#define ICP_LAYOUT_VBP_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "layout/layout.h"
#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/check.h"

namespace icp {

class VbpColumn {
 public:
  struct Options {
    /// Bit-group size; 0 selects DefaultVbpTau(k) (the paper's tau = 4).
    int tau = 0;
    /// Segment interleaving factor for SIMD kernels (1 = scalar layout,
    /// 4 = AVX2-friendly: the same (group, bit) word of 4 consecutive
    /// segments is one aligned 256-bit lane group).
    int lanes = 1;
  };

  VbpColumn() = default;

  /// Packs `n` codes, each < 2^k, into VBP form.
  static VbpColumn Pack(const std::uint64_t* codes, std::size_t n, int k,
                        Options options);
  static VbpColumn Pack(const std::uint64_t* codes, std::size_t n, int k) {
    return Pack(codes, n, k, Options());
  }
  static VbpColumn Pack(const std::vector<std::uint64_t>& codes, int k,
                        Options options) {
    return Pack(codes.data(), codes.size(), k, options);
  }
  static VbpColumn Pack(const std::vector<std::uint64_t>& codes, int k) {
    return Pack(codes.data(), codes.size(), k, Options());
  }

  std::size_t num_values() const { return num_values_; }
  int bit_width() const { return k_; }
  int tau() const { return tau_; }
  int lanes() const { return lanes_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }

  /// Values covered by one segment (always the word width for VBP).
  static constexpr int kValuesPerSegment = kWordBits;

  /// Number of physical segments (padded up to a multiple of `lanes`;
  /// padding values are zero).
  std::size_t num_segments() const { return num_segments_; }

  /// Width in bits of bit-group g (tau for all but possibly the last group).
  int GroupWidth(int g) const {
    ICP_DCHECK(g >= 0 && g < num_groups());
    return g + 1 < num_groups() ? tau_ : k_ - g * tau_;
  }

  const Word* GroupData(int g) const { return groups_[g].data(); }
  std::size_t GroupWordCount(int g) const { return groups_[g].size(); }

  /// Index within GroupData(g) of the word holding bit `j` (0-based within
  /// the group, 0 = most significant bit of the group) of segment `seg`.
  std::size_t WordIndex(int g, std::size_t seg, int j) const {
    ICP_DCHECK(j >= 0 && j < GroupWidth(g));
    return ((seg / lanes_) * GroupWidth(g) + j) * lanes_ + (seg % lanes_);
  }

  Word WordAt(int g, std::size_t seg, int j) const {
    return groups_[g][WordIndex(g, seg, j)];
  }

  /// Reconstructs value i to plain form (slow; tests and NBP baseline).
  std::uint64_t GetValue(std::size_t i) const;

  /// Total packed size in bytes (all word-group regions).
  std::size_t MemoryBytes() const;

  /// False when any word-group allocation failed (see
  /// WordBuffer::alloc_failed); the column is then empty and unusable.
  bool storage_ok() const {
    for (const WordBuffer& group : groups_) {
      if (group.alloc_failed()) return false;
    }
    return true;
  }

 private:
  std::size_t num_values_ = 0;
  std::size_t num_segments_ = 0;
  int k_ = 0;
  int tau_ = 0;
  int lanes_ = 1;
  std::vector<WordBuffer> groups_;  // one contiguous region per bit-group
};

}  // namespace icp

#endif  // ICP_LAYOUT_VBP_COLUMN_H_
