#include "layout/hbp_column.h"

namespace icp {

HbpColumn HbpColumn::Pack(const std::uint64_t* codes, std::size_t n, int k,
                          Options options) {
  ICP_CHECK(k >= 1 && k <= kWordBits - 1);
  const int tau = options.tau == 0 ? DefaultHbpTau(k) : options.tau;
  ICP_CHECK(tau >= 1 && tau <= kWordBits - 1);
  ICP_CHECK(options.lanes == 1 || options.lanes == 4);

  HbpColumn col;
  col.num_values_ = n;
  col.k_ = k;
  col.tau_ = tau;
  col.lanes_ = options.lanes;
  col.num_groups_ = static_cast<int>(CeilDiv(k, tau));
  const int s = tau + 1;
  col.fields_per_word_ = kWordBits / s;
  ICP_CHECK_GE(col.fields_per_word_, 1);

  const int vps = s * col.fields_per_word_;
  const std::size_t raw_segments = CeilDiv(n, vps);
  col.num_segments_ = CeilDiv(raw_segments, options.lanes) * options.lanes;
  if (col.num_segments_ == 0) col.num_segments_ = options.lanes;

  col.groups_.reserve(col.num_groups_);
  for (int g = 0; g < col.num_groups_; ++g) {
    col.groups_.emplace_back(col.num_segments_ * s);
  }
  if (!col.storage_ok()) return col;  // caller surfaces the failed alloc

  const Word group_mask = LowMask(tau);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = codes[i];
    ICP_DCHECK(k == kWordBits || v < (std::uint64_t{1} << k));
    const std::size_t seg = i / vps;
    const int r = static_cast<int>(i % vps);
    const int t = r % s;       // sub-segment
    const int f = r / s;       // slot (field) within the sub-segment's words
    const int field_shift = kWordBits - (f + 1) * s;
    for (int g = 0; g < col.num_groups_; ++g) {
      const Word group_value = (v >> col.GroupShift(g)) & group_mask;
      col.groups_[g][col.WordIndex(g, seg, t)] |= group_value << field_shift;
    }
  }
  return col;
}

std::uint64_t HbpColumn::GetValue(std::size_t i) const {
  ICP_DCHECK(i < num_values_);
  const int s = field_width();
  const int vps = values_per_segment();
  const std::size_t seg = i / vps;
  const int r = static_cast<int>(i % vps);
  const int t = r % s;
  const int f = r / s;
  const int field_shift = kWordBits - (f + 1) * s;
  const Word group_mask = LowMask(tau_);
  std::uint64_t v = 0;
  for (int g = 0; g < num_groups_; ++g) {
    const Word group_value =
        (groups_[g][WordIndex(g, seg, t)] >> field_shift) & group_mask;
    v |= group_value << GroupShift(g);
  }
  return v;
}

std::size_t HbpColumn::MemoryBytes() const {
  std::size_t words = 0;
  for (const auto& group : groups_) words += group.size();
  return words * sizeof(Word);
}

}  // namespace icp
