// Padded column storage: each k-bit code stored in the smallest power-of-two
// machine integer that fits it (8/16/32/64 bits).
//
// This is what mainstream column stores do without bit-level packing
// (Blink-style banks / Vectorwise-style vectors): scans and aggregates are
// plain typed loops the compiler auto-vectorizes, but k < element width
// bits of every register lane are wasted — the underutilization the paper's
// introduction quantifies. Serves as the realistic industrial baseline in
// ablation benches, alongside the one-value-per-64-bit NaiveColumn.

#ifndef ICP_LAYOUT_PADDED_COLUMN_H_
#define ICP_LAYOUT_PADDED_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/check.h"

namespace icp {

class PaddedColumn {
 public:
  PaddedColumn() = default;

  static PaddedColumn Pack(const std::uint64_t* codes, std::size_t n,
                           int k) {
    ICP_CHECK(k >= 1 && k <= kWordBits);
    ICP_CHECK_GE(n, 1u);
    PaddedColumn col;
    col.k_ = k;
    col.num_values_ = n;
    col.element_bits_ = k <= 8 ? 8 : k <= 16 ? 16 : k <= 32 ? 32 : 64;
    col.data_ = WordBuffer(CeilDiv(n * col.element_bits_, kWordBits));
    if (col.data_.alloc_failed()) return col;
    for (std::size_t i = 0; i < n; ++i) {
      ICP_DCHECK(k == kWordBits || codes[i] < (std::uint64_t{1} << k));
      col.Set(i, codes[i]);
    }
    return col;
  }
  static PaddedColumn Pack(const std::vector<std::uint64_t>& codes, int k) {
    return Pack(codes.data(), codes.size(), k);
  }

  std::size_t num_values() const { return num_values_; }
  int bit_width() const { return k_; }
  /// Storage width per value: 8, 16, 32 or 64 bits.
  int element_bits() const { return element_bits_; }

  std::uint64_t GetValue(std::size_t i) const {
    ICP_DCHECK(i < num_values_);
    switch (element_bits_) {
      case 8:
        return As<std::uint8_t>()[i];
      case 16:
        return As<std::uint16_t>()[i];
      case 32:
        return As<std::uint32_t>()[i];
      default:
        return As<std::uint64_t>()[i];
    }
  }

  /// Typed access for the scan/aggregate loops.
  template <typename T>
  const T* As() const {
    return reinterpret_cast<const T*>(data_.data());
  }

  std::size_t MemoryBytes() const { return data_.size() * sizeof(Word); }

  bool storage_ok() const { return !data_.alloc_failed(); }

 private:
  void Set(std::size_t i, std::uint64_t v) {
    switch (element_bits_) {
      case 8:
        MutableAs<std::uint8_t>()[i] = static_cast<std::uint8_t>(v);
        break;
      case 16:
        MutableAs<std::uint16_t>()[i] = static_cast<std::uint16_t>(v);
        break;
      case 32:
        MutableAs<std::uint32_t>()[i] = static_cast<std::uint32_t>(v);
        break;
      default:
        MutableAs<std::uint64_t>()[i] = v;
        break;
    }
  }
  template <typename T>
  T* MutableAs() {
    return reinterpret_cast<T*>(data_.data());
  }

  std::size_t num_values_ = 0;
  int k_ = 0;
  int element_bits_ = 64;
  WordBuffer data_;
};

}  // namespace icp

#endif  // ICP_LAYOUT_PADDED_COLUMN_H_
