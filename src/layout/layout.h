// Shared storage-layout vocabulary (Section II of the paper).
//
// A column of n unsigned k-bit codes is stored in one of three layouts:
//
//  * VBP (vertical bit packing, Fig. 2/4a): bit j of 64 consecutive values
//    forms one word; a *segment* covers 64 values and conceptually owns k
//    words. Bits are clustered into *bit-groups* of size tau; the words of
//    one bit-group across all segments form a contiguous *word-group* region
//    so that early stopping skips whole cache lines.
//
//  * HBP (horizontal bit packing, Fig. 3/4b): values are split into
//    B = ceil(k/tau) bit-groups of exactly tau bits (the code is
//    zero-extended at the top); each bit-group value is stored in an
//    s = tau+1 bit *field* whose top bit is the delimiter. A word holds
//    m = floor(64/s) fields; a *sub-segment* is the B words (one per
//    word-group) holding all bits of m values; a *segment* is s consecutive
//    sub-segments and covers vps = s*m values. Values are packed
//    "column-first": value r of a segment lives in sub-segment r % s,
//    slot r / s, which makes the filter bit vector assembly a shift + OR.
//
//  * Naive: one code per 64-bit word (baseline layout).
//
// The `lanes` option interleaves the words of `lanes` consecutive segments
// so 256-bit SIMD kernels can load the same (bit, sub-segment) word of four
// segments with one aligned load. lanes == 1 is the plain scalar layout.

#ifndef ICP_LAYOUT_LAYOUT_H_
#define ICP_LAYOUT_LAYOUT_H_

namespace icp {

enum class Layout {
  kVbp,
  kHbp,
  kNaive,
  // Smallest-fitting power-of-two element width (8/16/32/64 bits): the
  // mainstream padded baseline (Blink banks / Vectorwise vectors).
  kPadded,
};

/// Human-readable layout name ("VBP", "HBP", "Naive").
const char* LayoutToString(Layout layout);

/// Default VBP bit-group size. The paper adopts the empirically optimal
/// tau = 4 from BitWeaving and confirms it (footnote 4).
int DefaultVbpTau(int k);

/// Default HBP bit-group size: minimizes words-touched-per-value
/// ceil(k/tau) / floor(64/(tau+1)), tie-breaking toward more fields per word
/// (more intra-word parallelism) and then smaller tau (smaller MEDIAN
/// histograms). This stands in for the paper's analytical model in the
/// unavailable technical report [14]; the bench_ablation_tau harness sweeps
/// tau to validate the choice.
int DefaultHbpTau(int k);

}  // namespace icp

#endif  // ICP_LAYOUT_LAYOUT_H_
