// HBP (horizontal bit packing) column storage — paper Section II-B / II-C.
//
// A code is zero-extended to B*tau bits and split into B = ceil(k/tau)
// bit-groups of exactly tau bits (group 0 is the most significant). Each
// bit-group value occupies an s = tau+1 bit field whose top (delimiter) bit
// is 0 in the data; a word holds m = floor(64/s) fields packed from the MSB
// end (low 64 - m*s bits are zero padding). The B words holding all bits of
// the same m values form a *sub-segment*; s consecutive sub-segments form a
// *segment* covering vps = s*m values.
//
// Values are packed column-first (paper Fig. 3a): value r of a segment
// (0-based) lives in sub-segment t = r % s at slot f = r / s. With that
// ordering, the delimiter-bit result mask of sub-segment t, shifted right by
// t, lands exactly on that sub-segment's tuples' positions in the segment's
// filter word, and conversely the per-sub-segment delimiter filter is
// M_d = (F << t) & DelimiterMask (paper's GET-VALUE-FILTER step 1).
//
// Like VBP, the words of bit-group g across all (segment, sub-segment)
// pairs are stored in one contiguous word-group region for early stopping.

#ifndef ICP_LAYOUT_HBP_COLUMN_H_
#define ICP_LAYOUT_HBP_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "layout/layout.h"
#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/check.h"

namespace icp {

class HbpColumn {
 public:
  struct Options {
    /// Bit-group size; 0 selects DefaultHbpTau(k).
    int tau = 0;
    /// Segment interleaving factor (1 = scalar, 4 = AVX2 lanes).
    int lanes = 1;
  };

  HbpColumn() = default;

  /// Packs `n` codes, each < 2^k, into HBP form.
  static HbpColumn Pack(const std::uint64_t* codes, std::size_t n, int k,
                        Options options);
  static HbpColumn Pack(const std::uint64_t* codes, std::size_t n, int k) {
    return Pack(codes, n, k, Options());
  }
  static HbpColumn Pack(const std::vector<std::uint64_t>& codes, int k,
                        Options options) {
    return Pack(codes.data(), codes.size(), k, options);
  }
  static HbpColumn Pack(const std::vector<std::uint64_t>& codes, int k) {
    return Pack(codes.data(), codes.size(), k, Options());
  }

  std::size_t num_values() const { return num_values_; }
  int bit_width() const { return k_; }
  int tau() const { return tau_; }
  int lanes() const { return lanes_; }
  int num_groups() const { return num_groups_; }

  /// Field width s = tau + 1 (value bits + delimiter).
  int field_width() const { return tau_ + 1; }
  /// Fields (slots) per word, m.
  int fields_per_word() const { return fields_per_word_; }
  /// Sub-segments per segment (equals the field width s).
  int sub_segments_per_segment() const { return field_width(); }
  /// Values covered by one segment, vps = s * m.
  int values_per_segment() const { return field_width() * fields_per_word_; }

  std::size_t num_segments() const { return num_segments_; }

  const Word* GroupData(int g) const { return groups_[g].data(); }
  std::size_t GroupWordCount(int g) const { return groups_[g].size(); }

  /// Index within GroupData(g) of sub-segment `t` of segment `seg`.
  /// (Identical for every group g — the parameter documents intent and keeps
  /// the call shape symmetric with VbpColumn::WordIndex.)
  std::size_t WordIndex([[maybe_unused]] int g, std::size_t seg, int t) const {
    ICP_DCHECK(t >= 0 && t < sub_segments_per_segment());
    return ((seg / lanes_) * field_width() + t) * lanes_ + (seg % lanes_);
  }

  Word WordAt(int g, std::size_t seg, int t) const {
    return groups_[g][WordIndex(g, seg, t)];
  }

  /// Left-shift that returns bit-group g to its numeric position when
  /// reconstructing: v = sum_g group_value(g) << GroupShift(g).
  int GroupShift(int g) const { return (num_groups_ - 1 - g) * tau_; }

  /// Reconstructs value i to plain form (slow; tests and NBP baseline).
  std::uint64_t GetValue(std::size_t i) const;

  /// Total packed size in bytes.
  std::size_t MemoryBytes() const;

  /// False when any word-group allocation failed (see
  /// WordBuffer::alloc_failed); the column is then empty and unusable.
  bool storage_ok() const {
    for (const WordBuffer& group : groups_) {
      if (group.alloc_failed()) return false;
    }
    return true;
  }

 private:
  std::size_t num_values_ = 0;
  std::size_t num_segments_ = 0;
  int k_ = 0;
  int tau_ = 0;
  int num_groups_ = 0;
  int fields_per_word_ = 0;
  int lanes_ = 1;
  std::vector<WordBuffer> groups_;
};

}  // namespace icp

#endif  // ICP_LAYOUT_HBP_COLUMN_H_
