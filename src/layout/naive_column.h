// Naive column storage: one k-bit code zero-padded into each 64-bit word
// (the underutilized-register baseline the paper's introduction motivates).
// Used as the reference implementation in tests and as an ablation baseline.

#ifndef ICP_LAYOUT_NAIVE_COLUMN_H_
#define ICP_LAYOUT_NAIVE_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/check.h"

namespace icp {

class NaiveColumn {
 public:
  NaiveColumn() = default;

  static NaiveColumn Pack(const std::uint64_t* codes, std::size_t n, int k) {
    ICP_CHECK(k >= 1 && k <= kWordBits);
    NaiveColumn col;
    col.k_ = k;
    col.values_ = WordBuffer(n == 0 ? 1 : n);
    col.num_values_ = n;
    if (col.values_.alloc_failed()) return col;
    for (std::size_t i = 0; i < n; ++i) {
      ICP_DCHECK(k == kWordBits || codes[i] < (std::uint64_t{1} << k));
      col.values_[i] = codes[i];
    }
    return col;
  }
  static NaiveColumn Pack(const std::vector<std::uint64_t>& codes, int k) {
    return Pack(codes.data(), codes.size(), k);
  }

  std::size_t num_values() const { return num_values_; }
  int bit_width() const { return k_; }

  std::uint64_t GetValue(std::size_t i) const {
    ICP_DCHECK(i < num_values_);
    return values_[i];
  }
  const Word* data() const { return values_.data(); }

  std::size_t MemoryBytes() const { return values_.size() * sizeof(Word); }

  bool storage_ok() const { return !values_.alloc_failed(); }

 private:
  std::size_t num_values_ = 0;
  int k_ = 0;
  WordBuffer values_;
};

}  // namespace icp

#endif  // ICP_LAYOUT_NAIVE_COLUMN_H_
