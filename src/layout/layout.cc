#include "layout/layout.h"

#include <algorithm>

#include "util/bits.h"
#include "util/check.h"

namespace icp {

const char* LayoutToString(Layout layout) {
  switch (layout) {
    case Layout::kVbp:
      return "VBP";
    case Layout::kHbp:
      return "HBP";
    case Layout::kNaive:
      return "Naive";
    case Layout::kPadded:
      return "Padded";
  }
  return "Unknown";
}

int DefaultVbpTau(int k) {
  ICP_CHECK_GE(k, 1);
  return std::min(k, 4);
}

int DefaultHbpTau(int k) {
  ICP_CHECK_GE(k, 1);
  ICP_CHECK_LE(k, 63);
  // Keep 2^tau histogram bins (MEDIAN, Alg. 6) within L1/L2: tau <= 16.
  const int max_tau = std::min(k, 16);
  int best_tau = 1;
  double best_cost = 1e30;
  int best_groups = 1 << 30;
  for (int tau = 1; tau <= max_tau; ++tau) {
    const int s = tau + 1;
    const int m = kWordBits / s;
    if (m == 0) continue;
    const int groups = static_cast<int>(CeilDiv(k, tau));
    // Words touched per value for a full (no early stop) pass; ties broken
    // toward fewer bit-groups (fewer per-word-group mask/cascade steps —
    // validated empirically by bench_ablation_tau).
    const double cost = static_cast<double>(groups) / m;
    const bool better =
        cost < best_cost - 1e-12 ||
        (cost < best_cost + 1e-12 && groups < best_groups);
    if (better) {
      best_cost = cost;
      best_tau = tau;
      best_groups = groups;
    }
  }
  return best_tau;
}

}  // namespace icp
