// Comparison operators supported by the bit-parallel scans of [2]
// (Li & Patel, BitWeaving, SIGMOD 2013), which this library implements as
// the substrate for the paper's aggregation algorithms.

#ifndef ICP_SCAN_PREDICATE_H_
#define ICP_SCAN_PREDICATE_H_

#include <cstdint>

#include "obs/obs.h"

namespace icp {

enum class CompareOp {
  kEq,       // v == c1
  kNe,       // v != c1
  kLt,       // v <  c1
  kLe,       // v <= c1
  kGt,       // v >  c1
  kGe,       // v >= c1
  kBetween,  // c1 <= v <= c2 (inclusive)
};

/// Human-readable operator name ("==", "BETWEEN", ...).
const char* CompareOpToString(CompareOp op);

/// Scalar reference semantics, used by the naive scanner and by tests.
inline bool EvalCompare(std::uint64_t v, CompareOp op, std::uint64_t c1,
                        std::uint64_t c2 = 0) {
  switch (op) {
    case CompareOp::kEq:
      return v == c1;
    case CompareOp::kNe:
      return v != c1;
    case CompareOp::kLt:
      return v < c1;
    case CompareOp::kLe:
      return v <= c1;
    case CompareOp::kGt:
      return v > c1;
    case CompareOp::kGe:
      return v >= c1;
    case CompareOp::kBetween:
      return c1 <= v && v <= c2;
  }
  return false;
}

/// Normalizes scan constants against the k-bit code domain. Returns true if
/// the scan is degenerate (uniformly all-pass or none-pass, reported via
/// `*all_pass`) because a constant lies outside [0, 2^k). For BETWEEN, `*c2`
/// is clamped to the domain maximum when the scan is not degenerate.
bool ScanIsDegenerate(int k, CompareOp op, std::uint64_t c1, std::uint64_t* c2,
                      bool* all_pass);

/// Statistics a scan can optionally report (used by the early-stopping and
/// word-group ablation benchmarks).
struct ScanStats {
  std::uint64_t words_examined = 0;
  std::uint64_t segments_processed = 0;
  std::uint64_t segments_early_stopped = 0;
};

/// Reports an analytic scan-cost model into `stats` and the process-wide
/// counters (the SIMD scan kernels are uninstrumented inside; words is the
/// layout's word count with no early stopping, and early_stopped stays 0 —
/// see QueryStats::scan_leaves_modeled and docs/observability.md). Only
/// fires when the caller collects ScanStats, like the instrumented paths.
inline void RecordModeledScan(std::uint64_t segments, std::uint64_t words,
                              ScanStats* stats) {
  if (stats == nullptr) return;
  stats->words_examined += words;
  stats->segments_processed += segments;
  ICP_OBS_ADD(ScanWordsExamined, words);
  ICP_OBS_ADD(ScanSegmentsProcessed, segments);
}

}  // namespace icp

#endif  // ICP_SCAN_PREDICATE_H_
