// Bit-parallel filter scan over HBP columns (the substrate from [2]).
//
// Per-word field comparisons use the Lamport delimiter-borrow trick: with
// delimiter mask Md and both operands' delimiter bits 0,
//     GE(X, C) = ((X | Md) - C) & Md
// has the delimiter bit of each field set iff that field of X is >= the
// corresponding field of C (the borrow of the per-field subtraction is
// absorbed by the delimiter, never crossing into the next field). From it:
//     LT = GE ^ Md,  LE(X, C) = GE(C, X),  GT = LE ^ Md,  EQ = GE & LE.
// With bit-groups, the comparison cascades across word-groups from the most
// significant group down, maintaining per-sub-segment (eq, lt, gt) masks and
// early-stopping when every field is decided.
//
// The segment's filter word is assembled by OR-ing each sub-segment's
// delimiter-space result shifted right by its sub-segment index t
// (column-first packing makes the shift amounts line up; paper Fig. 3b).

#ifndef ICP_SCAN_HBP_SCANNER_H_
#define ICP_SCAN_HBP_SCANNER_H_

#include <cstdint>

#include "bitvector/filter_bit_vector.h"
#include "layout/hbp_column.h"
#include "scan/predicate.h"
#include "util/cancellation.h"

namespace icp {

class HbpScanner {
 public:
  /// Evaluates `column <op> c1` (or BETWEEN [c1, c2]) and returns the filter
  /// bit vector (values_per_segment == column.values_per_segment()).
  /// Works on lanes == 1 columns; use the simd kernels for lanes == 4.
  /// The full-column wrappers (Scan / ScanAnd) check the optional
  /// CancelContext every kCancelBatchSegments segments and return a partial
  /// filter once it fires; the engine discards it.
  static FilterBitVector Scan(const HbpColumn& column, CompareOp op,
                              std::uint64_t c1, std::uint64_t c2 = 0,
                              ScanStats* stats = nullptr,
                              const CancelContext* cancel = nullptr);

  /// Scan restricted to [seg_begin, seg_end) segments (multi-threading).
  static void ScanRange(const HbpColumn& column, CompareOp op,
                        std::uint64_t c1, std::uint64_t c2,
                        std::size_t seg_begin, std::size_t seg_end,
                        FilterBitVector* out, ScanStats* stats = nullptr);

  /// Progressive conjunctive scan (Section II-E): returns `prior AND
  /// (column <op> c)`, skipping segments `prior` already emptied.
  static FilterBitVector ScanAnd(const HbpColumn& column, CompareOp op,
                                 std::uint64_t c1, std::uint64_t c2,
                                 const FilterBitVector& prior,
                                 ScanStats* stats = nullptr,
                                 const CancelContext* cancel = nullptr);
};

namespace hbp {

/// Per-field X >= C in delimiter space. Both operands must have all
/// delimiter bits clear. Exposed for reuse by the aggregation kernels
/// (SUB-SLOTMIN) and tests.
inline Word FieldGe(Word x, Word c, Word delimiter_mask) {
  return ((x | delimiter_mask) - c) & delimiter_mask;
}

}  // namespace hbp

}  // namespace icp

#endif  // ICP_SCAN_HBP_SCANNER_H_
