#include "scan/hbp_scanner.h"

#include <array>

#include "obs/obs.h"
#include "simd/dispatch.h"
#include "util/check.h"

namespace icp {
namespace {

static_assert(static_cast<int>(CompareOp::kEq) == 0 &&
                  static_cast<int>(CompareOp::kNe) == 1 &&
                  static_cast<int>(CompareOp::kLt) == 2 &&
                  static_cast<int>(CompareOp::kLe) == 3 &&
                  static_cast<int>(CompareOp::kGt) == 4 &&
                  static_cast<int>(CompareOp::kGe) == 5 &&
                  static_cast<int>(CompareOp::kBetween) == 6,
              "kern::hbp_scan op encoding out of sync with CompareOp");

// Packed per-group constants (the paper's word W_c, one per word-group).
void BuildPackedConstants(const HbpColumn& column, std::uint64_t c1,
                          std::uint64_t c2, Word* c1_packed,
                          Word* c2_packed) {
  const int s = column.field_width();
  const Word group_mask = LowMask(column.tau());
  for (int g = 0; g < column.num_groups(); ++g) {
    const int shift = column.GroupShift(g);
    c1_packed[g] = RepeatField((c1 >> shift) & group_mask, s);
    c2_packed[g] = RepeatField((c2 >> shift) & group_mask, s);
  }
}

// Also feeds the process-wide scan.* counters; see the VBP twin for the
// batching rationale.
void MergeScanCounters(const kern::ScanCounters& local, ScanStats* stats) {
  if (stats == nullptr) return;
  stats->words_examined += local.words_examined;
  stats->segments_processed += local.segments_processed;
  stats->segments_early_stopped += local.segments_early_stopped;
  ICP_OBS_ADD(ScanWordsExamined, local.words_examined);
  ICP_OBS_ADD(ScanSegmentsProcessed, local.segments_processed);
  ICP_OBS_ADD(ScanSegmentsEarlyStopped, local.segments_early_stopped);
}

}  // namespace

FilterBitVector HbpScanner::Scan(const HbpColumn& column, CompareOp op,
                                 std::uint64_t c1, std::uint64_t c2,
                                 ScanStats* stats,
                                 const CancelContext* cancel) {
  FilterBitVector out(column.num_values(), column.values_per_segment());
  ForEachCancellableBatch(cancel, 0, out.num_segments(),
                          [&](std::size_t b, std::size_t e) {
                            ScanRange(column, op, c1, c2, b, e, &out, stats);
                          });
  return out;
}

void HbpScanner::ScanRange(const HbpColumn& column, CompareOp op,
                           std::uint64_t c1, std::uint64_t c2,
                           std::size_t seg_begin, std::size_t seg_end,
                           FilterBitVector* out, ScanStats* stats) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_EQ(out->values_per_segment(), column.values_per_segment());
  ICP_CHECK_LE(seg_end, out->num_segments());
  const int k = column.bit_width();
  const int s = column.field_width();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    // cancellation: exempt — ScanRange covers one cancel batch; the
    // caller (ForEachCancellableBatch / per-morsel driver) polls
    // between batches.
    for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
      out->SetSegmentWord(seg, all ? out->ValidMask(seg) : 0);
    }
    return;
  }

  std::array<Word, kWordBits> c1_packed{};
  std::array<Word, kWordBits> c2_packed{};
  BuildPackedConstants(column, c1, c2, c1_packed.data(), c2_packed.data());

  const int num_groups = column.num_groups();
  const Word* bases[kWordBits];
  for (int g = 0; g < num_groups; ++g) {
    bases[g] = column.GroupData(g) + seg_begin * s;
  }

  kern::ScanCounters local;
  kern::Ops().hbp_scan(bases, num_groups, s, static_cast<int>(op),
                       c1_packed.data(), c2_packed.data(), DelimiterMask(s),
                       seg_end - seg_begin, /*prior=*/nullptr,
                       out->words() + seg_begin,
                       stats != nullptr ? &local : nullptr);
  // cancellation: exempt — ScanRange covers one cancel batch; the
  // caller (ForEachCancellableBatch / per-morsel driver) polls
  // between batches.
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    out->words()[seg] &= out->ValidMask(seg);
  }
  MergeScanCounters(local, stats);
}

FilterBitVector HbpScanner::ScanAnd(const HbpColumn& column, CompareOp op,
                                    std::uint64_t c1, std::uint64_t c2,
                                    const FilterBitVector& prior,
                                    ScanStats* stats,
                                    const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_EQ(prior.num_values(), column.num_values());
  ICP_CHECK_EQ(prior.values_per_segment(), column.values_per_segment());
  FilterBitVector out(column.num_values(), column.values_per_segment());
  const int k = column.bit_width();
  const int s = column.field_width();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    if (all) out = prior;
    return out;
  }
  std::array<Word, kWordBits> c1_packed{};
  std::array<Word, kWordBits> c2_packed{};
  BuildPackedConstants(column, c1, c2, c1_packed.data(), c2_packed.data());

  const int num_groups = column.num_groups();
  const kern::KernelOps& ops = kern::Ops();
  kern::ScanCounters local;
  ForEachCancellableBatch(
      cancel, 0, out.num_segments(), [&](std::size_t lo, std::size_t hi) {
        const Word* bases[kWordBits];
        for (int g = 0; g < num_groups; ++g) {
          bases[g] = column.GroupData(g) + lo * s;
        }
        // prior bits are a subset of the valid mask, so `result & prior`
        // needs no further masking.
        ops.hbp_scan(bases, num_groups, s, static_cast<int>(op),
                     c1_packed.data(), c2_packed.data(), DelimiterMask(s),
                     hi - lo, prior.words() + lo, out.words() + lo,
                     stats != nullptr ? &local : nullptr);
      });
  MergeScanCounters(local, stats);
  return out;
}

}  // namespace icp
