#include "scan/hbp_scanner.h"

#include <array>

#include "util/check.h"

namespace icp {
namespace {

// Per-sub-segment comparison state in delimiter space.
struct FieldCompareState {
  Word eq;
  Word lt = 0;
  Word gt = 0;

  FieldCompareState() : eq(0) {}
  explicit FieldCompareState(Word delimiter_mask) : eq(delimiter_mask) {}

  // One most-significant-group-first cascade step: `x` is the sub-segment's
  // word in the current word-group, `c` the constant's packed group value.
  void Step(Word x, Word c, Word md) {
    const Word ge = hbp::FieldGe(x, c, md);
    const Word le = hbp::FieldGe(c, x, md);
    lt |= eq & (ge ^ md);
    gt |= eq & (le ^ md);
    eq &= ge & le;
  }
};

Word ResultWord(CompareOp op, Word md, const FieldCompareState& a,
                const FieldCompareState& b) {
  switch (op) {
    case CompareOp::kEq:
      return a.eq;
    case CompareOp::kNe:
      return md ^ a.eq;
    case CompareOp::kLt:
      return a.lt;
    case CompareOp::kLe:
      return a.lt | a.eq;
    case CompareOp::kGt:
      return a.gt;
    case CompareOp::kGe:
      return a.gt | a.eq;
    case CompareOp::kBetween:
      return (a.gt | a.eq) & (b.lt | b.eq);
  }
  return 0;
}

// Evaluates one segment: runs the cascade for all sub-segments and returns
// the assembled (unmasked) filter word. `a`/`b` are scratch state arrays of
// at least `s` entries.
Word CompareSegment(const HbpColumn& column, std::size_t seg, CompareOp op,
                    const Word* c1_packed, const Word* c2_packed, bool dual,
                    Word md, FieldCompareState* a, FieldCompareState* b,
                    ScanStats* stats) {
  const int s = column.field_width();
  const int num_groups = column.num_groups();
  for (int t = 0; t < s; ++t) {
    a[t] = FieldCompareState(md);
    b[t] = FieldCompareState(md);
  }
  ++stats->segments_processed;
  for (int g = 0; g < num_groups; ++g) {
    const Word* base = column.GroupData(g) + seg * s;
    Word any_eq = 0;
    for (int t = 0; t < s; ++t) {
      const Word x = base[t];
      a[t].Step(x, c1_packed[g], md);
      any_eq |= a[t].eq;
      if (dual) {
        b[t].Step(x, c2_packed[g], md);
        any_eq |= b[t].eq;
      }
    }
    stats->words_examined += s;
    if (any_eq == 0 && g + 1 < num_groups) {
      ++stats->segments_early_stopped;
      break;
    }
  }
  Word filter = 0;
  for (int t = 0; t < s; ++t) {
    filter |= ResultWord(op, md, a[t], b[t]) >> t;
  }
  return filter;
}

}  // namespace

FilterBitVector HbpScanner::Scan(const HbpColumn& column, CompareOp op,
                                 std::uint64_t c1, std::uint64_t c2,
                                 ScanStats* stats,
                                 const CancelContext* cancel) {
  FilterBitVector out(column.num_values(), column.values_per_segment());
  ForEachCancellableBatch(cancel, 0, out.num_segments(),
                          [&](std::size_t b, std::size_t e) {
                            ScanRange(column, op, c1, c2, b, e, &out, stats);
                          });
  return out;
}

void HbpScanner::ScanRange(const HbpColumn& column, CompareOp op,
                           std::uint64_t c1, std::uint64_t c2,
                           std::size_t seg_begin, std::size_t seg_end,
                           FilterBitVector* out, ScanStats* stats) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_EQ(out->values_per_segment(), column.values_per_segment());
  ICP_CHECK_LE(seg_end, out->num_segments());
  const int k = column.bit_width();
  const int tau = column.tau();
  const int s = column.field_width();
  const int num_groups = column.num_groups();
  const Word md = DelimiterMask(s);

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
      out->SetSegmentWord(seg, all ? out->ValidMask(seg) : 0);
    }
    return;
  }

  const bool dual = op == CompareOp::kBetween;
  // Packed per-group constants (the paper's word W_c, one per word-group).
  std::array<Word, kWordBits> c1_packed{};
  std::array<Word, kWordBits> c2_packed{};
  const Word group_mask = LowMask(tau);
  for (int g = 0; g < num_groups; ++g) {
    const int shift = column.GroupShift(g);
    c1_packed[g] = RepeatField((c1 >> shift) & group_mask, s);
    c2_packed[g] = RepeatField((c2 >> shift) & group_mask, s);
  }

  // Per-sub-segment state (s <= 64).
  std::array<FieldCompareState, kWordBits> a{};
  std::array<FieldCompareState, kWordBits> b{};

  ScanStats local;
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    const Word filter =
        CompareSegment(column, seg, op, c1_packed.data(), c2_packed.data(),
                       dual, md, a.data(), b.data(), &local);
    out->SetSegmentWord(seg, filter & out->ValidMask(seg));
  }
  if (stats != nullptr) {
    stats->words_examined += local.words_examined;
    stats->segments_processed += local.segments_processed;
    stats->segments_early_stopped += local.segments_early_stopped;
  }
}

FilterBitVector HbpScanner::ScanAnd(const HbpColumn& column, CompareOp op,
                                    std::uint64_t c1, std::uint64_t c2,
                                    const FilterBitVector& prior,
                                    ScanStats* stats,
                                    const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_EQ(prior.num_values(), column.num_values());
  ICP_CHECK_EQ(prior.values_per_segment(), column.values_per_segment());
  FilterBitVector out(column.num_values(), column.values_per_segment());
  const int k = column.bit_width();
  const int tau = column.tau();
  const int s = column.field_width();
  const Word md = DelimiterMask(s);

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    if (all) out = prior;
    return out;
  }
  const bool dual = op == CompareOp::kBetween;
  const Word group_mask = LowMask(tau);
  std::array<Word, kWordBits> c1_packed{};
  std::array<Word, kWordBits> c2_packed{};
  for (int g = 0; g < column.num_groups(); ++g) {
    const int shift = column.GroupShift(g);
    c1_packed[g] = RepeatField((c1 >> shift) & group_mask, s);
    c2_packed[g] = RepeatField((c2 >> shift) & group_mask, s);
  }
  std::array<FieldCompareState, kWordBits> a{};
  std::array<FieldCompareState, kWordBits> b{};

  ScanStats local;
  ForEachCancellableBatch(
      cancel, 0, out.num_segments(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t seg = lo; seg < hi; ++seg) {
          const Word p = prior.SegmentWord(seg);
          if (p == 0) continue;  // segment already empty: skip its words
          const Word filter = CompareSegment(column, seg, op,
                                             c1_packed.data(),
                                             c2_packed.data(), dual, md,
                                             a.data(), b.data(), &local);
          out.SetSegmentWord(seg, filter & p);
        }
      });
  if (stats != nullptr) {
    stats->words_examined += local.words_examined;
    stats->segments_processed += local.segments_processed;
    stats->segments_early_stopped += local.segments_early_stopped;
  }
  return out;
}

}  // namespace icp
