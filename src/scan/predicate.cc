#include "scan/predicate.h"

namespace icp {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "BETWEEN";
  }
  return "?";
}

bool ScanIsDegenerate(int k, CompareOp op, std::uint64_t c1, std::uint64_t* c2,
                      bool* all_pass) {
  if (k >= 64) return false;
  const std::uint64_t limit = std::uint64_t{1} << k;
  switch (op) {
    case CompareOp::kEq:
      if (c1 >= limit) return *all_pass = false, true;
      return false;
    case CompareOp::kNe:
      if (c1 >= limit) return *all_pass = true, true;
      return false;
    case CompareOp::kLt:
    case CompareOp::kLe:
      if (c1 >= limit) return *all_pass = true, true;
      return false;
    case CompareOp::kGt:
    case CompareOp::kGe:
      if (c1 >= limit) return *all_pass = false, true;
      return false;
    case CompareOp::kBetween:
      if (c1 >= limit || c1 > *c2) return *all_pass = false, true;
      if (*c2 >= limit) *c2 = limit - 1;
      return false;
  }
  return false;
}

}  // namespace icp
