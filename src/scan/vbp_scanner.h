// Bit-parallel filter scan over VBP columns (the substrate from [2]).
//
// For every segment the scan walks the value bits from the most significant
// bit down, maintaining three 64-bit masks over the segment's slots:
//   eq — slots whose prefix still equals the constant's prefix,
//   lt — slots already decided to be less than the constant,
//   gt — slots already decided to be greater.
// One step per bit j (C_j = all-ones iff the constant's bit j is 1):
//   lt |= eq & ~X_j & C_j;   gt |= eq & X_j & ~C_j;   eq &= ~(X_j ^ C_j);
// The walk early-stops once every slot is decided (eq == 0), skipping the
// remaining word-groups' cache lines (Section II-C).

#ifndef ICP_SCAN_VBP_SCANNER_H_
#define ICP_SCAN_VBP_SCANNER_H_

#include <cstdint>

#include "bitvector/filter_bit_vector.h"
#include "layout/vbp_column.h"
#include "scan/predicate.h"
#include "util/cancellation.h"

namespace icp {

class VbpScanner {
 public:
  /// Evaluates `column <op> c1` (or BETWEEN [c1, c2]) and returns the filter
  /// bit vector. Constants are codes (already encoded k-bit values); they
  /// may exceed the column's value range, which simply saturates the result.
  /// Works on lanes == 1 columns; use the simd kernels for lanes == 4.
  /// The full-column wrappers (Scan / ScanAnd) check the optional
  /// CancelContext every kCancelBatchSegments segments and return a partial
  /// filter once it fires; the engine discards it.
  static FilterBitVector Scan(const VbpColumn& column, CompareOp op,
                              std::uint64_t c1, std::uint64_t c2 = 0,
                              ScanStats* stats = nullptr,
                              const CancelContext* cancel = nullptr);

  /// Scan restricted to a [seg_begin, seg_end) segment range, writing into
  /// `out` (used by the multi-threaded driver). `out` must already have the
  /// column's shape.
  static void ScanRange(const VbpColumn& column, CompareOp op,
                        std::uint64_t c1, std::uint64_t c2,
                        std::size_t seg_begin, std::size_t seg_end,
                        FilterBitVector* out, ScanStats* stats = nullptr);

  /// Progressive conjunctive scan (Section II-E): returns `prior AND
  /// (column <op> c)`, skipping every segment `prior` has already emptied —
  /// the words of those segments are never touched. `prior` must have this
  /// column's segment shape.
  static FilterBitVector ScanAnd(const VbpColumn& column, CompareOp op,
                                 std::uint64_t c1, std::uint64_t c2,
                                 const FilterBitVector& prior,
                                 ScanStats* stats = nullptr,
                                 const CancelContext* cancel = nullptr);
};

}  // namespace icp

#endif  // ICP_SCAN_VBP_SCANNER_H_
