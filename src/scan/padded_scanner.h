// Filter scan over the padded layout: a typed comparison loop per element
// width, written so the compiler auto-vectorizes it (the industrial
// baseline the padded layout exists to represent). Produces the same
// MSB-first 64-values-per-segment filter words as the VBP scan.

#ifndef ICP_SCAN_PADDED_SCANNER_H_
#define ICP_SCAN_PADDED_SCANNER_H_

#include <cstdint>

#include "bitvector/filter_bit_vector.h"
#include "layout/padded_column.h"
#include "scan/predicate.h"
#include "util/cancellation.h"

namespace icp {

class PaddedScanner {
 public:
  /// With an active `cancel`, polls it per segment batch and returns the
  /// partial result early (the engine discards it).
  static FilterBitVector Scan(const PaddedColumn& column, CompareOp op,
                              std::uint64_t c1, std::uint64_t c2 = 0,
                              const CancelContext* cancel = nullptr) {
    FilterBitVector out(column.num_values(), kWordBits);
    bool all = false;
    if (ScanIsDegenerate(column.bit_width(), op, c1, &c2, &all)) {
      if (all) out.SetAll();
      return out;
    }
    switch (column.element_bits()) {
      case 8:
        ScanTyped<std::uint8_t>(column, op, c1, c2, &out, cancel);
        break;
      case 16:
        ScanTyped<std::uint16_t>(column, op, c1, c2, &out, cancel);
        break;
      case 32:
        ScanTyped<std::uint32_t>(column, op, c1, c2, &out, cancel);
        break;
      default:
        ScanTyped<std::uint64_t>(column, op, c1, c2, &out, cancel);
        break;
    }
    return out;
  }

 private:
  template <typename T>
  static void ScanTyped(const PaddedColumn& column, CompareOp op,
                        std::uint64_t c1, std::uint64_t c2,
                        FilterBitVector* out, const CancelContext* cancel) {
    const T* data = column.As<T>();
    const std::size_t n = column.num_values();
    const T lo = static_cast<T>(c1);
    const T hi = static_cast<T>(c2);
    Word* words = out->words();
    const bool cancellable = cancel != nullptr && cancel->active();
    for (std::size_t seg = 0; seg < out->num_segments(); ++seg) {
      // Poll at cancel-batch boundaries (same granularity as
      // ForEachCancellableBatch); the engine discards the partial result.
      if (cancellable && seg % kCancelBatchSegments == 0 &&
          cancel->ShouldStop()) {
        return;
      }
      const std::size_t begin = seg * kWordBits;
      const std::size_t end = begin + kWordBits < n ? begin + kWordBits : n;
      Word w = 0;
      switch (op) {
        case CompareOp::kEq:
          for (std::size_t i = begin; i < end; ++i) {
            w |= static_cast<Word>(data[i] == lo) << (63 - (i - begin));
          }
          break;
        case CompareOp::kNe:
          for (std::size_t i = begin; i < end; ++i) {
            w |= static_cast<Word>(data[i] != lo) << (63 - (i - begin));
          }
          break;
        case CompareOp::kLt:
          for (std::size_t i = begin; i < end; ++i) {
            w |= static_cast<Word>(data[i] < lo) << (63 - (i - begin));
          }
          break;
        case CompareOp::kLe:
          for (std::size_t i = begin; i < end; ++i) {
            w |= static_cast<Word>(data[i] <= lo) << (63 - (i - begin));
          }
          break;
        case CompareOp::kGt:
          for (std::size_t i = begin; i < end; ++i) {
            w |= static_cast<Word>(data[i] > lo) << (63 - (i - begin));
          }
          break;
        case CompareOp::kGe:
          for (std::size_t i = begin; i < end; ++i) {
            w |= static_cast<Word>(data[i] >= lo) << (63 - (i - begin));
          }
          break;
        case CompareOp::kBetween:
          for (std::size_t i = begin; i < end; ++i) {
            w |= static_cast<Word>(data[i] >= lo && data[i] <= hi)
                 << (63 - (i - begin));
          }
          break;
      }
      words[seg] = w;
    }
  }
};

}  // namespace icp

#endif  // ICP_SCAN_PADDED_SCANNER_H_
