// Scalar reference scan over the naive layout: evaluates the predicate one
// value at a time. Serves as the correctness oracle for the bit-parallel
// scanners and as the no-intra-cycle-parallelism baseline in ablations.

#ifndef ICP_SCAN_NAIVE_SCANNER_H_
#define ICP_SCAN_NAIVE_SCANNER_H_

#include <cstdint>

#include "bitvector/filter_bit_vector.h"
#include "layout/naive_column.h"
#include "scan/predicate.h"

namespace icp {

class NaiveScanner {
 public:
  /// Evaluates `column <op> c1` (or BETWEEN [c1, c2]); the result uses
  /// `values_per_segment` so it can be compared/combined with a bit-parallel
  /// scan's output directly.
  static FilterBitVector Scan(const NaiveColumn& column, CompareOp op,
                              std::uint64_t c1, std::uint64_t c2 = 0,
                              int values_per_segment = kWordBits) {
    FilterBitVector out(column.num_values(), values_per_segment);
    for (std::size_t i = 0; i < column.num_values(); ++i) {
      if (EvalCompare(column.GetValue(i), op, c1, c2)) out.SetBit(i, true);
    }
    return out;
  }
};

}  // namespace icp

#endif  // ICP_SCAN_NAIVE_SCANNER_H_
