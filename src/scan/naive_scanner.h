// Scalar reference scan over the naive layout: evaluates the predicate one
// value at a time. Serves as the correctness oracle for the bit-parallel
// scanners and as the no-intra-cycle-parallelism baseline in ablations.

#ifndef ICP_SCAN_NAIVE_SCANNER_H_
#define ICP_SCAN_NAIVE_SCANNER_H_

#include <algorithm>
#include <cstdint>

#include "bitvector/filter_bit_vector.h"
#include "layout/naive_column.h"
#include "scan/predicate.h"
#include "util/cancellation.h"

namespace icp {

class NaiveScanner {
 public:
  /// Evaluates `column <op> c1` (or BETWEEN [c1, c2]); the result uses
  /// `values_per_segment` so it can be compared/combined with a bit-parallel
  /// scan's output directly. With an active `cancel`, polls it per segment
  /// batch and returns the partial result early (the engine discards it).
  static FilterBitVector Scan(const NaiveColumn& column, CompareOp op,
                              std::uint64_t c1, std::uint64_t c2 = 0,
                              int values_per_segment = kWordBits,
                              const CancelContext* cancel = nullptr) {
    FilterBitVector out(column.num_values(), values_per_segment);
    const std::size_t vps = static_cast<std::size_t>(values_per_segment);
    ForEachCancellableBatch(
        cancel, 0, out.num_segments(),
        [&](std::size_t seg_begin, std::size_t seg_end) {
          const std::size_t lo = seg_begin * vps;
          const std::size_t hi = std::min(column.num_values(), seg_end * vps);
          for (std::size_t i = lo; i < hi; ++i) {
            if (EvalCompare(column.GetValue(i), op, c1, c2)) {
              out.SetBit(i, true);
            }
          }
        });
    return out;
  }
};

}  // namespace icp

#endif  // ICP_SCAN_NAIVE_SCANNER_H_
