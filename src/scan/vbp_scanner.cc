#include "scan/vbp_scanner.h"

#include <array>

#include "util/check.h"

namespace icp {
namespace {

// Per-segment comparison state against one constant.
struct CompareState {
  Word eq = ~Word{0};
  Word lt = 0;
  Word gt = 0;

  // One MSB-to-LSB step: `x` is the data word for the current bit, `c_bit`
  // the constant's bit.
  void Step(Word x, bool c_bit) {
    if (c_bit) {
      lt |= eq & ~x;
      eq &= x;
    } else {
      gt |= eq & x;
      eq &= ~x;
    }
  }
};

// Result word for a fully-compared segment.
Word ResultWord(CompareOp op, const CompareState& a, const CompareState& b) {
  switch (op) {
    case CompareOp::kEq:
      return a.eq;
    case CompareOp::kNe:
      return ~a.eq;
    case CompareOp::kLt:
      return a.lt;
    case CompareOp::kLe:
      return a.lt | a.eq;
    case CompareOp::kGt:
      return a.gt;
    case CompareOp::kGe:
      return a.gt | a.eq;
    case CompareOp::kBetween:
      // v >= c1 && v <= c2.
      return (a.gt | a.eq) & (b.lt | b.eq);
  }
  return 0;
}

// Evaluates one segment, returning the (unmasked) result word.
Word CompareSegment(const VbpColumn& column, std::size_t seg, CompareOp op,
                    const bool* c1_bits, const bool* c2_bits, bool dual,
                    ScanStats* stats) {
  const int tau = column.tau();
  const int num_groups = column.num_groups();
  CompareState a;
  CompareState b;
  ++stats->segments_processed;
  for (int g = 0; g < num_groups; ++g) {
    const int width = column.GroupWidth(g);
    const Word* base = column.GroupData(g) + seg * width;
    for (int j = 0; j < width; ++j) {
      const Word x = base[j];
      const int jb = g * tau + j;
      a.Step(x, c1_bits[jb]);
      if (dual) b.Step(x, c2_bits[jb]);
    }
    stats->words_examined += width;
    if ((a.eq | (dual ? b.eq : Word{0})) == 0 && g + 1 < num_groups) {
      ++stats->segments_early_stopped;
      break;
    }
  }
  return ResultWord(op, a, b);
}

}  // namespace

FilterBitVector VbpScanner::Scan(const VbpColumn& column, CompareOp op,
                                 std::uint64_t c1, std::uint64_t c2,
                                 ScanStats* stats,
                                 const CancelContext* cancel) {
  FilterBitVector out(column.num_values(), VbpColumn::kValuesPerSegment);
  ForEachCancellableBatch(cancel, 0, out.num_segments(),
                          [&](std::size_t b, std::size_t e) {
                            ScanRange(column, op, c1, c2, b, e, &out, stats);
                          });
  return out;
}

void VbpScanner::ScanRange(const VbpColumn& column, CompareOp op,
                           std::uint64_t c1, std::uint64_t c2,
                           std::size_t seg_begin, std::size_t seg_end,
                           FilterBitVector* out, ScanStats* stats) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_EQ(out->values_per_segment(), VbpColumn::kValuesPerSegment);
  ICP_CHECK_LE(seg_end, out->num_segments());
  const int k = column.bit_width();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
      out->SetSegmentWord(seg, all ? out->ValidMask(seg) : 0);
    }
    return;
  }

  const bool dual = op == CompareOp::kBetween;
  // Constant bits, MSB first (index j = 0 is the value's most significant
  // bit), for both constants.
  std::array<bool, kWordBits> c1_bits{};
  std::array<bool, kWordBits> c2_bits{};
  for (int j = 0; j < k; ++j) {
    c1_bits[j] = (c1 >> (k - 1 - j)) & 1;
    c2_bits[j] = (c2 >> (k - 1 - j)) & 1;
  }

  ScanStats local;
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    out->SetSegmentWord(
        seg, CompareSegment(column, seg, op, c1_bits.data(), c2_bits.data(),
                            dual, &local) &
                 out->ValidMask(seg));
  }
  if (stats != nullptr) {
    stats->words_examined += local.words_examined;
    stats->segments_processed += local.segments_processed;
    stats->segments_early_stopped += local.segments_early_stopped;
  }
}

FilterBitVector VbpScanner::ScanAnd(const VbpColumn& column, CompareOp op,
                                    std::uint64_t c1, std::uint64_t c2,
                                    const FilterBitVector& prior,
                                    ScanStats* stats,
                                    const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_EQ(prior.num_values(), column.num_values());
  ICP_CHECK_EQ(prior.values_per_segment(), VbpColumn::kValuesPerSegment);
  FilterBitVector out(column.num_values(), VbpColumn::kValuesPerSegment);
  const int k = column.bit_width();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    if (all) {
      out = prior;
    }
    return out;
  }
  const bool dual = op == CompareOp::kBetween;
  std::array<bool, kWordBits> c1_bits{};
  std::array<bool, kWordBits> c2_bits{};
  for (int j = 0; j < k; ++j) {
    c1_bits[j] = (c1 >> (k - 1 - j)) & 1;
    c2_bits[j] = (c2 >> (k - 1 - j)) & 1;
  }

  ScanStats local;
  ForEachCancellableBatch(
      cancel, 0, out.num_segments(), [&](std::size_t b, std::size_t e) {
        for (std::size_t seg = b; seg < e; ++seg) {
          const Word p = prior.SegmentWord(seg);
          if (p == 0) continue;  // segment already empty: skip its words
          out.SetSegmentWord(
              seg, CompareSegment(column, seg, op, c1_bits.data(),
                                  c2_bits.data(), dual, &local) &
                       p);
        }
      });
  if (stats != nullptr) {
    stats->words_examined += local.words_examined;
    stats->segments_processed += local.segments_processed;
    stats->segments_early_stopped += local.segments_early_stopped;
  }
  return out;
}

}  // namespace icp
