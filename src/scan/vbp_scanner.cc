#include "scan/vbp_scanner.h"

#include <array>
#include <cstddef>

#include "obs/obs.h"
#include "simd/dispatch.h"
#include "util/check.h"

namespace icp {
namespace {

// The registry kernels take CompareOp as a raw int (the dispatch layer is a
// leaf library); pin the encoding they document.
static_assert(static_cast<int>(CompareOp::kEq) == 0 &&
                  static_cast<int>(CompareOp::kNe) == 1 &&
                  static_cast<int>(CompareOp::kLt) == 2 &&
                  static_cast<int>(CompareOp::kLe) == 3 &&
                  static_cast<int>(CompareOp::kGt) == 4 &&
                  static_cast<int>(CompareOp::kGe) == 5 &&
                  static_cast<int>(CompareOp::kBetween) == 6,
              "kern::vbp_scan op encoding out of sync with CompareOp");

// Constant bits, MSB first (index j = 0 is the value's most significant
// bit), for both constants.
void BuildConstantBits(int k, std::uint64_t c1, std::uint64_t c2,
                       bool* c1_bits, bool* c2_bits) {
  for (int j = 0; j < k; ++j) {
    c1_bits[j] = (c1 >> (k - 1 - j)) & 1;
    c2_bits[j] = (c2 >> (k - 1 - j)) & 1;
  }
}

// kern::ScanCounters mirrors ScanStats field-for-field (the dispatch
// layer stays a leaf library, so it cannot include scan/predicate.h).
// Pin the mirror at compile time: a field added to one struct without
// the other — or reordered — fails here instead of silently dropping a
// statistic in MergeScanCounters below.
static_assert(sizeof(kern::ScanCounters) == sizeof(ScanStats),
              "kern::ScanCounters out of sync with scan::ScanStats; "
              "update both structs and MergeScanCounters together");
static_assert(offsetof(kern::ScanCounters, words_examined) ==
              offsetof(ScanStats, words_examined));
static_assert(offsetof(kern::ScanCounters, segments_processed) ==
              offsetof(ScanStats, segments_processed));
static_assert(offsetof(kern::ScanCounters, segments_early_stopped) ==
              offsetof(ScanStats, segments_early_stopped));

// Also feeds the process-wide scan.* counters; one batched Add per scan
// call, so the per-word hot loops stay untouched. (The kernels only
// collect counters when the caller asked for ScanStats — the engine
// always does, stat-less bench paths keep the uninstrumented kernels.)
void MergeScanCounters(const kern::ScanCounters& local, ScanStats* stats) {
  if (stats == nullptr) return;
  stats->words_examined += local.words_examined;
  stats->segments_processed += local.segments_processed;
  stats->segments_early_stopped += local.segments_early_stopped;
  ICP_OBS_ADD(ScanWordsExamined, local.words_examined);
  ICP_OBS_ADD(ScanSegmentsProcessed, local.segments_processed);
  ICP_OBS_ADD(ScanSegmentsEarlyStopped, local.segments_early_stopped);
}

}  // namespace

FilterBitVector VbpScanner::Scan(const VbpColumn& column, CompareOp op,
                                 std::uint64_t c1, std::uint64_t c2,
                                 ScanStats* stats,
                                 const CancelContext* cancel) {
  FilterBitVector out(column.num_values(), VbpColumn::kValuesPerSegment);
  ForEachCancellableBatch(cancel, 0, out.num_segments(),
                          [&](std::size_t b, std::size_t e) {
                            ScanRange(column, op, c1, c2, b, e, &out, stats);
                          });
  return out;
}

void VbpScanner::ScanRange(const VbpColumn& column, CompareOp op,
                           std::uint64_t c1, std::uint64_t c2,
                           std::size_t seg_begin, std::size_t seg_end,
                           FilterBitVector* out, ScanStats* stats) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_EQ(out->values_per_segment(), VbpColumn::kValuesPerSegment);
  ICP_CHECK_LE(seg_end, out->num_segments());
  const int k = column.bit_width();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    // cancellation: exempt — ScanRange covers one cancel batch; the
    // caller (ForEachCancellableBatch / per-morsel driver) polls
    // between batches.
    for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
      out->SetSegmentWord(seg, all ? out->ValidMask(seg) : 0);
    }
    return;
  }

  std::array<bool, kWordBits> c1_bits{};
  std::array<bool, kWordBits> c2_bits{};
  BuildConstantBits(k, c1, c2, c1_bits.data(), c2_bits.data());

  const int num_groups = column.num_groups();
  const Word* bases[kWordBits];
  int widths[kWordBits];
  for (int g = 0; g < num_groups; ++g) {
    widths[g] = column.GroupWidth(g);
    bases[g] = column.GroupData(g) + seg_begin * widths[g];
  }

  kern::ScanCounters local;
  Word* out_words = out->words() + seg_begin;
  kern::Ops().vbp_scan(bases, widths, num_groups, column.tau(),
                       static_cast<int>(op), c1_bits.data(), c2_bits.data(),
                       seg_end - seg_begin, /*prior=*/nullptr, out_words,
                       stats != nullptr ? &local : nullptr);
  // cancellation: exempt — ScanRange covers one cancel batch; the
  // caller (ForEachCancellableBatch / per-morsel driver) polls
  // between batches.
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    out->words()[seg] &= out->ValidMask(seg);
  }
  MergeScanCounters(local, stats);
}

FilterBitVector VbpScanner::ScanAnd(const VbpColumn& column, CompareOp op,
                                    std::uint64_t c1, std::uint64_t c2,
                                    const FilterBitVector& prior,
                                    ScanStats* stats,
                                    const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_EQ(prior.num_values(), column.num_values());
  ICP_CHECK_EQ(prior.values_per_segment(), VbpColumn::kValuesPerSegment);
  FilterBitVector out(column.num_values(), VbpColumn::kValuesPerSegment);
  const int k = column.bit_width();

  bool all = false;
  if (ScanIsDegenerate(k, op, c1, &c2, &all)) {
    if (all) {
      out = prior;
    }
    return out;
  }
  std::array<bool, kWordBits> c1_bits{};
  std::array<bool, kWordBits> c2_bits{};
  BuildConstantBits(k, c1, c2, c1_bits.data(), c2_bits.data());

  const int num_groups = column.num_groups();
  const kern::KernelOps& ops = kern::Ops();
  kern::ScanCounters local;
  ForEachCancellableBatch(
      cancel, 0, out.num_segments(), [&](std::size_t b, std::size_t e) {
        const Word* bases[kWordBits];
        int widths[kWordBits];
        for (int g = 0; g < num_groups; ++g) {
          widths[g] = column.GroupWidth(g);
          bases[g] = column.GroupData(g) + b * widths[g];
        }
        // prior bits are a subset of the valid mask, so `result & prior`
        // needs no further masking.
        ops.vbp_scan(bases, widths, num_groups, column.tau(),
                     static_cast<int>(op), c1_bits.data(), c2_bits.data(),
                     e - b, prior.words() + b, out.words() + b,
                     stats != nullptr ? &local : nullptr);
      });
  MergeScanCounters(local, stats);
  return out;
}

}  // namespace icp
