#include "engine/engine.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/hbp_aggregate.h"
#include "core/naive_aggregate.h"
#include "core/nbp_aggregate.h"
#include "core/padded_aggregate.h"
#include "core/vbp_aggregate.h"
#include "groupby/groupby.h"
#include "obs/histogram.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "obs/stage_timer.h"
#include "obs/trace.h"
#include "parallel/executor.h"
#include "parallel/parallel_aggregate.h"
#include "parallel/parallel_nbp.h"
#include "scan/hbp_scanner.h"
#include "scan/naive_scanner.h"
#include "scan/padded_scanner.h"
#include "scan/vbp_scanner.h"
#include "sched/admission.h"
#include "simd/dispatch.h"
#include "simd/simd_parallel.h"

namespace icp {
namespace {

// A predicate mapped into the column's code domain, or a degenerate
// all-pass / none-pass answer.
struct CodePredicate {
  bool all = false;
  bool none = false;
  CompareOp op = CompareOp::kEq;
  std::uint64_t c1 = 0;
  std::uint64_t c2 = 0;
};

// Maps value-domain constants to code-domain constants with order-preserving
// semantics (handles constants outside or between encodable values).
CodePredicate MapPredicate(const ColumnEncoder& encoder, CompareOp op,
                           std::int64_t v1, std::int64_t v2) {
  CodePredicate out;
  out.op = op;
  std::uint64_t code = 0;
  switch (op) {
    case CompareOp::kEq:
      if (encoder.EncodeExact(v1, &code)) {
        out.c1 = code;
      } else {
        out.none = true;
      }
      return out;
    case CompareOp::kNe:
      if (encoder.EncodeExact(v1, &code)) {
        out.c1 = code;
      } else {
        out.all = true;
      }
      return out;
    case CompareOp::kGe:
      // v >= c  <=>  code >= first code whose value is >= c.
      if (encoder.EncodeLowerBound(v1, &code) == ConstantBound::kAboveDomain) {
        out.none = true;
      } else {
        out.c1 = code;
      }
      return out;
    case CompareOp::kLt:
      // v < c  <=>  code < first code whose value is >= c.
      if (encoder.EncodeLowerBound(v1, &code) == ConstantBound::kAboveDomain) {
        out.all = true;
      } else if (code == 0) {
        out.none = true;  // no code below the first one
      } else {
        out.c1 = code;
      }
      return out;
    case CompareOp::kLe:
      // v <= c  <=>  code <= last code whose value is <= c.
      if (encoder.EncodeUpperBound(v1, &code) == ConstantBound::kBelowDomain) {
        out.none = true;
      } else {
        out.c1 = code;
      }
      return out;
    case CompareOp::kGt:
      // v > c  <=>  code > last code whose value is <= c.
      if (encoder.EncodeUpperBound(v1, &code) == ConstantBound::kBelowDomain) {
        out.all = true;
      } else {
        out.c1 = code;
      }
      return out;
    case CompareOp::kBetween: {
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      if (encoder.EncodeLowerBound(v1, &lo) == ConstantBound::kAboveDomain ||
          encoder.EncodeUpperBound(v2, &hi) == ConstantBound::kBelowDomain ||
          lo > hi) {
        out.none = true;
      } else {
        out.c1 = lo;
        out.c2 = hi;
      }
      return out;
    }
  }
  return out;
}

}  // namespace

Engine::Engine(ExecOptions options) : options_(options) {
  ICP_CHECK_GE(options_.threads, 1);
  pool_ = std::make_unique<ThreadPool>(options_.threads);
}

std::optional<std::chrono::steady_clock::time_point> Engine::AbsoluteDeadline()
    const {
  if (!options_.deadline.has_value()) return std::nullopt;
  return std::chrono::steady_clock::now() + *options_.deadline;
}

CancelContext Engine::MakeCancelContext() const {
  return CancelContext(options_.cancel_token, AbsoluteDeadline());
}

Status Engine::CheckPool() {
  if (pool_->TakeTaskFailure()) {
    return Status::Internal("a thread pool task failed to run");
  }
  return Status::Ok();
}

Status Engine::CheckSession() {
  if (session_ == nullptr) return Status::Ok();
  return session_->Error();
}

// Admission is per entry point: Enter blocks in the governor's bounded
// queue (or is shed) before any work runs; the destructor copies the
// session's scheduling stats into the query's QueryStats and releases the
// admission slot.
struct Engine::SessionScope {
  Engine* engine = nullptr;
  std::unique_ptr<sched::QuerySession> session;

  [[nodiscard]] Status Enter(
      Engine& e,
      std::optional<std::chrono::steady_clock::time_point> deadline) {
    if (e.options_.governor == nullptr) return Status::Ok();
    auto session_or = e.options_.governor->Admit(e.options_.cancel_token,
                                                 deadline);
    ICP_RETURN_IF_ERROR(session_or.status());
    session = std::move(session_or).value();
    engine = &e;
    e.session_ = session.get();
    return Status::Ok();
  }

  ~SessionScope() {
    if (engine == nullptr) return;
    // Per-query distribution samples for the governed run: steal counts
    // and scratch usage only make sense per session, so they record here
    // rather than at the (ungoverned) entry-point epilogue.
    ICP_OBS_HISTOGRAM_RECORD(QuerySteals, session->stats().steals);
    ICP_OBS_HISTOGRAM_RECORD(QueryScratchBytes, session->scratch_bytes());
    if (obs::QueryStats* qs = engine->options_.stats; qs != nullptr) {
      qs->granted_parallelism = session->granted_parallelism();
      qs->admit_queued_cycles = session->queued_cycles();
      qs->sched_morsels_dispatched = session->stats().dispatched;
      qs->sched_morsels_completed = session->stats().completed;
      qs->sched_morsels_cancelled = session->stats().cancelled;
      qs->sched_steals = session->stats().steals;
    }
    engine->session_ = nullptr;
  }
};

namespace {

// FALSE set of a tri-state filter: ~(pass | unknown).
FilterBitVector FalseSet(const Engine::TriState& t);

}  // namespace

StatusOr<Engine::TriState> Engine::ScanLeaf(const Table& table,
                                            const FilterExpr& leaf,
                                            const CancelContext* cancel) {
  obs::QueryStats* qs = options_.stats;
  const obs::StageTimer timer;
  ICP_OBS_TRACE_SPAN("execute.scan", 0);
  auto column_or = table.GetColumn(leaf.column());
  ICP_RETURN_IF_ERROR(column_or.status());
  const Table::Column& column = **column_or;
  const int vps = column.values_per_segment();

  TriState out;
  // IS NULL / IS NOT NULL are never UNKNOWN.
  if (leaf.kind() == FilterExpr::Kind::kIsNull ||
      leaf.kind() == FilterExpr::Kind::kIsNotNull) {
    out.unknown = FilterBitVector(table.num_rows(), vps);
    if (column.nullable()) {
      out.pass = column.validity();
      if (leaf.kind() == FilterExpr::Kind::kIsNull) out.pass.Not();
    } else {
      out.pass = FilterBitVector(table.num_rows(), vps);
      if (leaf.kind() == FilterExpr::Kind::kIsNotNull) out.pass.SetAll();
    }
    if (qs != nullptr) qs->scan_cycles += timer.ElapsedCycles();
    return out;
  }

  ScanStats sstats;
  ScanStats* sp = qs != nullptr ? &sstats : nullptr;
  bool modeled = false;
  const CodePredicate pred =
      MapPredicate(column.encoder(), leaf.op(), leaf.value(), leaf.value2());
  if (pred.all || pred.none) {
    out.pass = FilterBitVector(table.num_rows(), vps);
    if (pred.all) out.pass.SetAll();
  } else {
    const bool mt = options_.threads > 1;
    switch (column.spec().layout) {
      case Layout::kVbp:
        if (options_.simd) {
          out.pass = mt ? simd::ScanVbp(*pool_, column.vbp_simd(), pred.op,
                                        pred.c1, pred.c2, sp)
                        : simd::ScanVbp(column.vbp_simd(), pred.op, pred.c1,
                                        pred.c2, sp);
          modeled = true;
        } else if (session_ != nullptr) {
          out.pass = par::Scan(*session_, column.vbp(), pred.op, pred.c1,
                               pred.c2, cancel, sp);
        } else {
          out.pass = mt ? par::Scan(*pool_, column.vbp(), pred.op, pred.c1,
                                    pred.c2, cancel, sp)
                        : VbpScanner::Scan(column.vbp(), pred.op, pred.c1,
                                           pred.c2, sp, cancel);
        }
        break;
      case Layout::kHbp:
        if (options_.simd) {
          out.pass = mt ? simd::ScanHbp(*pool_, column.hbp_simd(), pred.op,
                                        pred.c1, pred.c2, sp)
                        : simd::ScanHbp(column.hbp_simd(), pred.op, pred.c1,
                                        pred.c2, sp);
          modeled = true;
        } else if (session_ != nullptr) {
          out.pass = par::Scan(*session_, column.hbp(), pred.op, pred.c1,
                               pred.c2, cancel, sp);
        } else {
          out.pass = mt ? par::Scan(*pool_, column.hbp(), pred.op, pred.c1,
                                    pred.c2, cancel, sp)
                        : HbpScanner::Scan(column.hbp(), pred.op, pred.c1,
                                           pred.c2, sp, cancel);
        }
        break;
      case Layout::kNaive:
        // The scalar baseline scanners are deliberately uninstrumented
        // (they are the thing the paper measures against, not the engine's
        // hot path); their leaves report zero scan work. They still take
        // the cancel context: before PR 9 a naive/padded leaf ran its
        // whole column uncancellable, so a cancelled query's latency was
        // bounded by the column, not by one cancel batch.
        out.pass = NaiveScanner::Scan(column.naive(), pred.op, pred.c1,
                                      pred.c2, kWordBits, cancel);
        break;
      case Layout::kPadded:
        out.pass = PaddedScanner::Scan(column.padded(), pred.op, pred.c1,
                                       pred.c2, cancel);
        break;
    }
  }

  // SQL comparison semantics: a NULL operand makes the predicate UNKNOWN,
  // never TRUE — even for the degenerate always-true constants.
  if (column.nullable()) {
    out.pass.And(column.validity());
    out.unknown = column.validity();
    out.unknown.Not();
  } else {
    out.unknown = FilterBitVector(table.num_rows(), vps);
  }
  if (qs != nullptr) {
    qs->words_scanned += sstats.words_examined;
    qs->segments_scanned += sstats.segments_processed;
    qs->segments_early_stopped += sstats.segments_early_stopped;
    if (modeled) ++qs->scan_leaves_modeled;
    qs->scan_cycles += timer.ElapsedCycles();
  }
  return out;
}

namespace {

FilterBitVector FalseSet(const Engine::TriState& t) {
  FilterBitVector f = t.pass;
  f.Or(t.unknown);
  f.Not();
  return f;
}

void AlignShape(const Engine::TriState& acc, Engine::TriState* child) {
  if (child->pass.values_per_segment() != acc.pass.values_per_segment()) {
    child->pass = child->pass.Reshape(acc.pass.values_per_segment());
    child->unknown = child->unknown.Reshape(acc.pass.values_per_segment());
  }
}

}  // namespace

StatusOr<Engine::TriState> Engine::EvalExpr(const Table& table,
                                            const FilterExpr& expr,
                                            const CancelContext* cancel) {
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  switch (expr.kind()) {
    case FilterExpr::Kind::kLeaf:
    case FilterExpr::Kind::kIsNull:
    case FilterExpr::Kind::kIsNotNull:
      return ScanLeaf(table, expr, cancel);
    case FilterExpr::Kind::kAnd:
    case FilterExpr::Kind::kOr: {
      if (expr.children().empty()) {
        return Status::InvalidArgument("AND/OR needs at least one child");
      }
      auto acc_or = EvalExpr(table, *expr.children()[0], cancel);
      ICP_RETURN_IF_ERROR(acc_or.status());
      TriState acc = std::move(acc_or).value();
      for (std::size_t i = 1; i < expr.children().size(); ++i) {
        auto child_or = EvalExpr(table, *expr.children()[i], cancel);
        ICP_RETURN_IF_ERROR(child_or.status());
        TriState child = std::move(child_or).value();
        AlignShape(acc, &child);
        const obs::StageTimer combine_timer;
        ICP_OBS_TRACE_SPAN("execute.combine", 0);
        if (expr.kind() == FilterExpr::Kind::kAnd) {
          // AND: FALSE dominates, then UNKNOWN.
          FilterBitVector false_set = FalseSet(acc);
          false_set.Or(FalseSet(child));
          acc.pass.And(child.pass);
          acc.unknown = acc.pass;
          acc.unknown.Or(false_set);
          acc.unknown.Not();
        } else {
          // OR: TRUE dominates, then UNKNOWN.
          FilterBitVector false_set = FalseSet(acc);
          false_set.And(FalseSet(child));
          acc.pass.Or(child.pass);
          acc.unknown = acc.pass;
          acc.unknown.Or(false_set);
          acc.unknown.Not();
        }
        if (obs::QueryStats* qs = options_.stats; qs != nullptr) {
          qs->combine_cycles += combine_timer.ElapsedCycles();
          // Each AND/OR step above runs 8 whole-vector word ops (two
          // FalseSets at 2 each, plus Or/And/Or/Not on the accumulator).
          qs->filter_words_combined +=
              8 * static_cast<std::uint64_t>(acc.pass.num_segments());
        }
      }
      return acc;
    }
    case FilterExpr::Kind::kNot: {
      auto child_or = EvalExpr(table, *expr.children()[0], cancel);
      ICP_RETURN_IF_ERROR(child_or.status());
      TriState child = std::move(child_or).value();
      // NOT TRUE = FALSE, NOT FALSE = TRUE, NOT UNKNOWN = UNKNOWN.
      const obs::StageTimer combine_timer;
      ICP_OBS_TRACE_SPAN("execute.combine", 0);
      FilterBitVector new_pass = FalseSet(child);
      child.pass = std::move(new_pass);
      if (obs::QueryStats* qs = options_.stats; qs != nullptr) {
        qs->combine_cycles += combine_timer.ElapsedCycles();
        // FalseSet is 2 whole-vector word ops (Or + Not).
        qs->filter_words_combined +=
            2 * static_cast<std::uint64_t>(child.pass.num_segments());
      }
      return child;
    }
  }
  return Status::Internal("unknown expression kind");
}

StatusOr<FilterBitVector> Engine::EvaluateFilter(
    const Table& table, const FilterExprPtr& filter,
    const std::string& shape_column, std::uint64_t* scan_cycles) {
  const CancelContext cancel = MakeCancelContext();
  return EvaluateFilterImpl(table, filter, shape_column, scan_cycles,
                            &cancel);
}

StatusOr<FilterBitVector> Engine::EvaluateFilterImpl(
    const Table& table, const FilterExprPtr& filter,
    const std::string& shape_column, std::uint64_t* scan_cycles,
    const CancelContext* cancel) {
  auto column_or = table.GetColumn(shape_column);
  ICP_RETURN_IF_ERROR(column_or.status());
  const Table::Column& column = **column_or;

  const obs::StageTimer timer;
  FilterBitVector f;
  if (filter == nullptr) {
    f = FilterBitVector(table.num_rows(), column.values_per_segment());
    f.SetAll();
  } else {
    auto result = EvalExpr(table, *filter, cancel);
    if (scan_cycles != nullptr) *scan_cycles = timer.ElapsedCycles();
    ICP_RETURN_IF_ERROR(result.status());
    f = std::move(std::move(result).value().pass);
  }
  if (scan_cycles != nullptr) *scan_cycles = timer.ElapsedCycles();
  ICP_RETURN_IF_ERROR(CheckPool());
  ICP_RETURN_IF_ERROR(CheckSession());
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (f.values_per_segment() != column.values_per_segment()) {
    f = f.Reshape(column.values_per_segment());
  }
  if (obs::QueryStats* qs = options_.stats; qs != nullptr) {
    // One extra popcount pass over the filter — the only stats-only work
    // whose cost scales with the data.
    qs->rows_total = table.num_rows();
    qs->rows_passing = f.CountOnes();
    ICP_OBS_ADD(FilterRowsScanned, qs->rows_total);
    ICP_OBS_ADD(FilterRowsPassing, qs->rows_passing);
  }
  return f;
}

StatusOr<QueryResult> Engine::Aggregate(const Table& table, AggKind kind,
                                        const std::string& column_name,
                                        const FilterBitVector& filter,
                                        std::uint64_t rank) {
  const CancelContext cancel = MakeCancelContext();
  return AggregateImpl(table, kind, column_name, filter, rank, &cancel);
}

StatusOr<QueryResult> Engine::AggregateImpl(const Table& table, AggKind kind,
                                            const std::string& column_name,
                                            const FilterBitVector& filter,
                                            std::uint64_t rank,
                                            const CancelContext* cancel) {
  auto column_or = table.GetColumn(column_name);
  ICP_RETURN_IF_ERROR(column_or.status());
  const Table::Column& column = **column_or;
  if (filter.values_per_segment() != column.values_per_segment()) {
    return Status::FailedPrecondition(
        "filter shape does not match column layout; use EvaluateFilter with "
        "this column as shape_column");
  }
  if ((kind == AggKind::kSum || kind == AggKind::kAvg) &&
      column.encoder().is_dictionary()) {
    return Status::InvalidArgument(
        "SUM/AVG cannot be decoded for a dictionary-encoded column");
  }

  // SQL aggregates ignore NULLs: intersect with the column's validity.
  FilterBitVector non_null_filter;
  const FilterBitVector* effective = &filter;
  if (column.nullable()) {
    non_null_filter = filter;
    non_null_filter.And(column.validity());
    effective = &non_null_filter;
  }

  const bool mt = options_.threads > 1;
  const bool bp = options_.method == AggMethod::kBitParallel;
  obs::QueryStats* qs = options_.stats;
  AggStats astats;
  AggStats* ap = qs != nullptr ? &astats : nullptr;
  AggregateResult agg;
  const obs::StageTimer agg_timer;
  ICP_OBS_TRACE_SPAN("execute.aggregate", 0);
  switch (column.spec().layout) {
    case Layout::kVbp:
      if (bp && options_.simd) {
        agg = mt ? simd::AggregateVbp(*pool_, column.vbp_simd(), *effective,
                                      kind, rank, cancel, ap)
                 : simd::AggregateVbp(column.vbp_simd(), *effective, kind,
                                      rank, cancel, ap);
      } else if (bp && session_ != nullptr) {
        agg = par::Aggregate(*session_, column.vbp(), *effective, kind, rank,
                             cancel, ap);
      } else if (bp) {
        agg = mt ? par::Aggregate(*pool_, column.vbp(), *effective, kind,
                                  rank, cancel, ap)
                 : vbp::Aggregate(column.vbp(), *effective, kind, rank,
                                  cancel, ap);
      } else {
        agg = mt ? par_nbp::Aggregate(*pool_, column.vbp(), *effective, kind,
                                      rank, cancel, ap)
                 : nbp::Aggregate(column.vbp(), *effective, kind, rank,
                                  cancel, ap);
      }
      break;
    case Layout::kHbp:
      if (bp && options_.simd) {
        agg = mt ? simd::AggregateHbp(*pool_, column.hbp_simd(), *effective,
                                      kind, rank, cancel, ap)
                 : simd::AggregateHbp(column.hbp_simd(), *effective, kind,
                                      rank, cancel, ap);
      } else if (bp && session_ != nullptr) {
        agg = par::Aggregate(*session_, column.hbp(), *effective, kind, rank,
                             cancel, ap);
      } else if (bp) {
        agg = mt ? par::Aggregate(*pool_, column.hbp(), *effective, kind,
                                  rank, cancel, ap)
                 : hbp::Aggregate(column.hbp(), *effective, kind, rank,
                                  cancel, ap);
      } else {
        agg = mt ? par_nbp::Aggregate(*pool_, column.hbp(), *effective, kind,
                                      rank, cancel, ap)
                 : nbp::Aggregate(column.hbp(), *effective, kind, rank,
                                  cancel, ap);
      }
      break;
    case Layout::kNaive:
      agg = naive::Aggregate(column.naive(), *effective, kind, rank, cancel,
                             ap);
      break;
    case Layout::kPadded:
      agg = padded::Aggregate(column.padded(), *effective, kind, rank,
                              cancel, ap);
      break;
  }
  const std::uint64_t agg_cycles = agg_timer.ElapsedCycles();
  ICP_RETURN_IF_ERROR(CheckPool());
  ICP_RETURN_IF_ERROR(CheckSession());
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (qs != nullptr) {
    qs->agg_cycles += agg_cycles;
    qs->agg_folds += astats.folds;
    qs->agg_segments_skipped += astats.segments_skipped;
    qs->agg_compare_early_stops += astats.compare_early_stops;
    qs->agg_blends_skipped += astats.blends_skipped;
    qs->method = AggMethodToString(options_.method);
    qs->threads = options_.threads;
    qs->simd = options_.simd;
    qs->kernel_tier = kern::TierName(kern::EffectiveTier(kern::ActiveTier()));
    switch (column.spec().layout) {
      case Layout::kVbp:
        qs->agg_path = bp ? "vbp" : "nbp";
        break;
      case Layout::kHbp:
        qs->agg_path = bp ? "hbp" : "nbp";
        break;
      case Layout::kNaive:
        qs->agg_path = "naive";
        break;
      case Layout::kPadded:
        qs->agg_path = "padded";
        break;
    }
  }

  QueryResult result;
  result.kind = kind;
  result.count = agg.count;
  result.code_sum = agg.sum;
  result.code_value = agg.value;
  result.agg_cycles = agg_cycles;

  const ColumnEncoder& encoder = column.encoder();
  switch (kind) {
    case AggKind::kCount:
      result.value = static_cast<double>(agg.count);
      break;
    case AggKind::kSum:
      result.value = static_cast<double>(encoder.min_value()) *
                         static_cast<double>(agg.count) +
                     UInt128ToDouble(agg.sum);
      break;
    case AggKind::kAvg:
      if (agg.count > 0) {
        result.value = static_cast<double>(encoder.min_value()) +
                       UInt128ToDouble(agg.sum) /
                           static_cast<double>(agg.count);
      }
      break;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kMedian:
    case AggKind::kRank:
      if (agg.value.has_value()) {
        result.decoded_value = encoder.Decode(*agg.value);
        result.value = static_cast<double>(*result.decoded_value);
      }
      break;
  }
  return result;
}

StatusOr<std::vector<QueryResult>> Engine::ExecuteMultiInternal(
    const Table& table, const MultiQuery& query) {
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("MultiQuery needs at least one aggregate");
  }
  obs::QueryStats* qs = options_.stats;
  if (qs != nullptr) *qs = obs::QueryStats{};
  const obs::StageTimer total;
  ICP_OBS_INCREMENT(EngineQueries);
  const auto deadline = AbsoluteDeadline();
  SessionScope scope;
  ICP_RETURN_IF_ERROR(scope.Enter(*this, deadline));
  const CancelContext cancel(options_.cancel_token, deadline);
  std::uint64_t scan_cycles = 0;
  auto filter_or = EvaluateFilterImpl(table, query.filter,
                                      query.aggregates[0].second,
                                      &scan_cycles, &cancel);
  ICP_RETURN_IF_ERROR(filter_or.status());
  const FilterBitVector& filter = *filter_or;

  std::vector<QueryResult> results;
  results.reserve(query.aggregates.size());
  for (const auto& [kind, column_name] : query.aggregates) {
    if (cancel.ShouldStop()) return cancel.ToStatus();
    auto column_or = table.GetColumn(column_name);
    ICP_RETURN_IF_ERROR(column_or.status());
    const int vps = (*column_or)->values_per_segment();
    StatusOr<QueryResult> r =
        vps == filter.values_per_segment()
            ? AggregateImpl(table, kind, column_name, filter, 0, &cancel)
            : AggregateImpl(table, kind, column_name, filter.Reshape(vps), 0,
                            &cancel);
    ICP_RETURN_IF_ERROR(r.status());
    QueryResult result = std::move(r).value();
    result.scan_cycles = scan_cycles;
    results.push_back(std::move(result));
  }
  if (qs != nullptr) {
    qs->cancel_checks = cancel.checks();
    qs->total_cycles = total.ElapsedCycles();
  }
  return results;
}

namespace {

// Aggregates the single-pass operator can fold into one accumulator pass;
// MEDIAN/RANK need the full per-group filter and always run naive.
bool SupportsSinglePassGroupBy(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kMin:
    case AggKind::kMax:
      return true;
    case AggKind::kMedian:
    case AggKind::kRank:
      return false;
  }
  return false;
}

// Default cardinality at which ExecuteGroupBy switches from the naive
// per-code strategy to the single-pass operator. bench_groupby measured
// no crossover: the single-pass operator wins at every cardinality from
// 1 group (1.1-1.2x) to 2^12 (213-266x) and beyond, so decomposable
// aggregates default to single-pass unconditionally (see EXPERIMENTS.md
// / docs/groupby.md; MEDIAN/RANK always run naive regardless).
constexpr std::uint64_t kDefaultGroupByThreshold = 1;

}  // namespace

StatusOr<std::vector<std::pair<std::int64_t, QueryResult>>>
Engine::ExecuteGroupByInternal(const Table& table, const Query& query,
                               const std::string& group_column) {
  auto group_or = table.GetColumn(group_column);
  ICP_RETURN_IF_ERROR(group_or.status());
  const Table::Column& group = **group_or;
  if (!group.encoder().is_dictionary()) {
    return Status::InvalidArgument(
        "group-by column '" + group_column +
        "' must be dictionary-encoded (low cardinality)");
  }
  // Group-invariant validation is hoisted out of the per-group work: the
  // agg column lookup and the SUM/AVG decodability check apply to every
  // group identically, so both strategies fail fast the same way (even
  // when all groups turn out empty).
  auto agg_or = table.GetColumn(query.agg_column);
  ICP_RETURN_IF_ERROR(agg_or.status());
  const Table::Column& agg = **agg_or;
  if ((query.agg == AggKind::kSum || query.agg == AggKind::kAvg) &&
      agg.encoder().is_dictionary()) {
    return Status::InvalidArgument(
        "SUM/AVG cannot be decoded for dictionary-encoded column '" +
        query.agg_column + "'");
  }

  obs::QueryStats* qs = options_.stats;
  if (qs != nullptr) *qs = obs::QueryStats{};
  const obs::StageTimer total;
  ICP_OBS_INCREMENT(EngineQueries);
  const auto deadline = AbsoluteDeadline();
  SessionScope scope;
  ICP_RETURN_IF_ERROR(scope.Enter(*this, deadline));
  const CancelContext cancel(options_.cancel_token, deadline);
  std::uint64_t scan_cycles = 0;
  auto base_or = EvaluateFilterImpl(table, query.filter, group_column,
                                    &scan_cycles, &cancel);
  ICP_RETURN_IF_ERROR(base_or.status());

  const std::uint64_t threshold = options_.groupby_threshold != 0
                                      ? options_.groupby_threshold
                                      : kDefaultGroupByThreshold;
  const bool single_pass = SupportsSinglePassGroupBy(query.agg) &&
                           group.encoder().num_codes() >= threshold;
  auto results_or =
      single_pass ? SinglePassGroupBy(table, query, group, agg, *base_or,
                                      scan_cycles, cancel)
                  : NaiveGroupBy(table, query, group, agg, *base_or,
                                 scan_cycles, cancel);
  ICP_RETURN_IF_ERROR(results_or.status());
  if (single_pass) {
    ICP_OBS_INCREMENT(GroupByQueriesSinglePass);
  } else {
    ICP_OBS_INCREMENT(GroupByQueriesNaive);
  }
  if (qs != nullptr) {
    qs->groupby_strategy = single_pass ? "single-pass" : "naive";
    qs->groupby_groups = results_or->size();
    qs->cancel_checks = cancel.checks();
    qs->total_cycles = total.ElapsedCycles();
  }
  return results_or;
}

StatusOr<std::vector<std::pair<std::int64_t, QueryResult>>>
Engine::NaiveGroupBy(const Table& table, const Query& query,
                     const Table::Column& group, const Table::Column& agg,
                     const FilterBitVector& base, std::uint64_t scan_cycles,
                     const CancelContext& cancel) {
  obs::QueryStats* qs = options_.stats;
  const std::vector<std::uint64_t>& codes = group.codes();
  const std::uint64_t num_groups = group.encoder().num_codes();
  const int group_vps = group.values_per_segment();
  const int agg_vps = agg.values_per_segment();
  std::vector<std::pair<std::int64_t, QueryResult>> results;
  // Per-code bit vectors come from one chunked scatter pass over the
  // codes array instead of one bit-parallel scan per group: total filter
  // construction work is O(table x ceil(groups/64) + groups) rather than
  // the old O(table x groups), and the scan-work counters only reflect
  // the base filter's scans.
  constexpr std::uint64_t kChunk = 64;
  for (std::uint64_t chunk_begin = 0; chunk_begin < num_groups;
       chunk_begin += kChunk) {
    if (cancel.ShouldStop()) return cancel.ToStatus();
    const std::uint64_t chunk_end =
        std::min(num_groups, chunk_begin + kChunk);
    const obs::StageTimer scatter_timer;
    std::vector<FilterBitVector> fs;
    fs.reserve(chunk_end - chunk_begin);
    for (std::uint64_t c = chunk_begin; c < chunk_end; ++c) {
      fs.emplace_back(table.num_rows(), group_vps);
    }
    for (std::size_t i = 0; i < codes.size(); ++i) {
      const std::uint64_t c = codes[i];
      if (c < chunk_begin || c >= chunk_end) continue;
      // NULL group rows carry code 0 but belong to no group.
      if (group.nullable() && !group.validity().GetBit(i)) continue;
      fs[c - chunk_begin].SetBit(i, true);
    }
    for (FilterBitVector& f : fs) f.And(base);
    if (qs != nullptr) {
      qs->combine_cycles += scatter_timer.ElapsedCycles();
      qs->filter_words_combined +=
          (chunk_end - chunk_begin) *
          static_cast<std::uint64_t>(base.num_segments());
    }
    for (std::uint64_t c = chunk_begin; c < chunk_end; ++c) {
      if (cancel.ShouldStop()) return cancel.ToStatus();
      FilterBitVector& f = fs[c - chunk_begin];
      if (f.CountOnes() == 0) continue;
      if (group_vps != agg_vps) f = f.Reshape(agg_vps);
      auto r_or =
          AggregateImpl(table, query.agg, query.agg_column, f, 0, &cancel);
      ICP_RETURN_IF_ERROR(r_or.status());
      QueryResult r = std::move(r_or).value();
      r.scan_cycles = scan_cycles;
      results.emplace_back(group.encoder().Decode(c), std::move(r));
    }
  }
  return results;
}

StatusOr<std::vector<std::pair<std::int64_t, QueryResult>>>
Engine::SinglePassGroupBy(const Table& table, const Query& query,
                          const Table::Column& group,
                          const Table::Column& agg,
                          const FilterBitVector& base,
                          std::uint64_t scan_cycles,
                          const CancelContext& cancel) {
  obs::QueryStats* qs = options_.stats;

  // NULL group rows belong to no group: intersect once up front (base is
  // already shaped for the group column).
  FilterBitVector eff = base;
  if (group.nullable()) eff.And(group.validity());

  groupby::Input in;
  in.group_codes = group.codes().data();
  in.num_codes = group.encoder().num_codes();
  if (query.agg != AggKind::kCount) {
    in.agg_codes = agg.codes().data();
    in.agg_bits = agg.bit_width();
  }
  in.filter = &eff;
  if (agg.nullable()) in.agg_validity = &agg.validity();
  in.num_rows = table.num_rows();

  groupby::Options gopts;
  gopts.kind = query.agg;
  gopts.local_table_bytes = options_.groupby_local_bytes != 0
                                ? options_.groupby_local_bytes
                                : std::size_t{1} << 20;

  groupby::Stats gstats;
  const obs::StageTimer agg_timer;
  auto groups_or = [&] {
    if (session_ != nullptr) {
      return groupby::Execute(in, gopts, *session_, &cancel, &gstats);
    }
    StaticPoolExecutor ex(*pool_);
    return groupby::Execute(in, gopts, ex, &cancel, &gstats);
  }();
  const std::uint64_t agg_cycles = agg_timer.ElapsedCycles();
  ICP_RETURN_IF_ERROR(CheckPool());
  ICP_RETURN_IF_ERROR(CheckSession());
  ICP_RETURN_IF_ERROR(groups_or.status());

  const ColumnEncoder& encoder = agg.encoder();
  std::vector<std::pair<std::int64_t, QueryResult>> results;
  results.reserve(groups_or->size());
  for (const auto& [code, acc] : *groups_or) {
    QueryResult r;
    r.kind = query.agg;
    r.count = acc.count;
    r.scan_cycles = scan_cycles;
    r.agg_cycles = agg_cycles;
    switch (query.agg) {
      case AggKind::kCount:
        r.value = static_cast<double>(acc.count);
        break;
      case AggKind::kSum:
        r.code_sum = acc.sum;
        r.value = static_cast<double>(encoder.min_value()) *
                      static_cast<double>(acc.count) +
                  UInt128ToDouble(acc.sum);
        break;
      case AggKind::kAvg:
        r.code_sum = acc.sum;
        if (acc.count > 0) {
          r.value = static_cast<double>(encoder.min_value()) +
                    UInt128ToDouble(acc.sum) /
                        static_cast<double>(acc.count);
        }
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        if (acc.count > 0) {
          const std::uint64_t v =
              query.agg == AggKind::kMin ? acc.min : acc.max;
          r.code_value = v;
          r.decoded_value = encoder.Decode(v);
          r.value = static_cast<double>(*r.decoded_value);
        }
        break;
      }
      default:
        return Status::Internal("aggregate not supported single-pass");
    }
    results.emplace_back(group.encoder().Decode(code), std::move(r));
  }

  if (qs != nullptr) {
    qs->agg_cycles += agg_cycles;
    qs->groupby_local_hits = gstats.local_hits;
    qs->groupby_spilled_rows = gstats.spilled_rows;
    qs->groupby_merge_entries = gstats.merge_entries;
    qs->groupby_partitions = gstats.partitions;
    qs->method = AggMethodToString(options_.method);
    qs->threads = options_.threads;
    qs->simd = options_.simd;
    qs->kernel_tier = kern::TierName(kern::EffectiveTier(kern::ActiveTier()));
    qs->agg_path = gstats.hashed ? "groupby-hash" : "groupby-direct";
  }
  return results;
}

StatusOr<QueryResult> Engine::ExecuteInternal(const Table& table,
                                              const Query& query) {
  obs::QueryStats* qs = options_.stats;
  if (qs != nullptr) *qs = obs::QueryStats{};
  const obs::StageTimer total;
  ICP_OBS_INCREMENT(EngineQueries);
  // Admission (and, while queued, shedding) happens before any work; the
  // queue wait shares the query's absolute deadline with every phase.
  const auto deadline = AbsoluteDeadline();
  SessionScope scope;
  ICP_RETURN_IF_ERROR(scope.Enter(*this, deadline));
  const CancelContext cancel(options_.cancel_token, deadline);
  std::uint64_t scan_cycles = 0;
  auto filter_or = EvaluateFilterImpl(table, query.filter, query.agg_column,
                                      &scan_cycles, &cancel);
  ICP_RETURN_IF_ERROR(filter_or.status());
  auto result_or = AggregateImpl(table, query.agg, query.agg_column,
                                 *filter_or, query.rank, &cancel);
  ICP_RETURN_IF_ERROR(result_or.status());
  QueryResult result = std::move(result_or).value();
  result.scan_cycles = scan_cycles;
  if (qs != nullptr) {
    qs->cancel_checks = cancel.checks();
    qs->total_cycles = total.ElapsedCycles();
  }
  return result;
}

namespace {

// FNV-1a over the query shape: the engine never sees SQL text, so the
// journal's "statement hash" fingerprints the parsed structure instead —
// identical statements collide (by design; that is what makes the
// fingerprint useful for spotting repeat offenders in /queries).
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t HashU64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t HashString(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return HashU64(h, s.size());
}

std::uint64_t HashFilter(std::uint64_t h, const FilterExprPtr& filter) {
  if (filter == nullptr) return HashU64(h, 0);
  h = HashU64(h, static_cast<std::uint64_t>(filter->kind()) + 1);
  h = HashString(h, filter->column());
  h = HashU64(h, static_cast<std::uint64_t>(filter->op()));
  h = HashU64(h, static_cast<std::uint64_t>(filter->value()));
  h = HashU64(h, static_cast<std::uint64_t>(filter->value2()));
  for (const FilterExprPtr& child : filter->children()) {
    h = HashFilter(h, child);
  }
  return h;
}

std::uint64_t FingerprintQuery(const Query& query) {
  std::uint64_t h = kFnvOffset;
  h = HashU64(h, static_cast<std::uint64_t>(query.agg));
  h = HashString(h, query.agg_column);
  h = HashU64(h, query.rank);
  return HashFilter(h, query.filter);
}

std::uint64_t FingerprintMultiQuery(const MultiQuery& query) {
  std::uint64_t h = kFnvOffset;
  for (const auto& [kind, column] : query.aggregates) {
    h = HashU64(h, static_cast<std::uint64_t>(kind));
    h = HashString(h, column);
  }
  return HashFilter(h, query.filter);
}

}  // namespace

void Engine::FinishQuery(const char* entry, std::uint64_t fingerprint,
                         const obs::StageTimer& timer,
                         std::uint64_t start_unix_ns, const Status& status,
                         std::uint64_t rows) {
  const std::uint64_t total_cycles = timer.ElapsedCycles();
  ICP_OBS_HISTOGRAM_RECORD(QueryLatencyCycles, total_cycles);
  obs::QueryRecord record;
  record.fingerprint = fingerprint;
  record.entry = entry;
  record.status = StatusCodeToString(status.code());
  record.rows = rows;
  record.total_cycles = total_cycles;
  record.start_cycles = timer.start_cycles();
  record.start_unix_ns = start_unix_ns;
  record.end_unix_ns = obs::JournalNow();
  if (const obs::QueryStats* qs = options_.stats; qs != nullptr) {
    record.tier = qs->kernel_tier;
    record.agg_path = qs->agg_path;
    record.scan_cycles = qs->scan_cycles;
    record.agg_cycles = qs->agg_cycles;
    // Stage distributions only exist when a stats sink collected the
    // breakdown, and only for completed queries (an error's partial
    // stage cycles would skew the low buckets).
    if (status.ok()) {
      ICP_OBS_HISTOGRAM_RECORD(StageScanCycles, qs->scan_cycles);
      ICP_OBS_HISTOGRAM_RECORD(StageCombineCycles, qs->combine_cycles);
      ICP_OBS_HISTOGRAM_RECORD(StageAggregateCycles, qs->agg_cycles);
    }
  }
  obs::RecordQuery(record);
}

StatusOr<QueryResult> Engine::Execute(const Table& table,
                                      const Query& query) {
  const std::uint64_t start_unix_ns = obs::JournalNow();
  const obs::StageTimer timer;
  auto result_or = ExecuteInternal(table, query);
  FinishQuery("execute", FingerprintQuery(query), timer, start_unix_ns,
              result_or.status(), result_or.ok() ? result_or->count : 0);
  return result_or;
}

StatusOr<std::vector<QueryResult>> Engine::ExecuteMulti(
    const Table& table, const MultiQuery& query) {
  const std::uint64_t start_unix_ns = obs::JournalNow();
  const obs::StageTimer timer;
  auto results_or = ExecuteMultiInternal(table, query);
  FinishQuery("execute_multi", FingerprintMultiQuery(query), timer,
              start_unix_ns, results_or.status(),
              results_or.ok() ? results_or->size() : 0);
  return results_or;
}

StatusOr<std::vector<std::pair<std::int64_t, QueryResult>>>
Engine::ExecuteGroupBy(const Table& table, const Query& query,
                       const std::string& group_column) {
  const std::uint64_t start_unix_ns = obs::JournalNow();
  const obs::StageTimer timer;
  auto groups_or = ExecuteGroupByInternal(table, query, group_column);
  std::uint64_t fingerprint = FingerprintQuery(query);
  fingerprint = HashString(fingerprint, group_column);
  FinishQuery("execute_groupby", fingerprint, timer, start_unix_ns,
              groups_or.status(), groups_or.ok() ? groups_or->size() : 0);
  return groups_or;
}

StatusOr<std::string> Engine::ExplainAnalyze(const Table& table,
                                             const Query& query,
                                             std::uint64_t parse_cycles) {
  obs::QueryStats local;
  obs::QueryStats* saved = options_.stats;
  options_.stats = &local;
  auto result_or = Execute(table, query);
  options_.stats = saved;
  ICP_RETURN_IF_ERROR(result_or.status());
  // Fold the caller-measured parse stage into both the breakdown and the
  // total so StageCyclesSum() <= total_cycles stays true.
  local.parse_cycles = parse_cycles;
  local.total_cycles += parse_cycles;
  if (parse_cycles > 0) {
    ICP_OBS_HISTOGRAM_RECORD(StageParseCycles, parse_cycles);
  }
  if (saved != nullptr) *saved = local;
  return FormatExplainAnalyze(local, *result_or);
}

namespace {

// printf-append onto a std::string; 192 bytes covers the widest EXPLAIN
// ANALYZE line (two 20-digit counters plus labels) with slack.
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[192];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf);
}

void AppendStageRow(std::string* out, const char* name, std::uint64_t cycles,
                    std::uint64_t total) {
  const double pct =
      total == 0 ? 0.0
                 : 100.0 * static_cast<double>(cycles) /
                       static_cast<double>(total);
  AppendF(out, "  %-10s %14llu  %5.1f%%\n", name,
          static_cast<unsigned long long>(cycles), pct);
}

}  // namespace

std::string FormatExplainAnalyze(const obs::QueryStats& stats,
                                 const QueryResult& result) {
  std::string out;
  out += "EXPLAIN ANALYZE\n";
  AppendF(&out, "result: %s = %.6g  (count=%llu, density=%.2f%%)\n",
          AggKindToString(result.kind), result.value,
          static_cast<unsigned long long>(result.count),
          100.0 * stats.FilterDensity());
  AppendF(&out, "plan:   method=%s path=%s tier=%s threads=%d simd=%s\n",
          stats.method, stats.agg_path, stats.kernel_tier, stats.threads,
          stats.simd ? "on" : "off");
  out += "stage              cycles   %-of-total\n";
  AppendStageRow(&out, "parse", stats.parse_cycles, stats.total_cycles);
  AppendStageRow(&out, "scan", stats.scan_cycles, stats.total_cycles);
  AppendStageRow(&out, "combine", stats.combine_cycles, stats.total_cycles);
  AppendStageRow(&out, "aggregate", stats.agg_cycles, stats.total_cycles);
  const std::uint64_t accounted = stats.StageCyclesSum();
  AppendStageRow(&out, "(other)",
                 stats.total_cycles > accounted
                     ? stats.total_cycles - accounted
                     : 0,
                 stats.total_cycles);
  AppendStageRow(&out, "total", stats.total_cycles, stats.total_cycles);
  AppendF(&out,
          "scan:   words=%llu segments=%llu early_stopped=%llu "
          "modeled_leaves=%llu\n",
          static_cast<unsigned long long>(stats.words_scanned),
          static_cast<unsigned long long>(stats.segments_scanned),
          static_cast<unsigned long long>(stats.segments_early_stopped),
          static_cast<unsigned long long>(stats.scan_leaves_modeled));
  AppendF(&out, "filter: rows=%llu/%llu combine_words=%llu\n",
          static_cast<unsigned long long>(stats.rows_passing),
          static_cast<unsigned long long>(stats.rows_total),
          static_cast<unsigned long long>(stats.filter_words_combined));
  AppendF(&out,
          "agg:    folds=%llu segments_skipped=%llu early_stops=%llu "
          "blends_skipped=%llu\n",
          static_cast<unsigned long long>(stats.agg_folds),
          static_cast<unsigned long long>(stats.agg_segments_skipped),
          static_cast<unsigned long long>(stats.agg_compare_early_stops),
          static_cast<unsigned long long>(stats.agg_blends_skipped));
  if (stats.groupby_strategy[0] != '\0') {
    AppendF(&out,
            "groupby: strategy=%s groups=%llu local_hits=%llu "
            "spilled=%llu merge_entries=%llu partitions=%llu\n",
            stats.groupby_strategy,
            static_cast<unsigned long long>(stats.groupby_groups),
            static_cast<unsigned long long>(stats.groupby_local_hits),
            static_cast<unsigned long long>(stats.groupby_spilled_rows),
            static_cast<unsigned long long>(stats.groupby_merge_entries),
            static_cast<unsigned long long>(stats.groupby_partitions));
  }
  if (stats.granted_parallelism > 0) {
    AppendF(&out,
            "sched:  parallelism=%d morsels=%llu/%llu cancelled=%llu "
            "steals=%llu queued_cycles=%llu\n",
            stats.granted_parallelism,
            static_cast<unsigned long long>(stats.sched_morsels_completed),
            static_cast<unsigned long long>(stats.sched_morsels_dispatched),
            static_cast<unsigned long long>(stats.sched_morsels_cancelled),
            static_cast<unsigned long long>(stats.sched_steals),
            static_cast<unsigned long long>(stats.admit_queued_cycles));
  }
  AppendF(&out, "cancel_checks=%llu\n",
          static_cast<unsigned long long>(stats.cancel_checks));
  return out;
}

}  // namespace icp
