#include "engine/table.h"


#include <algorithm>
#include <utility>

namespace icp {

int Table::Column::values_per_segment() const {
  switch (spec_.layout) {
    case Layout::kVbp:
      return VbpColumn::kValuesPerSegment;
    case Layout::kHbp:
      return hbp_.values_per_segment();
    case Layout::kNaive:
    case Layout::kPadded:
      return kWordBits;
  }
  return kWordBits;
}

const VbpColumn& Table::Column::vbp_simd() const {
  if (!has_vbp_simd_) {
    VbpColumn::Options options;
    options.tau = vbp_.tau();
    options.lanes = 4;
    vbp_simd_ = VbpColumn::Pack(codes_, encoder_.bit_width(), options);
    has_vbp_simd_ = true;
  }
  return vbp_simd_;
}

const HbpColumn& Table::Column::hbp_simd() const {
  if (!has_hbp_simd_) {
    HbpColumn::Options options;
    options.tau = hbp_.tau();
    options.lanes = 4;
    hbp_simd_ = HbpColumn::Pack(codes_, encoder_.bit_width(), options);
    has_hbp_simd_ = true;
  }
  return hbp_simd_;
}

std::size_t Table::Column::MemoryBytes() const {
  switch (spec_.layout) {
    case Layout::kVbp:
      return vbp_.MemoryBytes();
    case Layout::kHbp:
      return hbp_.MemoryBytes();
    case Layout::kNaive:
      return naive_.MemoryBytes();
    case Layout::kPadded:
      return padded_.MemoryBytes();
  }
  return 0;
}

std::vector<std::string> Table::column_names() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& column : columns_) names.push_back(column->name_);
  return names;
}

namespace {

// Builds the encoder for `values` restricted to positions where `valid` is
// true (or all positions when valid == nullptr).
StatusOr<ColumnEncoder> MakeEncoder(const std::string& name,
                                    const std::vector<std::int64_t>& values,
                                    const std::vector<bool>* valid,
                                    const ColumnSpec& spec) {
  std::vector<std::int64_t> live;
  const std::vector<std::int64_t>* domain = &values;
  if (valid != nullptr) {
    live.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      if ((*valid)[i]) live.push_back(values[i]);
    }
    if (live.empty()) {
      return Status::InvalidArgument("column '" + name +
                                     "' has only NULL values");
    }
    domain = &live;
  }
  if (spec.dictionary) {
    ColumnEncoder encoder = ColumnEncoder::ForDictionary(*domain);
    if (spec.bit_width != 0 && spec.bit_width < encoder.bit_width()) {
      return Status::InvalidArgument("bit_width too small for dictionary");
    }
    return encoder;
  }
  const auto [lo, hi] = std::minmax_element(domain->begin(), domain->end());
  if (spec.bit_width == 0) {
    return ColumnEncoder::ForRange(*lo, *hi);
  }
  const std::uint64_t span =
      static_cast<std::uint64_t>(*hi) - static_cast<std::uint64_t>(*lo);
  if (spec.bit_width < BitsFor(span)) {
    return Status::InvalidArgument("bit_width too small for value range");
  }
  return ColumnEncoder::ForRangeWithWidth(*lo, *hi, spec.bit_width);
}

}  // namespace

Status Table::AddColumn(const std::string& name,
                        const std::vector<std::int64_t>& values,
                        ColumnSpec spec) {
  if (values.empty()) {
    return Status::InvalidArgument("column '" + name + "' has no values");
  }
  auto encoder_or = MakeEncoder(name, values, nullptr, spec);
  ICP_RETURN_IF_ERROR(encoder_or.status());
  return AddColumnImpl(name, spec, *encoder_or,
                       encoder_or->EncodeAll(values));
}

Status Table::AddNullableColumn(const std::string& name,
                                const std::vector<std::int64_t>& values,
                                const std::vector<bool>& valid,
                                ColumnSpec spec) {
  if (values.empty()) {
    return Status::InvalidArgument("column '" + name + "' has no values");
  }
  if (valid.size() != values.size()) {
    return Status::InvalidArgument(
        "validity size does not match value count in '" + name + "'");
  }
  auto encoder_or = MakeEncoder(name, values, &valid, spec);
  ICP_RETURN_IF_ERROR(encoder_or.status());
  const ColumnEncoder& encoder = *encoder_or;
  std::vector<std::uint64_t> codes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    codes[i] = valid[i] ? encoder.Encode(values[i]) : 0;  // NULL -> code 0
  }
  return AddColumnImpl(name, spec, encoder, std::move(codes), &valid);
}

Status Table::AddEncodedColumn(const std::string& name,
                               const std::vector<std::uint64_t>& codes,
                               int bit_width, ColumnSpec spec) {
  if (codes.empty()) {
    return Status::InvalidArgument("column '" + name + "' has no values");
  }
  if (bit_width < 1 || bit_width > kWordBits - 1) {
    return Status::InvalidArgument("bit_width out of range");
  }
  const std::uint64_t max_code = LowMask(bit_width);
  for (std::uint64_t code : codes) {
    if (code > max_code) {
      return Status::InvalidArgument("code exceeds bit_width in column '" +
                                     name + "'");
    }
  }
  spec.bit_width = bit_width;
  ColumnEncoder encoder = ColumnEncoder::ForRangeWithWidth(
      0, static_cast<std::int64_t>(max_code), bit_width);
  return AddColumnImpl(name, spec, encoder, codes);
}

Status Table::AddColumnImpl(const std::string& name, ColumnSpec spec,
                            ColumnEncoder encoder,
                            std::vector<std::uint64_t> codes,
                            const std::vector<bool>* valid) {
  if (num_rows_ != 0 && codes.size() != num_rows_) {
    return Status::InvalidArgument("column '" + name + "' has " +
                                   std::to_string(codes.size()) +
                                   " rows, table has " +
                                   std::to_string(num_rows_));
  }
  for (const auto& column : columns_) {
    if (column->name_ == name) {
      return Status::InvalidArgument("duplicate column '" + name + "'");
    }
  }

  auto column = std::make_unique<Column>();
  column->name_ = name;
  column->spec_ = spec;
  column->encoder_ = std::move(encoder);
  const int k = column->encoder_.bit_width();
  switch (spec.layout) {
    case Layout::kVbp: {
      VbpColumn::Options options;
      options.tau = spec.tau;
      column->vbp_ = VbpColumn::Pack(codes, k, options);
      break;
    }
    case Layout::kHbp: {
      HbpColumn::Options options;
      options.tau = spec.tau;
      column->hbp_ = HbpColumn::Pack(codes, k, options);
      break;
    }
    case Layout::kNaive:
      column->naive_ = NaiveColumn::Pack(codes, k);
      break;
    case Layout::kPadded:
      column->padded_ = PaddedColumn::Pack(codes, k);
      break;
  }
  // Allocation failure (real exhaustion or the "aligned_buffer/alloc"
  // failpoint) leaves the packed column empty; report it instead of handing
  // out a column whose kernels would read null storage.
  const bool storage_ok = [&] {
    switch (spec.layout) {
      case Layout::kVbp:
        return column->vbp_.storage_ok();
      case Layout::kHbp:
        return column->hbp_.storage_ok();
      case Layout::kNaive:
        return column->naive_.storage_ok();
      case Layout::kPadded:
        return column->padded_.storage_ok();
    }
    return true;
  }();
  if (!storage_ok) {
    return Status::Internal("allocation failed packing column '" + name +
                            "'");
  }
  column->codes_ = std::move(codes);
  if (valid != nullptr) {
    column->nullable_ = true;
    column->validity_ =
        FilterBitVector::FromBools(*valid, column->values_per_segment());
  }
  num_rows_ = column->codes_.size();
  columns_.push_back(std::move(column));
  return Status::Ok();
}

StatusOr<const Table::Column*> Table::GetColumn(
    const std::string& name) const {
  for (const auto& column : columns_) {
    if (column->name_ == name) return static_cast<const Column*>(column.get());
  }
  return Status::NotFound("no column named '" + name + "'");
}

}  // namespace icp
