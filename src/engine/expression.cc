#include "engine/expression.h"

namespace icp {
namespace {

std::string JoinChildren(const std::vector<FilterExprPtr>& children,
                         const char* sep) {
  std::string out = "(";
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += sep;
    out += children[i]->ToString();
  }
  out += ")";
  return out;
}

}  // namespace

std::string FilterExpr::ToString() const {
  switch (kind_) {
    case Kind::kLeaf:
      if (op_ == CompareOp::kBetween) {
        return column_ + " BETWEEN " + std::to_string(value_) + " AND " +
               std::to_string(value2_);
      }
      return column_ + " " + CompareOpToString(op_) + " " +
             std::to_string(value_);
    case Kind::kAnd:
      return JoinChildren(children_, " AND ");
    case Kind::kOr:
      return JoinChildren(children_, " OR ");
    case Kind::kNot:
      return "NOT " + children_[0]->ToString();
    case Kind::kIsNull:
      return column_ + " IS NULL";
    case Kind::kIsNotNull:
      return column_ + " IS NOT NULL";
  }
  return "?";
}

}  // namespace icp
