#include "engine/query_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "obs/stage_timer.h"
#include "obs/trace.h"
#include "util/dates.h"
#include "util/failpoint.h"

namespace icp {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kIdent,    // column names and keywords (keywords matched case-insensitively)
  kNumber,   // integer or decimal literal (value already scaled)
  kDate,     // 'YYYY-MM-DD'
  kLParen,
  kRParen,
  kComma,
  kOp,       // = != <> < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier / operator spelling
  std::int64_t value = 0;  // kNumber / kDate payload
  std::size_t pos = 0;     // offset in the input, for error messages
};

Status SyntaxError(std::size_t pos, const std::string& what) {
  return Status::InvalidArgument("parse error at position " +
                                 std::to_string(pos) + ": " + what);
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Run() {
    // "query_parser/lex" simulates a lexer-internal failure (e.g. a token
    // buffer allocation throwing): callers must get a Status, never a crash.
    if (ICP_FAILPOINT("query_parser/lex")) {
      return Status::Internal("lexer failure injected");
    }
    std::vector<Token> tokens;
    while (true) {
      while (pos_ < text_.size() && std::isspace(Byte(pos_))) ++pos_;
      Token t;
      t.pos = pos_;
      if (pos_ >= text_.size()) {
        tokens.push_back(t);
        return tokens;
      }
      const char c = text_[pos_];
      if (std::isalpha(Byte(pos_)) || c == '_') {
        while (pos_ < text_.size() &&
               (std::isalnum(Byte(pos_)) || text_[pos_] == '_')) {
          t.text += text_[pos_++];
        }
        t.kind = TokenKind::kIdent;
      } else if (std::isdigit(Byte(pos_)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(Byte(pos_ + 1)))) {
        auto number = LexNumber();
        ICP_RETURN_IF_ERROR(number.status());
        t = *number;
        t.pos = pos_;
      } else if (c == '\'') {
        auto date = LexDate();
        ICP_RETURN_IF_ERROR(date.status());
        t = *date;
      } else if (c == '(') {
        t.kind = TokenKind::kLParen;
        ++pos_;
      } else if (c == ')') {
        t.kind = TokenKind::kRParen;
        ++pos_;
      } else if (c == ',') {
        t.kind = TokenKind::kComma;
        ++pos_;
      } else if (c == '=' || c == '<' || c == '>' || c == '!') {
        t.kind = TokenKind::kOp;
        t.text += c;
        ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '=' || (c == '<' && text_[pos_] == '>'))) {
          t.text += text_[pos_++];
        }
        if (t.text == "!") return SyntaxError(t.pos, "expected '!='");
      } else {
        return SyntaxError(pos_, std::string("unexpected character '") + c +
                                     "'");
      }
      tokens.push_back(std::move(t));
    }
  }

 private:
  unsigned char Byte(std::size_t i) const {
    return static_cast<unsigned char>(text_[i]);
  }

  StatusOr<Token> LexNumber() {
    Token t;
    t.kind = TokenKind::kNumber;
    const std::size_t start = pos_;
    bool negative = false;
    if (text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    std::int64_t integral = 0;
    while (pos_ < text_.size() && std::isdigit(Byte(pos_))) {
      integral = integral * 10 + (text_[pos_++] - '0');
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      std::int64_t frac = 0;
      int digits = 0;
      while (pos_ < text_.size() && std::isdigit(Byte(pos_))) {
        frac = frac * 10 + (text_[pos_++] - '0');
        ++digits;
      }
      if (digits == 0 || digits > 9) {
        return SyntaxError(start, "bad decimal literal");
      }
      std::int64_t scale = 1;
      for (int i = 0; i < digits; ++i) scale *= 10;
      t.value = integral * scale + frac;
      if (negative) t.value = -t.value;
    } else {
      t.value = negative ? -integral : integral;
    }
    return t;
  }

  StatusOr<Token> LexDate() {
    Token t;
    t.kind = TokenKind::kDate;
    t.pos = pos_;
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      body += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
      return SyntaxError(t.pos, "unterminated quoted literal");
    }
    ++pos_;  // closing quote
    // Only ISO dates are supported as quoted literals.
    if (body.size() != 10 || body[4] != '-' || body[7] != '-') {
      return SyntaxError(t.pos, "expected 'YYYY-MM-DD' in quotes");
    }
    for (int i : {0, 1, 2, 3, 5, 6, 8, 9}) {
      if (!std::isdigit(static_cast<unsigned char>(body[i]))) {
        return SyntaxError(t.pos, "expected 'YYYY-MM-DD' in quotes");
      }
    }
    const int y = std::stoi(body.substr(0, 4));
    const int m = std::stoi(body.substr(5, 2));
    const int d = std::stoi(body.substr(8, 2));
    if (m < 1 || m > 12 || d < 1 || d > 31) {
      return SyntaxError(t.pos, "invalid date");
    }
    t.value = DaysFromCivil(y, m, d);
    return t;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  std::size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) != b[i]) return false;
  }
  return i == a.size() && b[i] == '\0';
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Query> ParseSelect() {
    Query query;
    ICP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto agg = ParseAggregate(&query);
    ICP_RETURN_IF_ERROR(agg);
    if (IsKeyword("WHERE")) {
      ++index_;
      auto expr = ParseOr();
      ICP_RETURN_IF_ERROR(expr.status());
      query.filter = *expr;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return SyntaxError(Peek().pos, "unexpected trailing input");
    }
    return query;
  }

  StatusOr<FilterExprPtr> ParseBarePredicate() {
    auto expr = ParseOr();
    ICP_RETURN_IF_ERROR(expr.status());
    if (Peek().kind != TokenKind::kEnd) {
      return SyntaxError(Peek().pos, "unexpected trailing input");
    }
    return expr;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const std::size_t i = index_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool IsKeyword(const char* kw, int ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek(ahead).text, kw);
  }
  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) {
      return SyntaxError(Peek().pos, std::string("expected ") + kw);
    }
    ++index_;
    return Status::Ok();
  }
  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return SyntaxError(Peek().pos, std::string("expected ") + what);
    }
    ++index_;
    return Status::Ok();
  }

  Status ParseAggregate(Query* query) {
    static constexpr struct {
      const char* name;
      AggKind kind;
    } kAggs[] = {
        {"COUNT", AggKind::kCount}, {"SUM", AggKind::kSum},
        {"AVG", AggKind::kAvg},     {"MIN", AggKind::kMin},
        {"MAX", AggKind::kMax},     {"MEDIAN", AggKind::kMedian},
        {"RANK", AggKind::kRank},
    };
    for (const auto& agg : kAggs) {
      if (!IsKeyword(agg.name)) continue;
      ++index_;
      query->agg = agg.kind;
      ICP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (Peek().kind != TokenKind::kIdent) {
        return SyntaxError(Peek().pos, "expected column name");
      }
      query->agg_column = Peek().text;
      ++index_;
      if (agg.kind == AggKind::kRank) {
        ICP_RETURN_IF_ERROR(Expect(TokenKind::kComma, "',' and a rank"));
        if (Peek().kind != TokenKind::kNumber || Peek().value < 1) {
          return SyntaxError(Peek().pos, "expected positive rank");
        }
        query->rank = static_cast<std::uint64_t>(Peek().value);
        ++index_;
      }
      ICP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return Status::Ok();
    }
    return SyntaxError(Peek().pos,
                       "expected aggregate (COUNT/SUM/AVG/MIN/MAX/MEDIAN/"
                       "RANK)");
  }

  StatusOr<FilterExprPtr> ParseOr() {
    auto left = ParseAnd();
    ICP_RETURN_IF_ERROR(left.status());
    std::vector<FilterExprPtr> children = {*left};
    while (IsKeyword("OR")) {
      ++index_;
      auto right = ParseAnd();
      ICP_RETURN_IF_ERROR(right.status());
      children.push_back(*right);
    }
    if (children.size() == 1) return children[0];
    return FilterExpr::Or(std::move(children));
  }

  StatusOr<FilterExprPtr> ParseAnd() {
    auto left = ParseUnary();
    ICP_RETURN_IF_ERROR(left.status());
    std::vector<FilterExprPtr> children = {*left};
    while (IsKeyword("AND")) {
      ++index_;
      auto right = ParseUnary();
      ICP_RETURN_IF_ERROR(right.status());
      children.push_back(*right);
    }
    if (children.size() == 1) return children[0];
    return FilterExpr::And(std::move(children));
  }

  StatusOr<FilterExprPtr> ParseUnary() {
    if (IsKeyword("NOT")) {
      ++index_;
      auto child = ParseUnary();
      ICP_RETURN_IF_ERROR(child.status());
      return FilterExpr::Not(*child);
    }
    if (Peek().kind == TokenKind::kLParen) {
      ++index_;
      auto inner = ParseOr();
      ICP_RETURN_IF_ERROR(inner.status());
      ICP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    return ParseComparison();
  }

  StatusOr<std::int64_t> ParseLiteral() {
    if (Peek().kind != TokenKind::kNumber &&
        Peek().kind != TokenKind::kDate) {
      return SyntaxError(Peek().pos, "expected literal");
    }
    const std::int64_t value = Peek().value;
    ++index_;
    return value;
  }

  StatusOr<FilterExprPtr> ParseComparison() {
    if (Peek().kind != TokenKind::kIdent || IsKeyword("AND") ||
        IsKeyword("OR") || IsKeyword("NOT")) {
      return SyntaxError(Peek().pos, "expected column name");
    }
    const std::string column = Peek().text;
    ++index_;

    if (IsKeyword("IS")) {
      ++index_;
      if (IsKeyword("NOT")) {
        ++index_;
        ICP_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        return FilterExpr::IsNotNull(column);
      }
      ICP_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return FilterExpr::IsNull(column);
    }
    if (IsKeyword("BETWEEN")) {
      ++index_;
      auto lo = ParseLiteral();
      ICP_RETURN_IF_ERROR(lo.status());
      ICP_RETURN_IF_ERROR(ExpectKeyword("AND"));
      auto hi = ParseLiteral();
      ICP_RETURN_IF_ERROR(hi.status());
      return FilterExpr::Between(column, *lo, *hi);
    }
    if (IsKeyword("IN")) {
      ++index_;
      ICP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      std::vector<std::int64_t> values;
      while (true) {
        auto value = ParseLiteral();
        ICP_RETURN_IF_ERROR(value.status());
        values.push_back(*value);
        if (Peek().kind == TokenKind::kComma) {
          ++index_;
          continue;
        }
        break;
      }
      ICP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return FilterExpr::In(column, values);
    }

    if (Peek().kind != TokenKind::kOp) {
      return SyntaxError(Peek().pos, "expected comparison operator");
    }
    const std::string op = Peek().text;
    ++index_;
    auto value = ParseLiteral();
    ICP_RETURN_IF_ERROR(value.status());
    CompareOp compare;
    if (op == "=") {
      compare = CompareOp::kEq;
    } else if (op == "!=" || op == "<>") {
      compare = CompareOp::kNe;
    } else if (op == "<") {
      compare = CompareOp::kLt;
    } else if (op == "<=") {
      compare = CompareOp::kLe;
    } else if (op == ">") {
      compare = CompareOp::kGt;
    } else if (op == ">=") {
      compare = CompareOp::kGe;
    } else {
      return SyntaxError(Peek().pos, "unknown operator '" + op + "'");
    }
    return FilterExpr::Compare(column, compare, *value);
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

StatusOr<Query> ParseQuery(const std::string& sql) {
  // "query_parser/parse" simulates a parser-internal failure; the partially
  // built expression tree must be released (checked under ASan).
  if (ICP_FAILPOINT("query_parser/parse")) {
    return Status::Internal("parser failure injected");
  }
  auto tokens = Lexer(sql).Run();
  ICP_RETURN_IF_ERROR(tokens.status());
  return Parser(std::move(tokens).value()).ParseSelect();
}

StatusOr<FilterExprPtr> ParsePredicate(const std::string& text) {
  if (ICP_FAILPOINT("query_parser/parse_predicate")) {
    return Status::Internal("parser failure injected");
  }
  auto tokens = Lexer(text).Run();
  ICP_RETURN_IF_ERROR(tokens.status());
  return Parser(std::move(tokens).value()).ParseBarePredicate();
}

namespace {

// Case-insensitively consumes keyword `word` at `*pos` (it must end at a
// non-identifier byte) and skips trailing whitespace. Leaves `*pos`
// untouched on a miss.
bool ConsumeKeyword(const std::string& sql, const char* word,
                    std::size_t* pos) {
  std::size_t p = *pos;
  for (const char* w = word; *w != '\0'; ++w, ++p) {
    if (p >= sql.size() ||
        std::toupper(static_cast<unsigned char>(sql[p])) != *w) {
      return false;
    }
  }
  if (p < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[p])) ||
                         sql[p] == '_')) {
    return false;  // longer identifier, e.g. "EXPLAINX"
  }
  while (p < sql.size() && std::isspace(static_cast<unsigned char>(sql[p]))) {
    ++p;
  }
  *pos = p;
  return true;
}

}  // namespace

StatusOr<Statement> ParseStatement(const std::string& sql) {
  const obs::StageTimer timer;
  ICP_OBS_TRACE_SPAN("execute.parse", 0);
  Statement out;
  std::size_t pos = 0;
  while (pos < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[pos]))) {
    ++pos;
  }
  std::size_t after = pos;
  if (ConsumeKeyword(sql, "EXPLAIN", &after)) {
    if (!ConsumeKeyword(sql, "ANALYZE", &after)) {
      return SyntaxError(after, "expected ANALYZE after EXPLAIN");
    }
    out.explain_analyze = true;
    pos = after;
  }
  auto query_or = ParseQuery(sql.substr(pos));
  ICP_RETURN_IF_ERROR(query_or.status());
  out.query = std::move(query_or).value();
  out.parse_cycles = timer.ElapsedCycles();
  return out;
}

}  // namespace icp
