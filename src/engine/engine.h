// Query engine: filter scan + aggregation over a wide Table.
//
// Executes the paper's query shape (e.g. Q1: SELECT SUM(X) FROM Y WHERE
// Z < 4): every filter leaf runs one bit-parallel scan on its column, leaf
// results combine with AND/OR/NOT, and the chosen aggregation method (the
// paper's BP contribution or the NBP reconstruct-then-aggregate baseline)
// consumes the filter bit vector. ExecOptions picks the comparison axes of
// Section IV: method (BP/NBP), multi-threading, and SIMD.

#ifndef ICP_ENGINE_ENGINE_H_
#define ICP_ENGINE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "engine/expression.h"
#include "engine/table.h"
#include "obs/query_stats.h"
#include "obs/stage_timer.h"
#include "parallel/thread_pool.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace icp {

namespace sched {
class QueryGovernor;
class QuerySession;
}  // namespace sched

struct ExecOptions {
  /// Aggregation implementation (scans are always bit-parallel, as in the
  /// paper: both methods take the filter bit vector as input).
  AggMethod method = AggMethod::kBitParallel;
  /// Worker threads (1 = single-threaded).
  int threads = 1;
  /// Use the 256-bit SIMD kernels (bit-parallel method only; the column's
  /// lanes == 4 packing is built lazily).
  bool simd = false;
  /// Cooperative cancellation: every aggregation kernel (scalar, SIMD,
  /// naive/padded, multi-threaded) polls this token every
  /// kCancelBatchSegments segments and the query returns Status kCancelled.
  /// Default-constructed tokens are inert (no overhead); the engine also
  /// observes the token between phases.
  CancellationToken cancel_token;
  /// Per-call time budget: each Execute/ExecuteMulti/ExecuteGroupBy (and
  /// standalone EvaluateFilter/Aggregate) call converts it to an absolute
  /// deadline at entry and returns Status kDeadlineExceeded once it passes,
  /// with the same granularity as cancellation.
  std::optional<std::chrono::nanoseconds> deadline;
  /// Per-query statistics sink. When non-null, Execute / ExecuteMulti /
  /// ExecuteGroupBy reset it at entry and fill the stage-cycle breakdown,
  /// scan/aggregate work counters and dispatch info; the standalone
  /// EvaluateFilter / Aggregate phases accumulate into it without
  /// resetting. Not owned; must outlive the engine calls. Collecting
  /// stats costs one extra filter popcount per query plus the ScanStats /
  /// AggStats merges.
  obs::QueryStats* stats = nullptr;
  /// Overload-safe concurrent execution: when non-null, every Execute /
  /// ExecuteMulti / ExecuteGroupBy call first admits itself against the
  /// governor (bounded queue, load shedding with kResourceExhausted,
  /// degraded parallelism under load) and runs its bit-parallel
  /// non-SIMD scan + aggregate phases on the governor's shared morsel
  /// scheduler instead of this engine's private pool. SIMD and NBP
  /// phases and the standalone EvaluateFilter / Aggregate entry points
  /// keep the private pool (see docs/scheduler.md). Not owned; must
  /// outlive the engine.
  sched::QueryGovernor* governor = nullptr;
  /// Grouped-aggregation strategy: ExecuteGroupBy switches from the naive
  /// per-code scan loop to the single-pass operator (src/groupby/) when
  /// the group dictionary has at least this many codes. 0 picks the
  /// measured default (see docs/groupby.md); 1 forces single-pass and
  /// UINT64_MAX forces naive. MEDIAN/RANK always run naive.
  std::uint64_t groupby_threshold = 0;
  /// Per-worker local aggregation-table budget (bytes) for the
  /// single-pass operator; 0 = 1 MiB. The query's total local-table
  /// memory is this times the granted worker slots — a governor-degraded
  /// grant shrinks it — and is metered against the admission scratch
  /// budget together with the merge accumulators.
  std::size_t groupby_local_bytes = 0;
};

struct Query {
  AggKind agg = AggKind::kCount;
  /// Column the aggregate runs over (any column works for COUNT).
  std::string agg_column;
  /// Filter; null means all rows pass.
  FilterExprPtr filter;
  /// 1-based rank for AggKind::kRank (e.g. rank = ceil(0.99 * count) gives
  /// the p99); ignored by the other aggregates.
  std::uint64_t rank = 0;
};

/// Several aggregates sharing one filter (e.g. TPC-H Q1 computes 8
/// aggregates after a single scan).
struct MultiQuery {
  std::vector<std::pair<AggKind, std::string>> aggregates;
  FilterExprPtr filter;
};

struct QueryResult {
  AggKind kind = AggKind::kCount;
  std::uint64_t count = 0;

  /// Code-domain results (exact).
  UInt128 code_sum = 0;
  std::optional<std::uint64_t> code_value;

  /// Value-domain results. `decoded_value` carries MIN/MAX/MEDIAN exactly;
  /// `value` carries every aggregate as a double (SUM/AVG may lose
  /// precision beyond 2^53).
  std::optional<std::int64_t> decoded_value;
  double value = 0.0;

  /// RDTSC cycles spent in the filter scan(s) and in the aggregation.
  std::uint64_t scan_cycles = 0;
  std::uint64_t agg_cycles = 0;
};

class Engine {
 public:
  explicit Engine(ExecOptions options = ExecOptions());

  const ExecOptions& options() const { return options_; }

  /// Evaluates `filter` (null = pass-all) and returns the filter bit vector
  /// shaped for `shape_column`'s layout. `scan_cycles`, if non-null,
  /// receives the RDTSC cost of the scans (excluding reshaping).
  StatusOr<FilterBitVector> EvaluateFilter(
      const Table& table, const FilterExprPtr& filter,
      const std::string& shape_column, std::uint64_t* scan_cycles = nullptr);

  /// Runs the aggregation phase only, on a pre-computed filter. `rank` is
  /// used only by AggKind::kRank.
  StatusOr<QueryResult> Aggregate(const Table& table, AggKind kind,
                                  const std::string& column,
                                  const FilterBitVector& filter,
                                  std::uint64_t rank = 0);

  /// Full query: scan + aggregate, with per-phase timings.
  StatusOr<QueryResult> Execute(const Table& table, const Query& query);

  /// Runs the query with stats collection forced on and renders the
  /// EXPLAIN ANALYZE report (per-stage cycles, scan/aggregate work,
  /// dispatched kernel tier). `parse_cycles`, when nonzero, is folded in
  /// as the parse stage — the engine itself never sees SQL text, so the
  /// parser's cost arrives from the caller (see query_parser.h). If
  /// options().stats is set it receives the same QueryStats.
  StatusOr<std::string> ExplainAnalyze(const Table& table, const Query& query,
                                       std::uint64_t parse_cycles = 0);

  /// Executes several aggregates over one shared filter scan; results come
  /// back in the order of `query.aggregates`. Each result's scan_cycles is
  /// the (shared) scan cost; agg_cycles is per aggregate.
  StatusOr<std::vector<QueryResult>> ExecuteMulti(const Table& table,
                                                  const MultiQuery& query);

  /// Grouped aggregation in the wide-table style the paper adopts from
  /// [11]: the group-by column must be dictionary-encoded. Below the
  /// ExecOptions::groupby_threshold cardinality each group evaluates as
  /// `filter AND group_column == value` against per-code bit vectors built
  /// in one pass over the codes (the naive strategy); at or above it one
  /// morsel-driven pass with thread-local tables and radix spill computes
  /// every group at once (src/groupby/, the single-pass strategy). Returns
  /// one (group value, QueryResult) pair per non-empty group, ordered by
  /// group value; both strategies produce identical results.
  StatusOr<std::vector<std::pair<std::int64_t, QueryResult>>> ExecuteGroupBy(
      const Table& table, const Query& query,
      const std::string& group_column);

  // SQL three-valued filter state: `pass` marks rows where the predicate is
  // definitely TRUE, `unknown` rows where it is UNKNOWN (a NULL was
  // compared). Everything else is FALSE. Only `pass` rows survive a WHERE.
  struct TriState {
    FilterBitVector pass;
    FilterBitVector unknown;
  };

 private:
  /// Admits the query against options().governor for the duration of one
  /// public entry point and copies the session's scheduling stats into
  /// options().stats on exit. No-op when ungoverned.
  struct SessionScope;

  /// The per-call deadline budget as an absolute deadline (nullopt when
  /// unset). Computed once per public entry point so admission queueing
  /// and every execution phase share one deadline.
  std::optional<std::chrono::steady_clock::time_point> AbsoluteDeadline()
      const;
  /// Converts the per-call deadline budget into an absolute deadline and
  /// pairs it with the token. Called once at each public entry point so the
  /// whole query (all phases) shares one deadline.
  CancelContext MakeCancelContext() const;

  // The public entry points wrap these: the Internal variants carry the
  // whole execution, the wrappers add the telemetry epilogue
  // (FinishQuery) on success and error paths alike.
  StatusOr<QueryResult> ExecuteInternal(const Table& table,
                                        const Query& query);
  StatusOr<std::vector<QueryResult>> ExecuteMultiInternal(
      const Table& table, const MultiQuery& query);
  StatusOr<std::vector<std::pair<std::int64_t, QueryResult>>>
  ExecuteGroupByInternal(const Table& table, const Query& query,
                         const std::string& group_column);
  /// Telemetry epilogue shared by the public entry points: records the
  /// end-to-end latency and per-stage histograms and appends the query
  /// journal record (obs/journal.h). `timer` spans the whole entry
  /// point; `rows` is the entry point's result cardinality (0 on
  /// error).
  void FinishQuery(const char* entry, std::uint64_t fingerprint,
                   const obs::StageTimer& timer,
                   std::uint64_t start_unix_ns, const Status& status,
                   std::uint64_t rows);

  StatusOr<FilterBitVector> EvaluateFilterImpl(const Table& table,
                                               const FilterExprPtr& filter,
                                               const std::string& shape_column,
                                               std::uint64_t* scan_cycles,
                                               const CancelContext* cancel);
  StatusOr<QueryResult> AggregateImpl(const Table& table, AggKind kind,
                                      const std::string& column,
                                      const FilterBitVector& filter,
                                      std::uint64_t rank,
                                      const CancelContext* cancel);
  StatusOr<TriState> EvalExpr(const Table& table, const FilterExpr& expr,
                              const CancelContext* cancel);
  /// The naive GROUP BY strategy: per-code bit vectors scattered from the
  /// group column's codes in chunked passes (invariant work hoisted out of
  /// the per-group loop), then one bit-parallel aggregate per non-empty
  /// group.
  StatusOr<std::vector<std::pair<std::int64_t, QueryResult>>> NaiveGroupBy(
      const Table& table, const Query& query, const Table::Column& group,
      const Table::Column& agg, const FilterBitVector& base,
      std::uint64_t scan_cycles, const CancelContext& cancel);
  /// The single-pass GROUP BY strategy (src/groupby/): thread-local
  /// tables + radix spill + parallel merge on the session's scheduler or
  /// the private pool.
  StatusOr<std::vector<std::pair<std::int64_t, QueryResult>>>
  SinglePassGroupBy(const Table& table, const Query& query,
                    const Table::Column& group, const Table::Column& agg,
                    const FilterBitVector& base, std::uint64_t scan_cycles,
                    const CancelContext& cancel);
  StatusOr<TriState> ScanLeaf(const Table& table, const FilterExpr& leaf,
                              const CancelContext* cancel);
  /// Turns a dropped thread-pool task ("thread_pool/task" failpoint) into a
  /// Status so multi-threaded phases fail cleanly after the region joins.
  Status CheckPool();
  /// Surfaces the active session's latched error (scratch budget
  /// exhausted, dropped morsel) after a governed phase. Ok when
  /// ungoverned.
  Status CheckSession();

  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  /// Session of the governed entry point currently on this engine's call
  /// stack (engines are single-query objects; set/cleared by
  /// SessionScope).
  sched::QuerySession* session_ = nullptr;
};

/// Renders a filled QueryStats + QueryResult as the EXPLAIN ANALYZE text
/// (what Engine::ExplainAnalyze returns; exposed for shells that collect
/// the stats themselves).
std::string FormatExplainAnalyze(const obs::QueryStats& stats,
                                 const QueryResult& result);

}  // namespace icp

#endif  // ICP_ENGINE_ENGINE_H_
