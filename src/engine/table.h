// Table: a set of named, encoded, bit-packed columns.
//
// This is the wide-table abstraction the paper adopts from [11]/[12]: joins
// and group-bys are assumed to have been denormalized/materialized away, so
// every query is a filter scan over some columns plus an aggregate over one
// column. Each column chooses its layout (VBP/HBP/padded/naive), bit-group
// size and
// bit width at load time; the lanes == 4 SIMD packing of a column is built
// lazily the first time a SIMD execution needs it.

#ifndef ICP_ENGINE_TABLE_H_
#define ICP_ENGINE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "encode/column_encoder.h"
#include "layout/hbp_column.h"
#include "layout/layout.h"
#include "layout/naive_column.h"
#include "layout/padded_column.h"
#include "layout/vbp_column.h"
#include "util/status.h"

namespace icp {

/// Per-column storage configuration.
struct ColumnSpec {
  Layout layout = Layout::kVbp;
  /// Bit-group size; 0 = layout default (VBP: 4, HBP: analytic choice).
  int tau = 0;
  /// Code width; 0 = narrowest width that fits the value range.
  int bit_width = 0;
  /// Use an order-preserving dictionary instead of range encoding
  /// (for sparse domains; disables SUM/AVG decoding).
  bool dictionary = false;
};

class Table {
 public:
  Table() = default;

  /// Adds a column of raw values; they are encoded to unsigned codes and
  /// packed according to `spec`. All columns must have the same row count.
  Status AddColumn(const std::string& name,
                   const std::vector<std::int64_t>& values, ColumnSpec spec);

  /// Adds a nullable column: rows whose `valid` bit is false are NULL.
  /// NULLs are stored as code 0 but never pass a predicate and never
  /// contribute to an aggregate (the bit-slice validity technique of
  /// O'Neil & Quass [10], which the paper defers NULL handling to).
  Status AddNullableColumn(const std::string& name,
                           const std::vector<std::int64_t>& values,
                           const std::vector<bool>& valid, ColumnSpec spec);

  /// Adds a pre-encoded column (codes already in [0, 2^bit_width)). The
  /// encoder is the identity range encoder over [0, 2^bit_width).
  Status AddEncodedColumn(const std::string& name,
                          const std::vector<std::uint64_t>& codes,
                          int bit_width, ColumnSpec spec);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }
  std::vector<std::string> column_names() const;

  /// Column handle used by the engine.
  class Column {
   public:
    const std::string& name() const { return name_; }
    const ColumnSpec& spec() const { return spec_; }
    const ColumnEncoder& encoder() const { return encoder_; }
    int bit_width() const { return encoder_.bit_width(); }

    /// Tuples covered by one filter segment for this column's layout.
    int values_per_segment() const;

    const VbpColumn& vbp() const { return vbp_; }
    const HbpColumn& hbp() const { return hbp_; }
    const NaiveColumn& naive() const { return naive_; }
    const PaddedColumn& padded() const { return padded_; }

    /// Lazily-built SIMD (lanes == 4) packings.
    const VbpColumn& vbp_simd() const;
    const HbpColumn& hbp_simd() const;

    /// True if the column can contain NULLs.
    bool nullable() const { return nullable_; }
    /// Validity bit vector (1 = non-NULL), shaped like this column's filter
    /// segments. Only meaningful when nullable().
    const FilterBitVector& validity() const { return validity_; }

    /// The column's encoded codes (one per row); used by serialization.
    const std::vector<std::uint64_t>& codes() const { return codes_; }

    /// Packed size of the primary (scalar) packing, in bytes.
    std::size_t MemoryBytes() const;

   private:
    friend class Table;

    std::string name_;
    ColumnSpec spec_;
    ColumnEncoder encoder_;
    std::vector<std::uint64_t> codes_;  // kept for lazy SIMD packing
    VbpColumn vbp_;
    HbpColumn hbp_;
    NaiveColumn naive_;
    PaddedColumn padded_;
    mutable VbpColumn vbp_simd_;
    mutable HbpColumn hbp_simd_;
    mutable bool has_vbp_simd_ = false;
    mutable bool has_hbp_simd_ = false;
    bool nullable_ = false;
    FilterBitVector validity_;
  };

  /// Looks up a column by name.
  StatusOr<const Column*> GetColumn(const std::string& name) const;

 private:
  Status AddColumnImpl(const std::string& name, ColumnSpec spec,
                       ColumnEncoder encoder,
                       std::vector<std::uint64_t> codes,
                       const std::vector<bool>* valid = nullptr);

  std::size_t num_rows_ = 0;
  // unique_ptr keeps Column* handles stable across AddColumn calls.
  std::vector<std::unique_ptr<Column>> columns_;
};

}  // namespace icp

#endif  // ICP_ENGINE_TABLE_H_
