// A small SQL-subset parser for the engine's query shape:
//
//   SELECT <agg>(<column>) [WHERE <predicate>]
//
//   <agg>       := COUNT | SUM | AVG | MIN | MAX | MEDIAN | RANK(<column>, r)
//   <predicate> := disjunctions/conjunctions of
//                    col <op> <literal>            op: = != <> < <= > >=
//                    col BETWEEN <lit> AND <lit>
//                    col IN (<lit>, <lit>, ...)
//                    col IS [NOT] NULL
//                    NOT <pred> | ( <pred> )
//   <literal>   := integer | 'YYYY-MM-DD' date | decimal like 12.34
//                  (decimals parse at the scale they are written and are
//                   interpreted against cent-scaled columns, scale 2)
//
// Keywords are case-insensitive; identifiers are [A-Za-z_][A-Za-z0-9_]*.
// The parser produces an icp::Query; execution stays in icp::Engine.
// Errors report the offending position.

#ifndef ICP_ENGINE_QUERY_PARSER_H_
#define ICP_ENGINE_QUERY_PARSER_H_

#include <cstdint>
#include <string>

#include "engine/engine.h"
#include "util/status.h"

namespace icp {

/// Parses one SELECT statement into a Query.
StatusOr<Query> ParseQuery(const std::string& sql);

/// A full shell statement: a SELECT, optionally wrapped in EXPLAIN
/// ANALYZE. `parse_cycles` is the obs::StageTimer cost of this parse —
/// hand it to Engine::ExplainAnalyze so the report's parse row reflects
/// the statement that produced the query.
struct Statement {
  Query query;
  bool explain_analyze = false;
  std::uint64_t parse_cycles = 0;
};

/// Parses `[EXPLAIN ANALYZE] SELECT ...` (keywords case-insensitive).
StatusOr<Statement> ParseStatement(const std::string& sql);

/// Parses just a predicate (the text after WHERE) into an expression tree.
StatusOr<FilterExprPtr> ParsePredicate(const std::string& text);

}  // namespace icp

#endif  // ICP_ENGINE_QUERY_PARSER_H_
