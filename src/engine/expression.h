// Filter expression trees over value-domain constants (Section II-E).
//
// A leaf compares one column against int64 constants in the *original*
// value domain; the engine maps constants to the column's code domain with
// the order-preserving rules of ColumnEncoder, runs one bit-parallel scan
// per leaf, and combines the resulting filter bit vectors with AND/OR/NOT.

#ifndef ICP_ENGINE_EXPRESSION_H_
#define ICP_ENGINE_EXPRESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "scan/predicate.h"

namespace icp {

class FilterExpr;
using FilterExprPtr = std::shared_ptr<const FilterExpr>;

class FilterExpr {
 public:
  enum class Kind { kLeaf, kAnd, kOr, kNot, kIsNull, kIsNotNull };

  /// column <op> value (value2 only for kBetween).
  static FilterExprPtr Compare(std::string column, CompareOp op,
                               std::int64_t value, std::int64_t value2 = 0) {
    auto e = std::make_shared<FilterExpr>();
    e->kind_ = Kind::kLeaf;
    e->column_ = std::move(column);
    e->op_ = op;
    e->value_ = value;
    e->value2_ = value2;
    return e;
  }
  static FilterExprPtr Between(std::string column, std::int64_t lo,
                               std::int64_t hi) {
    return Compare(std::move(column), CompareOp::kBetween, lo, hi);
  }
  static FilterExprPtr And(std::vector<FilterExprPtr> children) {
    auto e = std::make_shared<FilterExpr>();
    e->kind_ = Kind::kAnd;
    e->children_ = std::move(children);
    return e;
  }
  static FilterExprPtr Or(std::vector<FilterExprPtr> children) {
    auto e = std::make_shared<FilterExpr>();
    e->kind_ = Kind::kOr;
    e->children_ = std::move(children);
    return e;
  }
  static FilterExprPtr Not(FilterExprPtr child) {
    auto e = std::make_shared<FilterExpr>();
    e->kind_ = Kind::kNot;
    e->children_ = {std::move(child)};
    return e;
  }
  /// SQL IS NULL / IS NOT NULL (never UNKNOWN).
  static FilterExprPtr IsNull(std::string column) {
    auto e = std::make_shared<FilterExpr>();
    e->kind_ = Kind::kIsNull;
    e->column_ = std::move(column);
    return e;
  }
  static FilterExprPtr IsNotNull(std::string column) {
    auto e = std::make_shared<FilterExpr>();
    e->kind_ = Kind::kIsNotNull;
    e->column_ = std::move(column);
    return e;
  }
  /// column IN {values}: expands to an OR of equality comparisons.
  static FilterExprPtr In(const std::string& column,
                          const std::vector<std::int64_t>& values) {
    std::vector<FilterExprPtr> children;
    children.reserve(values.size());
    for (std::int64_t v : values) {
      children.push_back(Compare(column, CompareOp::kEq, v));
    }
    return Or(std::move(children));
  }

  Kind kind() const { return kind_; }
  const std::string& column() const { return column_; }
  CompareOp op() const { return op_; }
  std::int64_t value() const { return value_; }
  std::int64_t value2() const { return value2_; }
  const std::vector<FilterExprPtr>& children() const { return children_; }

  /// Human-readable rendering, e.g. "(a < 4 AND b == 10)".
  std::string ToString() const;

 private:
  Kind kind_ = Kind::kLeaf;
  std::string column_;
  CompareOp op_ = CompareOp::kEq;
  std::int64_t value_ = 0;
  std::int64_t value2_ = 0;
  std::vector<FilterExprPtr> children_;
};

}  // namespace icp

#endif  // ICP_ENGINE_EXPRESSION_H_
