// Admission control and per-query sessions in front of the morsel
// scheduler: bounded deadline-aware queueing, load shedding with
// Status kResourceExhausted, and graceful degradation (shrink a query's
// parallelism before rejecting it).
//
// Policy (see docs/scheduler.md):
//   * up to max_concurrent queries hold sessions at once;
//   * the next max_queued arrivals wait in an earliest-deadline-first
//     queue (no-deadline arrivals order FIFO after all deadlines), each
//     waiter bounded by its own deadline and its cancellation token —
//     never an unbounded wait;
//   * arrivals beyond the queue are shed immediately with
//     kResourceExhausted; arrivals whose deadline already passed are
//     shed without dispatch (kDeadlineExceeded);
//   * a granted session's parallelism is the per-query cap divided by
//     the number of active queries (the degradation ladder), never
//     below 1;
//   * sessions meter driver scratch (partial-result arrays) against
//     max_scratch_bytes and latch kResourceExhausted when it overflows.

#ifndef ICP_SCHED_ADMISSION_H_
#define ICP_SCHED_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>

#include "parallel/executor.h"
#include "sched/scheduler.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace icp::sched {

struct AdmissionOptions {
  /// Queries allowed to hold sessions concurrently.
  int max_concurrent = 4;
  /// Bounded admission queue depth; arrivals beyond it are shed with
  /// kResourceExhausted instead of queueing unboundedly.
  int max_queued = 8;
  /// Per-query parallelism cap (slots, including the calling thread);
  /// 0 means scheduler workers + 1.
  int max_parallelism = 0;
  /// Per-query scratch budget in bytes, accounted at partial-result
  /// allocation by the drivers; 0 means unlimited.
  std::size_t max_scratch_bytes = 0;
};

class QuerySession;

/// One consistent view of the governor's load, for the admin plane and
/// shells (QueryGovernor::Snapshot).
struct GovernorSnapshot {
  /// Queries currently holding sessions.
  int active = 0;
  /// Queries waiting in the bounded admission queue.
  int queued = 0;
  /// The configured limits (AdmissionOptions).
  int max_concurrent = 0;
  int max_queued = 0;
  /// Parallelism the next admitted query would be granted at this load
  /// (the degradation ladder's current rung).
  int next_parallelism = 0;
};

/// Admits queries against AdmissionOptions and hands out QuerySessions
/// backed by one shared MorselScheduler. Thread-safe. Must outlive every
/// session it granted and be destroyed before the scheduler.
class QueryGovernor {
 public:
  QueryGovernor(MorselScheduler& scheduler, AdmissionOptions options);

  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  ~QueryGovernor();

  /// Admits one query, blocking in the bounded deadline-ordered queue
  /// when at capacity. Returns kResourceExhausted when the queue is full
  /// (or the "sched/admit" failpoint sheds), kDeadlineExceeded when
  /// `deadline` passed before a grant, kCancelled when `token` fired
  /// while queued. The returned session releases its slot on
  /// destruction.
  StatusOr<std::unique_ptr<QuerySession>> Admit(
      const CancellationToken& token,
      std::optional<std::chrono::steady_clock::time_point> deadline);

  int active() const;
  int queued() const;
  const AdmissionOptions& options() const { return options_; }
  MorselScheduler& scheduler() { return scheduler_; }

  /// Reads active/queued and the current degradation rung under one
  /// lock acquisition (active() then queued() can tear across a grant).
  GovernorSnapshot Snapshot() const;

  /// Snapshot() as a small JSON object — what sql_shell plugs into
  /// AdminServer::set_queries_provider for the /queries endpoint.
  std::string DescribeJson() const;

 private:
  friend class QuerySession;
  struct Waiter;

  /// Returns the parallelism granted at the current load (callers hold
  /// mu_): cap / active queries, never below 1.
  int GrantParallelismLocked() const ICP_REQUIRES(mu_);
  /// Session destruction: hand the slot to the next waiter or shrink
  /// active_.
  void Release();

  MorselScheduler& scheduler_;
  const AdmissionOptions options_;
  mutable Mutex mu_;
  int active_ ICP_GUARDED_BY(mu_) = 0;
  std::list<Waiter*> queue_ ICP_GUARDED_BY(mu_);
  std::uint64_t next_seq_ ICP_GUARDED_BY(mu_) = 0;
};

/// One admitted query's execution context: a ParallelExecutor that runs
/// regions on the shared morsel scheduler at the granted parallelism,
/// meters scratch against the per-query budget, and accumulates morsel
/// stats. Not thread-safe (one engine call uses it at a time); destroy
/// to release the admission slot.
class QuerySession final : public ParallelExecutor {
 public:
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  ~QuerySession() override;

  int max_slots() const override { return parallelism_; }

  /// Meters driver scratch; latches kResourceExhausted and returns false
  /// once the session's cumulative scratch exceeds the budget.
  bool AccountScratch(std::size_t bytes) override;

  void ParallelFor(std::size_t total, const CancelContext* cancel,
                   const std::function<void(int, std::size_t, std::size_t)>&
                       fn) override;

  /// OK while healthy; kResourceExhausted once the scratch budget
  /// overflowed, Internal once a morsel was dropped ("sched/dequeue").
  /// The engine checks this after every governed phase and discards the
  /// (degenerate) partial result on error.
  Status Error() const;

  int granted_parallelism() const { return parallelism_; }
  std::uint64_t queued_cycles() const { return queued_cycles_; }
  std::size_t scratch_bytes() const {
    // order: relaxed — monotone accounting counter; readers only need an
    // eventually-consistent total, never a synchronized snapshot.
    return scratch_bytes_.load(std::memory_order_relaxed);
  }
  const MorselStats& stats() const { return stats_; }

 private:
  friend class QueryGovernor;
  QuerySession(QueryGovernor* governor, int parallelism,
               std::uint64_t queued_cycles);

  enum ErrorKind : int { kNone = 0, kScratch = 1, kDropped = 2 };

  QueryGovernor* const governor_;
  const int parallelism_;
  const std::uint64_t queued_cycles_;
  std::atomic<std::size_t> scratch_bytes_{0};
  std::atomic<int> error_{kNone};
  MorselStats stats_;
};

}  // namespace icp::sched

#endif  // ICP_SCHED_ADMISSION_H_
