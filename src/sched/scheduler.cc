#include "sched/scheduler.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <deque>

#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace icp::sched {

// One parallel-for region: per-slot morsel deques plus the completion
// accounting. Shared-ptr held by the submitting caller and by every
// worker snapshot that touches it, so draining/finishing never races
// destruction.
struct MorselScheduler::Region {
  // Guards `shards` (pops, steals, drains). Morsel bodies run outside it.
  std::mutex mu;
  std::vector<std::deque<Morsel>> shards;
  int parallelism = 0;

  /// Bitmask of claimable slots; bit i free <=> no participant currently
  /// runs morsels as slot i.
  std::atomic<std::uint64_t> free_slots{0};
  /// Morsels still sitting in shards (fast emptiness probe).
  std::atomic<std::uint64_t> queued{0};
  /// Morsels not yet completed or drained; 0 <=> region done. Decrements
  /// use acq_rel so the caller's final acquire load sees all fn writes.
  std::atomic<std::uint64_t> remaining{0};

  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> drops{0};

  const CancelContext* cancel = nullptr;
  const std::function<void(int, std::size_t, std::size_t)>* fn = nullptr;

  std::mutex done_mu;
  std::condition_variable done_cv;
};

// Completes `n` morsels and pokes the region's caller (which may be
// waiting either for completion or for a freed slot). The empty critical
// section pairs with the caller's predicate check under done_mu.
void MorselScheduler::FinishAndNotify(Region& r, std::uint64_t n) {
  // order: acq_rel(region-remaining) — the release half publishes this
  // morsel's fn writes to the caller's final acquire load; the acquire
  // half chains prior participants' decrements.
  r.remaining.fetch_sub(n, std::memory_order_acq_rel);
  { std::lock_guard<std::mutex> lock(r.done_mu); }
  r.done_cv.notify_all();
}

MorselScheduler::MorselScheduler(int num_workers) {
  ICP_CHECK_GE(num_workers, 0);
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MorselScheduler::~MorselScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ICP_CHECK(regions_.empty());  // sessions must not outlive the scheduler
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

// cancellation: checks — polls the region's CancelContext before every
// morsel it runs and drains the queue once the context fires.
bool MorselScheduler::TryRunOneMorsel(Region& r) {
  // Claim a free slot; without one this participant cannot help (the
  // region is already running at its granted parallelism).
  // order: acquire(free-slots) — pairs with the release fetch_or/store
  // publishing the slot, so the claimer sees the region fully set up.
  std::uint64_t mask = r.free_slots.load(std::memory_order_acquire);
  int slot = 0;
  while (true) {
    if (mask == 0) return false;
    slot = std::countr_zero(mask);
    // order: acq_rel(free-slots) — acquire on the claim synchronizes
    // with the releasing side; release keeps the claim visible to the
    // next CAS contender. Failure reloads with acquire for the retry.
    if (r.free_slots.compare_exchange_weak(
            mask, mask & ~(std::uint64_t{1} << slot),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      break;
    }
  }

  Morsel m;
  bool got = false;
  bool stolen = false;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    std::deque<Morsel>& own = r.shards[static_cast<std::size_t>(slot)];
    if (!own.empty()) {
      m = own.front();
      own.pop_front();
      got = true;
    } else {
      for (int j = 1; j < r.parallelism && !got; ++j) {
        std::deque<Morsel>& other =
            r.shards[static_cast<std::size_t>((slot + j) % r.parallelism)];
        if (other.empty()) continue;
        // "sched/steal" simulates a lost steal race: the thief backs off
        // and the morsel stays queued for another participant.
        if (ICP_FAILPOINT("sched/steal")) continue;
        m = other.back();
        other.pop_back();
        got = true;
        stolen = true;
      }
    }
  }
  if (!got) {
    // order: release(free-slots) — returns the untouched slot; pairs
    // with the next claimer's acquire.
    r.free_slots.fetch_or(std::uint64_t{1} << slot,
                          std::memory_order_release);
    return false;
  }
  // order: relaxed — fast emptiness probe only; the authoritative count
  // is `remaining`, which carries the ordering.
  r.queued.fetch_sub(1, std::memory_order_relaxed);

  // Morsel-boundary cancellation: poll before running; once the context
  // fires, drain the whole queue so the query releases its cores within
  // one in-flight morsel per slot.
  if (r.cancel != nullptr && r.cancel->active() && r.cancel->ShouldStop()) {
    std::uint64_t cleared = 0;
    {
      std::lock_guard<std::mutex> lock(r.mu);
      // cancellation: exempt — this loop IS the post-cancel drain; it
      // discards queued morsels and must run to completion.
      for (std::deque<Morsel>& shard : r.shards) {
        cleared += shard.size();
        shard.clear();
      }
    }
    // order: relaxed — emptiness probe; `remaining` (below, via
    // FinishAndNotify) carries the ordering for completion.
    if (cleared > 0) r.queued.fetch_sub(cleared, std::memory_order_relaxed);
    // order: relaxed — statistics; read after the region joined.
    r.cancelled.fetch_add(cleared + 1, std::memory_order_relaxed);
    ICP_OBS_ADD(SchedMorselsCancelled, cleared + 1);
    // order: release(free-slots) — returns the slot after the drain;
    // pairs with the next claimer's acquire.
    r.free_slots.fetch_or(std::uint64_t{1} << slot,
                          std::memory_order_release);
    FinishAndNotify(r, cleared + 1);
    return true;
  }

  // "sched/dequeue" simulates a dispatch that loses its morsel (worker
  // death between pop and run): the morsel never executes but the region
  // still completes; the drop surfaces as Status Internal via the
  // session, mirroring ThreadPool::TakeTaskFailure.
  if (ICP_FAILPOINT("sched/dequeue")) {
    // order: relaxed — statistics; read after the region joined.
    r.drops.fetch_add(1, std::memory_order_relaxed);
    // order: release(free-slots) — returns the slot; pairs with the
    // next claimer's acquire.
    r.free_slots.fetch_or(std::uint64_t{1} << slot,
                          std::memory_order_release);
    FinishAndNotify(r, 1);
    return true;
  }

  {
    ICP_OBS_TRACE_SPAN("sched.morsel", slot);
    (*r.fn)(slot, m.begin, m.end);
  }
  if (stolen) {
    // order: relaxed — statistics; read after the region joined.
    r.steals.fetch_add(1, std::memory_order_relaxed);
    ICP_OBS_INCREMENT(SchedSteals);
  }
  ICP_OBS_INCREMENT(SchedMorselsCompleted);
  // order: release(free-slots) — returns the slot after running fn;
  // pairs with the next claimer's acquire.
  r.free_slots.fetch_or(std::uint64_t{1} << slot,
                        std::memory_order_release);
  FinishAndNotify(r, 1);
  return true;
}

void MorselScheduler::WorkerLoop() {
  std::size_t cursor = 0;
  std::vector<std::shared_ptr<Region>> snapshot;
  while (true) {
    std::uint64_t seen = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      snapshot = regions_;
      seen = epoch_;
    }
    bool did_work = false;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      Region& region = *snapshot[(cursor + i) % snapshot.size()];
      if (TryRunOneMorsel(region)) {
        did_work = true;
        // Rotate the scan start so K concurrent queries share this
        // worker at morsel granularity instead of one query hogging it.
        ++cursor;
        break;
      }
    }
    snapshot.clear();
    if (did_work) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    if (epoch_ != seen) continue;
    // The timeout is a liveness backstop: freed slots do not bump the
    // epoch, so without it a worker could sleep while work remains.
    cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void MorselScheduler::RunRegion(
    int parallelism, std::size_t total, const CancelContext* cancel,
    const std::function<void(int, std::size_t, std::size_t)>& fn,
    MorselStats* stats) {
  if (total == 0) return;
  const std::size_t num_morsels =
      (total + kMorselSegments - 1) / kMorselSegments;
  int p = std::clamp(parallelism, 1, kMaxRegionSlots);
  p = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(p), num_morsels));

  auto region = std::make_shared<Region>();
  region->parallelism = p;
  region->cancel = cancel;
  region->fn = &fn;
  region->shards.resize(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    // Contiguous pre-distribution: uncontended, the region touches
    // memory in the same order as the legacy static split.
    const auto [mb, me] = PartitionRange(num_morsels, p, i);
    for (std::size_t j = mb; j < me; ++j) {
      region->shards[static_cast<std::size_t>(i)].push_back(
          Morsel{j * kMorselSegments,
                 std::min(total, (j + 1) * kMorselSegments)});
    }
  }
  // order: relaxed — initialization before publication; the free_slots
  // release store below (and the regions_ mutex) publish these counts.
  region->queued.store(num_morsels, std::memory_order_relaxed);
  // order: relaxed — see `queued` above; published by free_slots.
  region->remaining.store(num_morsels, std::memory_order_relaxed);
  // order: release(free-slots) — publishes the fully built region
  // (shards, counters, fn) to the first claimer's acquire.
  region->free_slots.store(
      p == kMaxRegionSlots ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << p) - 1,
      std::memory_order_release);
  ICP_OBS_ADD(SchedMorselsDispatched, num_morsels);

  {
    std::lock_guard<std::mutex> lock(mu_);
    regions_.push_back(region);
    ++epoch_;
  }
  cv_.notify_all();

  // The caller participates, then waits for completion — re-engaging
  // whenever a slot frees while morsels remain queued.
  while (true) {
    while (TryRunOneMorsel(*region)) {
    }
    // order: acquire(region-remaining) — pairs with FinishAndNotify's
    // acq_rel decrement so the caller sees every morsel's fn writes.
    if (region->remaining.load(std::memory_order_acquire) == 0) break;
    std::unique_lock<std::mutex> lock(region->done_mu);
    region->done_cv.wait_for(
        lock, std::chrono::milliseconds(1), [&region] {
          // order: acquire(region-remaining) — same pairing as the
          // break check above; the wake predicate must not run ahead
          // of the finishing morsel's writes.
          return region->remaining.load(std::memory_order_acquire) == 0 ||
                 // order: relaxed — wake heuristics only; a stale read
                 // re-polls one wait_for tick later.
                 (region->queued.load(std::memory_order_relaxed) > 0 &&
                  region->free_slots.load(std::memory_order_relaxed) != 0);
        });
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    regions_.erase(std::find(regions_.begin(), regions_.end(), region));
  }

  if (stats != nullptr) {
    // order: relaxed — statistics reads after the acquire on
    // `remaining` already ordered every participant's writes.
    const std::uint64_t cancelled =
        region->cancelled.load(std::memory_order_relaxed);
    // order: relaxed — statistics read; see `cancelled` above.
    const std::uint64_t drops =
        region->drops.load(std::memory_order_relaxed);
    stats->dispatched += num_morsels;
    stats->completed += num_morsels - cancelled - drops;
    stats->cancelled += cancelled;
    // order: relaxed — statistics read; see `cancelled` above.
    stats->steals += region->steals.load(std::memory_order_relaxed);
    stats->dropped = stats->dropped || drops > 0;
  }
}

}  // namespace icp::sched
