#include "sched/admission.h"

#include <algorithm>
#include <condition_variable>
#include <string>

#include "obs/histogram.h"
#include "obs/obs.h"
#include "obs/stage_timer.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace icp::sched {

// A queued arrival. Lives on Admit's stack; every field is guarded by
// the governor's mu_, and Release notifies under that lock so the cv is
// never touched after the waiter returns.
struct QueryGovernor::Waiter {
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::uint64_t seq = 0;
  bool granted = false;
  std::condition_variable_any cv;

  // Earliest deadline first; no-deadline waiters order FIFO after every
  // deadline-carrying waiter.
  static bool OrdersBefore(const Waiter& a, const Waiter& b) {
    if (a.deadline.has_value() && b.deadline.has_value()) {
      if (*a.deadline != *b.deadline) return *a.deadline < *b.deadline;
      return a.seq < b.seq;
    }
    if (a.deadline.has_value()) return true;
    if (b.deadline.has_value()) return false;
    return a.seq < b.seq;
  }
};

QueryGovernor::QueryGovernor(MorselScheduler& scheduler,
                             AdmissionOptions options)
    : scheduler_(scheduler), options_(options) {
  ICP_CHECK_GE(options_.max_concurrent, 1);
  ICP_CHECK_GE(options_.max_queued, 0);
  ICP_CHECK_GE(options_.max_parallelism, 0);
}

QueryGovernor::~QueryGovernor() {
  MutexLock lock(mu_);
  // Sessions hold a governor pointer; destroying the governor under them
  // (or under queued waiters) is a lifetime bug, not load.
  ICP_CHECK(active_ == 0 && queue_.empty());
}

int QueryGovernor::active() const {
  MutexLock lock(mu_);
  return active_;
}

int QueryGovernor::queued() const {
  MutexLock lock(mu_);
  return static_cast<int>(queue_.size());
}

GovernorSnapshot QueryGovernor::Snapshot() const {
  GovernorSnapshot snap;
  snap.max_concurrent = options_.max_concurrent;
  snap.max_queued = options_.max_queued;
  MutexLock lock(mu_);
  snap.active = active_;
  snap.queued = static_cast<int>(queue_.size());
  snap.next_parallelism = GrantParallelismLocked();
  return snap;
}

std::string QueryGovernor::DescribeJson() const {
  const GovernorSnapshot snap = Snapshot();
  std::string out = "{";
  out += "\"active\": " + std::to_string(snap.active);
  out += ", \"queued\": " + std::to_string(snap.queued);
  out += ", \"max_concurrent\": " + std::to_string(snap.max_concurrent);
  out += ", \"max_queued\": " + std::to_string(snap.max_queued);
  out += ", \"next_parallelism\": " + std::to_string(snap.next_parallelism);
  out += "}";
  return out;
}

int QueryGovernor::GrantParallelismLocked() const {
  const int hardware = scheduler_.num_workers() + 1;  // + calling thread
  int cap = hardware;
  if (options_.max_parallelism > 0) {
    cap = std::min(cap, options_.max_parallelism);
  }
  cap = std::min(cap, kMaxRegionSlots);
  // Degradation ladder: at load, shrink per-query parallelism before
  // shedding anyone. With A active queries each gets ~cap/A slots.
  return std::max(1, cap / std::max(1, active_));
}

StatusOr<std::unique_ptr<QuerySession>> QueryGovernor::Admit(
    const CancellationToken& token,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  // "sched/admit" simulates the governor shedding at the gate (e.g. an
  // operator-forced brownout): callers must handle kResourceExhausted on
  // any admission, not only when the queue is observably full.
  if (ICP_FAILPOINT("sched/admit")) {
    ICP_OBS_INCREMENT(AdmitShed);
    return Status::ResourceExhausted("admission shed (injected overload)");
  }
  if (deadline.has_value() &&
      std::chrono::steady_clock::now() >= *deadline) {
    // Shed without dispatch: running an already-expired query only
    // wastes the cores other queries are waiting for.
    ICP_OBS_INCREMENT(AdmitShed);
    return Status::DeadlineExceeded("deadline expired before admission");
  }

  // The admission.wait span (and histogram) covers the whole gate, so
  // even immediate grants land a (near-zero) sample: tail latency in
  // admission.wait_cycles is comparable across load levels and the CI
  // trace sample always contains the span.
  const obs::StageTimer admit_timer;
  MutexLock lock(mu_);
  if (active_ < options_.max_concurrent) {
    ++active_;
    ICP_OBS_INCREMENT(AdmitAdmitted);
    ICP_OBS_HISTOGRAM_RECORD(AdmissionWaitCycles, 0);
    obs::RecordSpan("admission.wait", 0, admit_timer.start_cycles(),
                    admit_timer.ElapsedCycles());
    return std::unique_ptr<QuerySession>(
        new QuerySession(this, GrantParallelismLocked(), 0));
  }
  if (static_cast<int>(queue_.size()) >= options_.max_queued) {
    ICP_OBS_INCREMENT(AdmitShed);
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.max_queued) +
        " queued, " + std::to_string(options_.max_concurrent) +
        " running)");
  }

  Waiter waiter;
  waiter.deadline = deadline;
  waiter.seq = next_seq_++;
  auto pos = queue_.begin();
  while (pos != queue_.end() && !Waiter::OrdersBefore(waiter, **pos)) ++pos;
  queue_.insert(pos, &waiter);

  const obs::StageTimer queued_timer;
  while (!waiter.granted) {
    if (token.IsCancelRequested()) {
      queue_.remove(&waiter);
      // obs: loop-ok — exit path; runs at most once per admission.
      ICP_OBS_INCREMENT(AdmitShed);
      return Status::Cancelled("query cancelled while queued");
    }
    const auto now = std::chrono::steady_clock::now();
    if (waiter.deadline.has_value() && now >= *waiter.deadline) {
      queue_.remove(&waiter);
      // obs: loop-ok — exit path; runs at most once per admission.
      ICP_OBS_INCREMENT(AdmitShed);
      return Status::DeadlineExceeded("deadline expired while queued");
    }
    // 1ms polls bound the wait by the token even though RequestCancel
    // does not know about this cv; the deadline additionally caps each
    // wait directly.
    auto wake = now + std::chrono::milliseconds(1);
    if (waiter.deadline.has_value()) wake = std::min(wake, *waiter.deadline);
    waiter.cv.wait_until(lock, wake);
  }
  const std::uint64_t queued_cycles = queued_timer.ElapsedCycles();
  ICP_OBS_ADD(AdmitQueuedCycles, queued_cycles);
  ICP_OBS_INCREMENT(AdmitAdmitted);
  ICP_OBS_HISTOGRAM_RECORD(AdmissionWaitCycles, queued_cycles);
  obs::RecordSpan("admission.wait", 0, admit_timer.start_cycles(),
                  admit_timer.ElapsedCycles());
  return std::unique_ptr<QuerySession>(
      new QuerySession(this, GrantParallelismLocked(), queued_cycles));
}

void QueryGovernor::Release() {
  MutexLock lock(mu_);
  if (!queue_.empty()) {
    // The slot transfers to the earliest-deadline waiter; active_ stays.
    Waiter* next = queue_.front();
    queue_.pop_front();
    next->granted = true;
    next->cv.notify_one();
  } else {
    --active_;
  }
}

QuerySession::QuerySession(QueryGovernor* governor, int parallelism,
                           std::uint64_t queued_cycles)
    : governor_(governor),
      parallelism_(parallelism),
      queued_cycles_(queued_cycles) {}

QuerySession::~QuerySession() { governor_->Release(); }

bool QuerySession::AccountScratch(std::size_t bytes) {
  const std::size_t cap = governor_->options_.max_scratch_bytes;
  // order: relaxed — monotone accounting; each caller sees its own total
  // via the returned value, no cross-thread publication rides on it.
  const std::size_t used =
      scratch_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (cap != 0 && used > cap) {
    int expected = kNone;
    // order: relaxed — first-error latch; the value is a plain enum and
    // the engine reads it after the governed phase joined (the region
    // barrier supplies the ordering).
    error_.compare_exchange_strong(expected, kScratch,
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed);
    return false;
  }
  return true;
}

void QuerySession::ParallelFor(
    std::size_t total, const CancelContext* cancel,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  governor_->scheduler_.RunRegion(parallelism_, total, cancel, fn, &stats_);
  if (stats_.dropped) {
    int expected = kNone;
    // order: relaxed — first-error latch set after RunRegion joined; only
    // this session's thread reads it (QuerySession is single-caller).
    error_.compare_exchange_strong(expected, kDropped,
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed);
  }
}

Status QuerySession::Error() const {
  // order: relaxed — read on the session's single calling thread after
  // every governed phase joined; the latch value alone decides.
  switch (error_.load(std::memory_order_relaxed)) {
    case kScratch:
      return Status::ResourceExhausted(
          "per-query scratch budget exceeded (" +
          std::to_string(scratch_bytes()) + " bytes requested, cap " +
          std::to_string(governor_->options_.max_scratch_bytes) + ")");
    case kDropped:
      return Status::Internal("a scheduled morsel was dropped");
    default:
      return Status::Ok();
  }
}

}  // namespace icp::sched
