// Morsel-driven scheduler: a shared worker pool that executes parallel
// regions decomposed into small segment-range morsels (Leis et al.,
// SIGMOD'14), replacing the one-static-partition-per-worker split for
// governed queries.
//
// Each RunRegion call builds one region: `parallelism` shards, each a
// deque of morsels distributed contiguously (so an uncontended region
// touches memory in the same order as the static split). Participants —
// the calling thread plus any background workers — claim one of the
// region's slots via an atomic bitmask, pop their own shard from the
// front and steal from other shards' backs when theirs drains. Workers
// rotate across the active regions of *all* concurrent queries, so K
// queries share the cores at morsel granularity instead of fighting over
// whole pools.
//
// Cancellation composes per morsel: every dispatch polls the region's
// CancelContext first and a fired context drains the whole queue at
// once, so a cancelled or expired query frees its cores within one
// in-flight morsel per slot.
//
// Memory ordering: each completed morsel decrements the region's
// `remaining` counter with acq_rel; the caller's final acquire load of
// that counter synchronizes with every decrement (RMW release
// sequence), so all worker writes to the drivers' partial arrays are
// visible when RunRegion returns.

#ifndef ICP_SCHED_SCHEDULER_H_
#define ICP_SCHED_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/morsel.h"
#include "util/cancellation.h"

namespace icp::sched {

/// Per-region (and, accumulated, per-session) morsel accounting.
struct MorselStats {
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t steals = 0;
  /// True when a "sched/dequeue" failpoint dropped a morsel; the region
  /// still completes and the engine surfaces Status Internal.
  bool dropped = false;
};

/// Hard cap on per-region parallelism (slot bitmask width).
inline constexpr int kMaxRegionSlots = 64;

class MorselScheduler {
 public:
  /// Starts `num_workers` background workers (>= 0). With zero workers
  /// every region runs entirely on its calling thread — deterministic,
  /// which the scheduler tests exploit.
  explicit MorselScheduler(int num_workers);

  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  /// Joins the workers. No region may be in flight (every QueryGovernor
  /// and QuerySession built on this scheduler must be destroyed first).
  ~MorselScheduler();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(slot, begin, end) over [0, total) decomposed into morsels of
  /// kMorselSegments, with at most `parallelism` concurrent slots
  /// (clamped to [1, kMaxRegionSlots] and to the morsel count). The
  /// calling thread participates and the call blocks until every morsel
  /// completed or drained. `stats`, when non-null, is accumulated into.
  void RunRegion(int parallelism, std::size_t total,
                 const CancelContext* cancel,
                 const std::function<void(int, std::size_t, std::size_t)>& fn,
                 MorselStats* stats);

 private:
  struct Region;

  void WorkerLoop();
  /// Claims a slot of `region` and runs (or drains) one morsel. Returns
  /// false when the region offers nothing: no free slot or empty queue.
  bool TryRunOneMorsel(Region& region);
  /// Completes `n` morsels and wakes the region's caller.
  static void FinishAndNotify(Region& region, std::uint64_t n);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Region>> regions_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace icp::sched

#endif  // ICP_SCHED_SCHEDULER_H_
