// A morsel: one small contiguous segment range, the scheduling unit of
// the shared worker pool (Leis et al., SIGMOD'14).

#ifndef ICP_SCHED_MORSEL_H_
#define ICP_SCHED_MORSEL_H_

#include <cstddef>

namespace icp::sched {

/// Half-open segment range [begin, end) of one parallel-for region.
struct Morsel {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Segments per morsel. 1024 segments is ~64K tuples under VBP — tens of
/// microseconds of kernel work per morsel, so:
///   * worst-case cancellation latency is one in-flight morsel per slot
///     (the queue itself drains instantly);
///   * the per-morsel dispatch cost (one mutex-guarded deque pop plus a
///     std::function call) is amortized over enough kernel work to keep
///     single-query overhead versus the static split under the 5% guard
///     in CI (see docs/scheduler.md and EXPERIMENTS.md);
///   * a 1M-row column still yields dozens of morsels, enough for
///     stealing to rebalance skewed shards.
inline constexpr std::size_t kMorselSegments = 1024;

}  // namespace icp::sched

#endif  // ICP_SCHED_MORSEL_H_
