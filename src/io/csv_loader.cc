#include "io/csv_loader.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "obs/obs.h"
#include "util/backoff.h"
#include "util/dates.h"
#include "util/failpoint.h"

namespace icp::io {
namespace {

Status ParseError(std::size_t line, const std::string& what) {
  return Status::InvalidArgument("CSV line " + std::to_string(line) + ": " +
                                 what);
}

StatusOr<std::int64_t> ParseInt(const std::string& field) {
  std::int64_t value = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not an integer: '" + field + "'");
  }
  return value;
}

// Splits one line on `delimiter` (no quoting — column-store exports are
// plain delimited numerics; quoted-string support is out of scope).
std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(delimiter, start);
    if (pos == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

StatusOr<Table> LoadFromStream(std::istream& in,
                               const std::vector<CsvColumnSpec>& columns,
                               const CsvOptions& options) {
  if (columns.empty()) {
    return Status::InvalidArgument("no column specs given");
  }
  std::vector<std::vector<std::int64_t>> values(columns.size());
  std::vector<std::vector<bool>> valid(columns.size());
  std::vector<bool> has_null(columns.size(), false);

  std::string line;
  std::size_t line_number = 0;
  std::size_t rows = 0;
  if (options.has_header && std::getline(in, line)) ++line_number;
  while (std::getline(in, line)) {
    ++line_number;
    // "csv_loader/read" simulates a stream error mid-file (bad sector,
    // truncated pipe): the loader must surface a Status, not a partial table.
    if (ICP_FAILPOINT("csv_loader/read")) {
      return Status::Internal("CSV read failed at line " +
                              std::to_string(line_number));
    }
    // "csv_loader/read_transient" simulates a retryable stream error; the
    // already-buffered line is re-processed after a jittered backoff, and
    // exhaustion fails like the hard error above.
    int attempt = 1;
    while (ICP_FAILPOINT("csv_loader/read_transient")) {
      if (attempt >= kIoMaxAttempts) {
        return Status::Internal("CSV read failed at line " +
                                std::to_string(line_number) + " after " +
                                std::to_string(kIoMaxAttempts) + " attempts");
      }
      // obs: loop-ok — bounded retry loop (at most kIoMaxAttempts
      // iterations), not a data-plane word loop.
      ICP_OBS_INCREMENT(IoRetries);
      SleepForRetry(attempt++);
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (options.max_rows != 0 && rows >= options.max_rows) break;
    const std::vector<std::string> fields =
        SplitLine(line, options.delimiter);
    if (fields.size() != columns.size()) {
      return ParseError(line_number,
                        "expected " + std::to_string(columns.size()) +
                            " fields, found " +
                            std::to_string(fields.size()));
    }
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const CsvColumnSpec& spec = columns[c];
      if (spec.type == CsvColumnSpec::Type::kSkip) continue;
      if (fields[c].empty()) {
        values[c].push_back(0);
        valid[c].push_back(false);
        has_null[c] = true;
        continue;
      }
      StatusOr<std::int64_t> parsed = [&]() -> StatusOr<std::int64_t> {
        switch (spec.type) {
          case CsvColumnSpec::Type::kInt64:
            return ParseInt(fields[c]);
          case CsvColumnSpec::Type::kDecimal:
            return ParseDecimal(fields[c], spec.scale);
          case CsvColumnSpec::Type::kDate:
            return ParseDate(fields[c]);
          case CsvColumnSpec::Type::kSkip:
            return std::int64_t{0};
        }
        return Status::Internal("bad column type");
      }();
      if (!parsed.ok()) {
        // Keep the original code (OutOfRange vs InvalidArgument) so callers
        // can tell overflow from malformed input; prepend the line number.
        return Status(parsed.status().code(),
                      "CSV line " + std::to_string(line_number) +
                          ": column '" + spec.name + "': " +
                          parsed.status().message());
      }
      values[c].push_back(*parsed);
      valid[c].push_back(true);
    }
    ++rows;
  }
  if (rows == 0) {
    return Status::InvalidArgument("CSV contains no data rows");
  }

  Table table;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const CsvColumnSpec& spec = columns[c];
    if (spec.type == CsvColumnSpec::Type::kSkip) continue;
    const Status status =
        has_null[c]
            ? table.AddNullableColumn(spec.name, values[c], valid[c],
                                      spec.storage)
            : table.AddColumn(spec.name, values[c], spec.storage);
    ICP_RETURN_IF_ERROR(status);
  }
  return table;
}

}  // namespace

StatusOr<std::int64_t> ParseDate(const std::string& field) {
  // Strict YYYY-MM-DD.
  if (field.size() != 10 || field[4] != '-' || field[7] != '-') {
    return Status::InvalidArgument("not a date: '" + field + "'");
  }
  auto digits = [&](int from, int count) -> int {
    int v = 0;
    for (int i = from; i < from + count; ++i) {
      if (field[i] < '0' || field[i] > '9') return -1;
      v = v * 10 + (field[i] - '0');
    }
    return v;
  };
  const int y = digits(0, 4);
  const int m = digits(5, 2);
  const int d = digits(8, 2);
  if (y < 0 || m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("not a date: '" + field + "'");
  }
  return DaysFromCivil(y, m, d);
}

StatusOr<std::int64_t> ParseDecimal(const std::string& field, int scale) {
  if (scale < 0 || scale > 18) {
    return Status::InvalidArgument("unsupported decimal scale");
  }
  const std::size_t dot = field.find('.');
  const std::string integral =
      dot == std::string::npos ? field : field.substr(0, dot);
  std::string fractional =
      dot == std::string::npos ? "" : field.substr(dot + 1);
  if (static_cast<int>(fractional.size()) > scale) {
    return Status::InvalidArgument("too many fractional digits: '" + field +
                                   "'");
  }
  fractional.resize(static_cast<std::size_t>(scale), '0');

  auto int_part = ParseInt(integral.empty() ? "0" : integral);
  ICP_RETURN_IF_ERROR(int_part.status());
  std::int64_t frac_part = 0;
  if (!fractional.empty()) {
    auto parsed = ParseInt(fractional);
    ICP_RETURN_IF_ERROR(parsed.status());
    if (*parsed < 0) {
      return Status::InvalidArgument("bad decimal: '" + field + "'");
    }
    frac_part = *parsed;
  }
  std::int64_t magnitude = 1;
  for (int i = 0; i < scale; ++i) magnitude *= 10;
  const bool negative = !integral.empty() && integral[0] == '-';
  // The scaled value can exceed int64 even when both parts parsed cleanly
  // (e.g. 9223372036854775.808 at scale 3).
  std::int64_t scaled = 0;
  std::int64_t result = 0;
  if (__builtin_mul_overflow(*int_part, magnitude, &scaled) ||
      __builtin_add_overflow(scaled, negative ? -frac_part : frac_part,
                             &result)) {
    return Status::OutOfRange("decimal overflows int64: '" + field + "'");
  }
  return result;
}

StatusOr<Table> LoadCsv(const std::string& path,
                        const std::vector<CsvColumnSpec>& columns,
                        const CsvOptions& options) {
  std::ifstream in(path);
  // "csv_loader/open" simulates an open failure (permissions, missing
  // mount) even when the file exists.
  if (ICP_FAILPOINT("csv_loader/open") || !in.good()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return LoadFromStream(in, columns, options);
}

StatusOr<Table> LoadCsvFromString(const std::string& text,
                                  const std::vector<CsvColumnSpec>& columns,
                                  const CsvOptions& options) {
  std::istringstream in(text);
  return LoadFromStream(in, columns, options);
}

}  // namespace icp::io
