#include "io/table_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/bits.h"

namespace icp::io {
namespace {

constexpr char kMagic[8] = {'I', 'C', 'P', 'T', 'B', 'L', '0', '1'};

// Streaming FNV-1a (64-bit).
class Checksum {
 public:
  void Update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return out_.good(); }

  void Raw(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    checksum_.Update(data, size);
  }
  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U32(std::uint32_t v) { Raw(&v, 4); }
  void U64(std::uint64_t v) { Raw(&v, 8); }
  void I32(std::int32_t v) { Raw(&v, 4); }
  void I64(std::int64_t v) { Raw(&v, 8); }
  void String(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Finish() {
    const std::uint64_t sum = checksum_.value();
    out_.write(reinterpret_cast<const char*>(&sum), 8);
    out_.flush();
  }

 private:
  std::ofstream out_;
  Checksum checksum_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool ok() const { return !failed_ && in_.good(); }
  bool failed() const { return failed_; }

  void Raw(void* data, std::size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (in_.gcount() != static_cast<std::streamsize>(size)) {
      failed_ = true;
      std::memset(data, 0, size);
      return;
    }
    checksum_.Update(data, size);
  }
  std::uint8_t U8() {
    std::uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  std::int32_t I32() {
    std::int32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  std::int64_t I64() {
    std::int64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  std::string String(std::size_t max_size = 1 << 20) {
    const std::uint32_t size = U32();
    if (size > max_size) {
      failed_ = true;
      return {};
    }
    std::string s(size, '\0');
    Raw(s.data(), size);
    return s;
  }

  /// Verifies the trailing checksum (call after all payload reads).
  bool VerifyChecksum() {
    const std::uint64_t expected = checksum_.value();
    std::uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), 8);
    return in_.gcount() == 8 && stored == expected;
  }

 private:
  std::ifstream in_;
  Checksum checksum_;
  bool failed_ = false;
};

// Packs `codes` at `k` bits per code into an MSB-first word stream.
std::vector<Word> PackCodes(const std::vector<std::uint64_t>& codes, int k) {
  std::vector<Word> words;
  words.reserve(CeilDiv(codes.size() * static_cast<std::size_t>(k), 64));
  UInt128 window = 0;
  int pending = 0;
  for (std::uint64_t code : codes) {
    window |= static_cast<UInt128>(code) << (128 - k - pending);
    pending += k;
    while (pending >= 64) {
      words.push_back(static_cast<Word>(window >> 64));
      window <<= 64;
      pending -= 64;
    }
  }
  if (pending > 0) words.push_back(static_cast<Word>(window >> 64));
  return words;
}

std::vector<std::uint64_t> UnpackCodes(const std::vector<Word>& words, int k,
                                       std::size_t count) {
  std::vector<std::uint64_t> codes(count);
  UInt128 window = 0;
  int pending = 0;
  std::size_t next_word = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (pending < k) {
      window |= static_cast<UInt128>(
                    next_word < words.size() ? words[next_word] : 0)
                << (64 - pending);
      ++next_word;
      pending += 64;
    }
    codes[i] = static_cast<std::uint64_t>(window >> (128 - k)) & LowMask(k);
    window <<= k;
    pending -= k;
  }
  return codes;
}

}  // namespace

Status WriteTable(const Table& table, const std::string& path) {
  Writer w(path);
  if (!w.ok()) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  // Magic is outside the checksum so corrupted files fail fast on it.
  w.Raw(kMagic, sizeof kMagic);
  w.U64(table.num_rows());
  w.U32(static_cast<std::uint32_t>(table.num_columns()));
  for (const std::string& name : table.column_names()) {
    const Table::Column& column = **table.GetColumn(name);
    w.String(name);
    w.U8(static_cast<std::uint8_t>(column.spec().layout));
    w.U8(column.encoder().is_dictionary() ? 1 : 0);
    w.U8(column.nullable() ? 1 : 0);
    w.U8(0);
    w.I32(column.spec().tau);
    w.I32(column.bit_width());
    if (column.encoder().is_dictionary()) {
      const std::uint64_t count = column.encoder().num_codes();
      w.U64(count);
      for (std::uint64_t c = 0; c < count; ++c) {
        w.I64(column.encoder().Decode(c));
      }
    } else {
      w.I64(column.encoder().min_value());
      w.I64(column.encoder().max_value());
    }
    const std::vector<Word> packed =
        PackCodes(column.codes(), column.bit_width());
    w.U64(packed.size());
    w.Raw(packed.data(), packed.size() * sizeof(Word));
    if (column.nullable()) {
      const FilterBitVector dense =
          column.validity().Reshape(kWordBits);  // canonical dense bitmap
      w.U64(dense.num_segments());
      w.Raw(dense.words(), dense.num_segments() * sizeof(Word));
    }
  }
  w.Finish();
  if (!w.ok()) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

StatusOr<Table> ReadTable(const std::string& path) {
  Reader r(path);
  if (!r.ok()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  char magic[8];
  r.Raw(magic, sizeof magic);
  if (r.failed() || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an ICPTBL01 file");
  }
  const std::uint64_t num_rows = r.U64();
  const std::uint32_t num_columns = r.U32();
  if (r.failed() || num_rows == 0 || num_columns == 0 ||
      num_columns > 100000) {
    return Status::InvalidArgument("corrupt table header");
  }

  Table table;
  for (std::uint32_t c = 0; c < num_columns; ++c) {
    const std::string name = r.String();
    ColumnSpec spec;
    const std::uint8_t layout = r.U8();
    if (layout > 3) return Status::InvalidArgument("corrupt layout byte");
    spec.layout = static_cast<Layout>(layout);
    spec.dictionary = r.U8() != 0;
    const bool nullable = r.U8() != 0;
    r.U8();
    spec.tau = r.I32();
    const std::int32_t bit_width = r.I32();
    if (r.failed() || bit_width < 1 || bit_width > 63) {
      return Status::InvalidArgument("corrupt column header for '" + name +
                                     "'");
    }

    ColumnEncoder encoder;
    if (spec.dictionary) {
      const std::uint64_t count = r.U64();
      if (r.failed() || count == 0 || count > num_rows + (1u << 20)) {
        return Status::InvalidArgument("corrupt dictionary for '" + name +
                                       "'");
      }
      std::vector<std::int64_t> entries(count);
      for (auto& e : entries) e = r.I64();
      encoder = ColumnEncoder::ForDictionary(entries);
    } else {
      const std::int64_t lo = r.I64();
      const std::int64_t hi = r.I64();
      if (r.failed() || lo > hi) {
        return Status::InvalidArgument("corrupt range for '" + name + "'");
      }
      encoder = ColumnEncoder::ForRangeWithWidth(lo, hi, bit_width);
      spec.bit_width = bit_width;
    }

    const std::uint64_t word_count = r.U64();
    const std::uint64_t expected_words =
        CeilDiv(num_rows * static_cast<std::uint64_t>(bit_width), 64);
    if (r.failed() || word_count != expected_words) {
      return Status::InvalidArgument("corrupt code stream for '" + name +
                                     "'");
    }
    std::vector<Word> packed(word_count);
    r.Raw(packed.data(), packed.size() * sizeof(Word));
    const std::vector<std::uint64_t> codes =
        UnpackCodes(packed, bit_width, num_rows);

    std::vector<std::int64_t> values(num_rows);
    const std::uint64_t max_code = encoder.num_codes() - 1;
    for (std::size_t i = 0; i < num_rows; ++i) {
      if (codes[i] > max_code) {
        return Status::InvalidArgument("code out of domain in '" + name +
                                       "'");
      }
      values[i] = encoder.Decode(codes[i]);
    }

    Status status;
    if (nullable) {
      const std::uint64_t bitmap_words = r.U64();
      if (r.failed() || bitmap_words != CeilDiv(num_rows, 64)) {
        return Status::InvalidArgument("corrupt validity bitmap for '" +
                                       name + "'");
      }
      FilterBitVector dense(num_rows, kWordBits);
      r.Raw(dense.words(), bitmap_words * sizeof(Word));
      std::vector<bool> valid(num_rows);
      for (std::size_t i = 0; i < num_rows; ++i) valid[i] = dense.GetBit(i);
      status = table.AddNullableColumn(name, values, valid, spec);
    } else {
      status = table.AddColumn(name, values, spec);
    }
    ICP_RETURN_IF_ERROR(status);
  }
  if (r.failed()) return Status::InvalidArgument("truncated file");
  if (!r.VerifyChecksum()) {
    return Status::InvalidArgument("checksum mismatch in '" + path + "'");
  }
  return table;
}

}  // namespace icp::io
