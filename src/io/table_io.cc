#include "io/table_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "obs/obs.h"
#include "util/backoff.h"
#include "util/bits.h"
#include "util/failpoint.h"

namespace icp::io {
namespace {

constexpr char kMagic[8] = {'I', 'C', 'P', 'T', 'B', 'L', '0', '1'};

// Streaming FNV-1a (64-bit).
class Checksum {
 public:
  void Update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return out_.good(); }

  void Raw(const void* data, std::size_t size) {
    // "table_io/write" simulates a short/failed write (disk full, I/O
    // error): the stream goes bad and WriteTable discards the temp file.
    if (ICP_FAILPOINT("table_io/write")) {
      out_.setstate(std::ios::badbit);
      return;
    }
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    checksum_.Update(data, size);
  }
  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U32(std::uint32_t v) { Raw(&v, 4); }
  void U64(std::uint64_t v) { Raw(&v, 8); }
  void I32(std::int32_t v) { Raw(&v, 4); }
  void I64(std::int64_t v) { Raw(&v, 8); }
  void String(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Finish() {
    const std::uint64_t sum = checksum_.value();
    out_.write(reinterpret_cast<const char*>(&sum), 8);
    out_.flush();
  }
  void Close() { out_.close(); }

 private:
  std::ofstream out_;
  Checksum checksum_;
};

// fsync of an already-written file by path. Returns false on any failure
// (or when the "table_io/fsync" failpoint fires).
bool SyncFile(const std::string& path) {
  if (ICP_FAILPOINT("table_io/fsync")) return false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// fsync of the directory containing `path`, making the rename durable.
bool SyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary) {
    if (in_.good()) {
      in_.seekg(0, std::ios::end);
      const auto end = in_.tellg();
      file_size_ = end < 0 ? 0 : static_cast<std::uint64_t>(end);
      in_.seekg(0, std::ios::beg);
    }
  }

  bool ok() const { return !failed_ && in_.good(); }
  bool failed() const { return failed_; }

  /// Bytes of file left unread. Every length/count field must be checked
  /// against this before allocating, so a corrupt count can never trigger a
  /// huge allocation or an unbounded read.
  std::uint64_t remaining() const {
    return consumed_ <= file_size_ ? file_size_ - consumed_ : 0;
  }

  void Raw(void* data, std::size_t size) {
    // "table_io/read" simulates an I/O error mid-file (bad sector, NFS
    // hiccup): the read fails exactly like a truncated file.
    if (ICP_FAILPOINT("table_io/read")) {
      failed_ = true;
      std::memset(data, 0, size);
      return;
    }
    // "table_io/read_transient" simulates a retryable error (EINTR, NFS
    // timeout): re-reading the same bytes is idempotent, so retry with
    // jittered backoff up to kIoMaxAttempts before failing like a hard
    // error.
    int attempt = 1;
    while (ICP_FAILPOINT("table_io/read_transient")) {
      if (attempt >= kIoMaxAttempts) {
        failed_ = true;
        std::memset(data, 0, size);
        return;
      }
      // obs: loop-ok — bounded retry loop (at most kIoMaxAttempts
      // iterations), not a data-plane word loop.
      ICP_OBS_INCREMENT(IoRetries);
      SleepForRetry(attempt++);
    }
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (in_.gcount() != static_cast<std::streamsize>(size)) {
      failed_ = true;
      std::memset(data, 0, size);
      return;
    }
    consumed_ += size;
    checksum_.Update(data, size);
  }
  std::uint8_t U8() {
    std::uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  std::int32_t I32() {
    std::int32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  std::int64_t I64() {
    std::int64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  std::string String(std::size_t max_size = 1 << 20) {
    const std::uint32_t size = U32();
    if (size > max_size || size > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(size, '\0');
    Raw(s.data(), size);
    return s;
  }

  /// Verifies the trailing checksum (call after all payload reads).
  bool VerifyChecksum() {
    const std::uint64_t expected = checksum_.value();
    std::uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), 8);
    return in_.gcount() == 8 && stored == expected;
  }

 private:
  std::ifstream in_;
  Checksum checksum_;
  std::uint64_t file_size_ = 0;
  std::uint64_t consumed_ = 0;
  bool failed_ = false;
};

// Packs `codes` at `k` bits per code into an MSB-first word stream.
std::vector<Word> PackCodes(const std::vector<std::uint64_t>& codes, int k) {
  std::vector<Word> words;
  words.reserve(CeilDiv(codes.size() * static_cast<std::size_t>(k), 64));
  UInt128 window = 0;
  int pending = 0;
  for (std::uint64_t code : codes) {
    window |= static_cast<UInt128>(code) << (128 - k - pending);
    pending += k;
    while (pending >= 64) {
      words.push_back(static_cast<Word>(window >> 64));
      window <<= 64;
      pending -= 64;
    }
  }
  if (pending > 0) words.push_back(static_cast<Word>(window >> 64));
  return words;
}

std::vector<std::uint64_t> UnpackCodes(const std::vector<Word>& words, int k,
                                       std::size_t count) {
  std::vector<std::uint64_t> codes(count);
  UInt128 window = 0;
  int pending = 0;
  std::size_t next_word = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (pending < k) {
      window |= static_cast<UInt128>(
                    next_word < words.size() ? words[next_word] : 0)
                << (64 - pending);
      ++next_word;
      pending += 64;
    }
    codes[i] = static_cast<std::uint64_t>(window >> (128 - k)) & LowMask(k);
    window <<= k;
    pending -= k;
  }
  return codes;
}

// Serializes the table into `w` (everything between the magic and the
// checksum trailer).
void WritePayload(const Table& table, Writer& w) {
  // Magic is outside the checksum so corrupted files fail fast on it.
  w.Raw(kMagic, sizeof kMagic);
  w.U64(table.num_rows());
  w.U32(static_cast<std::uint32_t>(table.num_columns()));
  for (const std::string& name : table.column_names()) {
    const Table::Column& column = **table.GetColumn(name);
    w.String(name);
    w.U8(static_cast<std::uint8_t>(column.spec().layout));
    w.U8(column.encoder().is_dictionary() ? 1 : 0);
    w.U8(column.nullable() ? 1 : 0);
    w.U8(0);
    w.I32(column.spec().tau);
    w.I32(column.bit_width());
    if (column.encoder().is_dictionary()) {
      const std::uint64_t count = column.encoder().num_codes();
      w.U64(count);
      for (std::uint64_t c = 0; c < count; ++c) {
        w.I64(column.encoder().Decode(c));
      }
    } else {
      w.I64(column.encoder().min_value());
      w.I64(column.encoder().max_value());
    }
    const std::vector<Word> packed =
        PackCodes(column.codes(), column.bit_width());
    w.U64(packed.size());
    w.Raw(packed.data(), packed.size() * sizeof(Word));
    if (column.nullable()) {
      const FilterBitVector dense =
          column.validity().Reshape(kWordBits);  // canonical dense bitmap
      w.U64(dense.num_segments());
      w.Raw(dense.words(), dense.num_segments() * sizeof(Word));
    }
  }
  w.Finish();
}

}  // namespace

Status WriteTable(const Table& table, const std::string& path) {
  // Crash-safe protocol: write a temp file in the same directory, fsync it,
  // rename over the target, fsync the directory. A crash or failure at any
  // step leaves `path` either absent or a complete previous version — never
  // a partial file. The temp file is removed on every failure path.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    Writer w(tmp);
    if (!w.ok()) {
      return Status::InvalidArgument("cannot open '" + tmp +
                                     "' for writing");
    }
    WritePayload(table, w);
    if (!w.ok()) {
      w.Close();
      std::remove(tmp.c_str());
      return Status::Internal("write to '" + tmp + "' failed");
    }
    w.Close();
  }
  if (!SyncFile(tmp)) {
    std::remove(tmp.c_str());
    return Status::Internal("fsync of '" + tmp + "' failed");
  }
  if (ICP_FAILPOINT("table_io/rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename of '" + tmp + "' to '" + path +
                            "' failed");
  }
  // Directory sync failure after a successful rename is reported but the
  // data is already visible under `path`; there is no partial file to clean.
  if (!SyncParentDir(path)) {
    return Status::Internal("directory fsync after renaming '" + path +
                            "' failed");
  }
  return Status::Ok();
}

StatusOr<Table> ReadTable(const std::string& path) {
  Reader r(path);
  if (!r.ok()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  char magic[8];
  r.Raw(magic, sizeof magic);
  if (r.failed() || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an ICPTBL01 file");
  }
  const std::uint64_t num_rows = r.U64();
  const std::uint32_t num_columns = r.U32();
  // Each row of each column occupies at least one bit of the packed code
  // stream, so num_rows is bounded by 8x the bytes left in the file; this
  // rejects absurd counts before any allocation sized from them.
  if (r.failed() || num_rows == 0 || num_columns == 0 ||
      num_columns > 100000 || num_rows / 8 > r.remaining()) {
    return Status::InvalidArgument("corrupt table header");
  }

  Table table;
  for (std::uint32_t c = 0; c < num_columns; ++c) {
    const std::string name = r.String();
    ColumnSpec spec;
    const std::uint8_t layout = r.U8();
    if (layout > 3) return Status::InvalidArgument("corrupt layout byte");
    spec.layout = static_cast<Layout>(layout);
    spec.dictionary = r.U8() != 0;
    const bool nullable = r.U8() != 0;
    r.U8();
    spec.tau = r.I32();
    const std::int32_t bit_width = r.I32();
    // tau 0 means "layout default"; the packers require 1 <= tau <= 63
    // otherwise (they ICP_CHECK it, so reject here rather than abort).
    if (r.failed() || bit_width < 1 || bit_width > 63 || spec.tau < 0 ||
        spec.tau > 63) {
      return Status::InvalidArgument("corrupt column header for '" + name +
                                     "'");
    }

    ColumnEncoder encoder;
    if (spec.dictionary) {
      const std::uint64_t count = r.U64();
      if (r.failed() || count == 0 || count > num_rows + (1u << 20) ||
          count * 8 > r.remaining()) {
        return Status::InvalidArgument("corrupt dictionary for '" + name +
                                       "'");
      }
      std::vector<std::int64_t> entries(count);
      for (auto& e : entries) e = r.I64();
      if (r.failed()) {
        return Status::InvalidArgument("corrupt dictionary for '" + name +
                                       "'");
      }
      encoder = ColumnEncoder::ForDictionary(entries);
    } else {
      const std::int64_t lo = r.I64();
      const std::int64_t hi = r.I64();
      // ForRangeWithWidth ICP_CHECKs bit_width >= BitsFor(span); validate
      // instead of aborting on a corrupt range.
      const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                                 static_cast<std::uint64_t>(lo);
      if (r.failed() || lo > hi || BitsFor(span) > bit_width) {
        return Status::InvalidArgument("corrupt range for '" + name + "'");
      }
      encoder = ColumnEncoder::ForRangeWithWidth(lo, hi, bit_width);
      spec.bit_width = bit_width;
    }

    const std::uint64_t word_count = r.U64();
    const std::uint64_t expected_words =
        CeilDiv(num_rows * static_cast<std::uint64_t>(bit_width), 64);
    if (r.failed() || word_count != expected_words ||
        word_count * 8 > r.remaining()) {
      return Status::InvalidArgument("corrupt code stream for '" + name +
                                     "'");
    }
    std::vector<Word> packed(word_count);
    r.Raw(packed.data(), packed.size() * sizeof(Word));
    if (r.failed()) {
      return Status::InvalidArgument("corrupt code stream for '" + name +
                                     "'");
    }
    const std::vector<std::uint64_t> codes =
        UnpackCodes(packed, bit_width, num_rows);

    std::vector<std::int64_t> values(num_rows);
    const std::uint64_t max_code = encoder.num_codes() - 1;
    for (std::size_t i = 0; i < num_rows; ++i) {
      if (codes[i] > max_code) {
        return Status::InvalidArgument("code out of domain in '" + name +
                                       "'");
      }
      values[i] = encoder.Decode(codes[i]);
    }

    Status status;
    if (nullable) {
      const std::uint64_t bitmap_words = r.U64();
      if (r.failed() || bitmap_words != CeilDiv(num_rows, 64) ||
          bitmap_words * 8 > r.remaining()) {
        return Status::InvalidArgument("corrupt validity bitmap for '" +
                                       name + "'");
      }
      FilterBitVector dense(num_rows, kWordBits);
      r.Raw(dense.words(), bitmap_words * sizeof(Word));
      if (r.failed()) {
        return Status::InvalidArgument("corrupt validity bitmap for '" +
                                       name + "'");
      }
      std::vector<bool> valid(num_rows);
      bool any_valid = false;
      for (std::size_t i = 0; i < num_rows; ++i) {
        valid[i] = dense.GetBit(i);
        any_valid |= valid[i];
      }
      if (!any_valid) {
        // AddNullableColumn rejects all-NULL columns; a corrupt bitmap must
        // not surface as a different column-building error.
        return Status::InvalidArgument("corrupt validity bitmap for '" +
                                       name + "'");
      }
      status = table.AddNullableColumn(name, values, valid, spec);
    } else {
      status = table.AddColumn(name, values, spec);
    }
    ICP_RETURN_IF_ERROR(status);
  }
  if (r.failed()) return Status::InvalidArgument("truncated file");
  if (!r.VerifyChecksum()) {
    return Status::InvalidArgument("checksum mismatch in '" + path + "'");
  }
  return table;
}

namespace {

// True for names produced by WriteTable's staging protocol:
// "<base>.tmp.<digits>" with a non-empty base and at least one digit.
bool IsStagingName(const char* name) {
  const char* marker = nullptr;
  for (const char* p = name; (p = std::strstr(p, ".tmp.")) != nullptr; ++p) {
    marker = p;  // last occurrence: the suffix WriteTable appended
  }
  if (marker == nullptr || marker == name) return false;
  const char* digits = marker + 5;
  if (*digits == '\0') return false;
  for (const char* p = digits; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  }
  return true;
}

}  // namespace

Status SweepOrphanedStagingFiles(const std::string& dir, int* removed) {
  if (removed != nullptr) *removed = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("cannot open directory '" + dir + "'");
  }
  Status status = Status::Ok();
  while (struct dirent* entry = ::readdir(d)) {
    if (!IsStagingName(entry->d_name)) continue;
    const std::string path = dir + "/" + entry->d_name;
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (std::remove(path.c_str()) == 0) {
      if (removed != nullptr) ++*removed;
    } else {
      status = Status::Internal("cannot remove orphan '" + path + "'");
    }
  }
  ::closedir(d);
  return status;
}

}  // namespace icp::io
