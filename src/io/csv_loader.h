// CSV import: load delimited text files into bit-packed Tables.
//
// The loader handles integer columns directly and fixed-scale decimal and
// ISO-8601 date columns by mapping them to integers (cents / days since
// epoch), matching the paper's footnote-3 convention that numerics with
// limited precision are scaled to unsigned integers. Empty fields become
// NULLs (the column turns nullable automatically).

#ifndef ICP_IO_CSV_LOADER_H_
#define ICP_IO_CSV_LOADER_H_

#include <string>
#include <vector>

#include "engine/table.h"
#include "util/status.h"

namespace icp::io {

/// How to parse and encode one CSV column.
struct CsvColumnSpec {
  std::string name;

  enum class Type {
    kInt64,    // plain integer
    kDecimal,  // fixed-point decimal, stored as value * 10^scale
    kDate,     // YYYY-MM-DD, stored as days since 1970-01-01
    kSkip,     // column present in the file but not loaded
  };
  Type type = Type::kInt64;

  /// Decimal digits kept for kDecimal (2 -> cents).
  int scale = 2;

  /// Storage configuration for the resulting table column.
  ColumnSpec storage;
};

struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line.
  bool has_header = true;
  /// Maximum number of data rows to load (0 = all).
  std::size_t max_rows = 0;
};

/// Parses `path` into a Table with one column per non-kSkip spec entry.
/// The spec order must match the file's column order. Fields that fail to
/// parse yield an error with the offending line number; empty fields load
/// as NULL.
StatusOr<Table> LoadCsv(const std::string& path,
                        const std::vector<CsvColumnSpec>& columns,
                        const CsvOptions& options = CsvOptions());

/// Parses CSV text from a string (testing / embedded data).
StatusOr<Table> LoadCsvFromString(const std::string& text,
                                  const std::vector<CsvColumnSpec>& columns,
                                  const CsvOptions& options = CsvOptions());

/// Parses "YYYY-MM-DD" into days since 1970-01-01.
StatusOr<std::int64_t> ParseDate(const std::string& field);

/// Parses a decimal with up to `scale` fractional digits into
/// value * 10^scale (e.g. "12.3", scale 2 -> 1230).
StatusOr<std::int64_t> ParseDecimal(const std::string& field, int scale);

}  // namespace icp::io

#endif  // ICP_IO_CSV_LOADER_H_
