// Table persistence: a compact binary container for bit-packed tables.
//
// Format ICPT, version 1 (little-endian):
//   magic "ICPTBL01"
//   u64 num_rows, u32 num_columns
//   per column:
//     u32 name length + bytes
//     u8 layout, u8 dictionary?, u8 nullable?, u8 reserved
//     i32 tau, i32 stored bit width
//     encoder: range -> i64 min, i64 max
//              dictionary -> u64 count, count * i64 sorted entries
//     codes, bit-packed at `bit width` bits per code (u64 word count +
//       words, MSB-first stream)
//     validity bitmap when nullable (u64 word count + dense words)
//   u64 FNV-1a checksum of everything after the magic
//
// Loading re-encodes through the regular Table::AddColumn paths, so a
// loaded table is indistinguishable from a freshly built one (same packed
// layouts, lazily built SIMD packings, etc.).

#ifndef ICP_IO_TABLE_IO_H_
#define ICP_IO_TABLE_IO_H_

#include <string>

#include "engine/table.h"
#include "util/status.h"

namespace icp::io {

/// Writes the table to `path` (overwrites).
Status WriteTable(const Table& table, const std::string& path);

/// Loads a table written by WriteTable. Fails on bad magic, truncation or
/// checksum mismatch.
StatusOr<Table> ReadTable(const std::string& path);

/// Removes orphaned staging files ("<name>.tmp.<pid>") left in `dir` by a
/// WriteTable that crashed between creating its temp file and renaming it
/// over the target. Completed tables are never touched. Call once at
/// startup on each directory that holds tables. `removed` (optional)
/// receives the number of files deleted.
Status SweepOrphanedStagingFiles(const std::string& dir,
                                 int* removed = nullptr);

}  // namespace icp::io

#endif  // ICP_IO_TABLE_IO_H_
