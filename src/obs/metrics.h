// Prometheus text exposition of the counter and histogram registries.
//
// MetricsText() renders every registered counter as a `counter` family
// and every histogram as a `histogram` family (cumulative `_bucket`
// series with power-of-two `le` bounds, plus `_sum` and `_count`), in
// the text format version 0.0.4 a Prometheus server scrapes. Dotted
// registry names map to metric names as "icp_" + name with the dots
// replaced by underscores ("scan.words_examined" ->
// "icp_scan_words_examined"); tools/check_metrics.py validates the
// output against the grammar in CI and tests.
//
// Compile-out: under ICP_OBS=0 the inline stub returns an empty
// exposition (valid per the grammar) and the TU carries no symbols.

#ifndef ICP_OBS_METRICS_H_
#define ICP_OBS_METRICS_H_

#include "obs/obs.h"  // for the ICP_OBS switch

#include <string>

namespace icp::obs {

/// "icp_" + name with each '.' replaced by '_' (exposed for tests).
inline std::string PrometheusMetricName(const std::string& name) {
  std::string out = "icp_" + name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

#if ICP_OBS

/// Renders the full counter + histogram registries as Prometheus text
/// exposition format 0.0.4.
std::string MetricsText();

#else  // !ICP_OBS

inline std::string MetricsText() { return ""; }

#endif  // ICP_OBS

}  // namespace icp::obs

#endif  // ICP_OBS_METRICS_H_
