// Per-query execution statistics, carried via engine::ExecOptions.
//
// The engine fills one of these per Execute() call from the scanners'
// ScanStats, the filter combines, the aggregators' AggStats and the
// kernel registry's effective tier; EXPLAIN ANALYZE renders it as the
// stage table. This is a plain struct on purpose: it has no registry or
// atomics behind it and keeps working in ICP_OBS=0 builds (only the
// process-wide counters compile out).

#ifndef ICP_OBS_QUERY_STATS_H_
#define ICP_OBS_QUERY_STATS_H_

#include <cstdint>

namespace icp::obs {

/// Statistics for one engine query execution. All fields are written by
/// exactly one thread (the engine merges per-worker partials before
/// storing), so there is no synchronization here.
struct QueryStats {
  // -- Stage cycle breakdown (obs::StageTimer clock). parse covers the
  // -- SQL text when the query came through ParseQuery; combine covers
  // -- the filter bit-vector boolean algebra between scan leaves.
  std::uint64_t parse_cycles = 0;
  std::uint64_t scan_cycles = 0;
  std::uint64_t combine_cycles = 0;
  std::uint64_t agg_cycles = 0;
  /// End-to-end Execute() cycles; >= the sum of the stages above (the
  /// remainder is predicate mapping, result assembly, etc.).
  std::uint64_t total_cycles = 0;

  // -- Filter / selectivity.
  std::uint64_t rows_total = 0;
  std::uint64_t rows_passing = 0;
  /// Segment words combined by filter boolean ops (AND/OR/...).
  std::uint64_t filter_words_combined = 0;

  // -- Scan work (from scan::ScanStats, summed over leaves/workers).
  std::uint64_t words_scanned = 0;
  std::uint64_t segments_scanned = 0;
  std::uint64_t segments_early_stopped = 0;
  /// Scan leaves whose word counts are analytic upper bounds (the SIMD
  /// lane kernels are not instrumented per-word; see
  /// docs/observability.md).
  std::uint64_t scan_leaves_modeled = 0;

  // -- Aggregate work (from core::AggStats).
  std::uint64_t agg_folds = 0;
  std::uint64_t agg_segments_skipped = 0;
  std::uint64_t agg_compare_early_stops = 0;
  std::uint64_t agg_blends_skipped = 0;

  // -- Robustness-layer activity during this query.
  std::uint64_t cancel_checks = 0;

  // -- Scheduler / admission activity (all zero when the query ran
  // -- without a governor; see ExecOptions::governor).
  std::uint64_t sched_morsels_dispatched = 0;
  std::uint64_t sched_morsels_completed = 0;
  std::uint64_t sched_morsels_cancelled = 0;
  std::uint64_t sched_steals = 0;
  /// Cycles spent queued at admission before the query was granted.
  std::uint64_t admit_queued_cycles = 0;
  /// Parallelism the governor granted (degradation ladder output);
  /// 0 when ungoverned.
  int granted_parallelism = 0;

  // -- Grouped aggregation (ExecuteGroupBy only; empty/zero otherwise).
  // -- strategy is "naive" or "single-pass"; the work counters mirror
  // -- groupby::Stats for the single-pass operator.
  const char* groupby_strategy = "";
  std::uint64_t groupby_groups = 0;
  std::uint64_t groupby_local_hits = 0;
  std::uint64_t groupby_spilled_rows = 0;
  std::uint64_t groupby_merge_entries = 0;
  std::uint64_t groupby_partitions = 0;

  // -- What ran. Static strings (tier names, layout names); never freed.
  const char* kernel_tier = "";
  const char* agg_path = "";
  const char* method = "";
  int threads = 1;
  bool simd = false;

  /// Fraction of rows passing the filter, in [0, 1]; 1 when the query
  /// had no filter (rows_passing == rows_total == table rows).
  double FilterDensity() const {
    if (rows_total == 0) return 0.0;
    return static_cast<double>(rows_passing) /
           static_cast<double>(rows_total);
  }

  /// Sum of the per-stage cycles; the EXPLAIN ANALYZE consistency test
  /// asserts this lands within [~0.5, 1.0] x total_cycles.
  std::uint64_t StageCyclesSum() const {
    return parse_cycles + scan_cycles + combine_cycles + agg_cycles;
  }
};

}  // namespace icp::obs

#endif  // ICP_OBS_QUERY_STATS_H_
