// The one cycle clock for stage timing.
//
// Every per-stage duration in the repo — QueryStats stage breakdowns,
// EXPLAIN ANALYZE tables, trace spans, and the bench harness'
// cycles-per-tuple numbers — goes through this timer, so the bench JSON
// and EXPLAIN ANALYZE can never disagree about what a "cycle" is. It
// reads the TSC via util/rdtsc.h (nanosecond steady_clock fallback off
// x86-64).
//
// StageTimer is deliberately not gated on ICP_OBS: it is a plain local
// integer pair with no registry behind it, and the engine's QueryResult
// timing fields predate the obs layer and must keep working in
// ICP_OBS=0 builds.

#ifndef ICP_OBS_STAGE_TIMER_H_
#define ICP_OBS_STAGE_TIMER_H_

#include <cstdint>
#include <utility>

#include "util/rdtsc.h"

namespace icp::obs {

/// Measures elapsed cycles from construction (or the last Restart).
/// Typical stage use:
///
///   obs::StageTimer timer;
///   ... scan ...
///   stats->scan_cycles += timer.Restart();   // also starts the next stage
///   ... aggregate ...
///   stats->agg_cycles += timer.Restart();
class StageTimer {
 public:
  StageTimer() : start_(ReadCycleCounter()) {}

  /// Cycles since construction / the last Restart().
  std::uint64_t ElapsedCycles() const {
    return ReadCycleCounter() - start_;
  }

  /// Returns the elapsed cycles and restarts the timer at "now", so
  /// consecutive stages share boundary reads instead of double-counting.
  std::uint64_t Restart() {
    const std::uint64_t now = ReadCycleCounter();
    const std::uint64_t elapsed = now - start_;
    start_ = now;
    return elapsed;
  }

  /// The raw TSC value at the last (re)start — trace spans pair this
  /// with ElapsedCycles() to place the span on the global timeline.
  std::uint64_t start_cycles() const { return start_; }

  /// Cycles spent running `fn()` once (the bench harness' measurement
  /// primitive).
  template <typename Fn>
  static std::uint64_t Measure(Fn&& fn) {
    StageTimer timer;
    std::forward<Fn>(fn)();
    return timer.ElapsedCycles();
  }

 private:
  std::uint64_t start_;
};

}  // namespace icp::obs

#endif  // ICP_OBS_STAGE_TIMER_H_
