// Process-wide latency/size histograms with a compile-out switch.
//
// Counters (obs.h) answer "how much work"; histograms answer "how is it
// distributed" — the admission governor degrades and the single-pass
// GROUP BY spills in ways only visible in the tail, never in a mean.
// A Histogram is a fixed array of power-of-two buckets: Record(v) does
// one relaxed fetch_add on the bucket holding bit_width(v) plus the
// count/sum/max accumulators, so it is lock-free, allocation-free and
// cheap enough for once-per-query call sites (never per-word; the same
// batch-granularity rule as counters, docs/observability.md).
//
// Snapshots expose count/sum/max plus p50/p90/p99 approximated by the
// bucket upper bound (exact within a factor of 2, clamped to the exact
// max). Like counters, every name registered through
// ICP_OBS_DEFINE_HISTOGRAM must be catalogued in docs/observability.md —
// tools/icp_lint.py rule ICP005 enforces the sync in both directions.
//
// Compile-out: under ICP_OBS=0 the recording macro expands to nothing
// and the inline stubs below keep exporters linking, so hot TUs carry no
// obs symbols (CI checks libicp_obs.a with nm).

#ifndef ICP_OBS_HISTOGRAM_H_
#define ICP_OBS_HISTOGRAM_H_

#include "obs/obs.h"  // for the ICP_OBS switch

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace icp::obs {

/// One histogram's state copied out under no lock; bucket counts are a
/// consistent-enough snapshot for monitoring (each field is individually
/// atomic, the set is not). Plain struct so it survives ICP_OBS=0.
struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  /// buckets[i] counts recorded values v with std::bit_width(v) == i,
  /// i.e. bucket 0 holds v == 0 and bucket i holds [2^(i-1), 2^i - 1].
  std::vector<std::uint64_t> buckets;
};

#if ICP_OBS

/// A process-wide power-of-two-bucket histogram. Construction registers
/// it in the global registry; Record is a handful of relaxed atomic adds,
/// safe from any thread. Histograms are created as function-local statics
/// through ICP_OBS_DEFINE_HISTOGRAM and live for the whole process.
class Histogram {
 public:
  /// bit_width of a uint64 ranges over [0, 64], one bucket each.
  static constexpr int kNumBuckets = 65;

  Histogram(const char* name, const char* help);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(std::uint64_t value) {
    const int bucket = std::bit_width(value);
    // order: relaxed — monotone statistics accumulator; readers tolerate
    // torn cross-field snapshots, no data is published through it.
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    // order: relaxed — monotone statistics accumulator (see buckets_).
    count_.fetch_add(1, std::memory_order_relaxed);
    // order: relaxed — monotone statistics accumulator (see buckets_).
    sum_.fetch_add(value, std::memory_order_relaxed);
    // order: relaxed — advisory read of the max latch; the CAS below
    // re-validates against the current value.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    // order: relaxed — monotone max latch; losers retry with the larger
    // observed value, readers only need an eventually-consistent max.
    while (seen < value &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t Count() const {
    // order: relaxed — snapshot read of a statistics accumulator.
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t Sum() const {
    // order: relaxed — snapshot read of a statistics accumulator.
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t Max() const {
    // order: relaxed — snapshot read of a statistics accumulator.
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t BucketCount(int bucket) const {
    // order: relaxed — snapshot read of a statistics accumulator.
    return buckets_[static_cast<std::size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

  /// Largest value bucket `i` can hold (2^i - 1; UINT64_MAX for i=64).
  static std::uint64_t BucketUpperBound(int bucket);

  /// Copies out the full state and derives the quantile columns.
  HistogramSnapshot Snapshot() const;

  /// Testing hook; production code never resets.
  void Reset();

  const char* name() const { return name_; }
  const char* help() const { return help_; }

 private:
  const char* name_;
  const char* help_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// All histograms registered so far, sorted by name, with quantiles.
std::vector<HistogramSnapshot> SnapshotHistograms();

/// Forces registration of the whole static catalogue (histograms
/// otherwise register lazily on first Record); snapshots call this so
/// they always list every histogram, touched or not.
void RegisterAllHistograms();

/// Zeroes every registered histogram (tests and EXPLAIN ANALYZE deltas).
void ResetAllHistograms();

/// Plain-text dump: one "name count=N sum=N max=N p50=N p90=N p99=N"
/// line per histogram.
std::string HistogramsText();

/// JSON object {"name": {"count": N, "sum": N, "max": N, "p50": N,
/// "p90": N, "p99": N}, ...}, keys sorted.
std::string HistogramsJson();

// -- Histogram catalogue (defined in histogram.cc; keep
// -- docs/observability.md in sync, both ways — icp_lint ICP005).
Histogram& QueryLatencyCycles();
Histogram& StageParseCycles();
Histogram& StageScanCycles();
Histogram& StageCombineCycles();
Histogram& StageAggregateCycles();
Histogram& AdmissionWaitCycles();
Histogram& QuerySteals();
Histogram& QueryScratchBytes();

#else  // !ICP_OBS

// With the layer compiled out the snapshot API still links (exporters
// and shells call it unconditionally) but reports an empty registry.
inline std::vector<HistogramSnapshot> SnapshotHistograms() { return {}; }
inline void RegisterAllHistograms() {}
inline void ResetAllHistograms() {}
inline std::string HistogramsText() { return ""; }
inline std::string HistogramsJson() { return "{}"; }

#endif  // ICP_OBS

}  // namespace icp::obs

/// Hot-path record: ICP_OBS_HISTOGRAM_RECORD(QueryLatencyCycles, n).
/// Expands to a handful of relaxed atomic adds when the layer is enabled
/// and to nothing when built with ICP_OBS=0.
#if ICP_OBS
#define ICP_OBS_HISTOGRAM_RECORD(histogram_fn, v) \
  (::icp::obs::histogram_fn().Record(v))
#else
#define ICP_OBS_HISTOGRAM_RECORD(histogram_fn, v) ((void)0)
#endif

#endif  // ICP_OBS_HISTOGRAM_H_
