#include "obs/histogram.h"

#if ICP_OBS

#include <algorithm>
#include <limits>
#include <mutex>

namespace icp::obs {
namespace {

// Same registry shape as the counters (obs.cc): registration is rare and
// snapshots are cold, so a mutex-guarded vector keeps Record()
// allocation-free (the histograms themselves are plain atomics).
std::mutex& HistogramRegistryMu() {
  static std::mutex mu;
  return mu;
}

std::vector<Histogram*>& HistogramRegistry() {
  static auto* registry = new std::vector<Histogram*>();
  return *registry;
}

// Smallest recorded value whose cumulative bucket count reaches
// `rank` (1-based), reported as its bucket's upper bound.
std::uint64_t QuantileFromBuckets(const std::vector<std::uint64_t>& buckets,
                                  std::uint64_t rank) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return Histogram::BucketUpperBound(static_cast<int>(i));
    }
  }
  return 0;
}

}  // namespace

Histogram::Histogram(const char* name, const char* help)
    : name_(name), help_(help) {
  std::lock_guard<std::mutex> lock(HistogramRegistryMu());
  HistogramRegistry().push_back(this);
}

std::uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << bucket) - 1;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  snap.help = help_;
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[static_cast<std::size_t>(i)] = BucketCount(i);
  }
  // Derive the quantiles from the copied buckets, not the live ones, so
  // one snapshot is internally consistent even while Record() races.
  snap.count = 0;
  for (const std::uint64_t b : snap.buckets) snap.count += b;
  snap.sum = Sum();
  snap.max = Max();
  if (snap.count > 0) {
    const auto rank = [&](double q) {
      const auto r = static_cast<std::uint64_t>(
          q * static_cast<double>(snap.count));
      return std::max<std::uint64_t>(1, std::min(r + 1, snap.count));
    };
    // The bucket upper bound can overshoot the true quantile by up to
    // 2x; the exact max is a tighter cap for the top buckets.
    snap.p50 = std::min(QuantileFromBuckets(snap.buckets, rank(0.50)),
                        snap.max);
    snap.p90 = std::min(QuantileFromBuckets(snap.buckets, rank(0.90)),
                        snap.max);
    snap.p99 = std::min(QuantileFromBuckets(snap.buckets, rank(0.99)),
                        snap.max);
  }
  return snap;
}

void Histogram::Reset() {
  // order: relaxed — test-only reset; tests serialize around it.
  count_.store(0, std::memory_order_relaxed);
  // order: relaxed — test-only reset; tests serialize around it.
  sum_.store(0, std::memory_order_relaxed);
  // order: relaxed — test-only reset; tests serialize around it.
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) {
    // order: relaxed — test-only reset; tests serialize around it.
    bucket.store(0, std::memory_order_relaxed);
  }
}

// One accessor per catalogued histogram. The function-local static
// registers on first use; RegisterAllHistograms() touches every accessor
// so snapshots always see the full catalogue. Names here are the source
// of truth the ICP005 lint syncs against docs/observability.md.
#define ICP_OBS_DEFINE_HISTOGRAM(fn, histogram_name, histogram_help) \
  Histogram& fn() {                                                  \
    static Histogram histogram(histogram_name, histogram_help);      \
    return histogram;                                                \
  }

ICP_OBS_DEFINE_HISTOGRAM(QueryLatencyCycles, "query.latency_cycles",
                         "end-to-end engine query latency (Execute / "
                         "ExecuteMulti / ExecuteGroupBy), cycles")
ICP_OBS_DEFINE_HISTOGRAM(StageParseCycles, "stage.parse_cycles",
                         "per-query SQL parse stage cycles (only queries "
                         "that came through ParseStatement with a stats "
                         "sink)")
ICP_OBS_DEFINE_HISTOGRAM(StageScanCycles, "stage.scan_cycles",
                         "per-query filter scan stage cycles (queries "
                         "with a stats sink)")
ICP_OBS_DEFINE_HISTOGRAM(StageCombineCycles, "stage.combine_cycles",
                         "per-query filter combine stage cycles (queries "
                         "with a stats sink)")
ICP_OBS_DEFINE_HISTOGRAM(StageAggregateCycles, "stage.aggregate_cycles",
                         "per-query aggregate stage cycles (queries with "
                         "a stats sink)")
ICP_OBS_DEFINE_HISTOGRAM(AdmissionWaitCycles, "admission.wait_cycles",
                         "cycles each admitted query waited in the "
                         "governor's bounded queue (0 for immediate "
                         "grants)")
ICP_OBS_DEFINE_HISTOGRAM(QuerySteals, "query.steals",
                         "morsels stolen from other slots' shards during "
                         "one governed query")
ICP_OBS_DEFINE_HISTOGRAM(QueryScratchBytes, "query.scratch_bytes",
                         "driver scratch bytes one governed query "
                         "accounted against its admission budget")

#undef ICP_OBS_DEFINE_HISTOGRAM

void RegisterAllHistograms() {
  QueryLatencyCycles();
  StageParseCycles();
  StageScanCycles();
  StageCombineCycles();
  StageAggregateCycles();
  AdmissionWaitCycles();
  QuerySteals();
  QueryScratchBytes();
}

std::vector<HistogramSnapshot> SnapshotHistograms() {
  RegisterAllHistograms();
  std::vector<Histogram*> histograms;
  {
    std::lock_guard<std::mutex> lock(HistogramRegistryMu());
    histograms = HistogramRegistry();
  }
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms.size());
  for (const Histogram* histogram : histograms) {
    out.push_back(histogram->Snapshot());
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void ResetAllHistograms() {
  RegisterAllHistograms();
  std::lock_guard<std::mutex> lock(HistogramRegistryMu());
  for (Histogram* histogram : HistogramRegistry()) histogram->Reset();
}

std::string HistogramsText() {
  std::string out;
  for (const HistogramSnapshot& h : SnapshotHistograms()) {
    out += h.name;
    out += " count=" + std::to_string(h.count);
    out += " sum=" + std::to_string(h.sum);
    out += " max=" + std::to_string(h.max);
    out += " p50=" + std::to_string(h.p50);
    out += " p90=" + std::to_string(h.p90);
    out += " p99=" + std::to_string(h.p99);
    out += '\n';
  }
  return out;
}

std::string HistogramsJson() {
  std::string out = "{";
  bool first = true;
  for (const HistogramSnapshot& h : SnapshotHistograms()) {
    if (!first) out += ", ";
    first = false;
    out += '"' + h.name + "\": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"max\": " + std::to_string(h.max);
    out += ", \"p50\": " + std::to_string(h.p50);
    out += ", \"p90\": " + std::to_string(h.p90);
    out += ", \"p99\": " + std::to_string(h.p99);
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace icp::obs

#endif  // ICP_OBS
