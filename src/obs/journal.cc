#include "obs/journal.h"

#if ICP_OBS

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <mutex>

#include "obs/trace.h"

namespace icp::obs {
namespace {

std::uint64_t WallClockNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// The clock seam. A plain atomic function pointer: swapping clocks must
// not race recorders mid-query (tests install the fake before running).
std::atomic<JournalClockFn> g_clock{&WallClockNs};

std::atomic<std::uint64_t> g_slow_threshold_cycles{0};

struct JournalState {
  std::array<QueryRecord, kJournalCapacity> ring;
  std::size_t size = 0;
  std::size_t next = 0;  // slot the next record lands in
  std::uint64_t next_id = 1;
};

std::mutex& JournalMu() {
  static std::mutex mu;
  return mu;
}

JournalState& Journal() {
  static auto* state = new JournalState();
  return *state;
}

void AppendJsonString(std::string* out, const char* key, const char* value) {
  *out += '"';
  *out += key;
  *out += "\": \"";
  *out += value;
  *out += '"';
}

void AppendJsonU64(std::string* out, const char* key, std::uint64_t value) {
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += std::to_string(value);
}

}  // namespace

void SetJournalClock(JournalClockFn clock) {
  // order: relaxed — configuration write; recorders only need to see
  // some valid clock, and callers install it before recording starts.
  g_clock.store(clock != nullptr ? clock : &WallClockNs,
                std::memory_order_relaxed);
}

std::uint64_t JournalNow() {
  // order: relaxed — reads whichever valid clock is installed; no other
  // data is published through the pointer.
  return g_clock.load(std::memory_order_relaxed)();
}

void SetSlowQueryThresholdCycles(std::uint64_t cycles) {
  // order: relaxed — advisory tuning knob; recorders may classify one
  // in-flight query under the old threshold, which is acceptable.
  g_slow_threshold_cycles.store(cycles, std::memory_order_relaxed);
}

std::uint64_t SlowQueryThresholdCycles() {
  // order: relaxed — advisory read of a tuning knob.
  return g_slow_threshold_cycles.load(std::memory_order_relaxed);
}

void RecordQuery(QueryRecord record) {
  const std::uint64_t threshold = SlowQueryThresholdCycles();
  record.slow = threshold != 0 && record.total_cycles >= threshold;
  {
    std::lock_guard<std::mutex> lock(JournalMu());
    JournalState& state = Journal();
    record.id = state.next_id++;
    state.ring[state.next] = record;
    state.next = (state.next + 1) % kJournalCapacity;
    if (state.size < kJournalCapacity) ++state.size;
  }
  ICP_OBS_INCREMENT(JournalRecords);
  if (record.slow) {
    ICP_OBS_INCREMENT(JournalSlowQueries);
    // The span covers the whole query so the outlier is visible on the
    // trace timeline next to its stage spans.
    RecordSpan("query.slow", 0, record.start_cycles, record.total_cycles);
  }
}

std::vector<QueryRecord> RecentQueries(std::size_t max_records) {
  std::lock_guard<std::mutex> lock(JournalMu());
  const JournalState& state = Journal();
  const std::size_t n = std::min(max_records, state.size);
  std::vector<QueryRecord> out;
  out.reserve(n);
  // Walk backwards from the most recently written slot.
  std::size_t slot = (state.next + kJournalCapacity - 1) % kJournalCapacity;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(state.ring[slot]);
    slot = (slot + kJournalCapacity - 1) % kJournalCapacity;
  }
  return out;
}

std::size_t JournalSize() {
  std::lock_guard<std::mutex> lock(JournalMu());
  return Journal().size;
}

void ClearJournal() {
  std::lock_guard<std::mutex> lock(JournalMu());
  JournalState& state = Journal();
  state.size = 0;
  state.next = 0;
}

std::string JournalJson(std::size_t max_records) {
  std::string out = "[";
  bool first = true;
  for (const QueryRecord& r : RecentQueries(max_records)) {
    if (!first) out += ", ";
    first = false;
    out += '{';
    AppendJsonU64(&out, "id", r.id);
    out += ", ";
    AppendJsonU64(&out, "fingerprint", r.fingerprint);
    out += ", ";
    AppendJsonString(&out, "entry", r.entry);
    out += ", ";
    AppendJsonString(&out, "status", r.status);
    out += ", ";
    AppendJsonU64(&out, "rows", r.rows);
    out += ", ";
    AppendJsonString(&out, "tier", r.tier);
    out += ", ";
    AppendJsonString(&out, "agg_path", r.agg_path);
    out += ", ";
    AppendJsonU64(&out, "total_cycles", r.total_cycles);
    out += ", ";
    AppendJsonU64(&out, "scan_cycles", r.scan_cycles);
    out += ", ";
    AppendJsonU64(&out, "agg_cycles", r.agg_cycles);
    out += ", ";
    AppendJsonU64(&out, "start_unix_ns", r.start_unix_ns);
    out += ", ";
    AppendJsonU64(&out, "end_unix_ns", r.end_unix_ns);
    out += ", \"slow\": ";
    out += r.slow ? "true" : "false";
    out += '}';
  }
  out += "]";
  return out;
}

}  // namespace icp::obs

#endif  // ICP_OBS
