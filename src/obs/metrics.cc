#include "obs/metrics.h"

#if ICP_OBS

#include <cstdint>
#include <vector>

#include "obs/histogram.h"

namespace icp::obs {
namespace {

// HELP text may not contain raw newlines or backslashes; our help
// strings are static literals that avoid both, but escape defensively so
// a future literal cannot corrupt the exposition.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendFamilyHeader(std::string* out, const std::string& metric,
                        const std::string& help, const char* type) {
  *out += "# HELP " + metric + ' ' + EscapeHelp(help) + '\n';
  *out += "# TYPE " + metric + ' ' + type + '\n';
}

void AppendHistogramFamily(std::string* out, const HistogramSnapshot& h) {
  const std::string metric = PrometheusMetricName(h.name);
  AppendFamilyHeader(out, metric, h.help, "histogram");
  // Buckets are cumulative with inclusive `le` upper bounds; emitting
  // only up to the highest non-empty bucket keeps the exposition short
  // (the +Inf bucket always closes the family).
  int highest = -1;
  for (int i = 0; i < static_cast<int>(h.buckets.size()); ++i) {
    if (h.buckets[static_cast<std::size_t>(i)] > 0) highest = i;
  }
  std::uint64_t cumulative = 0;
  for (int i = 0; i <= highest; ++i) {
    cumulative += h.buckets[static_cast<std::size_t>(i)];
    *out += metric + "_bucket{le=\"" +
            std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
            std::to_string(cumulative) + '\n';
  }
  *out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
  *out += metric + "_sum " + std::to_string(h.sum) + '\n';
  *out += metric + "_count " + std::to_string(h.count) + '\n';
}

}  // namespace

std::string MetricsText() {
  std::string out;
  for (const CounterInfo& c : SnapshotCounterInfo()) {
    const std::string metric = PrometheusMetricName(c.name);
    AppendFamilyHeader(&out, metric, c.help, "counter");
    out += metric + ' ' + std::to_string(c.value) + '\n';
  }
  for (const HistogramSnapshot& h : SnapshotHistograms()) {
    AppendHistogramFamily(&out, h);
  }
  return out;
}

}  // namespace icp::obs

#endif  // ICP_OBS
