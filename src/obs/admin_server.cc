#include "obs/admin_server.h"

#if ICP_OBS

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "obs/histogram.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace icp::obs {
namespace {

constexpr int kPollIntervalMs = 100;
constexpr std::size_t kMaxRequestBytes = 4096;
/// Journal records /queries returns (newest first).
constexpr std::size_t kQueriesJournalDepth = 32;

std::string BuildResponse(const char* status_line, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; response is best-effort
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start(int port) {
  if (running()) {
    return Status::FailedPrecondition("admin server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("admin server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::Internal("admin server: could not bind 127.0.0.1:" +
                            std::to_string(port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("admin server: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }

  listen_fd_ = fd;
  // order: relaxed — the accept thread is created below; thread creation
  // itself orders this store before the loop's first load.
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!running()) return;
  // order: relaxed — shutdown flag; the accept loop re-reads it at least
  // every poll interval, no data is published through it.
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

std::string AdminServer::HandleRequest(const std::string& target) const {
  ICP_OBS_INCREMENT(AdminRequests);
  if (target == "/healthz") {
    return BuildResponse("200 OK", "text/plain; charset=utf-8", "ok\n");
  }
  if (target == "/counters") {
    const std::string body = "{\"counters\": " + SnapshotJson() +
                             ", \"histograms\": " + HistogramsJson() + "}";
    return BuildResponse("200 OK", "application/json", body);
  }
  if (target == "/metrics") {
    return BuildResponse("200 OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         MetricsText());
  }
  if (target == "/queries") {
    std::string body = "{\"governor\": ";
    body += queries_provider_ ? queries_provider_() : "null";
    body += ", \"recent\": " + JournalJson(kQueriesJournalDepth) + "}";
    return BuildResponse("200 OK", "application/json", body);
  }
  if (target == "/traces") {
    std::string body = "{\"enabled\": ";
    body += TracingEnabled() ? "true" : "false";
    body += ", \"buffered_spans\": " + std::to_string(TraceSpanCount());
    body += ", \"open_spans\": " + std::to_string(OpenTraceSpanCount());
    body += "}";
    return BuildResponse("200 OK", "application/json", body);
  }
  return BuildResponse("404 Not Found", "application/json",
                       "{\"error\": \"no such endpoint\"}");
}

void AdminServer::Serve() {
  // order: relaxed — shutdown flag re-read every poll interval; the only
  // consequence of a stale read is one extra 100ms loop turn.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    char buf[kMaxRequestBytes];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    if (n <= 0) {
      ::close(client);
      continue;
    }
    buf[n] = '\0';

    // "GET <target> HTTP/1.x" — everything else is a client error. The
    // query string (if any) is ignored: every endpoint is parameterless.
    std::string response;
    const char* line_end = std::strstr(buf, "\r\n");
    const std::string request_line(
        buf, line_end != nullptr ? static_cast<std::size_t>(line_end - buf)
                                 : std::strlen(buf));
    const std::size_t first_space = request_line.find(' ');
    const std::size_t second_space =
        first_space == std::string::npos
            ? std::string::npos
            : request_line.find(' ', first_space + 1);
    if (first_space == std::string::npos ||
        second_space == std::string::npos) {
      response = BuildResponse("400 Bad Request", "application/json",
                               "{\"error\": \"malformed request line\"}");
    } else if (request_line.substr(0, first_space) != "GET") {
      response =
          BuildResponse("405 Method Not Allowed", "application/json",
                        "{\"error\": \"only GET is supported\"}");
    } else {
      std::string target = request_line.substr(
          first_space + 1, second_space - first_space - 1);
      const std::size_t query = target.find('?');
      if (query != std::string::npos) target.resize(query);
      response = HandleRequest(target);
    }
    WriteAll(client, response);
    ::close(client);
  }
}

}  // namespace icp::obs

#endif  // ICP_OBS
