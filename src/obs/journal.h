// Query journal: a fixed-size ring buffer of completed-query records.
//
// Counters and histograms aggregate across queries; the journal keeps the
// last kJournalCapacity individual outcomes — statement fingerprint,
// status, result rows, dispatched tier and the stage-cycle summary — so
// "what just ran and how did it go" is answerable from the admin plane
// (/queries) and from tests without re-running anything.
//
// Timestamps come from a caller-supplied clock seam (SetJournalClock):
// production uses the wall clock, tests inject a fake so records are
// deterministic. Queries whose total cycles cross the slow-query
// threshold (SetSlowQueryThresholdCycles) are flagged and additionally
// emit a "query.slow" trace span covering the whole query, so slow
// outliers are visible on the trace timeline without streaming every
// query.
//
// Compile-out: under ICP_OBS=0 RecordQuery and friends become inline
// no-ops (QueryRecord stays a plain struct, like QueryStats), so the
// engine's fill points survive either build without #if.

#ifndef ICP_OBS_JOURNAL_H_
#define ICP_OBS_JOURNAL_H_

#include "obs/obs.h"  // for the ICP_OBS switch

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace icp::obs {

/// Ring capacity: enough to hold a CI soak's tail without ever growing.
inline constexpr std::size_t kJournalCapacity = 128;

/// One completed query. Strings are static (tier names, status-code
/// names) so records are POD-cheap to copy out of the ring.
struct QueryRecord {
  /// Monotonically increasing record id, assigned by RecordQuery.
  std::uint64_t id = 0;
  /// FNV-1a hash of the query shape (engine::FingerprintQuery) — the
  /// engine never sees SQL text, so this stands in for a statement hash.
  std::uint64_t fingerprint = 0;
  /// Entry point: "execute", "execute_multi" or "execute_groupby".
  const char* entry = "";
  /// StatusCodeToString of the query's outcome ("OK", "Cancelled", ...).
  const char* status = "";
  /// Result cardinality: matching rows (Execute), aggregates
  /// (ExecuteMulti) or non-empty groups (ExecuteGroupBy).
  std::uint64_t rows = 0;
  /// Dispatched kernel tier / aggregate path (from QueryStats when a
  /// stats sink was attached; "" otherwise).
  const char* tier = "";
  const char* agg_path = "";
  /// Stage-cycle summary (QueryStats subset; zero without a stats sink
  /// except total_cycles, which the entry point always measures).
  std::uint64_t total_cycles = 0;
  std::uint64_t scan_cycles = 0;
  std::uint64_t agg_cycles = 0;
  /// Journal-clock timestamps (unix nanoseconds under the default
  /// clock) taken at entry-point start and completion.
  std::uint64_t start_unix_ns = 0;
  std::uint64_t end_unix_ns = 0;
  /// Raw TSC at entry-point start; pairs with total_cycles to place the
  /// "query.slow" span on the trace timeline.
  std::uint64_t start_cycles = 0;
  /// total_cycles crossed the slow-query threshold.
  bool slow = false;
};

#if ICP_OBS

/// The journal clock: returns a monotonically reasonable timestamp in
/// nanoseconds. The default reads the system wall clock.
using JournalClockFn = std::uint64_t (*)();

/// Replaces the journal clock (tests); nullptr restores the wall clock.
void SetJournalClock(JournalClockFn clock);

/// Reads the current journal clock.
std::uint64_t JournalNow();

/// Queries whose total_cycles reach this threshold are flagged slow and
/// emit a "query.slow" trace span; 0 (the default) disables flagging.
void SetSlowQueryThresholdCycles(std::uint64_t cycles);
std::uint64_t SlowQueryThresholdCycles();

/// Appends one record (assigns `id` and `slow`, bumps the
/// journal.records counter, emits the slow span when flagged). The ring
/// overwrites the oldest record once full.
void RecordQuery(QueryRecord record);

/// The most recent `max_records` records, newest first.
std::vector<QueryRecord> RecentQueries(std::size_t max_records);

/// Records currently held (<= kJournalCapacity).
std::size_t JournalSize();

/// Drops all records (tests).
void ClearJournal();

/// JSON array of the most recent `max_records` records, newest first.
std::string JournalJson(std::size_t max_records);

#else  // !ICP_OBS

using JournalClockFn = std::uint64_t (*)();
inline void SetJournalClock(JournalClockFn) {}
inline std::uint64_t JournalNow() { return 0; }
inline void SetSlowQueryThresholdCycles(std::uint64_t) {}
inline std::uint64_t SlowQueryThresholdCycles() { return 0; }
inline void RecordQuery(const QueryRecord&) {}
inline std::vector<QueryRecord> RecentQueries(std::size_t) { return {}; }
inline std::size_t JournalSize() { return 0; }
inline void ClearJournal() {}
inline std::string JournalJson(std::size_t) { return "[]"; }

#endif  // ICP_OBS

}  // namespace icp::obs

#endif  // ICP_OBS_JOURNAL_H_
