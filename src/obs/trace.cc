#include "obs/trace.h"

#if ICP_OBS

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "util/rdtsc.h"

namespace icp::obs {
namespace {

struct Span {
  const char* name;
  int tid;
  std::uint64_t start_cycles;
  std::uint64_t dur_cycles;
};

struct Calibration {
  std::uint64_t cycles = 0;
  std::uint64_t wall_ns = 0;
};

Calibration SampleCalibration() {
  Calibration sample;
  sample.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  sample.cycles = ReadCycleCounter();
  return sample;
}

std::atomic<bool> g_enabled{false};

std::mutex& TraceMu() {
  static std::mutex mu;
  return mu;
}

std::vector<Span>& Spans() {
  static auto* spans = new std::vector<Span>();
  return *spans;
}

Calibration& BaseCalibration() {
  static Calibration base;
  return base;
}

// Open (constructed, not yet destroyed) spans, keyed by the TraceSpan's
// address for O(open) removal. The entry copies the span's fields: the
// owning thread may destroy the TraceSpan while a writer holds a
// snapshot, so the table must never dereference the key.
struct OpenSpan {
  const TraceSpan* key;
  Span span;  // dur_cycles unused until write time
};

std::vector<OpenSpan>& OpenSpans() {
  static auto* spans = new std::vector<OpenSpan>();
  return *spans;
}

}  // namespace

void EnableTracing() {
  std::lock_guard<std::mutex> lock(TraceMu());
  // order: relaxed — TraceMu serializes enable/disable; recorders that
  // race the flip merely record or skip one span, both acceptable.
  if (!g_enabled.load(std::memory_order_relaxed)) {
    BaseCalibration() = SampleCalibration();
    // order: relaxed — span buffers are only touched under TraceMu,
    // which provides the publication ordering.
    g_enabled.store(true, std::memory_order_relaxed);
  }
}

void DisableTracing() {
  // order: relaxed — racing recorders may record one last span, which
  // the TraceMu-guarded drain still collects.
  g_enabled.store(false, std::memory_order_relaxed);
}

bool TracingEnabled() {
  // order: relaxed — advisory fast-path probe; the span buffer itself
  // is mutex-guarded.
  return g_enabled.load(std::memory_order_relaxed);
}

void RecordSpan(const char* name, int tid, std::uint64_t start_cycles,
                std::uint64_t dur_cycles) {
  if (!TracingEnabled()) return;
  std::lock_guard<std::mutex> lock(TraceMu());
  Spans().push_back(Span{name, tid, start_cycles, dur_cycles});
}

std::size_t TraceSpanCount() {
  std::lock_guard<std::mutex> lock(TraceMu());
  return Spans().size();
}

void ClearTrace() {
  std::lock_guard<std::mutex> lock(TraceMu());
  Spans().clear();
}

std::size_t OpenTraceSpanCount() {
  std::lock_guard<std::mutex> lock(TraceMu());
  return OpenSpans().size();
}

bool WriteChromeTrace(const std::string& path) {
  std::vector<Span> spans;
  Calibration base;
  {
    std::lock_guard<std::mutex> lock(TraceMu());
    spans = Spans();
    base = BaseCalibration();
    // Open spans are emitted with their duration clamped to "now":
    // without them a mid-flight dump (admin plane, cancellation) would
    // silently omit all active work.
    const std::uint64_t now_cycles = ReadCycleCounter();
    for (const OpenSpan& open : OpenSpans()) {
      Span span = open.span;
      span.dur_cycles = now_cycles > span.start_cycles
                            ? now_cycles - span.start_cycles
                            : 0;
      spans.push_back(span);
    }
  }
  const Calibration now = SampleCalibration();

  // Cycles per nanosecond measured across the [enable, write] interval.
  // When the TSC fallback already returns nanoseconds (non-x86) the
  // ratio comes out ~1.0, so the same formula works there too.
  double cycles_per_ns = 1.0;
  if (now.wall_ns > base.wall_ns && now.cycles > base.cycles) {
    cycles_per_ns = static_cast<double>(now.cycles - base.cycles) /
                    static_cast<double>(now.wall_ns - base.wall_ns);
  }
  const double cycles_per_us = cycles_per_ns * 1000.0;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", f);
  bool first = true;
  for (const Span& span : spans) {
    const double ts =
        static_cast<double>(span.start_cycles - base.cycles) /
        cycles_per_us;
    const double dur =
        static_cast<double>(span.dur_cycles) / cycles_per_us;
    std::fprintf(f,
                 "%s\n  {\"name\": \"%s\", \"cat\": \"icp\", "
                 "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                 "\"pid\": 1, \"tid\": %d}",
                 first ? "" : ",", span.name, ts, dur, span.tid);
    first = false;
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

TraceSpan::TraceSpan(const char* name, int tid)
    : name_(name), tid_(tid), start_(ReadCycleCounter()),
      registered_(TracingEnabled()) {
  if (!registered_) return;
  std::lock_guard<std::mutex> lock(TraceMu());
  OpenSpans().push_back(OpenSpan{this, Span{name_, tid_, start_, 0}});
}

TraceSpan::~TraceSpan() {
  if (registered_) {
    std::lock_guard<std::mutex> lock(TraceMu());
    std::vector<OpenSpan>& open = OpenSpans();
    for (std::size_t i = 0; i < open.size(); ++i) {
      if (open[i].key == this) {
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  if (!TracingEnabled()) return;
  RecordSpan(name_, tid_, start_, ReadCycleCounter() - start_);
}

}  // namespace icp::obs

#endif  // ICP_OBS
