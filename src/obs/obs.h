// Process-wide observability: named counters with a compile-out switch.
//
// The paper argues about where cycles and memory words go (Section IV); this
// layer makes the engine report that accounting at runtime instead of only
// in recompiled benches. It has three parts:
//
//   * a counter registry (this header + obs.cc): relaxed-atomic uint64
//     counters registered once at first use, incremented through the
//     ICP_OBS_ADD macro. Increments happen at batch granularity (once per
//     scan leaf, per aggregate, per pool region — never per word), so the
//     enabled layer costs well under the 2% budget recorded in
//     docs/observability.md.
//   * per-query QueryStats (query_stats.h) carried via ExecOptions and
//     filled by the engine from the scanners' ScanStats, the aggregators'
//     AggStats and the kernel registry's EffectiveTier.
//   * exporters: SnapshotText / SnapshotJson here, the Chrome trace-event
//     writer in trace.h, and EXPLAIN ANALYZE in the engine.
//
// Compile-out: building with -DICP_OBS=0 (CMake option ICP_OBS=OFF) turns
// ICP_OBS_ADD and the trace macros into no-ops, so the hot translation
// units contain no obs symbols at all (CI checks this with nm). The
// QueryStats plumbing is plain structs and survives either way.
//
// Counter names are dotted lowercase ("scan.words_examined"). Every name
// registered through ICP_OBS_DEFINE_COUNTER must be catalogued in
// docs/observability.md — tools/icp_lint.py rule ICP005 enforces the sync
// in both directions.

#ifndef ICP_OBS_OBS_H_
#define ICP_OBS_OBS_H_

#ifndef ICP_OBS
#define ICP_OBS 1
#endif

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace icp::obs {

#if ICP_OBS

/// A process-wide monotonically increasing counter. Construction registers
/// the counter in the global registry; Add is one relaxed fetch_add, safe
/// from any thread. Counters are created as function-local statics through
/// ICP_OBS_DEFINE_COUNTER and live for the whole process.
class Counter {
 public:
  Counter(const char* name, const char* help);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  // order: relaxed — monotone statistics counter; readers tolerate any
  // interleaving, no data is published through it.
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t Load() const {
    // order: relaxed — snapshot read of a statistics counter.
    return value_.load(std::memory_order_relaxed);
  }
  /// Testing hook; production code never resets.
  // order: relaxed — test-only reset; tests serialize around it.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const char* name() const { return name_; }
  const char* help() const { return help_; }

 private:
  const char* name_;
  const char* help_;
  std::atomic<std::uint64_t> value_{0};
};

/// All counters registered so far, sorted by name, with current values.
std::vector<std::pair<std::string, std::uint64_t>> SnapshotCounters();

/// One counter with its help text (the Prometheus exporter needs the
/// HELP line; SnapshotCounters keeps its lean name/value shape).
struct CounterInfo {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

/// All counters registered so far, sorted by name, with help + values.
std::vector<CounterInfo> SnapshotCounterInfo();

/// Forces registration of the whole static catalogue (counters otherwise
/// register lazily on first Add); snapshots call this so they always list
/// every counter, touched or not.
void RegisterAllCounters();

/// Zeroes every registered counter (tests and EXPLAIN ANALYZE deltas).
void ResetAllCounters();

/// Value of one counter by name; 0 when the name is not registered.
std::uint64_t CounterValue(const std::string& name);

/// Plain-text dump: one "name value" line per counter.
std::string SnapshotText();

/// JSON object {"name": value, ...}, keys sorted.
std::string SnapshotJson();

// -- Counter catalogue (defined in obs.cc; keep docs/observability.md in
// -- sync, both ways — icp_lint ICP005).
Counter& ScanWordsExamined();
Counter& ScanSegmentsProcessed();
Counter& ScanSegmentsEarlyStopped();
Counter& FilterCombineWords();
Counter& FilterRowsScanned();
Counter& FilterRowsPassing();
Counter& AggSegmentsFolded();
Counter& AggSegmentsSkipped();
Counter& AggCompareEarlyStops();
Counter& AggBlendsSkipped();
Counter& AggPathVbp();
Counter& AggPathHbp();
Counter& AggPathNbp();
Counter& AggPathNaive();
Counter& AggPathPadded();
Counter& KernDispatchScalar();
Counter& KernDispatchSse();
Counter& KernDispatchAvx2();
Counter& KernDispatchAvx512();
Counter& KernForceClamped();
Counter& CancelChecks();
Counter& FailpointHits();
Counter& PoolRegions();
Counter& PoolTasks();
Counter& EngineQueries();
Counter& SchedMorselsDispatched();
Counter& SchedMorselsCompleted();
Counter& SchedMorselsCancelled();
Counter& SchedSteals();
Counter& AdmitAdmitted();
Counter& AdmitShed();
Counter& AdmitQueuedCycles();
Counter& IoRetries();
Counter& GroupByQueriesSinglePass();
Counter& GroupByQueriesNaive();
Counter& GroupByLocalHits();
Counter& GroupBySpilledRows();
Counter& GroupByMergeEntries();
Counter& GroupByPartitionsMerged();
Counter& JournalRecords();
Counter& JournalSlowQueries();
Counter& AdminRequests();

#else  // !ICP_OBS

// With the layer compiled out the snapshot API still links (exporters and
// shells call it unconditionally) but reports an empty registry.
inline std::vector<std::pair<std::string, std::uint64_t>>
SnapshotCounters() {
  return {};
}
struct CounterInfo {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};
inline std::vector<CounterInfo> SnapshotCounterInfo() { return {}; }
inline void RegisterAllCounters() {}
inline void ResetAllCounters() {}
inline std::uint64_t CounterValue(const std::string&) { return 0; }
inline std::string SnapshotText() { return ""; }
inline std::string SnapshotJson() { return "{}"; }

#endif  // ICP_OBS

}  // namespace icp::obs

/// Hot-path increment: ICP_OBS_ADD(ScanWordsExamined, n). Expands to a
/// single relaxed fetch_add when the layer is enabled and to nothing when
/// built with ICP_OBS=0.
#if ICP_OBS
#define ICP_OBS_ADD(counter_fn, n) (::icp::obs::counter_fn().Add(n))
#define ICP_OBS_INCREMENT(counter_fn) (::icp::obs::counter_fn().Increment())
#else
#define ICP_OBS_ADD(counter_fn, n) ((void)0)
#define ICP_OBS_INCREMENT(counter_fn) ((void)0)
#endif

#endif  // ICP_OBS_OBS_H_
