// Chrome trace-event recording: spans per worker thread, written as a
// trace.json loadable in chrome://tracing / Perfetto.
//
// Spans are recorded in raw TSC cycles (the StageTimer clock) and
// converted to microseconds at write time using a paired
// (rdtsc, steady_clock) calibration taken when tracing was enabled and
// again when the file is written. Recording takes a mutex — spans are
// region-granularity (one per pool task / engine stage), never per-word,
// so contention is irrelevant and the hot loops stay untouched.
//
// The whole facility compiles out under ICP_OBS=0: the macros expand to
// nothing and the inline stubs below keep callers linking.

#ifndef ICP_OBS_TRACE_H_
#define ICP_OBS_TRACE_H_

#include "obs/obs.h"  // for the ICP_OBS switch

#include <cstddef>
#include <cstdint>
#include <string>

namespace icp::obs {

#if ICP_OBS

/// Starts recording spans and takes the cycle/wall calibration sample.
/// Idempotent; does not clear previously recorded spans.
void EnableTracing();

/// Stops recording (spans stay buffered until ClearTrace).
void DisableTracing();

bool TracingEnabled();

/// Records one completed span. `name` must be a string literal or other
/// process-lifetime string; `tid` is the worker index (track in the
/// trace viewer). No-op unless tracing is enabled.
void RecordSpan(const char* name, int tid, std::uint64_t start_cycles,
                std::uint64_t dur_cycles);

/// Number of spans currently buffered (tests).
std::size_t TraceSpanCount();

/// Number of TraceSpans currently open (constructed while tracing was
/// enabled and not yet destroyed). WriteChromeTrace emits these as
/// clamped-duration events so a mid-flight dump shows active work.
std::size_t OpenTraceSpanCount();

/// Drops all buffered spans (tests / between queries).
void ClearTrace();

/// Writes the buffered spans to `path` as Chrome trace-event JSON
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}). Returns false if
/// the file could not be written.
bool WriteChromeTrace(const std::string& path);

/// RAII span: records [construction, destruction) under `name` on track
/// `tid` if tracing is enabled when it closes. While open (and tracing
/// was enabled at construction) the span is registered so a trace
/// written mid-flight still shows it, with the duration clamped to the
/// write time.
class TraceSpan {
 public:
  TraceSpan(const char* name, int tid);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int tid_;
  std::uint64_t start_;
  /// Registered in the open-span table at construction (tracing was on).
  bool registered_;
};

#else  // !ICP_OBS

inline void EnableTracing() {}
inline void DisableTracing() {}
inline bool TracingEnabled() { return false; }
inline void RecordSpan(const char*, int, std::uint64_t, std::uint64_t) {}
inline std::size_t TraceSpanCount() { return 0; }
inline std::size_t OpenTraceSpanCount() { return 0; }
inline void ClearTrace() {}
inline bool WriteChromeTrace(const std::string&) { return false; }

#endif  // ICP_OBS

}  // namespace icp::obs

/// Scoped span macro for instrumented regions:
///   ICP_OBS_TRACE_SPAN("pool.task", worker_index);
/// Expands to nothing under ICP_OBS=0 so hot TUs carry no obs symbols.
#if ICP_OBS
#define ICP_OBS_TRACE_SPAN(name, tid) \
  ::icp::obs::TraceSpan icp_obs_span_##__LINE__(name, tid)
#else
#define ICP_OBS_TRACE_SPAN(name, tid) \
  do {                                \
  } while (false)
#endif

#endif  // ICP_OBS_TRACE_H_
