// Embedded admin plane: a tiny dependency-free HTTP/1.0 listener.
//
// One blocking-socket accept thread on 127.0.0.1 serves the telemetry
// surface read-only:
//
//   /healthz   "ok" (liveness probe)
//   /counters  SnapshotJson + HistogramsJson (JSON object)
//   /metrics   Prometheus text exposition (metrics.h)
//   /queries   governor active/queued set (via the provider seam) +
//              the recent query journal (JSON object)
//   /traces    trace-writer status: enabled flag, buffered and open
//              span counts (JSON object)
//
// The server is opt-in (nothing listens until Start), handles one
// request per connection (HTTP/1.0, Connection: close) and is meant for
// curl / Prometheus scrapes, not as a general web server. obs is a leaf
// library, so the governor's state arrives through a std::function
// provider (set_queries_provider) instead of a sched dependency.
//
// Compile-out: under ICP_OBS=0 the whole class collapses to inline
// stubs (Start returns kUnimplemented) so libicp_obs.a stays symbol-free
// and shells keep linking.

#ifndef ICP_OBS_ADMIN_SERVER_H_
#define ICP_OBS_ADMIN_SERVER_H_

#include "obs/obs.h"  // for the ICP_OBS switch

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "util/status.h"

namespace icp::obs {

#if ICP_OBS

class AdminServer {
 public:
  AdminServer() = default;
  /// Stops the listener if still running.
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// /queries includes this JSON object under "governor" (null when no
  /// provider is set). Must be set before Start; the callable must be
  /// thread-safe (it runs on the listener thread).
  void set_queries_provider(std::function<std::string()> provider) {
    queries_provider_ = std::move(provider);
  }

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see port()) and
  /// starts the accept thread. kFailedPrecondition when already
  /// running; kInternal when the socket cannot be bound.
  Status Start(int port);

  /// The bound port; 0 until Start succeeded.
  int port() const { return port_; }

  bool running() const { return listen_fd_ >= 0; }

  /// Joins the accept thread and closes the socket. Idempotent.
  void Stop();

 private:
  std::string HandleRequest(const std::string& target) const;
  void Serve();

  std::function<std::string()> queries_provider_;
  std::thread thread_;
  int listen_fd_ = -1;
  int port_ = 0;
  /// Set by Stop; the accept loop polls it every 100ms.
  std::atomic<bool> stop_{false};
};

#else  // !ICP_OBS

class AdminServer {
 public:
  AdminServer() = default;

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  void set_queries_provider(std::function<std::string()>) {}
  Status Start(int) {
    return Status::Unimplemented("admin server built with ICP_OBS=OFF");
  }
  int port() const { return 0; }
  bool running() const { return false; }
  void Stop() {}
};

#endif  // ICP_OBS

}  // namespace icp::obs

#endif  // ICP_OBS_ADMIN_SERVER_H_
