#include "obs/obs.h"

#if ICP_OBS

#include <algorithm>
#include <mutex>

namespace icp::obs {
namespace {

// Registration is rare (once per counter per process) and snapshots are
// cold; a mutex-guarded vector keeps the registry allocation-free on the
// increment path (counters themselves are plain atomics).
std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}

std::vector<Counter*>& Registry() {
  static auto* registry = new std::vector<Counter*>();
  return *registry;
}

}  // namespace

Counter::Counter(const char* name, const char* help)
    : name_(name), help_(help) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  Registry().push_back(this);
}

// One accessor per catalogued counter. The function-local static registers
// on first use; RegisterAllCounters() touches every accessor so snapshots
// always see the full catalogue. Names here are the source of truth the
// ICP005 lint syncs against docs/observability.md.
#define ICP_OBS_DEFINE_COUNTER(fn, counter_name, counter_help) \
  Counter& fn() {                                              \
    static Counter counter(counter_name, counter_help);        \
    return counter;                                            \
  }

ICP_OBS_DEFINE_COUNTER(ScanWordsExamined, "scan.words_examined",
                       "memory words read by the bit-parallel scans "
                       "(plane words for VBP, sub-segment words for HBP)")
ICP_OBS_DEFINE_COUNTER(ScanSegmentsProcessed, "scan.segments_processed",
                       "segments run through a scan compare cascade")
ICP_OBS_DEFINE_COUNTER(ScanSegmentsEarlyStopped,
                       "scan.segments_early_stopped",
                       "segments whose scan cascade early-stopped before "
                       "the last word group (pruned words)")
ICP_OBS_DEFINE_COUNTER(FilterCombineWords, "filter.combine_words",
                       "segment words combined by filter bit-vector "
                       "AND/OR/XOR/ANDNOT/NOT")
ICP_OBS_DEFINE_COUNTER(FilterRowsScanned, "filter.rows_scanned",
                       "rows covered by evaluated filters (query row "
                       "counts, summed)")
ICP_OBS_DEFINE_COUNTER(FilterRowsPassing, "filter.rows_passing",
                       "rows that passed evaluated filters (with "
                       "filter.rows_scanned gives the mean bit density)")
ICP_OBS_DEFINE_COUNTER(AggSegmentsFolded, "agg.segments_folded",
                       "segments folded by an aggregation kernel (live "
                       "segments actually processed)")
ICP_OBS_DEFINE_COUNTER(AggSegmentsSkipped, "agg.segments_skipped",
                       "segments an aggregation kernel skipped because no "
                       "tuple/candidate was live (early-exit pruning)")
ICP_OBS_DEFINE_COUNTER(AggCompareEarlyStops, "agg.compare_early_stops",
                       "MIN/MAX folds whose compare cascade decided every "
                       "slot before the last word group")
ICP_OBS_DEFINE_COUNTER(AggBlendsSkipped, "agg.blends_skipped",
                       "MIN/MAX folds where no slot improved the running "
                       "extreme (blend pass skipped)")
ICP_OBS_DEFINE_COUNTER(AggPathVbp, "agg.path.vbp",
                       "aggregate dispatches taking the VBP bit-parallel "
                       "path")
ICP_OBS_DEFINE_COUNTER(AggPathHbp, "agg.path.hbp",
                       "aggregate dispatches taking the HBP bit-parallel "
                       "path")
ICP_OBS_DEFINE_COUNTER(AggPathNbp, "agg.path.nbp",
                       "aggregate dispatches taking the NBP "
                       "reconstruct-then-aggregate baseline")
ICP_OBS_DEFINE_COUNTER(AggPathNaive, "agg.path.naive",
                       "aggregate dispatches over the naive unpacked "
                       "layout")
ICP_OBS_DEFINE_COUNTER(AggPathPadded, "agg.path.padded",
                       "aggregate dispatches over the padded layout")
ICP_OBS_DEFINE_COUNTER(KernDispatchScalar, "kern.dispatch.scalar",
                       "kernel-registry ops-table grabs resolving to the "
                       "scalar tier")
ICP_OBS_DEFINE_COUNTER(KernDispatchSse, "kern.dispatch.sse",
                       "kernel-registry ops-table grabs resolving to the "
                       "sse (CSA-64) tier")
ICP_OBS_DEFINE_COUNTER(KernDispatchAvx2, "kern.dispatch.avx2",
                       "kernel-registry ops-table grabs resolving to the "
                       "avx2 tier")
ICP_OBS_DEFINE_COUNTER(KernForceClamped, "kern.force_clamped",
                       "ForceTier() requests clamped to a lower tier "
                       "because the CPU lacks the requested features")
ICP_OBS_DEFINE_COUNTER(KernDispatchAvx512, "kern.dispatch.avx512",
                       "kernel-registry ops-table grabs resolving to the "
                       "avx512 tier")
ICP_OBS_DEFINE_COUNTER(CancelChecks, "cancel.checks",
                       "cooperative cancellation/deadline polls "
                       "(CancelContext::ShouldStop calls)")
ICP_OBS_DEFINE_COUNTER(FailpointHits, "failpoint.hits",
                       "failpoints that actually fired (injected failures "
                       "taken)")
ICP_OBS_DEFINE_COUNTER(PoolRegions, "pool.regions",
                       "thread-pool parallel regions run to the barrier")
ICP_OBS_DEFINE_COUNTER(PoolTasks, "pool.tasks",
                       "per-worker tasks run inside pool regions (regions "
                       "x workers; the barrier pool has no queue or "
                       "stealing)")
ICP_OBS_DEFINE_COUNTER(EngineQueries, "engine.queries",
                       "engine query executions (Execute / ExecuteMulti / "
                       "ExecuteGroupBy entry points)")
ICP_OBS_DEFINE_COUNTER(SchedMorselsDispatched, "sched.morsels.dispatched",
                       "morsels enqueued into scheduler regions (segment "
                       "ranges of kMorselSegments)")
ICP_OBS_DEFINE_COUNTER(SchedMorselsCompleted, "sched.morsels.completed",
                       "morsels whose body actually ran to completion")
ICP_OBS_DEFINE_COUNTER(SchedMorselsCancelled, "sched.morsels.cancelled",
                       "morsels drained without running because their "
                       "query was cancelled or its deadline passed")
ICP_OBS_DEFINE_COUNTER(SchedSteals, "sched.steals",
                       "morsels a scheduler participant stole from another "
                       "slot's shard after draining its own")
ICP_OBS_DEFINE_COUNTER(AdmitAdmitted, "admit.admitted",
                       "queries granted a session by the admission "
                       "governor (immediately or after queueing)")
ICP_OBS_DEFINE_COUNTER(AdmitShed, "admit.shed",
                       "queries rejected by admission control (queue full, "
                       "deadline already expired, or injected shed)")
ICP_OBS_DEFINE_COUNTER(AdmitQueuedCycles, "admit.queued_cycles",
                       "cycles queries spent waiting in the bounded "
                       "admission queue before being granted")
ICP_OBS_DEFINE_COUNTER(IoRetries, "io.retries",
                       "transient I/O read failures retried with backoff "
                       "(table_io and csv_loader)")
ICP_OBS_DEFINE_COUNTER(GroupByQueriesSinglePass, "groupby.queries_single_pass",
                       "grouped-aggregation queries executed by the "
                       "single-pass operator (src/groupby/)")
ICP_OBS_DEFINE_COUNTER(GroupByQueriesNaive, "groupby.queries_naive",
                       "grouped-aggregation queries executed by the naive "
                       "per-code strategy")
ICP_OBS_DEFINE_COUNTER(GroupByLocalHits, "groupby.local_hits",
                       "rows absorbed by a single-pass worker's thread-local "
                       "aggregation table")
ICP_OBS_DEFINE_COUNTER(GroupBySpilledRows, "groupby.spilled_rows",
                       "rows the single-pass operator packed into radix "
                       "spill partitions (local table full or pure-spill "
                       "mode)")
ICP_OBS_DEFINE_COUNTER(GroupByMergeEntries, "groupby.merge_entries",
                       "per-worker partial-table entries folded by the "
                       "single-pass merge phase")
ICP_OBS_DEFINE_COUNTER(GroupByPartitionsMerged, "groupby.partitions_merged",
                       "radix partitions merged by the single-pass "
                       "operator")
ICP_OBS_DEFINE_COUNTER(JournalRecords, "journal.records",
                       "completed-query records appended to the query "
                       "journal ring (src/obs/journal.h)")
ICP_OBS_DEFINE_COUNTER(JournalSlowQueries, "journal.slow_queries",
                       "journal records whose total cycles crossed the "
                       "slow-query threshold (each also emits a "
                       "\"query.slow\" trace span)")
ICP_OBS_DEFINE_COUNTER(AdminRequests, "admin.requests",
                       "HTTP requests served by the embedded admin "
                       "listener (src/obs/admin_server.h)")

#undef ICP_OBS_DEFINE_COUNTER

void RegisterAllCounters() {
  ScanWordsExamined();
  ScanSegmentsProcessed();
  ScanSegmentsEarlyStopped();
  FilterCombineWords();
  FilterRowsScanned();
  FilterRowsPassing();
  AggSegmentsFolded();
  AggSegmentsSkipped();
  AggCompareEarlyStops();
  AggBlendsSkipped();
  AggPathVbp();
  AggPathHbp();
  AggPathNbp();
  AggPathNaive();
  AggPathPadded();
  KernDispatchScalar();
  KernDispatchSse();
  KernDispatchAvx2();
  KernDispatchAvx512();
  KernForceClamped();
  CancelChecks();
  FailpointHits();
  PoolRegions();
  PoolTasks();
  EngineQueries();
  SchedMorselsDispatched();
  SchedMorselsCompleted();
  SchedMorselsCancelled();
  SchedSteals();
  AdmitAdmitted();
  AdmitShed();
  AdmitQueuedCycles();
  IoRetries();
  GroupByQueriesSinglePass();
  GroupByQueriesNaive();
  GroupByLocalHits();
  GroupBySpilledRows();
  GroupByMergeEntries();
  GroupByPartitionsMerged();
  JournalRecords();
  JournalSlowQueries();
  AdminRequests();
}

std::vector<std::pair<std::string, std::uint64_t>> SnapshotCounters() {
  RegisterAllCounters();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(RegistryMu());
    out.reserve(Registry().size());
    for (const Counter* counter : Registry()) {
      out.emplace_back(counter->name(), counter->Load());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CounterInfo> SnapshotCounterInfo() {
  RegisterAllCounters();
  std::vector<CounterInfo> out;
  {
    std::lock_guard<std::mutex> lock(RegistryMu());
    out.reserve(Registry().size());
    for (const Counter* counter : Registry()) {
      out.push_back(
          CounterInfo{counter->name(), counter->help(), counter->Load()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CounterInfo& a, const CounterInfo& b) {
              return a.name < b.name;
            });
  return out;
}

void ResetAllCounters() {
  RegisterAllCounters();
  std::lock_guard<std::mutex> lock(RegistryMu());
  for (Counter* counter : Registry()) counter->Reset();
}

std::uint64_t CounterValue(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  for (const Counter* counter : Registry()) {
    if (name == counter->name()) return counter->Load();
  }
  return 0;
}

std::string SnapshotText() {
  std::string out;
  for (const auto& [name, value] : SnapshotCounters()) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

std::string SnapshotJson() {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : SnapshotCounters()) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += name;
    out += "\": ";
    out += std::to_string(value);
  }
  out += "}";
  return out;
}

}  // namespace icp::obs

#endif  // ICP_OBS
