#include "tpch/generator.h"

#include "tpch/dates.h"
#include "util/random.h"

namespace icp::tpch {
namespace {

// TPC-H 4.3 distributions for the generated columns.
constexpr std::int64_t kMaxOrderDay = Day(1998, 8, 2);
constexpr std::int64_t kReturnCutoff = Day(1995, 6, 17);

}  // namespace

WideTableData GenerateWideTable(const GeneratorConfig& config) {
  Random rng(config.seed);
  const std::size_t n = config.num_rows;
  WideTableData d;
  auto reserve = [&](std::vector<std::int64_t>& v) { v.resize(n); };
  reserve(d.quantity);
  reserve(d.extendedprice);
  reserve(d.discount);
  reserve(d.tax);
  reserve(d.orderdate);
  reserve(d.shipdate);
  reserve(d.receiptdate);
  reserve(d.returnflag);
  reserve(d.linestatus);
  reserve(d.supp_nation);
  reserve(d.cust_nation);
  reserve(d.part_green);
  reserve(d.part_promo);
  reserve(d.supplycost);
  reserve(d.availqty);
  reserve(d.disc_price);
  reserve(d.charge);
  reserve(d.disc_revenue);
  reserve(d.promo_volume);
  reserve(d.amount);
  reserve(d.supp_value);

  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t qty =
        static_cast<std::int64_t>(rng.UniformInt(1, 50));
    // p_retailprice in [900.00, 1049.49] dollars; extendedprice =
    // quantity * retailprice, in cents.
    const std::int64_t retail =
        static_cast<std::int64_t>(rng.UniformInt(90000, 104949));
    const std::int64_t extprice = qty * retail;
    const std::int64_t disc =
        static_cast<std::int64_t>(rng.UniformInt(0, 10));
    const std::int64_t tax = static_cast<std::int64_t>(rng.UniformInt(0, 8));
    // o_orderdate uniform in [1992-01-01, 1998-08-02]; l_shipdate =
    // orderdate + 1..121; l_receiptdate = shipdate + 1..30.
    const std::int64_t odate =
        static_cast<std::int64_t>(rng.UniformInt(0, kMaxOrderDay));
    const std::int64_t sdate =
        odate + static_cast<std::int64_t>(rng.UniformInt(1, 121));
    const std::int64_t rdate =
        sdate + static_cast<std::int64_t>(rng.UniformInt(1, 30));
    // l_returnflag: 'R' or 'A' (50/50) when receipt <= 1995-06-17, else 'N'.
    const std::int64_t rflag =
        rdate <= kReturnCutoff ? (rng.Bernoulli(0.5) ? 'R' : 'A') : 'N';
    // l_linestatus: 'F' (fulfilled) up to the same cutoff, else 'O' (open).
    const std::int64_t lstatus = sdate <= kReturnCutoff ? 'F' : 'O';

    const std::int64_t supp_nation =
        static_cast<std::int64_t>(rng.UniformInt(0, 24));
    const std::int64_t cust_nation =
        static_cast<std::int64_t>(rng.UniformInt(0, 24));
    // p_name is 5 of 92 name words: P(contains "green") = 1 - C(91,5)/C(92,5)
    // = 5/92. p_type begins with one of 6 syllables: P(PROMO...) = 1/6... the
    // TPC-H type grammar yields 30/150 = 0.2 PROMO types.
    const std::int64_t green = rng.Bernoulli(5.0 / 92.0) ? 1 : 0;
    const std::int64_t promo = rng.Bernoulli(0.2) ? 1 : 0;
    // ps_supplycost in [1.00, 1000.00] dollars, cents.
    const std::int64_t cost =
        static_cast<std::int64_t>(rng.UniformInt(100, 100000));
    const std::int64_t avail =
        static_cast<std::int64_t>(rng.UniformInt(1, 9999));

    const std::int64_t disc_price = extprice * (100 - disc) / 100;
    d.quantity[i] = qty;
    d.extendedprice[i] = extprice;
    d.discount[i] = disc;
    d.tax[i] = tax;
    d.orderdate[i] = odate;
    d.shipdate[i] = sdate;
    d.receiptdate[i] = rdate;
    d.returnflag[i] = rflag;
    d.linestatus[i] = lstatus;
    d.supp_nation[i] = supp_nation;
    d.cust_nation[i] = cust_nation;
    d.part_green[i] = green;
    d.part_promo[i] = promo;
    d.supplycost[i] = cost;
    d.availqty[i] = avail;
    d.disc_price[i] = disc_price;
    d.charge[i] = disc_price * (100 + tax) / 100;
    d.disc_revenue[i] = extprice * disc / 100;
    d.promo_volume[i] = promo == 1 ? disc_price : 0;
    d.amount[i] = disc_price - cost * qty;
    d.supp_value[i] = cost * avail;
  }
  return d;
}

StatusOr<Table> BuildTable(const WideTableData& data, Layout layout) {
  Table table;
  const ColumnSpec plain{.layout = layout};
  const ColumnSpec dict{.layout = layout, .dictionary = true};
  struct Entry {
    const char* name;
    const std::vector<std::int64_t>* values;
    const ColumnSpec* spec;
  };
  const Entry entries[] = {
      {"l_quantity", &data.quantity, &plain},
      {"l_extendedprice", &data.extendedprice, &plain},
      {"l_discount", &data.discount, &plain},
      {"l_tax", &data.tax, &plain},
      {"o_orderdate", &data.orderdate, &plain},
      {"l_shipdate", &data.shipdate, &plain},
      {"l_receiptdate", &data.receiptdate, &plain},
      {"l_returnflag", &data.returnflag, &dict},
      {"l_linestatus", &data.linestatus, &dict},
      {"supp_nation", &data.supp_nation, &plain},
      {"cust_nation", &data.cust_nation, &plain},
      {"part_green", &data.part_green, &plain},
      {"part_promo", &data.part_promo, &plain},
      {"ps_supplycost", &data.supplycost, &plain},
      {"ps_availqty", &data.availqty, &plain},
      {"disc_price", &data.disc_price, &plain},
      {"charge", &data.charge, &plain},
      {"disc_revenue", &data.disc_revenue, &plain},
      {"promo_volume", &data.promo_volume, &plain},
      {"amount", &data.amount, &plain},
      {"supp_value", &data.supp_value, &plain},
  };
  for (const Entry& e : entries) {
    ICP_RETURN_IF_ERROR(table.AddColumn(e.name, *e.values, *e.spec));
  }
  return table;
}

}  // namespace icp::tpch
