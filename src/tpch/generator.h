// Mini-dbgen: synthetic TPC-H wide table (paper Section IV-C substrate).
//
// The paper evaluates TPC-H at SF-10 after the wide-table transformation of
// [11]/[12]: all joins are pre-computed and expression results are
// materialized as extra columns, so each of the nine evaluated queries
// becomes a filter scan plus aggregations over single columns. This
// generator reproduces exactly the columns those queries touch, with the
// official TPC-H value distributions (uniform quantity 1..50, discount
// 0..0.10, dates derived as o_orderdate + skews, 25 nations, ...), scaled to
// a configurable row count instead of SF-10's 60M lineitems. What Table II
// measures — per-query filter selectivity and the (bit width, selectivity)
// workload each aggregation sees — is preserved; see DESIGN.md for the
// substitution rationale and tpch/queries.cc for per-query notes.
//
// Monetary values are stored in cents (integers), matching the paper's
// footnote that TPC-H's widest numeric column (l_extendedprice) encodes in
// 24 bits.

#ifndef ICP_TPCH_GENERATOR_H_
#define ICP_TPCH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "engine/table.h"
#include "layout/layout.h"
#include "util/status.h"

namespace icp::tpch {

struct GeneratorConfig {
  std::size_t num_rows = 1 << 20;
  std::uint64_t seed = 19920101;
};

/// Raw (value-domain) columns of the denormalized wide table.
struct WideTableData {
  // lineitem base columns.
  std::vector<std::int64_t> quantity;        // 1..50
  std::vector<std::int64_t> extendedprice;   // cents
  std::vector<std::int64_t> discount;        // percent, 0..10
  std::vector<std::int64_t> tax;             // percent, 0..8
  std::vector<std::int64_t> orderdate;       // days since 1992-01-01
  std::vector<std::int64_t> shipdate;
  std::vector<std::int64_t> receiptdate;
  std::vector<std::int64_t> returnflag;      // 'A', 'N', 'R'
  std::vector<std::int64_t> linestatus;      // 'F', 'O'
  // denormalized join columns.
  std::vector<std::int64_t> supp_nation;     // 0..24
  std::vector<std::int64_t> cust_nation;     // 0..24
  std::vector<std::int64_t> part_green;      // p_name contains "green"
  std::vector<std::int64_t> part_promo;      // p_type starts with "PROMO"
  std::vector<std::int64_t> supplycost;      // cents
  std::vector<std::int64_t> availqty;        // 1..9999
  // materialized expression columns (per [11]).
  std::vector<std::int64_t> disc_price;      // extprice * (1 - discount)
  std::vector<std::int64_t> charge;          // disc_price * (1 + tax)
  std::vector<std::int64_t> disc_revenue;    // extprice * discount (Q6)
  std::vector<std::int64_t> promo_volume;    // disc_price if promo part (Q14)
  std::vector<std::int64_t> amount;          // disc_price - cost*qty (Q9)
  std::vector<std::int64_t> supp_value;      // supplycost * availqty (Q11)

  std::size_t num_rows() const { return quantity.size(); }
};

/// Generates the wide-table columns.
WideTableData GenerateWideTable(const GeneratorConfig& config);

/// Packs the generated data into an engine Table with every column stored
/// in `layout` (tau = per-layout default). returnflag is
/// dictionary-encoded; all other columns are range-encoded.
StatusOr<Table> BuildTable(const WideTableData& data, Layout layout);

}  // namespace icp::tpch

#endif  // ICP_TPCH_GENERATOR_H_
