#include "tpch/queries.h"

#include "tpch/dates.h"

namespace icp::tpch {

std::vector<QuerySpec> MakeQueries() {
  std::vector<QuerySpec> queries;

  // Q1: pricing summary report. WHERE l_shipdate <= 1998-12-01 - 90 days.
  // Group-by (returnflag, linestatus) is materialized away per [11]; the
  // aggregate list is Q1's, over materialized disc_price/charge columns.
  queries.push_back(QuerySpec{
      .id = "Q1",
      .paper_selectivity = 0.986,
      .filter = FilterExpr::Compare("l_shipdate", CompareOp::kLe,
                                    Day(1998, 9, 2)),
      .aggregates = {{AggKind::kSum, "l_quantity"},
                     {AggKind::kSum, "l_extendedprice"},
                     {AggKind::kSum, "disc_price"},
                     {AggKind::kSum, "charge"},
                     {AggKind::kAvg, "l_quantity"},
                     {AggKind::kAvg, "l_extendedprice"},
                     {AggKind::kAvg, "l_discount"},
                     {AggKind::kCount, "l_quantity"}},
      .note = "shipdate <= '1998-09-02'; group-by materialized away"});

  // Q6: forecasting revenue change. Revenue = extendedprice * discount is
  // the materialized disc_revenue column.
  queries.push_back(QuerySpec{
      .id = "Q6",
      .paper_selectivity = 0.019,
      .filter = FilterExpr::And(
          {FilterExpr::Between("l_shipdate", Day(1994, 1, 1),
                               Day(1995, 1, 1) - 1),
           FilterExpr::Between("l_discount", 5, 7),
           FilterExpr::Compare("l_quantity", CompareOp::kLt, 24)}),
      .aggregates = {{AggKind::kSum, "disc_revenue"}},
      .note = "shipdate in 1994, discount in [0.05,0.07], quantity < 24"});

  // Q7: volume shipping. The nation-pair equijoin is denormalized into the
  // wide table; the scanned predicate (and the paper's 0.301 selectivity)
  // is the shipdate range over 1995-1996.
  queries.push_back(QuerySpec{
      .id = "Q7",
      .paper_selectivity = 0.301,
      .filter = FilterExpr::Between("l_shipdate", Day(1995, 1, 1),
                                    Day(1996, 12, 31)),
      .aggregates = {{AggKind::kSum, "disc_price"}},
      .note = "shipdate in [1995, 1996]; nation pairs denormalized"});

  // Q9: product type profit. p_name LIKE '%green%' is materialized as the
  // part_green flag (P = 5/92 ~ 0.054); profit amount is materialized.
  queries.push_back(QuerySpec{
      .id = "Q9",
      .paper_selectivity = 0.053,
      .filter = FilterExpr::Compare("part_green", CompareOp::kEq, 1),
      .aggregates = {{AggKind::kSum, "amount"}},
      .note = "p_name like '%green%' materialized as flag column"});

  // Q10: returned item reporting. o_orderdate in a quarter AND
  // l_returnflag = 'R'. Our generated distributions give ~0.0095 (3 months
  // = 0.038 of orders, ~25% of those are 'R'); the paper lists 0.019 —
  // same sub-0.02 regime, see EXPERIMENTS.md.
  queries.push_back(QuerySpec{
      .id = "Q10",
      .paper_selectivity = 0.019,
      .filter = FilterExpr::And(
          {FilterExpr::Between("o_orderdate", Day(1993, 10, 1),
                               Day(1994, 1, 1) - 1),
           FilterExpr::Compare("l_returnflag", CompareOp::kEq, 'R')}),
      .aggregates = {{AggKind::kSum, "disc_price"}},
      .note = "orderdate in 1993Q4 and returnflag = 'R'"});

  // Q11: important stock identification. Suppliers in GERMANY (1 of 25
  // nations); value = ps_supplycost * ps_availqty is materialized.
  queries.push_back(QuerySpec{
      .id = "Q11",
      .paper_selectivity = 0.041,
      .filter = FilterExpr::Compare("supp_nation", CompareOp::kEq, 7),
      .aggregates = {{AggKind::kSum, "supp_value"}},
      .note = "supplier nation = GERMANY (1/25)"});

  // Q14: promotion effect. One month of shipments; the CASE expression is
  // the materialized promo_volume column, the ratio's denominator is the
  // disc_price sum.
  queries.push_back(QuerySpec{
      .id = "Q14",
      .paper_selectivity = 0.012,
      .filter = FilterExpr::Between("l_shipdate", Day(1995, 9, 1),
                                    Day(1995, 10, 1) - 1),
      .aggregates = {{AggKind::kSum, "promo_volume"},
                     {AggKind::kSum, "disc_price"}},
      .note = "shipdate in 1995-09; CASE materialized as promo_volume"});

  // Q15: top supplier. Three months of shipments.
  queries.push_back(QuerySpec{
      .id = "Q15",
      .paper_selectivity = 0.037,
      .filter = FilterExpr::Between("l_shipdate", Day(1996, 1, 1),
                                    Day(1996, 4, 1) - 1),
      .aggregates = {{AggKind::kSum, "disc_price"}},
      .note = "shipdate in [1996-01, 1996-04)"});

  // Q20: potential part promotion. The part-name prefix predicate is
  // materialized into the wide table per [11]; the scanned predicate (and
  // the paper's 0.150 selectivity) is the shipdate-in-1994 range.
  queries.push_back(QuerySpec{
      .id = "Q20",
      .paper_selectivity = 0.150,
      .filter = FilterExpr::Between("l_shipdate", Day(1994, 1, 1),
                                    Day(1995, 1, 1) - 1),
      .aggregates = {{AggKind::kSum, "l_quantity"}},
      .note = "shipdate in 1994; p_name prefix materialized away"});

  return queries;
}

}  // namespace icp::tpch
