// TPC-H date helpers.
//
// TPC-H dates span 1992-01-01 .. 1998-12-31; columns store "days since
// 1992-01-01" so they encode in 12 bits.

#ifndef ICP_TPCH_DATES_H_
#define ICP_TPCH_DATES_H_

#include <cstdint>

#include "util/dates.h"

namespace icp::tpch {

using icp::DaysFromCivil;

/// The TPC-H epoch (1992-01-01) as a day number.
inline constexpr std::int64_t kTpchEpoch = DaysFromCivil(1992, 1, 1);

/// Days since 1992-01-01.
constexpr std::int64_t Day(int y, int m, int d) {
  return DaysFromCivil(y, m, d) - kTpchEpoch;
}

static_assert(Day(1992, 1, 1) == 0);
static_assert(Day(1992, 1, 2) == 1);
static_assert(Day(1993, 1, 1) == 366);  // 1992 is a leap year
static_assert(Day(1998, 12, 31) == 2556);

}  // namespace icp::tpch

#endif  // ICP_TPCH_DATES_H_
