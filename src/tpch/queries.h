// The nine TPC-H queries of the paper's Table II, in wide-table form.
//
// Following [11]/[12] (as the paper does), each query reduces to one filter
// over the wide table plus aggregations over single (possibly materialized)
// columns. The per-query notes record how the SQL maps onto this form and
// where the expected selectivity comes from; the paper's Table II
// selectivity column is reproduced as `paper_selectivity`.

#ifndef ICP_TPCH_QUERIES_H_
#define ICP_TPCH_QUERIES_H_

#include <string>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "engine/expression.h"

namespace icp::tpch {

struct QuerySpec {
  std::string id;
  /// Filter selectivity reported in the paper's Table II.
  double paper_selectivity;
  FilterExprPtr filter;
  /// (aggregate, column) pairs the query computes after the scan.
  std::vector<std::pair<AggKind, std::string>> aggregates;
  /// How the SQL was transformed to wide-table form.
  std::string note;
};

/// All nine queries (Q1, Q6, Q7, Q9, Q10, Q11, Q14, Q15, Q20).
std::vector<QuerySpec> MakeQueries();

}  // namespace icp::tpch

#endif  // ICP_TPCH_QUERIES_H_
