#include "parallel/thread_pool.h"

#include "obs/obs.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace icp {
namespace {

// Consults the "thread_pool/task" failpoint for one worker's task. Returns
// true when the task should be dropped (simulating a failed region task).
bool DropTask() { return ICP_FAILPOINT("thread_pool/task"); }

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  ICP_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(int)>* task = nullptr;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation) {
        work_cv_.wait(lock);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    if (DropTask()) {
      // order: relaxed — the barrier (pending_ under mu_) orders this
      // store before the caller's TakeTaskFailure read.
      task_failed_.store(true, std::memory_order_relaxed);
    } else {
      ICP_OBS_TRACE_SPAN("pool.task", index);
      (*task)(index);
    }
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::RunPerThread(const std::function<void(int)>& fn) {
  // Detect misuse (nested call from inside fn, or a concurrent region from
  // another thread) instead of deadlocking on done_cv_.
  // order: acquire(pool-region-guard) — pairs with the release store
  // below so a caller that wins the guard sees the prior region's pool
  // state (task_ cleared, counters settled).
  if (in_region_.exchange(true, std::memory_order_acquire)) {
    ICP_CHECK(false && "ThreadPool::RunPerThread is not reentrant");
  }
  // The barrier pool has no task queue and does no stealing: one region =
  // num_threads tasks, so these two counters fully describe its activity.
  ICP_OBS_INCREMENT(PoolRegions);
  ICP_OBS_ADD(PoolTasks, static_cast<std::uint64_t>(num_threads_));
  if (num_threads_ == 1) {
    if (DropTask()) {
      // order: relaxed — single-threaded region; the same thread reads
      // the flag in TakeTaskFailure.
      task_failed_.store(true, std::memory_order_relaxed);
    } else {
      ICP_OBS_TRACE_SPAN("pool.task", 0);
      fn(0);
    }
    // order: release(pool-region-guard) — publishes this region's pool
    // state to the next RunPerThread caller's acquire exchange.
    in_region_.store(false, std::memory_order_release);
    return;
  }
  {
    MutexLock lock(mu_);
    task_ = &fn;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  if (DropTask()) {
    // order: relaxed — the region barrier orders this store before the
    // caller's TakeTaskFailure read.
    task_failed_.store(true, std::memory_order_relaxed);
  } else {
    ICP_OBS_TRACE_SPAN("pool.task", 0);
    fn(0);
  }
  {
    MutexLock lock(mu_);
    while (pending_ != 0) done_cv_.wait(lock);
    task_ = nullptr;
  }
  // order: release(pool-region-guard) — publishes this region's pool
  // state to the next RunPerThread caller's acquire exchange.
  in_region_.store(false, std::memory_order_release);
}

void ThreadPool::ParallelFor(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  RunPerThread([&](int index) {
    const auto [begin, end] = PartitionRange(total, num_threads_, index);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace icp
