// Execution-strategy seam between the parallel aggregation drivers and
// whatever supplies their worker slots.
//
// The drivers in parallel_aggregate.{h,cc} used to partition segments
// statically across a private ThreadPool. ParallelExecutor abstracts the
// "run this body over [0, total) with bounded worker slots" contract so
// the same drivers run on either:
//
//   * StaticPoolExecutor — the legacy static split over a ThreadPool
//     (one contiguous partition per worker, batched for cancellation);
//   * sched::QuerySession — the morsel-driven scheduler (small segment
//     ranges pulled by a shared worker pool with stealing; admission
//     control and per-query budgets in front).
//
// The virtual call happens once per batch/morsel (~kMorselSegments
// segments of kernel work), never per word, so the seam costs nothing
// measurable (see docs/scheduler.md for the overhead guard).

#ifndef ICP_PARALLEL_EXECUTOR_H_
#define ICP_PARALLEL_EXECUTOR_H_

#include <cstddef>
#include <functional>

#include "parallel/thread_pool.h"
#include "util/cancellation.h"

namespace icp {

/// Contract for running driver bodies in parallel.
///
///   * ParallelFor invokes fn(slot, begin, end) over disjoint subranges
///     that together cover [0, total) (unless cancelled/dropped early).
///   * `slot` is in [0, max_slots()); two invocations with the same slot
///     never run concurrently, so drivers may index per-slot partial
///     accumulators without synchronization. A slot may receive many
///     disjoint subranges, so accumulators must be initialized by the
///     caller before the region and folded with += / merge semantics.
///   * All writes made by fn happen-before ParallelFor's return.
///   * `cancel`, when active, is polled at least once per subrange, so
///     worst-case cancellation latency is one subrange per slot.
class ParallelExecutor {
 public:
  virtual ~ParallelExecutor() = default;

  /// Exclusive upper bound on the `slot` argument fn can be called with.
  virtual int max_slots() const = 0;

  /// Accounts `bytes` of per-query scratch (partial-result arrays) against
  /// the executor's budget. Returns false when the budget is exhausted;
  /// the driver must then skip the allocation and return a degenerate
  /// result, which the engine discards after surfacing the executor's
  /// latched error.
  virtual bool AccountScratch(std::size_t bytes) = 0;

  virtual void ParallelFor(
      std::size_t total, const CancelContext* cancel,
      const std::function<void(int, std::size_t, std::size_t)>& fn) = 0;
};

/// The legacy strategy: one contiguous static partition per pool worker,
/// chunked by kCancelBatchSegments for cancellation. Unlimited scratch.
class StaticPoolExecutor final : public ParallelExecutor {
 public:
  explicit StaticPoolExecutor(ThreadPool& pool) : pool_(pool) {}

  int max_slots() const override { return pool_.num_threads(); }

  bool AccountScratch(std::size_t) override { return true; }

  void ParallelFor(std::size_t total, const CancelContext* cancel,
                   const std::function<void(int, std::size_t, std::size_t)>&
                       fn) override {
    pool_.RunPerThread([&](int index) {
      const auto [begin, end] =
          PartitionRange(total, pool_.num_threads(), index);
      ForEachCancellableBatch(cancel, begin, end,
                              [&](std::size_t b, std::size_t e) {
                                fn(index, b, e);
                              });
    });
  }

 private:
  ThreadPool& pool_;
};

}  // namespace icp

#endif  // ICP_PARALLEL_EXECUTOR_H_
