// Minimal persistent thread pool for data-parallel aggregation.
//
// The paper's multi-threaded configuration pins one worker per physical core
// and partitions the column's segments across workers (Section IV-B). The
// iterative algorithms (MEDIAN) dispatch one parallel region per bit
// iteration, so the pool keeps its workers alive between regions instead of
// spawning threads per call.

#ifndef ICP_PARALLEL_THREAD_POOL_H_
#define ICP_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace icp {

class ThreadPool {
 public:
  /// Creates `num_threads` persistent workers (>= 1). Worker 0 is the
  /// calling thread itself, so a pool of 1 adds no threads.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  int num_threads() const { return num_threads_; }

  /// Runs fn(thread_index) for thread_index in [0, num_threads) and blocks
  /// until every invocation returns. fn runs on the calling thread for
  /// index 0. Not reentrant: calling RunPerThread from inside fn (or from a
  /// second thread while a region is in flight) would deadlock on the shared
  /// generation counter, so it aborts via ICP_CHECK instead.
  void RunPerThread(const std::function<void(int)>& fn);

  /// Convenience: statically partitions [0, total) into num_threads
  /// contiguous chunks and runs fn(begin, end) per worker (empty chunks are
  /// skipped).
  void ParallelFor(std::size_t total,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Returns true (and clears the flag) if any per-thread task of a region
  /// run since the last call was dropped by the "thread_pool/task"
  /// failpoint. The region itself completes — workers that drop their task
  /// still join the barrier — so callers observe a consistent pool and turn
  /// the flag into a Status. Always false in builds without ICP_FAILPOINTS.
  bool TakeTaskFailure() {
    // order: relaxed — worker stores happen-before this read via the
    // region barrier (pending_ handoff under mu_), so the flag needs no
    // ordering of its own.
    return task_failed_.exchange(false, std::memory_order_relaxed);
  }

 private:
  void WorkerLoop(int index);

  const int num_threads_;
  // not-guarded: written only by the constructor and joined by the
  // destructor, both single-threaded phases of the pool's lifetime.
  std::vector<std::thread> workers_;

  Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  const std::function<void(int)>* task_ ICP_GUARDED_BY(mu_) = nullptr;
  std::uint64_t generation_ ICP_GUARDED_BY(mu_) = 0;
  int pending_ ICP_GUARDED_BY(mu_) = 0;
  bool shutdown_ ICP_GUARDED_BY(mu_) = false;
  std::atomic<bool> in_region_{false};
  std::atomic<bool> task_failed_{false};
};

/// The begin/end of chunk `index` when splitting `total` items
/// into `parts` contiguous chunks as evenly as possible.
inline std::pair<std::size_t, std::size_t> PartitionRange(std::size_t total,
                                                          int parts,
                                                          int index) {
  ICP_DCHECK(parts >= 1 && index >= 0 && index < parts);
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t idx = static_cast<std::size_t>(index);
  const std::size_t begin = idx * base + (idx < extra ? idx : extra);
  return {begin, begin + base + (idx < extra ? 1 : 0)};
}

}  // namespace icp

#endif  // ICP_PARALLEL_THREAD_POOL_H_
