#include "parallel/parallel_aggregate.h"

#include <vector>

#include "core/hbp_aggregate.h"
#include "core/vbp_aggregate.h"
#include "scan/hbp_scanner.h"
#include "scan/vbp_scanner.h"
#include "simd/dispatch.h"
#include "util/check.h"

namespace icp::par {
namespace {

constexpr int kMaxThreads = 256;

// Runs fn(begin, end) over each worker's static partition of [0, total),
// chunked by kCancelBatchSegments so every worker observes a cancellation
// within one batch. Workers always return into the region barrier.
void CancellableParallelFor(
    ThreadPool& pool, std::size_t total, const CancelContext* cancel,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  pool.RunPerThread([&](int index) {
    const auto [begin, end] = PartitionRange(total, pool.num_threads(), index);
    ForEachCancellableBatch(cancel, begin, end, fn);
  });
}

// Adds every worker's local ScanStats into the caller's (after the region
// barrier, so there is no concurrent write). The locals already advanced
// the process-wide counters inside the scanners.
void MergeLocalScanStats(const ScanStats* locals, int n, ScanStats* stats) {
  if (stats == nullptr) return;
  for (int i = 0; i < n; ++i) {
    stats->words_examined += locals[i].words_examined;
    stats->segments_processed += locals[i].segments_processed;
    stats->segments_early_stopped += locals[i].segments_early_stopped;
  }
}

// Same for AggStats (the fold kernels advanced the global counters).
void MergeLocalAggStats(const AggStats* locals, int n, AggStats* stats) {
  if (stats == nullptr) return;
  for (int i = 0; i < n; ++i) {
    stats->folds += locals[i].folds;
    stats->compare_early_stops += locals[i].compare_early_stops;
    stats->blends_skipped += locals[i].blends_skipped;
    stats->segments_skipped += locals[i].segments_skipped;
  }
}

}  // namespace

std::uint64_t Count(ThreadPool& pool, const FilterBitVector& filter) {
  std::uint64_t partial[kMaxThreads] = {};
  ICP_CHECK_LE(pool.num_threads(), kMaxThreads);
  const Word* words = filter.words();
  const kern::KernelOps& ops = kern::Ops();
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    partial[index] = ops.popcount_words(words + begin, end - begin);
  });
  std::uint64_t total = 0;
  for (int i = 0; i < pool.num_threads(); ++i) total += partial[i];
  return total;
}

FilterBitVector Scan(ThreadPool& pool, const VbpColumn& column, CompareOp op,
                     std::uint64_t c1, std::uint64_t c2,
                     const CancelContext* cancel, ScanStats* stats) {
  FilterBitVector out(column.num_values(), VbpColumn::kValuesPerSegment);
  ICP_CHECK_LE(pool.num_threads(), kMaxThreads);
  ScanStats locals[kMaxThreads];
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(out.num_segments(), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          VbpScanner::ScanRange(column, op, c1, c2, b, e, &out,
                                stats != nullptr ? &locals[index] : nullptr);
        });
  });
  MergeLocalScanStats(locals, pool.num_threads(), stats);
  return out;
}

FilterBitVector Scan(ThreadPool& pool, const HbpColumn& column, CompareOp op,
                     std::uint64_t c1, std::uint64_t c2,
                     const CancelContext* cancel, ScanStats* stats) {
  FilterBitVector out(column.num_values(), column.values_per_segment());
  ICP_CHECK_LE(pool.num_threads(), kMaxThreads);
  ScanStats locals[kMaxThreads];
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(out.num_segments(), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          HbpScanner::ScanRange(column, op, c1, c2, b, e, &out,
                                stats != nullptr ? &locals[index] : nullptr);
        });
  });
  MergeLocalScanStats(locals, pool.num_threads(), stats);
  return out;
}

UInt128 Sum(ThreadPool& pool, const VbpColumn& column,
            const FilterBitVector& filter, const CancelContext* cancel) {
  const int k = column.bit_width();
  std::vector<std::uint64_t> bit_sums(
      static_cast<std::size_t>(pool.num_threads()) * kWordBits, 0);
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          vbp::AccumulateBitSums(column, filter, b, e,
                                 bit_sums.data() + index * kWordBits);
        });
  });
  for (int i = 1; i < pool.num_threads(); ++i) {
    for (int j = 0; j < k; ++j) {
      bit_sums[j] += bit_sums[i * kWordBits + j];
    }
  }
  return vbp::CombineBitSums(bit_sums.data(), k);
}

UInt128 Sum(ThreadPool& pool, const HbpColumn& column,
            const FilterBitVector& filter, const CancelContext* cancel) {
  std::vector<std::uint64_t> group_sums(
      static_cast<std::size_t>(pool.num_threads()) * kWordBits, 0);
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          hbp::AccumulateGroupSums(column, filter, b, e,
                                   group_sums.data() + index * kWordBits);
        });
  });
  for (int i = 1; i < pool.num_threads(); ++i) {
    for (int g = 0; g < column.num_groups(); ++g) {
      group_sums[g] += group_sums[i * kWordBits + g];
    }
  }
  return hbp::CombineGroupSums(column, group_sums.data());
}

namespace {

std::optional<std::uint64_t> ExtremeVbp(ThreadPool& pool,
                                        const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        bool is_min,
                                        const CancelContext* cancel,
                                        AggStats* stats) {
  if (Count(pool, filter) == 0) return std::nullopt;
  const int k = column.bit_width();
  std::vector<Word> temps(
      static_cast<std::size_t>(pool.num_threads()) * kWordBits);
  ICP_CHECK_LE(pool.num_threads(), kMaxThreads);
  AggStats locals[kMaxThreads];
  pool.RunPerThread([&](int index) {
    Word* temp = temps.data() + index * kWordBits;
    vbp::InitSlotExtreme(k, is_min, temp);
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          vbp::SlotExtremeRange(column, filter, b, e, is_min, temp,
                                stats != nullptr ? &locals[index] : nullptr);
        });
  });
  MergeLocalAggStats(locals, pool.num_threads(), stats);
  for (int i = 1; i < pool.num_threads(); ++i) {
    vbp::MergeSlotExtreme(temps.data() + i * kWordBits, k, is_min,
                          temps.data());
  }
  return vbp::ExtremeOfSlots(temps.data(), k, is_min);
}

std::optional<std::uint64_t> ExtremeHbp(ThreadPool& pool,
                                        const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        bool is_min,
                                        const CancelContext* cancel,
                                        AggStats* stats) {
  if (Count(pool, filter) == 0) return std::nullopt;
  std::vector<Word> temps(
      static_cast<std::size_t>(pool.num_threads()) * kWordBits);
  ICP_CHECK_LE(pool.num_threads(), kMaxThreads);
  AggStats locals[kMaxThreads];
  pool.RunPerThread([&](int index) {
    Word* temp = temps.data() + index * kWordBits;
    hbp::InitSubSlotExtreme(column, is_min, temp);
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          hbp::SubSlotExtremeRange(column, filter, b, e, is_min, temp,
                                   stats != nullptr ? &locals[index]
                                                    : nullptr);
        });
  });
  MergeLocalAggStats(locals, pool.num_threads(), stats);
  for (int i = 1; i < pool.num_threads(); ++i) {
    hbp::MergeSubSlotExtreme(column, temps.data() + i * kWordBits, is_min,
                             temps.data());
  }
  return hbp::ExtremeOfSubSlots(column, temps.data(), is_min);
}

}  // namespace

std::optional<std::uint64_t> Min(ThreadPool& pool, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return ExtremeVbp(pool, column, filter, /*is_min=*/true, cancel, stats);
}
std::optional<std::uint64_t> Max(ThreadPool& pool, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return ExtremeVbp(pool, column, filter, /*is_min=*/false, cancel, stats);
}
std::optional<std::uint64_t> Min(ThreadPool& pool, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return ExtremeHbp(pool, column, filter, /*is_min=*/true, cancel, stats);
}
std::optional<std::uint64_t> Max(ThreadPool& pool, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return ExtremeHbp(pool, column, filter, /*is_min=*/false, cancel, stats);
}

std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  std::uint64_t u = Count(pool, filter);
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t num_segments = filter.num_segments();
  std::vector<Word> v(filter.words(), filter.words() + num_segments);

  const int k = column.bit_width();
  const int tau = column.tau();
  std::uint64_t partial[kMaxThreads];
  std::uint64_t result = 0;
  for (int jb = 0; jb < k; ++jb) {
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    const int g = jb / tau;
    const int j = jb - g * tau;
    // Parallel popcount reduce; workers synchronize on the global counter c
    // each iteration (the contention the paper attributes to VBP-MEDIAN).
    pool.RunPerThread([&](int index) {
      const auto [begin, end] =
          PartitionRange(num_segments, pool.num_threads(), index);
      std::uint64_t count = 0;
      ForEachCancellableBatch(
          cancel, begin, end, [&](std::size_t b, std::size_t e) {
            count += vbp::CountCandidateBit(column, v.data(), b, e, g, j);
          });
      partial[index] = count;
    });
    std::uint64_t c = 0;
    for (int i = 0; i < pool.num_threads(); ++i) c += partial[i];
    const bool bit_is_one = u - c < r;
    if (bit_is_one) {
      result |= std::uint64_t{1} << (k - 1 - jb);
      r -= u - c;
      u = c;
    } else {
      u -= c;
    }
    CancellableParallelFor(pool, num_segments, cancel,
                           [&](std::size_t b, std::size_t e) {
                             vbp::UpdateCandidates(column, v.data(), b, e, g,
                                                   j, bit_is_one);
                           });
  }
  if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
  return result;
}

std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  const std::uint64_t u = Count(pool, filter);
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t num_segments = filter.num_segments();
  std::vector<Word> v(filter.words(), filter.words() + num_segments);
  const std::size_t bins = std::size_t{1} << column.tau();
  std::vector<std::uint64_t> hists(
      static_cast<std::size_t>(pool.num_threads()) * bins);

  std::uint64_t result = 0;
  for (int g = 0; g < column.num_groups(); ++g) {
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    std::fill(hists.begin(), hists.end(), 0);
    pool.RunPerThread([&](int index) {
      const auto [begin, end] =
          PartitionRange(num_segments, pool.num_threads(), index);
      ForEachCancellableBatch(
          cancel, begin, end, [&](std::size_t b, std::size_t e) {
            hbp::BuildGroupHistogram(column, v.data(), b, e, g,
                                     hists.data() + index * bins);
          });
    });
    // A cancelled histogram pass may not cover all candidates; the cumulative
    // walk below could then run past r. Bail out before using it.
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    for (int i = 1; i < pool.num_threads(); ++i) {
      for (std::size_t b = 0; b < bins; ++b) {
        hists[b] += hists[i * bins + b];
      }
    }
    std::uint64_t cum = 0;
    std::uint64_t bin = 0;
    while (bin + 1 < bins && cum + hists[bin] < r) {
      cum += hists[bin];
      ++bin;
    }
    r -= cum;
    result |= bin << column.GroupShift(g);
    if (g + 1 < column.num_groups()) {
      CancellableParallelFor(pool, num_segments, cancel,
                             [&](std::size_t b, std::size_t e) {
                               hbp::NarrowCandidates(column, v.data(), b, e,
                                                     g, bin);
                             });
    }
  }
  if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
  return result;
}

std::optional<std::uint64_t> Median(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  const std::uint64_t count = Count(pool, filter);
  if (count == 0) return std::nullopt;
  return RankSelect(pool, column, filter, LowerMedianRank(count), cancel);
}

std::optional<std::uint64_t> Median(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  const std::uint64_t count = Count(pool, filter);
  if (count == 0) return std::nullopt;
  return RankSelect(pool, column, filter, LowerMedianRank(count), cancel);
}

namespace {

template <typename ColumnT>
AggregateResult AggregateImpl(ThreadPool& pool, const ColumnT& column,
                              const FilterBitVector& filter, AggKind kind,
                              std::uint64_t rank,
                              const CancelContext* cancel, AggStats* stats) {
  AggregateResult result;
  result.kind = kind;
  result.count = Count(pool, filter);
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(pool, column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMin:
      result.value = Min(pool, column, filter, cancel, stats);
      break;
    case AggKind::kMax:
      result.value = Max(pool, column, filter, cancel, stats);
      break;
    case AggKind::kMedian:
      result.value = Median(pool, column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kRank:
      result.value = RankSelect(pool, column, filter, rank, cancel);
      CountFilterSegments(filter, stats);
      break;
  }
  return result;
}

}  // namespace

AggregateResult Aggregate(ThreadPool& pool, const VbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank, const CancelContext* cancel,
                          AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathVbp);
  return AggregateImpl(pool, column, filter, kind, rank, cancel, stats);
}

AggregateResult Aggregate(ThreadPool& pool, const HbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank, const CancelContext* cancel,
                          AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathHbp);
  return AggregateImpl(pool, column, filter, kind, rank, cancel, stats);
}

}  // namespace icp::par
