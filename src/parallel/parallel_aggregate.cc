#include "parallel/parallel_aggregate.h"

#include <vector>

#include "core/hbp_aggregate.h"
#include "core/vbp_aggregate.h"
#include "scan/hbp_scanner.h"
#include "scan/vbp_scanner.h"
#include "simd/dispatch.h"
#include "util/check.h"

namespace icp::par {
namespace {

constexpr int kMaxThreads = 256;

// Adds every slot's local ScanStats into the caller's (after the region
// completes, so there is no concurrent write). The locals already
// advanced the process-wide counters inside the scanners.
void MergeLocalScanStats(const ScanStats* locals, int n, ScanStats* stats) {
  if (stats == nullptr) return;
  for (int i = 0; i < n; ++i) {
    stats->words_examined += locals[i].words_examined;
    stats->segments_processed += locals[i].segments_processed;
    stats->segments_early_stopped += locals[i].segments_early_stopped;
  }
}

// Same for AggStats (the fold kernels advanced the global counters).
void MergeLocalAggStats(const AggStats* locals, int n, AggStats* stats) {
  if (stats == nullptr) return;
  for (int i = 0; i < n; ++i) {
    stats->folds += locals[i].folds;
    stats->compare_early_stops += locals[i].compare_early_stops;
    stats->blends_skipped += locals[i].blends_skipped;
    stats->segments_skipped += locals[i].segments_skipped;
  }
}

}  // namespace

std::uint64_t Count(ParallelExecutor& ex, const FilterBitVector& filter) {
  // Zero-initialized and folded with += because a morsel executor hands
  // one slot many disjoint subranges.
  std::uint64_t partial[kMaxThreads] = {};
  ICP_CHECK_LE(ex.max_slots(), kMaxThreads);
  const Word* words = filter.words();
  const kern::KernelOps& ops = kern::Ops();
  ex.ParallelFor(filter.num_segments(), nullptr,
                 [&](int slot, std::size_t b, std::size_t e) {
                   partial[slot] += ops.popcount_words(words + b, e - b);
                 });
  std::uint64_t total = 0;
  for (int i = 0; i < ex.max_slots(); ++i) total += partial[i];
  return total;
}

std::uint64_t Count(ThreadPool& pool, const FilterBitVector& filter) {
  StaticPoolExecutor ex(pool);
  return Count(ex, filter);
}

FilterBitVector Scan(ParallelExecutor& ex, const VbpColumn& column,
                     CompareOp op, std::uint64_t c1, std::uint64_t c2,
                     const CancelContext* cancel, ScanStats* stats) {
  FilterBitVector out(column.num_values(), VbpColumn::kValuesPerSegment);
  ICP_CHECK_LE(ex.max_slots(), kMaxThreads);
  ScanStats locals[kMaxThreads];
  ex.ParallelFor(out.num_segments(), cancel,
                 [&](int slot, std::size_t b, std::size_t e) {
                   VbpScanner::ScanRange(
                       column, op, c1, c2, b, e, &out,
                       stats != nullptr ? &locals[slot] : nullptr);
                 });
  MergeLocalScanStats(locals, ex.max_slots(), stats);
  return out;
}

FilterBitVector Scan(ParallelExecutor& ex, const HbpColumn& column,
                     CompareOp op, std::uint64_t c1, std::uint64_t c2,
                     const CancelContext* cancel, ScanStats* stats) {
  FilterBitVector out(column.num_values(), column.values_per_segment());
  ICP_CHECK_LE(ex.max_slots(), kMaxThreads);
  ScanStats locals[kMaxThreads];
  ex.ParallelFor(out.num_segments(), cancel,
                 [&](int slot, std::size_t b, std::size_t e) {
                   HbpScanner::ScanRange(
                       column, op, c1, c2, b, e, &out,
                       stats != nullptr ? &locals[slot] : nullptr);
                 });
  MergeLocalScanStats(locals, ex.max_slots(), stats);
  return out;
}

FilterBitVector Scan(ThreadPool& pool, const VbpColumn& column, CompareOp op,
                     std::uint64_t c1, std::uint64_t c2,
                     const CancelContext* cancel, ScanStats* stats) {
  StaticPoolExecutor ex(pool);
  return Scan(ex, column, op, c1, c2, cancel, stats);
}

FilterBitVector Scan(ThreadPool& pool, const HbpColumn& column, CompareOp op,
                     std::uint64_t c1, std::uint64_t c2,
                     const CancelContext* cancel, ScanStats* stats) {
  StaticPoolExecutor ex(pool);
  return Scan(ex, column, op, c1, c2, cancel, stats);
}

UInt128 Sum(ParallelExecutor& ex, const VbpColumn& column,
            const FilterBitVector& filter, const CancelContext* cancel) {
  const int k = column.bit_width();
  const int slots = ex.max_slots();
  const std::size_t scratch =
      static_cast<std::size_t>(slots) * kWordBits * sizeof(std::uint64_t);
  if (!ex.AccountScratch(scratch)) return UInt128{};
  std::vector<std::uint64_t> bit_sums(
      static_cast<std::size_t>(slots) * kWordBits, 0);
  ex.ParallelFor(filter.num_segments(), cancel,
                 [&](int slot, std::size_t b, std::size_t e) {
                   vbp::AccumulateBitSums(column, filter, b, e,
                                          bit_sums.data() + slot * kWordBits);
                 });
  for (int i = 1; i < slots; ++i) {
    for (int j = 0; j < k; ++j) {
      bit_sums[j] += bit_sums[i * kWordBits + j];
    }
  }
  return vbp::CombineBitSums(bit_sums.data(), k);
}

UInt128 Sum(ParallelExecutor& ex, const HbpColumn& column,
            const FilterBitVector& filter, const CancelContext* cancel) {
  const int slots = ex.max_slots();
  const std::size_t scratch =
      static_cast<std::size_t>(slots) * kWordBits * sizeof(std::uint64_t);
  if (!ex.AccountScratch(scratch)) return UInt128{};
  std::vector<std::uint64_t> group_sums(
      static_cast<std::size_t>(slots) * kWordBits, 0);
  ex.ParallelFor(filter.num_segments(), cancel,
                 [&](int slot, std::size_t b, std::size_t e) {
                   hbp::AccumulateGroupSums(
                       column, filter, b, e,
                       group_sums.data() + slot * kWordBits);
                 });
  for (int i = 1; i < slots; ++i) {
    for (int g = 0; g < column.num_groups(); ++g) {
      group_sums[g] += group_sums[i * kWordBits + g];
    }
  }
  return hbp::CombineGroupSums(column, group_sums.data());
}

UInt128 Sum(ThreadPool& pool, const VbpColumn& column,
            const FilterBitVector& filter, const CancelContext* cancel) {
  StaticPoolExecutor ex(pool);
  return Sum(ex, column, filter, cancel);
}

UInt128 Sum(ThreadPool& pool, const HbpColumn& column,
            const FilterBitVector& filter, const CancelContext* cancel) {
  StaticPoolExecutor ex(pool);
  return Sum(ex, column, filter, cancel);
}

namespace {

std::optional<std::uint64_t> ExtremeVbp(ParallelExecutor& ex,
                                        const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        bool is_min,
                                        const CancelContext* cancel,
                                        AggStats* stats) {
  if (Count(ex, filter) == 0) return std::nullopt;
  const int k = column.bit_width();
  const int slots = ex.max_slots();
  const std::size_t scratch =
      static_cast<std::size_t>(slots) * kWordBits * sizeof(Word);
  if (!ex.AccountScratch(scratch)) return std::nullopt;
  std::vector<Word> temps(static_cast<std::size_t>(slots) * kWordBits);
  ICP_CHECK_LE(slots, kMaxThreads);
  AggStats locals[kMaxThreads];
  // Slot state is initialized up front on the calling thread: a morsel
  // executor invokes fn once per morsel, not once per slot.
  for (int i = 0; i < slots; ++i) {
    vbp::InitSlotExtreme(k, is_min, temps.data() + i * kWordBits);
  }
  ex.ParallelFor(filter.num_segments(), cancel,
                 [&](int slot, std::size_t b, std::size_t e) {
                   vbp::SlotExtremeRange(
                       column, filter, b, e, is_min,
                       temps.data() + slot * kWordBits,
                       stats != nullptr ? &locals[slot] : nullptr);
                 });
  MergeLocalAggStats(locals, slots, stats);
  for (int i = 1; i < slots; ++i) {
    vbp::MergeSlotExtreme(temps.data() + i * kWordBits, k, is_min,
                          temps.data());
  }
  return vbp::ExtremeOfSlots(temps.data(), k, is_min);
}

std::optional<std::uint64_t> ExtremeHbp(ParallelExecutor& ex,
                                        const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        bool is_min,
                                        const CancelContext* cancel,
                                        AggStats* stats) {
  if (Count(ex, filter) == 0) return std::nullopt;
  const int slots = ex.max_slots();
  const std::size_t scratch =
      static_cast<std::size_t>(slots) * kWordBits * sizeof(Word);
  if (!ex.AccountScratch(scratch)) return std::nullopt;
  std::vector<Word> temps(static_cast<std::size_t>(slots) * kWordBits);
  ICP_CHECK_LE(slots, kMaxThreads);
  AggStats locals[kMaxThreads];
  for (int i = 0; i < slots; ++i) {
    hbp::InitSubSlotExtreme(column, is_min, temps.data() + i * kWordBits);
  }
  ex.ParallelFor(filter.num_segments(), cancel,
                 [&](int slot, std::size_t b, std::size_t e) {
                   hbp::SubSlotExtremeRange(
                       column, filter, b, e, is_min,
                       temps.data() + slot * kWordBits,
                       stats != nullptr ? &locals[slot] : nullptr);
                 });
  MergeLocalAggStats(locals, slots, stats);
  for (int i = 1; i < slots; ++i) {
    hbp::MergeSubSlotExtreme(column, temps.data() + i * kWordBits, is_min,
                             temps.data());
  }
  return hbp::ExtremeOfSubSlots(column, temps.data(), is_min);
}

}  // namespace

std::optional<std::uint64_t> Min(ParallelExecutor& ex, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return ExtremeVbp(ex, column, filter, /*is_min=*/true, cancel, stats);
}
std::optional<std::uint64_t> Max(ParallelExecutor& ex, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return ExtremeVbp(ex, column, filter, /*is_min=*/false, cancel, stats);
}
std::optional<std::uint64_t> Min(ParallelExecutor& ex, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return ExtremeHbp(ex, column, filter, /*is_min=*/true, cancel, stats);
}
std::optional<std::uint64_t> Max(ParallelExecutor& ex, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return ExtremeHbp(ex, column, filter, /*is_min=*/false, cancel, stats);
}

std::optional<std::uint64_t> Min(ThreadPool& pool, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  StaticPoolExecutor ex(pool);
  return Min(ex, column, filter, cancel, stats);
}
std::optional<std::uint64_t> Max(ThreadPool& pool, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  StaticPoolExecutor ex(pool);
  return Max(ex, column, filter, cancel, stats);
}
std::optional<std::uint64_t> Min(ThreadPool& pool, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  StaticPoolExecutor ex(pool);
  return Min(ex, column, filter, cancel, stats);
}
std::optional<std::uint64_t> Max(ThreadPool& pool, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  StaticPoolExecutor ex(pool);
  return Max(ex, column, filter, cancel, stats);
}

std::optional<std::uint64_t> RankSelect(ParallelExecutor& ex,
                                        const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  std::uint64_t u = Count(ex, filter);
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t num_segments = filter.num_segments();
  if (!ex.AccountScratch(num_segments * sizeof(Word))) return std::nullopt;
  std::vector<Word> v(filter.words(), filter.words() + num_segments);

  const int k = column.bit_width();
  const int tau = column.tau();
  const int slots = ex.max_slots();
  ICP_CHECK_LE(slots, kMaxThreads);
  std::uint64_t partial[kMaxThreads];
  std::uint64_t result = 0;
  for (int jb = 0; jb < k; ++jb) {
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    const int g = jb / tau;
    const int j = jb - g * tau;
    std::fill(partial, partial + slots, 0);
    // Parallel popcount reduce; workers synchronize on the global counter c
    // each iteration (the contention the paper attributes to VBP-MEDIAN).
    ex.ParallelFor(num_segments, cancel,
                   [&](int slot, std::size_t b, std::size_t e) {
                     partial[slot] +=
                         vbp::CountCandidateBit(column, v.data(), b, e, g, j);
                   });
    std::uint64_t c = 0;
    for (int i = 0; i < slots; ++i) c += partial[i];
    const bool bit_is_one = u - c < r;
    if (bit_is_one) {
      result |= std::uint64_t{1} << (k - 1 - jb);
      r -= u - c;
      u = c;
    } else {
      u -= c;
    }
    ex.ParallelFor(num_segments, cancel,
                   [&](int, std::size_t b, std::size_t e) {
                     vbp::UpdateCandidates(column, v.data(), b, e, g, j,
                                           bit_is_one);
                   });
  }
  if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
  return result;
}

std::optional<std::uint64_t> RankSelect(ParallelExecutor& ex,
                                        const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  const std::uint64_t u = Count(ex, filter);
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t num_segments = filter.num_segments();
  const std::size_t bins = std::size_t{1} << column.tau();
  const int slots = ex.max_slots();
  const std::size_t scratch =
      num_segments * sizeof(Word) +
      static_cast<std::size_t>(slots) * bins * sizeof(std::uint64_t);
  if (!ex.AccountScratch(scratch)) return std::nullopt;
  std::vector<Word> v(filter.words(), filter.words() + num_segments);
  std::vector<std::uint64_t> hists(static_cast<std::size_t>(slots) * bins);

  std::uint64_t result = 0;
  for (int g = 0; g < column.num_groups(); ++g) {
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    std::fill(hists.begin(), hists.end(), 0);
    ex.ParallelFor(num_segments, cancel,
                   [&](int slot, std::size_t b, std::size_t e) {
                     hbp::BuildGroupHistogram(column, v.data(), b, e, g,
                                              hists.data() + slot * bins);
                   });
    // A cancelled histogram pass may not cover all candidates; the cumulative
    // walk below could then run past r. Bail out before using it.
    if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
    for (int i = 1; i < slots; ++i) {
      for (std::size_t b = 0; b < bins; ++b) {
        hists[b] += hists[i * bins + b];
      }
    }
    std::uint64_t cum = 0;
    std::uint64_t bin = 0;
    while (bin + 1 < bins && cum + hists[bin] < r) {
      cum += hists[bin];
      ++bin;
    }
    r -= cum;
    result |= bin << column.GroupShift(g);
    if (g + 1 < column.num_groups()) {
      ex.ParallelFor(num_segments, cancel,
                     [&](int, std::size_t b, std::size_t e) {
                       hbp::NarrowCandidates(column, v.data(), b, e, g, bin);
                     });
    }
  }
  if (cancel != nullptr && cancel->ShouldStop()) return std::nullopt;
  return result;
}

std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  StaticPoolExecutor ex(pool);
  return RankSelect(ex, column, filter, r, cancel);
}

std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  StaticPoolExecutor ex(pool);
  return RankSelect(ex, column, filter, r, cancel);
}

std::optional<std::uint64_t> Median(ParallelExecutor& ex,
                                    const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  const std::uint64_t count = Count(ex, filter);
  if (count == 0) return std::nullopt;
  return RankSelect(ex, column, filter, LowerMedianRank(count), cancel);
}

std::optional<std::uint64_t> Median(ParallelExecutor& ex,
                                    const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  const std::uint64_t count = Count(ex, filter);
  if (count == 0) return std::nullopt;
  return RankSelect(ex, column, filter, LowerMedianRank(count), cancel);
}

std::optional<std::uint64_t> Median(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  StaticPoolExecutor ex(pool);
  return Median(ex, column, filter, cancel);
}

std::optional<std::uint64_t> Median(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  StaticPoolExecutor ex(pool);
  return Median(ex, column, filter, cancel);
}

namespace {

template <typename ColumnT>
AggregateResult AggregateImpl(ParallelExecutor& ex, const ColumnT& column,
                              const FilterBitVector& filter, AggKind kind,
                              std::uint64_t rank,
                              const CancelContext* cancel, AggStats* stats) {
  AggregateResult result;
  result.kind = kind;
  result.count = Count(ex, filter);
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(ex, column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMin:
      result.value = Min(ex, column, filter, cancel, stats);
      break;
    case AggKind::kMax:
      result.value = Max(ex, column, filter, cancel, stats);
      break;
    case AggKind::kMedian:
      result.value = Median(ex, column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kRank:
      result.value = RankSelect(ex, column, filter, rank, cancel);
      CountFilterSegments(filter, stats);
      break;
  }
  return result;
}

}  // namespace

AggregateResult Aggregate(ParallelExecutor& ex, const VbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank, const CancelContext* cancel,
                          AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathVbp);
  return AggregateImpl(ex, column, filter, kind, rank, cancel, stats);
}

AggregateResult Aggregate(ParallelExecutor& ex, const HbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank, const CancelContext* cancel,
                          AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathHbp);
  return AggregateImpl(ex, column, filter, kind, rank, cancel, stats);
}

AggregateResult Aggregate(ThreadPool& pool, const VbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank, const CancelContext* cancel,
                          AggStats* stats) {
  StaticPoolExecutor ex(pool);
  return Aggregate(ex, column, filter, kind, rank, cancel, stats);
}

AggregateResult Aggregate(ThreadPool& pool, const HbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank, const CancelContext* cancel,
                          AggStats* stats) {
  StaticPoolExecutor ex(pool);
  return Aggregate(ex, column, filter, kind, rank, cancel, stats);
}

}  // namespace icp::par
