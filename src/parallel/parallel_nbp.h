// Multi-threaded driver for the NBP (reconstruct-then-aggregate) baseline,
// so the Table II comparison runs both methods under the same thread budget.
// Workers reconstruct the passing tuples of their segment partition; SUM/
// MIN/MAX merge scalars, MEDIAN concatenates the per-thread value buffers
// and selects the rank.

#ifndef ICP_PARALLEL_PARALLEL_NBP_H_
#define ICP_PARALLEL_PARALLEL_NBP_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "core/nbp_aggregate.h"
#include "parallel/thread_pool.h"
#include "util/bits.h"

namespace icp::par_nbp {

template <typename ColumnT>
UInt128 Sum(ThreadPool& pool, const ColumnT& column,
            const FilterBitVector& filter) {
  std::vector<UInt128> partial(pool.num_threads(), 0);
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    UInt128 sum = 0;
    nbp::ForEachPassingRange(column, filter, begin, end,
                             [&](std::uint64_t v) { sum += v; });
    partial[index] = sum;
  });
  UInt128 total = 0;
  for (const UInt128& p : partial) total += p;
  return total;
}

template <typename ColumnT>
std::optional<std::uint64_t> Extreme(ThreadPool& pool, const ColumnT& column,
                                     const FilterBitVector& filter,
                                     bool is_min) {
  std::vector<std::optional<std::uint64_t>> partial(pool.num_threads());
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    std::optional<std::uint64_t> best;
    nbp::ForEachPassingRange(column, filter, begin, end,
                             [&](std::uint64_t v) {
                               if (!best.has_value() ||
                                   (is_min ? v < *best : v > *best)) {
                                 best = v;
                               }
                             });
    partial[index] = best;
  });
  std::optional<std::uint64_t> best;
  for (const auto& p : partial) {
    if (!p.has_value()) continue;
    if (!best.has_value() || (is_min ? *p < *best : *p > *best)) best = p;
  }
  return best;
}

template <typename ColumnT>
std::optional<std::uint64_t> Min(ThreadPool& pool, const ColumnT& column,
                                 const FilterBitVector& filter) {
  return Extreme(pool, column, filter, /*is_min=*/true);
}

template <typename ColumnT>
std::optional<std::uint64_t> Max(ThreadPool& pool, const ColumnT& column,
                                 const FilterBitVector& filter) {
  return Extreme(pool, column, filter, /*is_min=*/false);
}

template <typename ColumnT>
std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const ColumnT& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r) {
  const std::uint64_t count = filter.CountOnes();
  if (r < 1 || r > count) return std::nullopt;
  std::vector<std::vector<std::uint64_t>> partial(pool.num_threads());
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    nbp::ForEachPassingRange(
        column, filter, begin, end,
        [&](std::uint64_t v) { partial[index].push_back(v); });
  });
  std::vector<std::uint64_t> values;
  values.reserve(count);
  for (auto& p : partial) {
    values.insert(values.end(), p.begin(), p.end());
  }
  auto nth = values.begin() + static_cast<std::ptrdiff_t>(r - 1);
  std::nth_element(values.begin(), nth, values.end());
  return *nth;
}

template <typename ColumnT>
std::optional<std::uint64_t> Median(ThreadPool& pool, const ColumnT& column,
                                    const FilterBitVector& filter) {
  return RankSelect(pool, column, filter,
                    LowerMedianRank(filter.CountOnes()));
}

template <typename ColumnT>
AggregateResult Aggregate(ThreadPool& pool, const ColumnT& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0) {
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(pool, column, filter);
      break;
    case AggKind::kMin:
      result.value = Min(pool, column, filter);
      break;
    case AggKind::kMax:
      result.value = Max(pool, column, filter);
      break;
    case AggKind::kMedian:
      result.value = Median(pool, column, filter);
      break;
    case AggKind::kRank:
      result.value = RankSelect(pool, column, filter, rank);
      break;
  }
  return result;
}

}  // namespace icp::par_nbp

#endif  // ICP_PARALLEL_PARALLEL_NBP_H_
