// Multi-threaded driver for the NBP (reconstruct-then-aggregate) baseline,
// so the Table II comparison runs both methods under the same thread budget.
// Workers reconstruct the passing tuples of their segment partition; SUM/
// MIN/MAX merge scalars, MEDIAN concatenates the per-thread value buffers
// and selects the rank.

#ifndef ICP_PARALLEL_PARALLEL_NBP_H_
#define ICP_PARALLEL_PARALLEL_NBP_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "core/nbp_aggregate.h"
#include "parallel/thread_pool.h"
#include "util/bits.h"
#include "util/cancellation.h"

namespace icp::par_nbp {

/// The optional CancelContext is checked every kCancelBatchSegments segments
/// of each worker's partition (same contract as par:: — workers always
/// rejoin the barrier and the engine discards the partial result).
template <typename ColumnT>
UInt128 Sum(ThreadPool& pool, const ColumnT& column,
            const FilterBitVector& filter,
            const CancelContext* cancel = nullptr) {
  std::vector<UInt128> partial(pool.num_threads(), 0);
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    UInt128 sum = 0;
    ForEachCancellableBatch(cancel, begin, end,
                            [&](std::size_t b, std::size_t e) {
                              nbp::ForEachPassingRange(
                                  column, filter, b, e,
                                  [&](std::uint64_t v) { sum += v; });
                            });
    partial[index] = sum;
  });
  UInt128 total = 0;
  for (const UInt128& p : partial) total += p;
  return total;
}

template <typename ColumnT>
std::optional<std::uint64_t> Extreme(ThreadPool& pool, const ColumnT& column,
                                     const FilterBitVector& filter,
                                     bool is_min,
                                     const CancelContext* cancel = nullptr) {
  std::vector<std::optional<std::uint64_t>> partial(pool.num_threads());
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    std::optional<std::uint64_t> best;
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          nbp::ForEachPassingRange(column, filter, b, e,
                                   [&](std::uint64_t v) {
                                     if (!best.has_value() ||
                                         (is_min ? v < *best : v > *best)) {
                                       best = v;
                                     }
                                   });
        });
    partial[index] = best;
  });
  std::optional<std::uint64_t> best;
  for (const auto& p : partial) {
    if (!p.has_value()) continue;
    if (!best.has_value() || (is_min ? *p < *best : *p > *best)) best = p;
  }
  return best;
}

template <typename ColumnT>
std::optional<std::uint64_t> Min(ThreadPool& pool, const ColumnT& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr) {
  return Extreme(pool, column, filter, /*is_min=*/true, cancel);
}

template <typename ColumnT>
std::optional<std::uint64_t> Max(ThreadPool& pool, const ColumnT& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr) {
  return Extreme(pool, column, filter, /*is_min=*/false, cancel);
}

template <typename ColumnT>
std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const ColumnT& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel =
                                            nullptr) {
  const std::uint64_t count = filter.CountOnes();
  if (r < 1 || r > count) return std::nullopt;
  std::vector<std::vector<std::uint64_t>> partial(pool.num_threads());
  pool.RunPerThread([&](int index) {
    const auto [begin, end] =
        PartitionRange(filter.num_segments(), pool.num_threads(), index);
    ForEachCancellableBatch(
        cancel, begin, end, [&](std::size_t b, std::size_t e) {
          nbp::ForEachPassingRange(
              column, filter, b, e,
              [&](std::uint64_t v) { partial[index].push_back(v); });
        });
  });
  std::vector<std::uint64_t> values;
  values.reserve(count);
  for (auto& p : partial) {
    values.insert(values.end(), p.begin(), p.end());
  }
  if (values.size() < r) return std::nullopt;  // cancelled mid-walk
  auto nth = values.begin() + static_cast<std::ptrdiff_t>(r - 1);
  std::nth_element(values.begin(), nth, values.end());
  return *nth;
}

template <typename ColumnT>
std::optional<std::uint64_t> Median(ThreadPool& pool, const ColumnT& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr) {
  return RankSelect(pool, column, filter, LowerMedianRank(filter.CountOnes()),
                    cancel);
}

/// `stats`, when non-null, carries the CountFilterSegments liveness
/// summary (same contract as nbp::Aggregate).
template <typename ColumnT>
AggregateResult Aggregate(ThreadPool& pool, const ColumnT& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr) {
  ICP_OBS_INCREMENT(AggPathNbp);
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(pool, column, filter, cancel);
      break;
    case AggKind::kMin:
      result.value = Min(pool, column, filter, cancel);
      break;
    case AggKind::kMax:
      result.value = Max(pool, column, filter, cancel);
      break;
    case AggKind::kMedian:
      result.value = Median(pool, column, filter, cancel);
      break;
    case AggKind::kRank:
      result.value = RankSelect(pool, column, filter, rank, cancel);
      break;
  }
  if (kind != AggKind::kCount) CountFilterSegments(filter, stats);
  return result;
}

}  // namespace icp::par_nbp

#endif  // ICP_PARALLEL_PARALLEL_NBP_H_
