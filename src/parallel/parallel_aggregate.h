// Multi-threaded drivers for the bit-parallel scans and aggregates
// (paper Section IV-B).
//
// The column's segments are statically partitioned into one contiguous range
// per worker; each worker runs the single-threaded Range kernel on its
// partition and partial states are merged on the calling thread:
//   SUM    — per-thread bSum / group-sum arrays, added together;
//   MIN/MAX — per-thread running extreme segments, folded with SLOTMIN;
//   MEDIAN — the bit/bit-group loop is inherently global: every iteration
//            runs one parallel popcount/histogram reduction and one parallel
//            candidate update, synchronizing on the shared counter exactly
//            as the paper notes for Algorithm 3's line 8;
//   COUNT  — parallel popcount.

#ifndef ICP_PARALLEL_PARALLEL_AGGREGATE_H_
#define ICP_PARALLEL_PARALLEL_AGGREGATE_H_

#include <cstdint>
#include <optional>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/hbp_column.h"
#include "layout/vbp_column.h"
#include "parallel/thread_pool.h"
#include "scan/predicate.h"
#include "util/cancellation.h"

namespace icp::par {

/// Parallel COUNT: popcount of the filter, partitioned across workers.
std::uint64_t Count(ThreadPool& pool, const FilterBitVector& filter);

/// Parallel bit-parallel filter scans. Every entry point below takes an
/// optional CancelContext: each worker checks it every kCancelBatchSegments
/// segments of its partition and stops early once it fires. Workers always
/// rejoin the region barrier, so the pool stays consistent; the partial
/// result is meaningless and the engine surfaces the context's Status.
/// `stats`, when non-null, receives the per-worker counters summed after
/// the region barrier (no worker writes it concurrently).
FilterBitVector Scan(ThreadPool& pool, const VbpColumn& column, CompareOp op,
                     std::uint64_t c1, std::uint64_t c2 = 0,
                     const CancelContext* cancel = nullptr,
                     ScanStats* stats = nullptr);
FilterBitVector Scan(ThreadPool& pool, const HbpColumn& column, CompareOp op,
                     std::uint64_t c1, std::uint64_t c2 = 0,
                     const CancelContext* cancel = nullptr,
                     ScanStats* stats = nullptr);

/// Parallel SUM.
UInt128 Sum(ThreadPool& pool, const VbpColumn& column,
            const FilterBitVector& filter,
            const CancelContext* cancel = nullptr);
UInt128 Sum(ThreadPool& pool, const HbpColumn& column,
            const FilterBitVector& filter,
            const CancelContext* cancel = nullptr);

/// Parallel MIN / MAX. `stats`, when non-null, receives the fold
/// instrumentation summed across workers after the region barrier.
std::optional<std::uint64_t> Min(ThreadPool& pool, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Max(ThreadPool& pool, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Min(ThreadPool& pool, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Max(ThreadPool& pool, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);

/// Parallel r-selection / MEDIAN. The iterative loops additionally check the
/// context between bit / bit-group iterations and bail out with nullopt.
std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> Median(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> Median(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);

/// Convenience dispatcher mirroring vbp::Aggregate / hbp::Aggregate,
/// including the AggStats contract (exact for MIN/MAX, liveness summary
/// for the other kinds).
AggregateResult Aggregate(ThreadPool& pool, const VbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr);
AggregateResult Aggregate(ThreadPool& pool, const HbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr);

}  // namespace icp::par

#endif  // ICP_PARALLEL_PARALLEL_AGGREGATE_H_
