// Multi-threaded drivers for the bit-parallel scans and aggregates
// (paper Section IV-B).
//
// Every driver runs against a ParallelExecutor (executor.h), which
// decides how [0, num_segments) is handed to worker slots:
//
//   * the ThreadPool overloads keep the paper's static split — one
//     contiguous partition per worker, merged on the calling thread;
//   * the ParallelExecutor overloads additionally accept
//     sched::QuerySession, whose morsel-driven scheduler shares workers
//     across concurrent queries with stealing and admission control.
//
// Partial-state shape is identical in both:
//   SUM    — per-slot bSum / group-sum arrays, added together;
//   MIN/MAX — per-slot running extreme segments, folded with SLOTMIN;
//   MEDIAN — the bit/bit-group loop is inherently global: every iteration
//            runs one parallel popcount/histogram reduction and one
//            parallel candidate update, synchronizing on the shared
//            counter exactly as the paper notes for Algorithm 3's line 8;
//   COUNT  — parallel popcount.
//
// Because an executor may hand one slot many disjoint subranges
// (morsels), per-slot accumulators are initialized up front on the
// calling thread and folded with += / merge semantics.

#ifndef ICP_PARALLEL_PARALLEL_AGGREGATE_H_
#define ICP_PARALLEL_PARALLEL_AGGREGATE_H_

#include <cstdint>
#include <optional>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/hbp_column.h"
#include "layout/vbp_column.h"
#include "parallel/executor.h"
#include "parallel/thread_pool.h"
#include "scan/predicate.h"
#include "util/cancellation.h"

namespace icp::par {

/// Parallel COUNT: popcount of the filter, partitioned across slots.
std::uint64_t Count(ParallelExecutor& ex, const FilterBitVector& filter);
std::uint64_t Count(ThreadPool& pool, const FilterBitVector& filter);

/// Parallel bit-parallel filter scans. Every entry point below takes an
/// optional CancelContext: the executor checks it at least once per
/// subrange (batch or morsel) and stops issuing work once it fires.
/// Participants always drain cleanly; the partial result is meaningless
/// and the engine surfaces the context's Status. `stats`, when non-null,
/// receives the per-slot counters summed after the region completes (no
/// worker writes it concurrently).
FilterBitVector Scan(ParallelExecutor& ex, const VbpColumn& column,
                     CompareOp op, std::uint64_t c1, std::uint64_t c2 = 0,
                     const CancelContext* cancel = nullptr,
                     ScanStats* stats = nullptr);
FilterBitVector Scan(ParallelExecutor& ex, const HbpColumn& column,
                     CompareOp op, std::uint64_t c1, std::uint64_t c2 = 0,
                     const CancelContext* cancel = nullptr,
                     ScanStats* stats = nullptr);
FilterBitVector Scan(ThreadPool& pool, const VbpColumn& column, CompareOp op,
                     std::uint64_t c1, std::uint64_t c2 = 0,
                     const CancelContext* cancel = nullptr,
                     ScanStats* stats = nullptr);
FilterBitVector Scan(ThreadPool& pool, const HbpColumn& column, CompareOp op,
                     std::uint64_t c1, std::uint64_t c2 = 0,
                     const CancelContext* cancel = nullptr,
                     ScanStats* stats = nullptr);

/// Parallel SUM. The per-slot partial arrays count against the
/// executor's scratch budget; a refused budget returns 0 and the
/// executor latches kResourceExhausted for the engine to surface.
UInt128 Sum(ParallelExecutor& ex, const VbpColumn& column,
            const FilterBitVector& filter,
            const CancelContext* cancel = nullptr);
UInt128 Sum(ParallelExecutor& ex, const HbpColumn& column,
            const FilterBitVector& filter,
            const CancelContext* cancel = nullptr);
UInt128 Sum(ThreadPool& pool, const VbpColumn& column,
            const FilterBitVector& filter,
            const CancelContext* cancel = nullptr);
UInt128 Sum(ThreadPool& pool, const HbpColumn& column,
            const FilterBitVector& filter,
            const CancelContext* cancel = nullptr);

/// Parallel MIN / MAX. `stats`, when non-null, receives the fold
/// instrumentation summed across slots after the region completes.
std::optional<std::uint64_t> Min(ParallelExecutor& ex,
                                 const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Max(ParallelExecutor& ex,
                                 const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Min(ParallelExecutor& ex,
                                 const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Max(ParallelExecutor& ex,
                                 const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Min(ThreadPool& pool, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Max(ThreadPool& pool, const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Min(ThreadPool& pool, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);
std::optional<std::uint64_t> Max(ThreadPool& pool, const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr);

/// Parallel r-selection / MEDIAN. The iterative loops additionally check
/// the context between bit / bit-group iterations and bail out with
/// nullopt.
std::optional<std::uint64_t> RankSelect(ParallelExecutor& ex,
                                        const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> RankSelect(ParallelExecutor& ex,
                                        const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> RankSelect(ThreadPool& pool,
                                        const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> Median(ParallelExecutor& ex,
                                    const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> Median(ParallelExecutor& ex,
                                    const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> Median(ThreadPool& pool, const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);
std::optional<std::uint64_t> Median(ThreadPool& pool, const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel = nullptr);

/// Convenience dispatcher mirroring vbp::Aggregate / hbp::Aggregate,
/// including the AggStats contract (exact for MIN/MAX, liveness summary
/// for the other kinds).
AggregateResult Aggregate(ParallelExecutor& ex, const VbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr);
AggregateResult Aggregate(ParallelExecutor& ex, const HbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr);
AggregateResult Aggregate(ThreadPool& pool, const VbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr);
AggregateResult Aggregate(ThreadPool& pool, const HbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr);

}  // namespace icp::par

#endif  // ICP_PARALLEL_PARALLEL_AGGREGATE_H_
