// Bit-parallel Top-K: the K smallest / largest passing values, in order.
//
// Built from the paper's own primitives, never materializing the filtered
// column: one r-selection (Algorithm 3 / 6) finds the K-th order statistic
// t, one bit-parallel scan collects the values strictly beyond t, and the
// remaining slots are copies of t (ties). Cost: one aggregation pass + one
// scan + K reconstructions, independent of the number of passing tuples.

#ifndef ICP_CORE_TOP_K_H_
#define ICP_CORE_TOP_K_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/hbp_aggregate.h"
#include "core/nbp_aggregate.h"
#include "core/vbp_aggregate.h"
#include "layout/hbp_column.h"
#include "layout/vbp_column.h"
#include "scan/hbp_scanner.h"
#include "scan/vbp_scanner.h"

namespace icp {
namespace topk_internal {

[[nodiscard]] inline std::optional<std::uint64_t> RankSelect(
    const VbpColumn& column, const FilterBitVector& filter, std::uint64_t r) {
  return vbp::RankSelect(column, filter, r);
}
[[nodiscard]] inline std::optional<std::uint64_t> RankSelect(
    const HbpColumn& column, const FilterBitVector& filter, std::uint64_t r) {
  return hbp::RankSelect(column, filter, r);
}
inline FilterBitVector Scan(const VbpColumn& column, CompareOp op,
                            std::uint64_t c) {
  return VbpScanner::Scan(column, op, c);
}
inline FilterBitVector Scan(const HbpColumn& column, CompareOp op,
                            std::uint64_t c) {
  return HbpScanner::Scan(column, op, c);
}

}  // namespace topk_internal

/// The min(K, count) smallest passing values, ascending (with duplicates).
template <typename ColumnT>
std::vector<std::uint64_t> SmallestK(const ColumnT& column,
                                     const FilterBitVector& filter,
                                     std::uint64_t k) {
  std::vector<std::uint64_t> out;
  const std::uint64_t count = filter.CountOnes();
  if (k == 0 || count == 0) return out;
  if (k > count) k = count;

  // t = the K-th smallest; everything strictly below t is in the answer.
  const std::uint64_t t = *topk_internal::RankSelect(column, filter, k);
  FilterBitVector below = topk_internal::Scan(column, CompareOp::kLt, t);
  below.And(filter);
  out.reserve(k);
  nbp::ForEachPassing(column, below,
                      [&](std::uint64_t v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  // Ties on t fill the remaining slots.
  out.resize(k, t);
  return out;
}

/// The min(K, count) largest passing values, descending (with duplicates).
template <typename ColumnT>
std::vector<std::uint64_t> LargestK(const ColumnT& column,
                                    const FilterBitVector& filter,
                                    std::uint64_t k) {
  std::vector<std::uint64_t> out;
  const std::uint64_t count = filter.CountOnes();
  if (k == 0 || count == 0) return out;
  if (k > count) k = count;

  // t = the (count - K + 1)-th smallest = the K-th largest.
  const std::uint64_t t =
      *topk_internal::RankSelect(column, filter, count - k + 1);
  FilterBitVector above = topk_internal::Scan(column, CompareOp::kGt, t);
  above.And(filter);
  out.reserve(k);
  nbp::ForEachPassing(column, above,
                      [&](std::uint64_t v) { out.push_back(v); });
  std::sort(out.begin(), out.end(), std::greater<>());
  out.resize(k, t);
  return out;
}

}  // namespace icp

#endif  // ICP_CORE_TOP_K_H_
