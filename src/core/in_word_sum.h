// IN-WORD-SUM: sideways addition of the packed fields of one word
// (paper Section III-B, Algorithm 4; inspired by the Gilles–Miller method).
//
// A word holds m = floor(64/s) fields of s bits packed from the MSB end
// (delimiter bits and padding are zero). The paper's 4-instruction sequence
// (one pairwise-add step, one mask, one multiply, one shift) is the special
// case where a single halving step makes the multiply step's partial sums fit
// in a slot. This implementation generalizes it to every (s, m): it applies
// pairwise halving steps until the multiply finish provably cannot overflow
// (count * bound < 2^S and the top slot is inside the word), then one
// multiply + shift extracts the total. Pure halving never overflows: at every
// stage each slot's partial sum of q original fields needs under
// (slot_index * S + s - 1 + log2(q)) <= 64 bits, which telescopes to
// m*s - 1 < 64 (see tests/in_word_sum_test.cc for exhaustive verification).
//
// The per-width constants (masks, multiplier, shifts) depend only on s, so
// callers build one InWordSumPlan per aggregation and apply it per word.

#ifndef ICP_CORE_IN_WORD_SUM_H_
#define ICP_CORE_IN_WORD_SUM_H_

#include <cstdint>

#include "util/bits.h"
#include "util/check.h"

namespace icp {

class InWordSumPlan {
 public:
  /// Builds the instruction plan for fields of width `s` (2 <= s <= 64).
  /// `allow_multiply` = false forces the pure halving reduction (used by the
  /// AVX2 kernels: AVX2 has no 64-bit lane multiply).
  explicit InWordSumPlan(int s, bool allow_multiply = true) : s_(s) {
    ICP_CHECK(s >= 2 && s <= kWordBits);
    int count = kWordBits / s;
    align_shift_ = kWordBits - count * s;
    int width = s;
    UInt128 bound = LowMask(s - 1);  // max field value (delimiter is 0)
    while (count > 1) {
      // Multiply finish: every prefix sum must fit in one slot and the top
      // slot must lie inside the word.
      if (allow_multiply && count * width <= kWordBits &&
          static_cast<UInt128>(count) * bound < (UInt128{1} << width)) {
        use_multiply_ = true;
        multiplier_ = StridedOnes(width, count);
        final_shift_ = (count - 1) * width;
        final_mask_ = LowMask(width);
        return;
      }
      ICP_CHECK_LT(num_steps_, kMaxSteps);
      // Keep every even slot, including a truncated top slot (its partial
      // sum provably fits in the remaining bits).
      Word mask = 0;
      for (int pos = 0; pos < kWordBits; pos += 2 * width) {
        const int bits = width < kWordBits - pos ? width : kWordBits - pos;
        mask |= LowMask(bits) << pos;
      }
      step_mask_[num_steps_] = mask;
      step_shift_[num_steps_] = width;
      ++num_steps_;
      width *= 2;
      bound *= 2;
      count = (count + 1) / 2;
    }
    final_mask_ = ~Word{0};
  }

  int field_width() const { return s_; }

  /// Sums the field values of `w`. All delimiter and padding bits of `w`
  /// must be zero (apply the value filter / FieldValueMask first).
  std::uint64_t Apply(Word w) const {
    w >>= align_shift_;
    for (int i = 0; i < num_steps_; ++i) {
      w = (w & step_mask_[i]) + ((w >> step_shift_[i]) & step_mask_[i]);
    }
    if (use_multiply_) {
      w = (w * multiplier_) >> final_shift_;
    }
    return w & final_mask_;
  }

  // Plan introspection for vectorized re-implementations (simd/ kernels
  // replay the same steps on 256-bit registers).
  int align_shift() const { return align_shift_; }
  int num_steps() const { return num_steps_; }
  Word step_mask(int i) const { return step_mask_[i]; }
  int step_shift(int i) const { return step_shift_[i]; }
  bool use_multiply() const { return use_multiply_; }
  Word multiplier() const { return multiplier_; }
  int final_shift() const { return final_shift_; }
  Word final_mask() const { return final_mask_; }

 private:
  // ceil(log2(32)) halving steps suffice for the narrowest fields (s = 2).
  static constexpr int kMaxSteps = 6;

  int s_;
  int align_shift_ = 0;
  int num_steps_ = 0;
  Word step_mask_[kMaxSteps] = {};
  int step_shift_[kMaxSteps] = {};
  bool use_multiply_ = false;
  Word multiplier_ = 0;
  int final_shift_ = 0;
  Word final_mask_ = ~Word{0};
};

/// One-shot convenience wrapper (tests, documentation examples).
inline std::uint64_t InWordSum(Word w, int s) {
  return InWordSumPlan(s).Apply(w);
}

}  // namespace icp

#endif  // ICP_CORE_IN_WORD_SUM_H_
