#include "core/hbp_aggregate.h"

#include <vector>

#include "scan/hbp_scanner.h"
#include "simd/dispatch.h"
#include "util/check.h"

namespace icp::hbp {

// ---------------------------------------------------------------------------
// SUM (Algorithm 4)
// ---------------------------------------------------------------------------

void AccumulateGroupSums(const HbpColumn& column,
                         const FilterBitVector& filter,
                         std::size_t seg_begin, std::size_t seg_end,
                         std::uint64_t* group_sums) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_LE(seg_end, filter.num_segments());
  const int s = column.field_width();
  const int num_groups = column.num_groups();
  const Word* bases[kWordBits];
  for (int g = 0; g < num_groups; ++g) {
    bases[g] = column.GroupData(g) + seg_begin * s;
  }
  kern::Ops().hbp_sum(bases, num_groups, s, column.tau(), /*lanes=*/1,
                      filter.words() + seg_begin, seg_end - seg_begin,
                      group_sums);
}

UInt128 CombineGroupSums(const HbpColumn& column,
                         const std::uint64_t* group_sums) {
  UInt128 sum = 0;
  for (int g = 0; g < column.num_groups(); ++g) {
    sum += static_cast<UInt128>(group_sums[g]) << column.GroupShift(g);
  }
  return sum;
}

UInt128 Sum(const HbpColumn& column, const FilterBitVector& filter,
            const CancelContext* cancel) {
  std::uint64_t group_sums[kWordBits] = {};
  ForEachCancellableBatch(
      cancel, 0, filter.num_segments(), [&](std::size_t b, std::size_t e) {
        AccumulateGroupSums(column, filter, b, e, group_sums);
      });
  return CombineGroupSums(column, group_sums);
}

// ---------------------------------------------------------------------------
// MIN / MAX (Algorithm 5)
// ---------------------------------------------------------------------------

void InitSubSlotExtreme(const HbpColumn& column, bool is_min, Word* temp) {
  const Word fields = FieldValueMask(column.field_width());
  for (int g = 0; g < column.num_groups(); ++g) {
    temp[g] = is_min ? fields : Word{0};
  }
}

void SubSlotExtremeRange(const HbpColumn& column,
                         const FilterBitVector& filter,
                         std::size_t seg_begin, std::size_t seg_end,
                         bool is_min, Word* temp, AggStats* stats) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_LE(seg_end, filter.num_segments());
  const int s = column.field_width();
  const int num_groups = column.num_groups();
  const Word* bases[kWordBits];
  for (int g = 0; g < num_groups; ++g) {
    bases[g] = column.GroupData(g) + seg_begin * s;
  }
  kern::FoldCounters counters;
  kern::Ops().hbp_extreme_fold(bases, num_groups, s, column.tau(),
                               /*lanes=*/1, filter.words() + seg_begin,
                               seg_end - seg_begin, is_min, temp,
                               stats != nullptr ? &counters : nullptr);
  if (stats != nullptr) {
    stats->folds += counters.folds;
    stats->compare_early_stops += counters.compare_early_stops;
    stats->blends_skipped += counters.blends_skipped;
    stats->segments_skipped += counters.segments_skipped;
    ICP_OBS_ADD(AggSegmentsFolded, counters.folds);
    ICP_OBS_ADD(AggCompareEarlyStops, counters.compare_early_stops);
    ICP_OBS_ADD(AggBlendsSkipped, counters.blends_skipped);
    ICP_OBS_ADD(AggSegmentsSkipped, counters.segments_skipped);
  }
}

void MergeSubSlotExtreme(const HbpColumn& column, const Word* other,
                         bool is_min, Word* temp) {
  // One single-word "segment" per group, with the full delimiter mask as
  // the filter: only sub-segment 0 has a nonzero md, so the kernel never
  // reads past the one word each bases[g] points at.
  const Word dm = DelimiterMask(column.field_width());
  const Word* bases[kWordBits];
  for (int g = 0; g < column.num_groups(); ++g) bases[g] = other + g;
  kern::Ops().hbp_extreme_fold(bases, column.num_groups(),
                               column.field_width(), column.tau(),
                               /*lanes=*/1, &dm, /*n=*/1, is_min, temp,
                               nullptr);
}

std::uint64_t ExtremeOfSubSlots(const HbpColumn& column, const Word* temp,
                                bool is_min) {
  const int s = column.field_width();
  const int m = column.fields_per_word();
  const Word mask = LowMask(column.tau());
  std::uint64_t best = 0;
  for (int f = 0; f < m; ++f) {
    const int shift = kWordBits - (f + 1) * s;
    std::uint64_t v = 0;
    for (int g = 0; g < column.num_groups(); ++g) {
      v |= ((temp[g] >> shift) & mask) << column.GroupShift(g);
    }
    if (f == 0 || (is_min ? v < best : v > best)) best = v;
  }
  return best;
}

namespace {

std::optional<std::uint64_t> Extreme(const HbpColumn& column,
                                     const FilterBitVector& filter,
                                     bool is_min,
                                     const CancelContext* cancel,
                                     AggStats* stats) {
  if (filter.CountOnes() == 0) return std::nullopt;
  Word temp[kWordBits];
  InitSubSlotExtreme(column, is_min, temp);
  if (!ForEachCancellableBatch(
          cancel, 0, filter.num_segments(), [&](std::size_t b, std::size_t e) {
            SubSlotExtremeRange(column, filter, b, e, is_min, temp, stats);
          })) {
    return std::nullopt;
  }
  return ExtremeOfSubSlots(column, temp, is_min);
}

}  // namespace

std::optional<std::uint64_t> Min(const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return Extreme(column, filter, /*is_min=*/true, cancel, stats);
}

std::optional<std::uint64_t> Max(const HbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return Extreme(column, filter, /*is_min=*/false, cancel, stats);
}

// ---------------------------------------------------------------------------
// MEDIAN / r-selection (Algorithm 6)
// ---------------------------------------------------------------------------

void BuildGroupHistogram(const HbpColumn& column, const Word* v,
                         std::size_t seg_begin, std::size_t seg_end, int g,
                         std::uint64_t* hist) {
  const int s = column.field_width();
  const int tau = column.tau();
  const Word dm = DelimiterMask(s);
  const Word value_mask = LowMask(tau);
  const Word* base = column.GroupData(g) + seg_begin * s;
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    const Word cand = v[seg];
    if (cand != 0) {
      for (int t = 0; t < s; ++t) {
        Word md = (cand << t) & dm;
        const Word w = base[t];
        while (md != 0) {
          const int p = CountTrailingZeros(md);  // delimiter bit position
          md &= md - 1;
          ++hist[(w >> (p - tau)) & value_mask];
        }
      }
    }
    base += s;
  }
}

void NarrowCandidates(const HbpColumn& column, Word* v,
                      std::size_t seg_begin, std::size_t seg_end, int g,
                      std::uint64_t bin) {
  const int s = column.field_width();
  const Word dm = DelimiterMask(s);
  const Word packed_bin = RepeatField(bin, s);
  const Word* base = column.GroupData(g) + seg_begin * s;
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    if (v[seg] != 0) {
      Word matches = 0;
      for (int t = 0; t < s; ++t) {
        const Word x = base[t];
        const Word eq =
            FieldGe(x, packed_bin, dm) & FieldGe(packed_bin, x, dm);
        matches |= eq >> t;
      }
      v[seg] &= matches;
    }
    base += s;
  }
}

std::optional<std::uint64_t> RankSelect(const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 1);
  const std::uint64_t u = filter.CountOnes();
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t num_segments = filter.num_segments();
  std::vector<Word> v(filter.words(), filter.words() + num_segments);
  std::vector<std::uint64_t> hist(std::size_t{1} << column.tau());

  std::uint64_t result = 0;
  for (int g = 0; g < column.num_groups(); ++g) {
    std::fill(hist.begin(), hist.end(), 0);
    if (!ForEachCancellableBatch(
            cancel, 0, num_segments, [&](std::size_t b, std::size_t e) {
              BuildGroupHistogram(column, v.data(), b, e, g, hist.data());
            })) {
      return std::nullopt;
    }
    // bin = argmin_i sum_{j<=i} hist[j] >= r (paper Alg. 6 line 7).
    std::uint64_t cum = 0;
    std::uint64_t bin = 0;
    while (cum + hist[bin] < r) {
      cum += hist[bin];
      ++bin;
    }
    r -= cum;
    result |= bin << column.GroupShift(g);
    // The last group needs no candidate narrowing: the answer is complete.
    if (g + 1 < column.num_groups()) {
      if (!ForEachCancellableBatch(
              cancel, 0, num_segments, [&](std::size_t b, std::size_t e) {
                NarrowCandidates(column, v.data(), b, e, g, bin);
              })) {
        return std::nullopt;
      }
    }
  }
  return result;
}

std::optional<std::uint64_t> Median(const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  const std::uint64_t count = filter.CountOnes();
  if (count == 0) return std::nullopt;
  return RankSelect(column, filter, LowerMedianRank(count), cancel);
}

AggregateResult Aggregate(const HbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank, const CancelContext* cancel,
                          AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathHbp);
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMin:
      result.value = Min(column, filter, cancel, stats);
      break;
    case AggKind::kMax:
      result.value = Max(column, filter, cancel, stats);
      break;
    case AggKind::kMedian:
      result.value = Median(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kRank:
      result.value = RankSelect(column, filter, rank, cancel);
      CountFilterSegments(filter, stats);
      break;
  }
  return result;
}

}  // namespace icp::hbp
