// Scalar reference aggregation over the naive (one code per word) layout.
// The correctness oracle for every other aggregator, and the "plain array"
// baseline in ablation benches. Two filter application styles are provided:
// branching (test per tuple) and branchless (masked arithmetic), since their
// relative cost depends on selectivity.
//
// All entry points take an optional CancelContext and poll it between
// batches of tuples (in-kernel cooperative cancellation); a cancelled run
// returns a partial/empty result and the caller converts the context to a
// Status.

#ifndef ICP_CORE_NAIVE_AGGREGATE_H_
#define ICP_CORE_NAIVE_AGGREGATE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/naive_column.h"
#include "util/bits.h"
#include "util/cancellation.h"

namespace icp::naive {

template <typename Fn>
bool ForEachPassing(const NaiveColumn& column, const FilterBitVector& filter,
                    Fn&& fn, const CancelContext* cancel = nullptr) {
  return ForEachCancellableBatch(
      cancel, 0, column.num_values(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          if (filter.GetBit(i)) fn(column.GetValue(i));
        }
      });
}

inline UInt128 Sum(const NaiveColumn& column, const FilterBitVector& filter,
                   const CancelContext* cancel = nullptr) {
  UInt128 sum = 0;
  ForEachPassing(column, filter, [&](std::uint64_t v) { sum += v; }, cancel);
  return sum;
}

/// Branchless SUM: adds value & mask where mask is all-ones iff passing.
inline UInt128 SumBranchless(const NaiveColumn& column,
                             const FilterBitVector& filter,
                             const CancelContext* cancel = nullptr) {
  UInt128 sum = 0;
  const Word* data = column.data();
  ForEachCancellableBatch(
      cancel, 0, column.num_values(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const Word mask = filter.GetBit(i) ? ~Word{0} : Word{0};
          sum += data[i] & mask;
        }
      });
  return sum;
}

[[nodiscard]] inline std::optional<std::uint64_t> Min(
    const NaiveColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr) {
  std::optional<std::uint64_t> best;
  ForEachPassing(
      column, filter,
      [&](std::uint64_t v) {
        if (!best.has_value() || v < *best) best = v;
      },
      cancel);
  return best;
}

[[nodiscard]] inline std::optional<std::uint64_t> Max(
    const NaiveColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr) {
  std::optional<std::uint64_t> best;
  ForEachPassing(
      column, filter,
      [&](std::uint64_t v) {
        if (!best.has_value() || v > *best) best = v;
      },
      cancel);
  return best;
}

[[nodiscard]] inline std::optional<std::uint64_t> RankSelect(
    const NaiveColumn& column, const FilterBitVector& filter, std::uint64_t r,
    const CancelContext* cancel = nullptr) {
  const std::uint64_t count = filter.CountOnes();
  if (r < 1 || r > count) return std::nullopt;
  std::vector<std::uint64_t> values;
  values.reserve(count);
  if (!ForEachPassing(
          column, filter, [&](std::uint64_t v) { values.push_back(v); },
          cancel)) {
    return std::nullopt;
  }
  auto nth = values.begin() + static_cast<std::ptrdiff_t>(r - 1);
  std::nth_element(values.begin(), nth, values.end());
  return *nth;
}

[[nodiscard]] inline std::optional<std::uint64_t> Median(
    const NaiveColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr) {
  return RankSelect(column, filter, LowerMedianRank(filter.CountOnes()),
                    cancel);
}

/// `stats`, when non-null, carries the CountFilterSegments liveness
/// summary. Note the naive walk visits every tuple (it tests the filter
/// bit per value, it does not skip dead segments), so segments_skipped
/// here describes the filter, not work actually avoided.
inline AggregateResult Aggregate(const NaiveColumn& column,
                                 const FilterBitVector& filter,
                                 AggKind kind, std::uint64_t rank = 0,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr) {
  ICP_OBS_INCREMENT(AggPathNaive);
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMin:
      result.value = Min(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMax:
      result.value = Max(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMedian:
      result.value = Median(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kRank:
      result.value = RankSelect(column, filter, rank, cancel);
      CountFilterSegments(filter, stats);
      break;
  }
  return result;
}

}  // namespace icp::naive

#endif  // ICP_CORE_NAIVE_AGGREGATE_H_
