#include "core/nbp_aggregate.h"

#include <algorithm>
#include <vector>

namespace icp::nbp {
namespace {

template <typename ColumnT>
std::optional<std::uint64_t> RankSelectImpl(const ColumnT& column,
                                            const FilterBitVector& filter,
                                            std::uint64_t r,
                                            const CancelContext* cancel) {
  const std::uint64_t count = filter.CountOnes();
  if (r < 1 || r > count) return std::nullopt;
  std::vector<std::uint64_t> values;
  values.reserve(count);
  ForEachPassing(
      column, filter, [&](std::uint64_t v) { values.push_back(v); }, cancel);
  if (values.size() < r) return std::nullopt;  // walk stopped early
  auto nth = values.begin() + static_cast<std::ptrdiff_t>(r - 1);
  std::nth_element(values.begin(), nth, values.end());
  return *nth;
}

}  // namespace

template <>
std::optional<std::uint64_t> RankSelect(const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  return RankSelectImpl(column, filter, r, cancel);
}

template <>
std::optional<std::uint64_t> RankSelect(const HbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  return RankSelectImpl(column, filter, r, cancel);
}

template <>
std::optional<std::uint64_t> Median(const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return RankSelectImpl(column, filter, LowerMedianRank(filter.CountOnes()),
                        cancel);
}

template <>
std::optional<std::uint64_t> Median(const HbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  return RankSelectImpl(column, filter, LowerMedianRank(filter.CountOnes()),
                        cancel);
}

}  // namespace icp::nbp
