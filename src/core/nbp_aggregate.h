// Non-bit-parallel (NBP) aggregation baseline — paper Section III.
//
// For each set bit of the filter word F, the tuple's plain value is
// reconstructed from the packed layout and fed to a scalar aggregate:
//   1. locate the next passing tuple via the rightmost 1 of F
//      (offset = popcount(F ^ (F-1)) - 1, a single TZCNT on modern CPUs);
//   2. shift + mask the containing word(s) to rebuild the value — one word
//      per bit-group under HBP, one *bit* per data bit under VBP (which is
//      why the paper reports even higher NBP overhead for VBP);
//   3. clear the bit with F &= F - 1 and repeat until F == 0.
// SUM/MIN/MAX inline a running accumulator; MEDIAN collects the passing
// values and selects the rank (the paper gives no bit-parallel-free
// alternative, and this is the textbook implementation).

#ifndef ICP_CORE_NBP_AGGREGATE_H_
#define ICP_CORE_NBP_AGGREGATE_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/hbp_column.h"
#include "layout/vbp_column.h"
#include "util/bits.h"
#include "util/cancellation.h"

namespace icp::nbp {

/// Invokes `fn(value)` for every tuple passing `filter` within segments
/// [seg_begin, seg_end), reconstructing values from the VBP layout
/// (bit-by-bit gather).
template <typename Fn>
void ForEachPassingRange(const VbpColumn& column,
                         const FilterBitVector& filter,
                         std::size_t seg_begin, std::size_t seg_end,
                         Fn&& fn) {
  const int k = column.bit_width();
  const int num_groups = column.num_groups();
  const bool scalar_layout = column.lanes() == 1;
  const Word* bases[kWordBits];
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    Word f = filter.SegmentWord(seg);
    if (f == 0) continue;
    if (scalar_layout) {
      for (int g = 0; g < num_groups; ++g) {
        bases[g] = column.GroupData(g) + seg * column.GroupWidth(g);
      }
    }
    while (f != 0) {
      const int pos = CountTrailingZeros(f);  // bit position of the slot
      f &= f - 1;
      std::uint64_t v = 0;
      int bit = k - 1;
      for (int g = 0; g < num_groups; ++g) {
        const int width = column.GroupWidth(g);
        for (int j = 0; j < width; ++j, --bit) {
          const Word w =
              scalar_layout ? bases[g][j] : column.WordAt(g, seg, j);
          v |= ((w >> pos) & 1) << bit;
        }
      }
      fn(v);
    }
  }
}

/// Invokes `fn(value)` for every tuple passing `filter` within segments
/// [seg_begin, seg_end), reconstructing values from the HBP layout (one
/// shift+mask per bit-group).
template <typename Fn>
void ForEachPassingRange(const HbpColumn& column,
                         const FilterBitVector& filter,
                         std::size_t seg_begin, std::size_t seg_end,
                         Fn&& fn) {
  const int s = column.field_width();
  const Word group_mask = LowMask(column.tau());
  const int tau = column.tau();
  const int num_groups = column.num_groups();
  const bool scalar_layout = column.lanes() == 1;
  const Word* bases[kWordBits];
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    Word f = filter.SegmentWord(seg);
    if (f == 0) continue;
    if (scalar_layout) {
      for (int g = 0; g < num_groups; ++g) {
        bases[g] = column.GroupData(g) + seg * s;
      }
    }
    while (f != 0) {
      const int pos = CountTrailingZeros(f);
      f &= f - 1;
      const int r = kWordBits - 1 - pos;  // value index within the segment
      const int t = r % s;                // sub-segment
      const int field_shift = kWordBits - (r / s + 1) * s;
      std::uint64_t v = 0;
      int shift = (num_groups - 1) * tau;
      for (int g = 0; g < num_groups; ++g, shift -= tau) {
        const Word w =
            scalar_layout ? bases[g][t] : column.WordAt(g, seg, t);
        v |= ((w >> field_shift) & group_mask) << shift;
      }
      fn(v);
    }
  }
}

/// Full-column convenience wrapper. The optional CancelContext is checked
/// every kCancelBatchSegments segments (same contract as the bit-parallel
/// entry points): once it fires the walk stops early, so the caller's
/// accumulator holds a meaningless partial that the engine discards.
template <typename ColumnT, typename Fn>
void ForEachPassing(const ColumnT& column, const FilterBitVector& filter,
                    Fn&& fn, const CancelContext* cancel = nullptr) {
  ForEachCancellableBatch(cancel, 0, filter.num_segments(),
                          [&](std::size_t b, std::size_t e) {
                            ForEachPassingRange(column, filter, b, e, fn);
                          });
}

/// NBP SUM / MIN / MAX / MEDIAN / RankSelect over either packed layout.
template <typename ColumnT>
UInt128 Sum(const ColumnT& column, const FilterBitVector& filter,
            const CancelContext* cancel = nullptr) {
  UInt128 sum = 0;
  ForEachPassing(column, filter, [&](std::uint64_t v) { sum += v; }, cancel);
  return sum;
}

template <typename ColumnT>
[[nodiscard]] std::optional<std::uint64_t> Min(
    const ColumnT& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr) {
  std::optional<std::uint64_t> best;
  ForEachPassing(
      column, filter,
      [&](std::uint64_t v) {
        if (!best.has_value() || v < *best) best = v;
      },
      cancel);
  return best;
}

template <typename ColumnT>
[[nodiscard]] std::optional<std::uint64_t> Max(
    const ColumnT& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr) {
  std::optional<std::uint64_t> best;
  ForEachPassing(
      column, filter,
      [&](std::uint64_t v) {
        if (!best.has_value() || v > *best) best = v;
      },
      cancel);
  return best;
}

template <typename ColumnT>
[[nodiscard]] std::optional<std::uint64_t> RankSelect(
    const ColumnT& column, const FilterBitVector& filter, std::uint64_t r,
    const CancelContext* cancel = nullptr);

template <typename ColumnT>
[[nodiscard]] std::optional<std::uint64_t> Median(
    const ColumnT& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);

/// Convenience dispatcher mirroring the bit-parallel Aggregate().
/// NBP has no fold cascade, so `stats` (when requested) carries the
/// CountFilterSegments liveness summary: ForEachPassingRange really does
/// skip all-dead segments, so the numbers are faithful.
template <typename ColumnT>
AggregateResult Aggregate(const ColumnT& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr) {
  ICP_OBS_INCREMENT(AggPathNbp);
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMin:
      result.value = Min(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMax:
      result.value = Max(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMedian:
      result.value = Median(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kRank:
      result.value = RankSelect(column, filter, rank, cancel);
      CountFilterSegments(filter, stats);
      break;
  }
  return result;
}

}  // namespace icp::nbp

#endif  // ICP_CORE_NBP_AGGREGATE_H_
