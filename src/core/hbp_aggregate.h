// Bit-parallel aggregation under HBP (paper Section III-B).
//
//  * SUM (Algorithm 4): per sub-segment, GET-VALUE-FILTER turns the filter
//    word into a per-field value mask (M_d = (F << t) & delimiters;
//    M = M_d - (M_d >> tau)); IN-WORD-SUM then adds all surviving field
//    values of each word-group word, and the bit-group partial sums are
//    shifted into place once at the end.
//  * MIN/MAX (Algorithm 5): SUB-SLOTMIN/-MAX folds every sub-segment into a
//    running extreme sub-segment using the delimiter-borrow less-than and
//    the blend mask M = M_lt - (M_lt >> tau); only m = floor(64/(tau+1))
//    values are reconstructed at the end.
//  * MEDIAN (Algorithm 6): the answer is determined bit-group by bit-group
//    via cumulative histograms over the candidates' current bit-group
//    values; candidates are narrowed with a BIT-PARALLEL-EQUAL scan of the
//    chosen bin.
//
// Range variants partition by segment for the multi-threaded driver.

#ifndef ICP_CORE_HBP_AGGREGATE_H_
#define ICP_CORE_HBP_AGGREGATE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "core/in_word_sum.h"
#include "layout/hbp_column.h"
#include "util/bits.h"
#include "util/cancellation.h"

namespace icp::hbp {

// ---------------------------------------------------------------------------
// SUM
// ---------------------------------------------------------------------------

/// Accumulates per-bit-group in-word sums over [seg_begin, seg_end) into
/// group_sums[0..B-1] (the paper's G_i.sum).
void AccumulateGroupSums(const HbpColumn& column,
                         const FilterBitVector& filter,
                         std::size_t seg_begin, std::size_t seg_end,
                         std::uint64_t* group_sums);

/// sum = sum_g group_sums[g] << GroupShift(g).
UInt128 CombineGroupSums(const HbpColumn& column,
                         const std::uint64_t* group_sums);

/// SUM over all tuples passing `filter`. As in vbp_aggregate.h, the
/// full-column entry points take an optional CancelContext, check it every
/// kCancelBatchSegments segments, and return a meaningless partial value
/// once it fires (the engine surfaces the context's Status instead).
UInt128 Sum(const HbpColumn& column, const FilterBitVector& filter,
            const CancelContext* cancel = nullptr);

// ---------------------------------------------------------------------------
// MIN / MAX
// ---------------------------------------------------------------------------

/// Initializes a B-word running extreme sub-segment: every field all-ones
/// (MIN) or all-zeros (MAX). `temp` must hold num_groups() words.
void InitSubSlotExtreme(const HbpColumn& column, bool is_min, Word* temp);

/// Folds all sub-segments of [seg_begin, seg_end) into `temp`.
/// `stats`, when non-null, accumulates early-stop instrumentation.
void SubSlotExtremeRange(const HbpColumn& column,
                         const FilterBitVector& filter,
                         std::size_t seg_begin, std::size_t seg_end,
                         bool is_min, Word* temp, AggStats* stats = nullptr);

/// Merges another partial running sub-segment into `temp`.
void MergeSubSlotExtreme(const HbpColumn& column, const Word* other,
                         bool is_min, Word* temp);

/// Reconstructs the m slot values of `temp` and returns their extreme.
std::uint64_t ExtremeOfSubSlots(const HbpColumn& column, const Word* temp,
                                bool is_min);

/// `stats`, when non-null, accumulates the fold instrumentation.
[[nodiscard]] std::optional<std::uint64_t> Min(
    const HbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr, AggStats* stats = nullptr);
[[nodiscard]] std::optional<std::uint64_t> Max(
    const HbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr, AggStats* stats = nullptr);

// ---------------------------------------------------------------------------
// MEDIAN / r-selection
// ---------------------------------------------------------------------------

/// BUILD-HISTOGRAM (paper Alg. 6): histogram of bit-group g's field values
/// over the candidate tuples in [seg_begin, seg_end). `hist` must hold
/// 2^tau zero-initialized entries and is accumulated into.
void BuildGroupHistogram(const HbpColumn& column, const Word* v,
                         std::size_t seg_begin, std::size_t seg_end, int g,
                         std::uint64_t* hist);

/// Candidate update: V &= (bit-group g of tuple == bin), evaluated with the
/// BIT-PARALLEL-EQUAL field comparison.
void NarrowCandidates(const HbpColumn& column, Word* v,
                      std::size_t seg_begin, std::size_t seg_end, int g,
                      std::uint64_t bin);

/// The r-th smallest (1-based) value among passing tuples.
[[nodiscard]] std::optional<std::uint64_t> RankSelect(
    const HbpColumn& column, const FilterBitVector& filter, std::uint64_t r,
    const CancelContext* cancel = nullptr);

/// Lower median.
[[nodiscard]] std::optional<std::uint64_t> Median(
    const HbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);

/// Convenience dispatcher used by the engine and benches. `rank` is used
/// only by AggKind::kRank (1-based r-selection). `stats`, when non-null,
/// collects fold instrumentation (exact for MIN/MAX, the
/// CountFilterSegments liveness summary for the other kinds).
AggregateResult Aggregate(const HbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr);

}  // namespace icp::hbp

#endif  // ICP_CORE_HBP_AGGREGATE_H_
