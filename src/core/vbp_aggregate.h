// Bit-parallel aggregation under VBP (paper Section III-A).
//
//  * SUM (Algorithm 1): sum_i v_i = sum_j 2^(k-1-j) * popcount(W_j & F),
//    accumulated per bit position across segments so the shifts happen once
//    at the end.
//  * MIN/MAX (Algorithm 2): a running slot-wise extreme segment S_temp is
//    folded with every data segment via SLOTMIN/SLOTMAX; the slot-wise
//    less-than/greater-than mask comes from the BIT-PARALLEL-LESSTHAN
//    cascade of [2] applied between two segments. Only the 64 surviving
//    values are reconstructed at the end.
//  * MEDIAN (Algorithm 3): the answer is built bit by bit from the most
//    significant bit, maintaining per-segment candidate vectors V; the
//    algorithm solves general r-selection, exposed as RankSelect.
//
// Range variants operate on [seg_begin, seg_end) so the multi-threaded
// driver (parallel/parallel_aggregate.h) can partition segments and merge
// per-thread partial states.

#ifndef ICP_CORE_VBP_AGGREGATE_H_
#define ICP_CORE_VBP_AGGREGATE_H_

#include <cstdint>
#include <optional>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/vbp_column.h"
#include "util/bits.h"
#include "util/cancellation.h"

namespace icp::vbp {

// ---------------------------------------------------------------------------
// SUM
// ---------------------------------------------------------------------------

/// Adds popcount(W_j & F) for each bit position j over segments
/// [seg_begin, seg_end) into bit_sums[0..k-1] (the paper's bSum array).
void AccumulateBitSums(const VbpColumn& column, const FilterBitVector& filter,
                       std::size_t seg_begin, std::size_t seg_end,
                       std::uint64_t* bit_sums);

/// Applies the final shifts: sum = sum_j bit_sums[j] << (k-1-j).
UInt128 CombineBitSums(const std::uint64_t* bit_sums, int k);

/// SUM over all tuples passing `filter`. All full-column entry points below
/// take an optional CancelContext: they process segments in batches of
/// kCancelBatchSegments and stop early once the context fires, returning a
/// partial (meaningless) value that the engine discards in favour of the
/// context's Status.
UInt128 Sum(const VbpColumn& column, const FilterBitVector& filter,
            const CancelContext* cancel = nullptr);

// ---------------------------------------------------------------------------
// MIN / MAX
// ---------------------------------------------------------------------------

/// Initializes a k-word slot-extreme state (all slots 2^k-1 for MIN, all
/// slots 0 for MAX). `temp` must hold k words.
void InitSlotExtreme(int k, bool is_min, Word* temp);

/// Folds segments [seg_begin, seg_end) into `temp` via SLOTMIN/SLOTMAX,
/// honouring the filter (slots of non-passing tuples never replace temp).
/// `stats`, when non-null, accumulates early-stop instrumentation.
void SlotExtremeRange(const VbpColumn& column, const FilterBitVector& filter,
                      std::size_t seg_begin, std::size_t seg_end, bool is_min,
                      Word* temp, AggStats* stats = nullptr);

/// Merges another partial state into `temp` (slot-wise extreme of the two).
void MergeSlotExtreme(const Word* other, int k, bool is_min, Word* temp);

/// Reconstructs the 64 slot values of `temp` and returns their extreme.
std::uint64_t ExtremeOfSlots(const Word* temp, int k, bool is_min);

/// MIN/MAX over all tuples passing `filter`; absent when none pass.
/// `stats`, when non-null, accumulates the fold instrumentation.
[[nodiscard]] std::optional<std::uint64_t> Min(
    const VbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr, AggStats* stats = nullptr);
[[nodiscard]] std::optional<std::uint64_t> Max(
    const VbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr, AggStats* stats = nullptr);

// ---------------------------------------------------------------------------
// MEDIAN / r-selection
// ---------------------------------------------------------------------------

/// popcount reduce of candidate vectors against bit (g, j) over a segment
/// range: sum_seg popcount(V[seg] & W_{g,j}(seg)). Segments with V == 0 are
/// skipped (paper Alg. 3 line 8).
std::uint64_t CountCandidateBit(const VbpColumn& column, const Word* v,
                                std::size_t seg_begin, std::size_t seg_end,
                                int g, int j);

/// Candidate update after deciding the current bit (paper Alg. 3 lines
/// 13-14 / 18-19): V &= W if bit_is_one else V &= ~W.
void UpdateCandidates(const VbpColumn& column, Word* v,
                      std::size_t seg_begin, std::size_t seg_end, int g,
                      int j, bool bit_is_one);

/// The r-th smallest (1-based) value among tuples passing `filter`; absent
/// when fewer than r tuples pass.
[[nodiscard]] std::optional<std::uint64_t> RankSelect(
    const VbpColumn& column, const FilterBitVector& filter, std::uint64_t r,
    const CancelContext* cancel = nullptr);

/// Lower median (RankSelect at rank floor((count+1)/2)).
[[nodiscard]] std::optional<std::uint64_t> Median(
    const VbpColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr);

/// Convenience dispatcher used by the engine and benches. `rank` is used
/// only by AggKind::kRank (1-based r-selection). `stats`, when non-null,
/// collects fold instrumentation (exact for MIN/MAX, the
/// CountFilterSegments liveness summary for the other kinds).
AggregateResult Aggregate(const VbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank = 0,
                          const CancelContext* cancel = nullptr,
                          AggStats* stats = nullptr);

}  // namespace icp::vbp

#endif  // ICP_CORE_VBP_AGGREGATE_H_
