// Common aggregation vocabulary.
//
// All aggregators in this library share the same contract (paper Section
// III): they take a packed column and the filter bit vector F produced by a
// bit-parallel scan, and return the aggregate over the tuples whose F bit is
// set, computed over the unsigned k-bit codes. COUNT is layout-independent
// (popcounting F); AVG is SUM / COUNT; MEDIAN is the lower median (rank
// floor((count+1)/2), i.e. the 4th smallest of both 7 and 8 values), and the
// r-selection generalization is exposed as RankSelect.

#ifndef ICP_CORE_AGGREGATE_H_
#define ICP_CORE_AGGREGATE_H_

#include <cstdint>
#include <optional>

#include "bitvector/filter_bit_vector.h"
#include "obs/obs.h"
#include "util/bits.h"

namespace icp {

enum class AggKind {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kMedian,
  // The r-th smallest passing value (1-based): the r-selection
  // generalization the paper notes for Algorithm 3. The rank comes from
  // Query::rank (engine) or the aggregator call site.
  kRank,
};

/// Human-readable name ("SUM", "MEDIAN", ...).
const char* AggKindToString(AggKind kind);

/// Which aggregation implementation to run (the paper's comparison axis).
enum class AggMethod {
  kBitParallel,     // the paper's contribution (BP)
  kNonBitParallel,  // reconstruct-then-aggregate baseline (NBP, Section III)
};

const char* AggMethodToString(AggMethod method);

/// COUNT aggregation (paper Section III-A): identical for every layout.
inline std::uint64_t CountAggregate(const FilterBitVector& filter) {
  return filter.CountOnes();
}

/// Lower-median rank among `count` values (1-based).
inline std::uint64_t LowerMedianRank(std::uint64_t count) {
  return (count + 1) / 2;
}

/// Optional instrumentation for the aggregation kernels. The scalar
/// MIN/MAX cascades fill every field exactly; the value-at-a-time and
/// SIMD dispatchers report the segment-liveness summary of
/// CountFilterSegments below (see docs/observability.md).
struct AggStats {
  /// SLOTMIN / SUB-SLOTMIN folds attempted.
  std::uint64_t folds = 0;
  /// Folds whose comparison cascade decided every slot before the last
  /// word-group (the paper's early stopping).
  std::uint64_t compare_early_stops = 0;
  /// Folds where no slot improved the running extreme (blend pass skipped).
  std::uint64_t blends_skipped = 0;
  /// Segments skipped outright because no tuple/candidate was live
  /// (F == 0 in MIN/MAX, V == 0 in MEDIAN's iterations).
  std::uint64_t segments_skipped = 0;
};

/// Cheap segment-liveness summary for aggregate paths with no fold
/// cascade to count (NBP / padded value walks skip all-dead segments;
/// the SIMD dispatchers are uninstrumented inside): live segments count
/// as folds, all-dead segments as segments_skipped. One O(segments) pass
/// per aggregate call, only when the caller collects stats — the
/// process-wide agg.* counters advance from the same numbers.
inline void CountFilterSegments(const FilterBitVector& filter,
                                AggStats* stats) {
  if (stats == nullptr) return;
  std::uint64_t live = 0;
  const std::size_t num_segments = filter.num_segments();
  for (std::size_t s = 0; s < num_segments; ++s) {
    if (filter.SegmentWord(s) != 0) ++live;
  }
  stats->folds += live;
  stats->segments_skipped += num_segments - live;
  ICP_OBS_ADD(AggSegmentsFolded, live);
  ICP_OBS_ADD(AggSegmentsSkipped, num_segments - live);
}

/// Result of evaluating one aggregate over codes. `value` carries MIN/MAX/
/// MEDIAN codes and is absent when no tuple passes the filter; `sum` backs
/// SUM and AVG.
/// [[nodiscard]]: an ignored AggregateResult means the whole aggregation ran
/// for nothing — every dispatcher returning one inherits the warning.
struct [[nodiscard]] AggregateResult {
  AggKind kind = AggKind::kCount;
  std::uint64_t count = 0;
  UInt128 sum = 0;
  std::optional<std::uint64_t> value;

  double Avg() const {
    return count == 0
               ? 0.0
               : UInt128ToDouble(sum) / static_cast<double>(count);
  }
};

}  // namespace icp

#endif  // ICP_CORE_AGGREGATE_H_
