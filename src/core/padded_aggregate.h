// Aggregation over the padded layout: typed loops with branchless masked
// accumulation (SUM) and per-bit iteration for the order statistics — the
// realistic "no intra-cycle parallelism" baseline.
//
// All entry points take an optional CancelContext and poll it between
// segment batches (in-kernel cooperative cancellation).

#ifndef ICP_CORE_PADDED_AGGREGATE_H_
#define ICP_CORE_PADDED_AGGREGATE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "core/aggregate.h"
#include "layout/padded_column.h"
#include "util/bits.h"
#include "util/cancellation.h"

namespace icp::padded {

template <typename Fn>
bool ForEachPassing(const PaddedColumn& column, const FilterBitVector& filter,
                    Fn&& fn, const CancelContext* cancel = nullptr) {
  return ForEachCancellableBatch(
      cancel, 0, filter.num_segments(), [&](std::size_t b, std::size_t e) {
        for (std::size_t seg = b; seg < e; ++seg) {
          Word f = filter.SegmentWord(seg);
          while (f != 0) {
            const int pos = CountTrailingZeros(f);
            f &= f - 1;
            fn(column.GetValue(seg * kWordBits + (kWordBits - 1 - pos)));
          }
        }
      });
}

namespace internal {

template <typename T>
UInt128 SumTyped(const PaddedColumn& column, const FilterBitVector& filter,
                 const CancelContext* cancel) {
  const T* data = column.As<T>();
  const std::size_t n = column.num_values();
  std::uint64_t sum = 0;  // n * 2^k fits: checked by the caller split
  UInt128 wide_sum = 0;
  ForEachCancellableBatch(
      cancel, 0, filter.num_segments(), [&](std::size_t sb, std::size_t se) {
        for (std::size_t seg = sb; seg < se; ++seg) {
          const Word f = filter.SegmentWord(seg);
          const std::size_t begin = seg * kWordBits;
          const std::size_t end =
              begin + kWordBits < n ? begin + kWordBits : n;
          // Branchless masked add; auto-vectorizable.
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t mask =
                static_cast<std::uint64_t>(0) -
                ((f >> (63 - (i - begin))) & 1);
            sum += static_cast<std::uint64_t>(data[i]) & mask;
          }
          // Periodically drain into the wide accumulator so narrow-element
          // sums cannot overflow 64 bits even for huge columns.
          if ((seg & 0xFFFF) == 0xFFFF) {
            wide_sum += sum;
            sum = 0;
          }
        }
      });
  return wide_sum + sum;
}

}  // namespace internal

inline UInt128 Sum(const PaddedColumn& column, const FilterBitVector& filter,
                   const CancelContext* cancel = nullptr) {
  switch (column.element_bits()) {
    case 8:
      return internal::SumTyped<std::uint8_t>(column, filter, cancel);
    case 16:
      return internal::SumTyped<std::uint16_t>(column, filter, cancel);
    case 32:
      return internal::SumTyped<std::uint32_t>(column, filter, cancel);
    default:
      return internal::SumTyped<std::uint64_t>(column, filter, cancel);
  }
}

[[nodiscard]] inline std::optional<std::uint64_t> Min(
    const PaddedColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr) {
  std::optional<std::uint64_t> best;
  ForEachPassing(
      column, filter,
      [&](std::uint64_t v) {
        if (!best.has_value() || v < *best) best = v;
      },
      cancel);
  return best;
}

[[nodiscard]] inline std::optional<std::uint64_t> Max(
    const PaddedColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr) {
  std::optional<std::uint64_t> best;
  ForEachPassing(
      column, filter,
      [&](std::uint64_t v) {
        if (!best.has_value() || v > *best) best = v;
      },
      cancel);
  return best;
}

[[nodiscard]] inline std::optional<std::uint64_t> RankSelect(
    const PaddedColumn& column, const FilterBitVector& filter, std::uint64_t r,
    const CancelContext* cancel = nullptr) {
  const std::uint64_t count = filter.CountOnes();
  if (r < 1 || r > count) return std::nullopt;
  std::vector<std::uint64_t> values;
  values.reserve(count);
  if (!ForEachPassing(
          column, filter, [&](std::uint64_t v) { values.push_back(v); },
          cancel)) {
    return std::nullopt;
  }
  auto nth = values.begin() + static_cast<std::ptrdiff_t>(r - 1);
  std::nth_element(values.begin(), nth, values.end());
  return *nth;
}

[[nodiscard]] inline std::optional<std::uint64_t> Median(
    const PaddedColumn& column, const FilterBitVector& filter,
    const CancelContext* cancel = nullptr) {
  return RankSelect(column, filter, LowerMedianRank(filter.CountOnes()),
                    cancel);
}

/// `stats`, when non-null, carries the CountFilterSegments liveness
/// summary: the order statistics (ForEachPassing) genuinely skip all-dead
/// segments, SUM's masked loop still touches every word of them.
inline AggregateResult Aggregate(const PaddedColumn& column,
                                 const FilterBitVector& filter, AggKind kind,
                                 std::uint64_t rank = 0,
                                 const CancelContext* cancel = nullptr,
                                 AggStats* stats = nullptr) {
  ICP_OBS_INCREMENT(AggPathPadded);
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMin:
      result.value = Min(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMax:
      result.value = Max(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMedian:
      result.value = Median(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kRank:
      result.value = RankSelect(column, filter, rank, cancel);
      CountFilterSegments(filter, stats);
      break;
  }
  return result;
}

}  // namespace icp::padded

#endif  // ICP_CORE_PADDED_AGGREGATE_H_
