#include "core/aggregate.h"

namespace icp {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMedian:
      return "MEDIAN";
    case AggKind::kRank:
      return "RANK";
  }
  return "?";
}

const char* AggMethodToString(AggMethod method) {
  switch (method) {
    case AggMethod::kBitParallel:
      return "BP";
    case AggMethod::kNonBitParallel:
      return "NBP";
  }
  return "?";
}

}  // namespace icp
