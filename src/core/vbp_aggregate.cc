#include "core/vbp_aggregate.h"

#include <cstddef>
#include <vector>

#include "obs/obs.h"
#include "simd/dispatch.h"
#include "util/check.h"

namespace icp::vbp {
namespace {

// kern::FoldCounters mirrors core::AggStats field-for-field (same leaf-
// library reasoning as ScanCounters/ScanStats in scan/vbp_scanner.cc);
// pin the mirror so the structs cannot drift apart silently.
static_assert(sizeof(kern::FoldCounters) == sizeof(AggStats),
              "kern::FoldCounters out of sync with core::AggStats; "
              "update both structs and the merge sites together");
static_assert(offsetof(kern::FoldCounters, folds) ==
              offsetof(AggStats, folds));
static_assert(offsetof(kern::FoldCounters, compare_early_stops) ==
              offsetof(AggStats, compare_early_stops));
static_assert(offsetof(kern::FoldCounters, blends_skipped) ==
              offsetof(AggStats, blends_skipped));
static_assert(offsetof(kern::FoldCounters, segments_skipped) ==
              offsetof(AggStats, segments_skipped));

// Number of live segments (segments that contain at least one real tuple).
std::size_t LiveSegments(const FilterBitVector& filter) {
  return filter.num_segments();
}

}  // namespace

// ---------------------------------------------------------------------------
// SUM (Algorithm 1)
// ---------------------------------------------------------------------------

void AccumulateBitSums(const VbpColumn& column, const FilterBitVector& filter,
                       std::size_t seg_begin, std::size_t seg_end,
                       std::uint64_t* bit_sums) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_LE(seg_end, filter.num_segments());
  const int tau = column.tau();
  const Word* f_words = filter.words();
  const kern::KernelOps& ops = kern::Ops();
  // Word-group-major (paper Alg. 1 line 2): each group region is scanned
  // sequentially, and the shifts are deferred to CombineBitSums.
  for (int g = 0; g < column.num_groups(); ++g) {
    const int width = column.GroupWidth(g);
    ops.vbp_bit_sums(column.GroupData(g) + seg_begin * width,
                     f_words + seg_begin, seg_end - seg_begin, width,
                     bit_sums + g * tau);
  }
}

UInt128 CombineBitSums(const std::uint64_t* bit_sums, int k) {
  UInt128 sum = 0;
  for (int j = 0; j < k; ++j) {
    sum += static_cast<UInt128>(bit_sums[j]) << (k - 1 - j);
  }
  return sum;
}

UInt128 Sum(const VbpColumn& column, const FilterBitVector& filter,
            const CancelContext* cancel) {
  std::uint64_t bit_sums[kWordBits] = {};
  ForEachCancellableBatch(cancel, 0, LiveSegments(filter),
                          [&](std::size_t b, std::size_t e) {
                            AccumulateBitSums(column, filter, b, e, bit_sums);
                          });
  return CombineBitSums(bit_sums, column.bit_width());
}

// ---------------------------------------------------------------------------
// MIN / MAX (Algorithm 2)
// ---------------------------------------------------------------------------

void InitSlotExtreme(int k, bool is_min, Word* temp) {
  for (int j = 0; j < k; ++j) {
    temp[j] = is_min ? ~Word{0} : Word{0};
  }
}

void SlotExtremeRange(const VbpColumn& column, const FilterBitVector& filter,
                      std::size_t seg_begin, std::size_t seg_end, bool is_min,
                      Word* temp, AggStats* stats) {
  ICP_CHECK_EQ(column.lanes(), 1);
  ICP_CHECK_LE(seg_end, filter.num_segments());
  const int num_groups = column.num_groups();
  const Word* bases[kWordBits];
  int widths[kWordBits];
  for (int g = 0; g < num_groups; ++g) {
    widths[g] = column.GroupWidth(g);
    bases[g] = column.GroupData(g) + seg_begin * widths[g];
  }
  kern::FoldCounters counters;
  kern::Ops().vbp_extreme_fold(bases, widths, num_groups, column.tau(),
                               /*lanes=*/1, filter.words() + seg_begin,
                               seg_end - seg_begin, is_min, temp,
                               stats != nullptr ? &counters : nullptr);
  if (stats != nullptr) {
    stats->folds += counters.folds;
    stats->compare_early_stops += counters.compare_early_stops;
    stats->blends_skipped += counters.blends_skipped;
    stats->segments_skipped += counters.segments_skipped;
    ICP_OBS_ADD(AggSegmentsFolded, counters.folds);
    ICP_OBS_ADD(AggCompareEarlyStops, counters.compare_early_stops);
    ICP_OBS_ADD(AggBlendsSkipped, counters.blends_skipped);
    ICP_OBS_ADD(AggSegmentsSkipped, counters.segments_skipped);
  }
}

void MergeSlotExtreme(const Word* other, int k, bool is_min, Word* temp) {
  // One "segment" of k planes against the running state: the fold kernel
  // with a single group, an all-ones filter, and no counters.
  const Word all = ~Word{0};
  const Word* bases[1] = {other};
  const int widths[1] = {k};
  kern::Ops().vbp_extreme_fold(bases, widths, /*num_groups=*/1, /*tau=*/k,
                               /*lanes=*/1, &all, /*n=*/1, is_min, temp,
                               nullptr);
}

std::uint64_t ExtremeOfSlots(const Word* temp, int k, bool is_min) {
  std::uint64_t best = 0;
  for (int slot = 0; slot < kWordBits; ++slot) {
    const int pos = kWordBits - 1 - slot;
    std::uint64_t v = 0;
    for (int j = 0; j < k; ++j) {
      v |= ((temp[j] >> pos) & 1) << (k - 1 - j);
    }
    if (slot == 0 || (is_min ? v < best : v > best)) best = v;
  }
  return best;
}

namespace {

std::optional<std::uint64_t> Extreme(const VbpColumn& column,
                                     const FilterBitVector& filter,
                                     bool is_min,
                                     const CancelContext* cancel,
                                     AggStats* stats) {
  if (filter.CountOnes() == 0) return std::nullopt;
  const int k = column.bit_width();
  Word temp[kWordBits];
  InitSlotExtreme(k, is_min, temp);
  if (!ForEachCancellableBatch(
          cancel, 0, LiveSegments(filter), [&](std::size_t b, std::size_t e) {
            SlotExtremeRange(column, filter, b, e, is_min, temp, stats);
          })) {
    return std::nullopt;
  }
  return ExtremeOfSlots(temp, k, is_min);
}

}  // namespace

std::optional<std::uint64_t> Min(const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return Extreme(column, filter, /*is_min=*/true, cancel, stats);
}

std::optional<std::uint64_t> Max(const VbpColumn& column,
                                 const FilterBitVector& filter,
                                 const CancelContext* cancel,
                                 AggStats* stats) {
  return Extreme(column, filter, /*is_min=*/false, cancel, stats);
}

// ---------------------------------------------------------------------------
// MEDIAN / r-selection (Algorithm 3)
// ---------------------------------------------------------------------------

std::uint64_t CountCandidateBit(const VbpColumn& column, const Word* v,
                                std::size_t seg_begin, std::size_t seg_end,
                                int g, int j) {
  const int width = column.GroupWidth(g);
  return kern::Ops().masked_popcount(
      column.GroupData(g) + seg_begin * width + j, width, /*lanes=*/1,
      v + seg_begin, seg_end - seg_begin);
}

void UpdateCandidates(const VbpColumn& column, Word* v,
                      std::size_t seg_begin, std::size_t seg_end, int g,
                      int j, bool bit_is_one) {
  const int width = column.GroupWidth(g);
  const Word* base = column.GroupData(g) + seg_begin * width + j;
  for (std::size_t seg = seg_begin; seg < seg_end; ++seg) {
    if (v[seg] != 0) {
      v[seg] &= bit_is_one ? *base : ~*base;
    }
    base += width;
  }
}

std::optional<std::uint64_t> RankSelect(const VbpColumn& column,
                                        const FilterBitVector& filter,
                                        std::uint64_t r,
                                        const CancelContext* cancel) {
  ICP_CHECK_EQ(column.lanes(), 1);
  std::uint64_t u = filter.CountOnes();
  if (r < 1 || r > u) return std::nullopt;
  const std::size_t num_segments = LiveSegments(filter);
  std::vector<Word> v(filter.words(), filter.words() + num_segments);

  const int k = column.bit_width();
  const int tau = column.tau();
  std::uint64_t result = 0;
  for (int jb = 0; jb < k; ++jb) {
    const int g = jb / tau;
    const int j = jb - g * tau;
    // c = number of remaining candidates whose current bit is 1, i.e. the
    // candidates larger than (result | 1 << (k-1-jb))'s prefix.
    std::uint64_t c = 0;
    const bool ok = ForEachCancellableBatch(
        cancel, 0, num_segments, [&](std::size_t b, std::size_t e) {
          c += CountCandidateBit(column, v.data(), b, e, g, j);
        });
    if (!ok) return std::nullopt;
    const bool bit_is_one = u - c < r;
    if (bit_is_one) {
      result |= std::uint64_t{1} << (k - 1 - jb);
      r -= u - c;
      u = c;
    } else {
      u -= c;
    }
    if (!ForEachCancellableBatch(
            cancel, 0, num_segments, [&](std::size_t b, std::size_t e) {
              UpdateCandidates(column, v.data(), b, e, g, j, bit_is_one);
            })) {
      return std::nullopt;
    }
  }
  return result;
}

std::optional<std::uint64_t> Median(const VbpColumn& column,
                                    const FilterBitVector& filter,
                                    const CancelContext* cancel) {
  const std::uint64_t count = filter.CountOnes();
  if (count == 0) return std::nullopt;
  return RankSelect(column, filter, LowerMedianRank(count), cancel);
}

AggregateResult Aggregate(const VbpColumn& column,
                          const FilterBitVector& filter, AggKind kind,
                          std::uint64_t rank, const CancelContext* cancel,
                          AggStats* stats) {
  ICP_OBS_INCREMENT(AggPathVbp);
  AggregateResult result;
  result.kind = kind;
  result.count = filter.CountOnes();
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      result.sum = Sum(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kMin:
      result.value = Min(column, filter, cancel, stats);
      break;
    case AggKind::kMax:
      result.value = Max(column, filter, cancel, stats);
      break;
    case AggKind::kMedian:
      result.value = Median(column, filter, cancel);
      CountFilterSegments(filter, stats);
      break;
    case AggKind::kRank:
      result.value = RankSelect(column, filter, rank, cancel);
      CountFilterSegments(filter, stats);
      break;
  }
  return result;
}

}  // namespace icp::vbp
