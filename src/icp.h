// Umbrella header: the library's public API in one include.
//
//   #include "icp.h"
//
// Downstream users who only need a subset should include the specific
// headers instead (they are all self-contained).

#ifndef ICP_ICP_H_
#define ICP_ICP_H_

// Utilities.
#include "util/bits.h"           // IWYU pragma: export
#include "util/cancellation.h"   // IWYU pragma: export
#include "util/dates.h"          // IWYU pragma: export
#include "util/failpoint.h"      // IWYU pragma: export
#include "util/random.h"         // IWYU pragma: export
#include "util/rdtsc.h"          // IWYU pragma: export
#include "util/status.h"         // IWYU pragma: export

// Storage.
#include "bitvector/filter_bit_vector.h"  // IWYU pragma: export
#include "encode/column_encoder.h"        // IWYU pragma: export
#include "layout/hbp_column.h"            // IWYU pragma: export
#include "layout/layout.h"                // IWYU pragma: export
#include "layout/naive_column.h"          // IWYU pragma: export
#include "layout/padded_column.h"         // IWYU pragma: export
#include "layout/vbp_column.h"            // IWYU pragma: export

// Scans.
#include "scan/hbp_scanner.h"     // IWYU pragma: export
#include "scan/naive_scanner.h"   // IWYU pragma: export
#include "scan/padded_scanner.h"  // IWYU pragma: export
#include "scan/predicate.h"       // IWYU pragma: export
#include "scan/vbp_scanner.h"     // IWYU pragma: export

// Aggregation (the paper's contribution and its baselines).
#include "core/aggregate.h"         // IWYU pragma: export
#include "core/hbp_aggregate.h"     // IWYU pragma: export
#include "core/in_word_sum.h"       // IWYU pragma: export
#include "core/naive_aggregate.h"   // IWYU pragma: export
#include "core/nbp_aggregate.h"     // IWYU pragma: export
#include "core/padded_aggregate.h"  // IWYU pragma: export
#include "core/top_k.h"            // IWYU pragma: export
#include "core/vbp_aggregate.h"     // IWYU pragma: export

// Observability (process counters, histograms, the query journal,
// stage timers, tracing, and the embedded admin plane).
#include "obs/admin_server.h"  // IWYU pragma: export
#include "obs/histogram.h"     // IWYU pragma: export
#include "obs/journal.h"       // IWYU pragma: export
#include "obs/metrics.h"       // IWYU pragma: export
#include "obs/obs.h"           // IWYU pragma: export
#include "obs/query_stats.h"   // IWYU pragma: export
#include "obs/stage_timer.h"   // IWYU pragma: export
#include "obs/trace.h"         // IWYU pragma: export

// Parallel and SIMD execution; overload-safe scheduling and admission.
#include "parallel/executor.h"            // IWYU pragma: export
#include "parallel/parallel_aggregate.h"  // IWYU pragma: export
#include "parallel/parallel_nbp.h"        // IWYU pragma: export
#include "parallel/thread_pool.h"         // IWYU pragma: export
#include "sched/admission.h"              // IWYU pragma: export
#include "sched/morsel.h"                 // IWYU pragma: export
#include "sched/scheduler.h"              // IWYU pragma: export
#include "simd/hbp_simd.h"                // IWYU pragma: export
#include "simd/simd_parallel.h"           // IWYU pragma: export
#include "simd/vbp_simd.h"                // IWYU pragma: export
#include "simd/word256.h"                 // IWYU pragma: export

// Query engine and I/O.
#include "engine/engine.h"      // IWYU pragma: export
#include "engine/expression.h"    // IWYU pragma: export
#include "engine/query_parser.h"  // IWYU pragma: export
#include "engine/table.h"       // IWYU pragma: export
#include "io/csv_loader.h"      // IWYU pragma: export
#include "io/table_io.h"        // IWYU pragma: export

#endif  // ICP_ICP_H_
