// Gregorian calendar helpers (proleptic; Howard Hinnant's algorithm).

#ifndef ICP_UTIL_DATES_H_
#define ICP_UTIL_DATES_H_

#include <cstdint>

namespace icp {

/// Days since 1970-01-01 for a Gregorian calendar date.
constexpr std::int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<std::int64_t>(doe) - 719468;
}

static_assert(DaysFromCivil(1970, 1, 1) == 0);
static_assert(DaysFromCivil(2000, 3, 1) - DaysFromCivil(2000, 2, 28) == 2);

}  // namespace icp

#endif  // ICP_UTIL_DATES_H_
