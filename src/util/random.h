// Deterministic pseudo-random generation for workload synthesis.
//
// xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded through
// splitmix64. We avoid <random> engines in data generators: they are slow for
// billion-tuple workloads and their distributions are not reproducible across
// standard library implementations.

#ifndef ICP_UTIL_RANDOM_H_
#define ICP_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"

namespace icp {

/// Reproducible 64-bit PRNG (xoshiro256**).
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x1c9b7e3a5f2d4e81ULL) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next uniformly distributed 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi) {
    ICP_DCHECK(lo <= hi);
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return Next();  // full 64-bit range
    // Rejection-free mapping via 128-bit multiply (Lemire's method without
    // the rejection step; bias is < 2^-64 * range, negligible for workloads).
    const unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) * range;
    return lo + static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace icp

#endif  // ICP_UTIL_RANDOM_H_
