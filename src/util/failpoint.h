// Deterministic fault injection ("failpoints").
//
// A failpoint is a named site in a failure-prone code path (a disk write, an
// allocation, a worker task dispatch) that tests can arm to simulate the
// failure deterministically. Production code plants a site with
//
//   if (ICP_FAILPOINT("table_io/write")) { /* act as if the write failed */ }
//
// and tests arm it with fail::EnableOneShot("table_io/write") (or Always /
// EveryNth). Failpoints are compiled in only when the ICP_FAILPOINTS CMake
// option is ON (it defines ICP_FAILPOINTS globally); in release builds the
// macro is the literal `false` and the planted branch folds away entirely, so
// hot paths pay nothing.
//
// The control API below is declared unconditionally so tests can link in
// either configuration; without ICP_FAILPOINTS the functions are no-ops and
// fail::Armed() reports false (tests use that to GTEST_SKIP).
//
// Catalog of planted failpoints (keep docs/robustness.md in sync):
//   table_io/write       — Writer::Raw in table_io.cc: simulated short write
//   table_io/fsync       — WriteTable: fsync of the temp file fails
//   table_io/rename      — WriteTable: rename(temp, target) fails
//   table_io/read        — Reader::Raw in table_io.cc: simulated short read
//   table_io/read_transient — Reader::Raw: retryable read error; the reader
//                          retries with jittered backoff (util/backoff.h) up
//                          to kIoMaxAttempts before failing like table_io/read
//   aligned_buffer/alloc — WordBuffer: simulated allocation failure
//   thread_pool/task     — ThreadPool::RunPerThread: one worker's task is
//                          dropped; the region completes and the failure is
//                          surfaced via ThreadPool::TakeTaskFailure()
//   csv_loader/open      — LoadCsv: opening the file fails (permissions,
//                          missing mount) even though it exists
//   csv_loader/read      — LoadFromStream: stream error mid-file; the loader
//                          returns a Status instead of a partial table
//   csv_loader/read_transient — LoadFromStream: retryable stream error;
//                          bounded jittered retries, then a Status
//   sched/admit          — QueryGovernor::Admit: the governor sheds the
//                          arrival with kResourceExhausted (forced brownout)
//   sched/dequeue        — MorselScheduler::TryRunOneMorsel: a dequeued
//                          morsel is dropped without running; the region
//                          completes and the session surfaces Status Internal
//   sched/steal          — MorselScheduler::TryRunOneMorsel: a steal attempt
//                          backs off (lost race); the morsel stays queued
//   query_parser/lex     — Lexer::Run: lexer-internal failure before
//                          tokenizing
//   query_parser/parse   — ParseQuery: parser-internal failure; partial
//                          expression trees must not leak
//   query_parser/parse_predicate — ParsePredicate: same failure mode for the
//                          bare-predicate entry point
//   groupby/spill        — groupby::Execute: a spill append fails; the pass
//                          region drains and Status Internal surfaces (no
//                          partial groups escape)
//   groupby/merge        — groupby::Execute: one partition's merge fails;
//                          same drain-then-Internal contract

#ifndef ICP_UTIL_FAILPOINT_H_
#define ICP_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace icp::fail {

/// True when the library was built with ICP_FAILPOINTS (i.e. the control
/// functions below actually do something).
bool Armed();

/// Arms `name` to fire on every evaluation.
void EnableAlways(const std::string& name);

/// Arms `name` to fire on the n-th, 2n-th, 3n-th… evaluation (n >= 1).
void EnableEveryNth(const std::string& name, std::uint64_t n);

/// Arms `name` to fire exactly once, on its next evaluation.
void EnableOneShot(const std::string& name);

/// Disarms `name` (evaluations keep being counted).
void Disable(const std::string& name);

/// Disarms every failpoint and resets all counters. Call from test
/// SetUp/TearDown so armed points never leak across tests.
void DisableAll();

/// Number of times `name` has been evaluated since the last DisableAll.
std::uint64_t EvalCount(const std::string& name);

/// Number of times `name` actually fired since the last DisableAll.
std::uint64_t TriggerCount(const std::string& name);

/// Every failpoint name evaluated so far in this process (the live catalog).
std::vector<std::string> KnownFailpoints();

#ifdef ICP_FAILPOINTS
/// Implementation hook behind ICP_FAILPOINT; do not call directly.
bool ShouldFail(const char* name);
#endif

}  // namespace icp::fail

#ifdef ICP_FAILPOINTS
#define ICP_FAILPOINT(name) (::icp::fail::ShouldFail(name))
#else
#define ICP_FAILPOINT(name) (false)
#endif

#endif  // ICP_UTIL_FAILPOINT_H_
