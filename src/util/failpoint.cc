#include "util/failpoint.h"

#include <mutex>
#include <unordered_map>

#include "obs/obs.h"

namespace icp::fail {
namespace {

enum class Mode { kOff, kAlways, kEveryNth, kOneShot };

struct Point {
  Mode mode = Mode::kOff;
  std::uint64_t n = 0;      // period for kEveryNth
  std::uint64_t evals = 0;  // total evaluations
  std::uint64_t fires = 0;  // total times the point fired
};

// One global registry guarded by a mutex. Failpoints sit on cold failure
// paths (file I/O, allocation, region dispatch), never inside per-word
// kernels, so a lock per evaluation is fine even in failpoint builds.
std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, Point>& Registry() {
  static auto* registry = new std::unordered_map<std::string, Point>();
  return *registry;
}

void Arm(const std::string& name, Mode mode, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(Mu());
  Point& point = Registry()[name];
  point.mode = mode;
  point.n = n;
}

}  // namespace

bool Armed() {
#ifdef ICP_FAILPOINTS
  return true;
#else
  return false;
#endif
}

void EnableAlways(const std::string& name) { Arm(name, Mode::kAlways, 0); }

void EnableEveryNth(const std::string& name, std::uint64_t n) {
  Arm(name, Mode::kEveryNth, n == 0 ? 1 : n);
}

void EnableOneShot(const std::string& name) { Arm(name, Mode::kOneShot, 0); }

void Disable(const std::string& name) { Arm(name, Mode::kOff, 0); }

void DisableAll() {
  std::lock_guard<std::mutex> lock(Mu());
  Registry().clear();
}

std::uint64_t EvalCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mu());
  const auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.evals;
}

std::uint64_t TriggerCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mu());
  const auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.fires;
}

std::vector<std::string> KnownFailpoints() {
  std::lock_guard<std::mutex> lock(Mu());
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, point] : Registry()) names.push_back(name);
  return names;
}

#ifdef ICP_FAILPOINTS
bool ShouldFail(const char* name) {
  std::lock_guard<std::mutex> lock(Mu());
  Point& point = Registry()[name];
  ++point.evals;
  bool fire = false;
  switch (point.mode) {
    case Mode::kOff:
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kEveryNth:
      fire = point.evals % point.n == 0;
      break;
    case Mode::kOneShot:
      fire = true;
      point.mode = Mode::kOff;
      break;
  }
  if (fire) {
    ++point.fires;
    ICP_OBS_INCREMENT(FailpointHits);
  }
  return fire;
}
#endif

}  // namespace icp::fail
