// Cache-line-aligned word storage for packed columns.
//
// Column data is read with full-word (and 256-bit SIMD) loads; 64-byte
// alignment keeps segment starts on cache-line boundaries, which is what the
// word-group layout of Section II-C relies on to make early stopping save
// memory bandwidth.

#ifndef ICP_UTIL_ALIGNED_BUFFER_H_
#define ICP_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "util/bits.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace icp {

/// A fixed-size, zero-initialized, 64-byte-aligned array of words.
///
/// Guarantee: the allocation is always a whole number of cache lines, and
/// the words between size() and the next 8-word boundary are allocated and
/// zero. SIMD kernels rely on this to issue full 256-bit loads over a
/// ragged tail without touching unowned memory.
class WordBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  WordBuffer() = default;

  explicit WordBuffer(std::size_t size) : size_(size) {
    if (size_ == 0) return;
    const std::size_t bytes =
        CeilDiv(size_ * sizeof(Word), kAlignment) * kAlignment;
    void* raw = ICP_FAILPOINT("aligned_buffer/alloc")
                    ? nullptr
                    : std::aligned_alloc(kAlignment, bytes);
    if (raw == nullptr) {
      // Leave a valid empty buffer and let the statusful caller (e.g.
      // Table::AddColumn) surface the failure; the packers bail out before
      // writing when alloc_failed() is set.
      size_ = 0;
      alloc_failed_ = true;
      return;
    }
    std::memset(raw, 0, bytes);
    data_.reset(static_cast<Word*>(raw));
  }

  WordBuffer(WordBuffer&&) = default;
  WordBuffer& operator=(WordBuffer&&) = default;

  WordBuffer(const WordBuffer& other) : WordBuffer(other.size_) {
    if (size_ > 0) {
      std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(Word));
    }
  }
  WordBuffer& operator=(const WordBuffer& other) {
    if (this != &other) *this = WordBuffer(other);
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when the requested allocation failed (real exhaustion or the
  /// "aligned_buffer/alloc" failpoint); the buffer is then empty.
  bool alloc_failed() const { return alloc_failed_; }

  Word* data() { return data_.get(); }
  const Word* data() const { return data_.get(); }

  Word& operator[](std::size_t i) {
    ICP_DCHECK(i < size_);
    return data_.get()[i];
  }
  Word operator[](std::size_t i) const {
    ICP_DCHECK(i < size_);
    return data_.get()[i];
  }

  Word* begin() { return data_.get(); }
  Word* end() { return data_.get() + size_; }
  const Word* begin() const { return data_.get(); }
  const Word* end() const { return data_.get() + size_; }

 private:
  struct FreeDeleter {
    void operator()(Word* p) const { std::free(p); }
  };

  std::unique_ptr<Word, FreeDeleter> data_;
  std::size_t size_ = 0;
  bool alloc_failed_ = false;
};

}  // namespace icp

#endif  // ICP_UTIL_ALIGNED_BUFFER_H_
