// Bounded retry with jittered exponential backoff for transient I/O
// errors (docs/robustness.md). Retrying is only safe for idempotent
// operations — re-reading the same bytes — so the IO layer applies it
// exclusively to reads that failed with a *transient* error signature
// (the "*/read_transient" failpoints in tests).
//
// The schedule is deliberately tiny: attempts are bounded (no retry
// storms under real outages) and the sleep doubles from ~50us with a
// uniform jitter so concurrent readers hitting one bad device do not
// re-arrive in lockstep.

#ifndef ICP_UTIL_BACKOFF_H_
#define ICP_UTIL_BACKOFF_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/random.h"

namespace icp {

/// Total tries for a transient I/O failure: the initial attempt plus two
/// retries. Exhaustion surfaces the original error.
inline constexpr int kIoMaxAttempts = 3;

/// Sleeps before retry number `attempt` (1-based): base 50us doubled per
/// attempt, each with up to +100% uniform jitter.
inline void SleepForRetry(int attempt) {
  thread_local Random jitter{0x9e3779b97f4a7c15ull ^
                             (std::hash<std::thread::id>{}(
                                 std::this_thread::get_id()))};
  const std::uint64_t base_us = std::uint64_t{50} << (attempt - 1);
  const std::uint64_t sleep_us = base_us + jitter.UniformInt(0, base_us);
  std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
}

}  // namespace icp

#endif  // ICP_UTIL_BACKOFF_H_
