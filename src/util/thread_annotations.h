// Clang thread-safety analysis attribute macros (ICP014).
//
// On clang builds these expand to the `thread_safety` attributes so
// -Wthread-safety (promoted to an error in CMakeLists.txt) can prove at
// compile time that mutex-protected state is only touched under its
// lock. On other compilers they expand to nothing. See
// docs/concurrency.md for the annotation policy and
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.

#ifndef ICP_UTIL_THREAD_ANNOTATIONS_H_
#define ICP_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define ICP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ICP_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define ICP_CAPABILITY(x) ICP_THREAD_ANNOTATION(capability(x))

/// Marks a RAII type whose lifetime holds a capability.
#define ICP_SCOPED_CAPABILITY ICP_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define ICP_GUARDED_BY(x) ICP_THREAD_ANNOTATION(guarded_by(x))

/// Pointee readable/writable only while holding `x`.
#define ICP_PT_GUARDED_BY(x) ICP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the listed capabilities.
#define ICP_REQUIRES(...) \
  ICP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define ICP_ACQUIRE(...) \
  ICP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define ICP_RELEASE(...) \
  ICP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `ret`.
#define ICP_TRY_ACQUIRE(ret, ...) \
  ICP_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities.
#define ICP_EXCLUDES(...) \
  ICP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the analysis cannot see the invariant.
#define ICP_NO_THREAD_SAFETY_ANALYSIS \
  ICP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // ICP_UTIL_THREAD_ANNOTATIONS_H_
