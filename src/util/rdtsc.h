// Cycle-accurate timing.
//
// The paper reports cycles-per-tuple measured with the RDTSC instruction; we
// do the same on x86-64 and fall back to a nanosecond clock elsewhere (on
// modern CPUs TSC ticks at a constant rate, so both are wall-clock
// proportional, which is what the paper notes as well).

#ifndef ICP_UTIL_RDTSC_H_
#define ICP_UTIL_RDTSC_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define ICP_HAVE_RDTSC 1
#endif

namespace icp {

/// Reads the CPU timestamp counter (cycles since boot on x86-64).
inline std::uint64_t ReadCycleCounter() {
#if defined(ICP_HAVE_RDTSC)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Elapsed-time measurement on top of this counter lives in
// obs/stage_timer.h (obs::StageTimer) — the single clock shared by the
// engine's QueryStats, trace spans, and the bench harness.

}  // namespace icp

#endif  // ICP_UTIL_RDTSC_H_
