// Cooperative query cancellation and deadlines.
//
// The bit-parallel kernels run uninterruptible tight loops over segments; a
// MEDIAN over a large VBP column makes k full passes. To make long queries
// abortable without signals or thread kills, the drivers above the kernels
// (core dispatchers, scanners, parallel drivers) split their segment ranges
// into batches of kCancelBatchSegments and consult a CancelContext between
// batches. When the context reports a stop, workers drain — they simply stop
// issuing batches — and the engine converts the latched stop reason into
// Status kCancelled or kDeadlineExceeded, discarding partial results.
//
// Cancellation latency is therefore bounded by one batch per worker
// (kCancelBatchSegments segments, a few microseconds of kernel work) plus
// the in-flight batch. When no token or deadline is set the drivers run one
// full-range batch, so the uncancellable fast path is unchanged.

#ifndef ICP_UTIL_CANCELLATION_H_
#define ICP_UTIL_CANCELLATION_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "obs/obs.h"
#include "util/status.h"

namespace icp {

/// A shareable cancel flag. Default-constructed tokens are inert (cannot be
/// cancelled and cost one null check); Create() makes a live token whose
/// copies all observe RequestCancel() from any thread.
class CancellationToken {
 public:
  CancellationToken() = default;

  static CancellationToken Create() {
    CancellationToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// True for tokens made by Create() (i.e. RequestCancel can have effect).
  bool can_cancel() const { return flag_ != nullptr; }

  /// Requests cancellation; safe from any thread, idempotent, no-op on an
  /// inert token.
  void RequestCancel() const {
    // order: relaxed — a monotone boolean flag; pollers act on the flag
    // value alone, no other memory is published through it.
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  // cancellation: checks — polls the shared cancel flag directly.
  bool IsCancelRequested() const {
    // order: relaxed — see RequestCancel; a late observation only delays
    // the stop by one poll interval, which the batch bound already allows.
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Segments per cooperative check. 4096 segments is ~256K tuples under VBP:
/// large enough that the per-batch branch and clock read vanish in the
/// kernel cost, small enough that cancellation lands in well under a
/// millisecond of kernel work.
inline constexpr std::size_t kCancelBatchSegments = 4096;

/// Per-query stop state: a token plus an optional absolute deadline.
/// ShouldStop() is safe to call concurrently from pool workers; the first
/// observed reason latches so every caller (and the final engine check)
/// agrees on why the query stopped.
class CancelContext {
 public:
  CancelContext() = default;
  CancelContext(CancellationToken token,
                std::optional<std::chrono::steady_clock::time_point> deadline)
      : token_(std::move(token)), deadline_(deadline) {}

  /// False when neither a live token nor a deadline is present — drivers use
  /// this to skip batching entirely.
  bool active() const { return token_.can_cancel() || deadline_.has_value(); }

  /// Polls the token and the clock; latches and returns true once either
  /// fires. Cheap after latching (two relaxed atomic ops).
  // cancellation: checks — polls the token and the deadline clock.
  bool ShouldStop() const {
    // order: relaxed — statistics counter; aggregated once per query into
    // QueryStats after the region joined.
    checks_.fetch_add(1, std::memory_order_relaxed);
    ICP_OBS_INCREMENT(CancelChecks);
    // order: relaxed — the latch is a monotone enum; any poller that
    // misses this read latches the same reason itself one poll later.
    if (reason_.load(std::memory_order_relaxed) != kNone) return true;
    if (token_.IsCancelRequested()) {
      Latch(kCancelled);
      return true;
    }
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() >= *deadline_) {
      Latch(kDeadline);
      return true;
    }
    return false;
  }

  /// Cooperative polls made against this context so far (batch checks by
  /// drivers and workers); the engine copies this into QueryStats.
  std::uint64_t checks() const {
    // order: relaxed — statistics read; exactness across threads is not
    // required, only an eventually-complete tally.
    return checks_.load(std::memory_order_relaxed);
  }

  /// OK while running; kCancelled / kDeadlineExceeded once latched.
  Status ToStatus() const {
    // order: relaxed — read by the engine after workers drained; the
    // latched enum value alone decides the Status.
    switch (reason_.load(std::memory_order_relaxed)) {
      case kCancelled:
        return Status::Cancelled("query cancelled");
      case kDeadline:
        return Status::DeadlineExceeded("query deadline exceeded");
      default:
        return Status::Ok();
    }
  }

 private:
  enum Reason : int { kNone = 0, kCancelled = 1, kDeadline = 2 };

  void Latch(Reason reason) const {
    int expected = kNone;
    // order: relaxed — first-reason-wins latch on a monotone enum; no
    // data is published through it, so neither CAS order needs to sync.
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed);
  }

  CancellationToken token_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  mutable std::atomic<int> reason_{kNone};
  mutable std::atomic<std::uint64_t> checks_{0};
};

/// Runs body(batch_begin, batch_end) over [begin, end) in batches of
/// kCancelBatchSegments, checking `cancel` between batches. With a null or
/// inactive context the whole range runs as one batch. Returns false iff the
/// loop stopped early (remaining batches were skipped).
// cancellation: checks — polls the context between every batch it issues.
template <typename Body>
inline bool ForEachCancellableBatch(const CancelContext* cancel,
                                    std::size_t begin, std::size_t end,
                                    Body&& body) {
  if (cancel == nullptr || !cancel->active()) {
    if (begin < end) body(begin, end);
    return true;
  }
  for (std::size_t s = begin; s < end; s += kCancelBatchSegments) {
    if (cancel->ShouldStop()) return false;
    body(s, std::min(end, s + kCancelBatchSegments));
  }
  return true;
}

}  // namespace icp

#endif  // ICP_UTIL_CANCELLATION_H_
