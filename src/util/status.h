// Minimal Status / StatusOr error-reporting types.
//
// The library does not use exceptions (Google C++ style). Operations that can
// fail for data-dependent reasons (bad query, width overflow, unknown column)
// return icp::Status or icp::StatusOr<T>.

#ifndef ICP_UTIL_STATUS_H_
#define ICP_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace icp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a human-readable name of a status code ("OK", "InvalidArgument"…).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result for operations that return no value.
/// [[nodiscard]]: silently dropping a Status is how persistence and parser
/// failures get lost — call sites must check, propagate, or explicitly
/// (void)-discard with a comment saying why.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Accessing the value of a non-OK result aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`
  // (mirrors absl::StatusOr ergonomics).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    ICP_CHECK(!std::get<Status>(rep_).ok());  // OK status carries no value.
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    ICP_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    ICP_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    ICP_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller.
#define ICP_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::icp::Status icp_status_tmp_ = (expr);    \
    if (!icp_status_tmp_.ok()) return icp_status_tmp_; \
  } while (0)

}  // namespace icp

#endif  // ICP_UTIL_STATUS_H_
