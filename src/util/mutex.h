// Annotated mutex wrapper for Clang thread-safety analysis (ICP014).
//
// std::mutex and std::lock_guard carry no thread-safety attributes, so
// -Wthread-safety cannot reason about them. Mutex wraps std::mutex as an
// ICP_CAPABILITY and MutexLock replaces std::lock_guard /
// std::unique_lock as an ICP_SCOPED_CAPABILITY. Mutex satisfies
// BasicLockable, so std::condition_variable_any waits on it directly.

#ifndef ICP_UTIL_MUTEX_H_
#define ICP_UTIL_MUTEX_H_

#include <mutex>

#include "util/thread_annotations.h"

namespace icp {

/// An annotated std::mutex. Same cost: every method forwards directly.
class ICP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ICP_ACQUIRE() { mu_.lock(); }
  void unlock() ICP_RELEASE() { mu_.unlock(); }
  bool try_lock() ICP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex with condition-variable support: Wait-style use
/// goes through std::condition_variable_any, which takes any
/// BasicLockable (MutexLock qualifies via lock()/unlock()).
class ICP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ICP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ICP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For std::condition_variable_any::wait(*this, ...): the cv unlocks
  /// around the block and relocks before returning, which the analysis
  /// cannot track — it sees the capability as held throughout, which is
  /// exactly the invariant the waiting code relies on.
  void lock() ICP_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() ICP_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace icp

#endif  // ICP_UTIL_MUTEX_H_
