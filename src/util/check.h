// Lightweight assertion macros used across the library.
//
// The project follows the Google C++ style guide: exceptions are not used.
// Invariant violations are programming errors and abort the process with a
// message; recoverable errors are reported through icp::Status.

#ifndef ICP_UTIL_CHECK_H_
#define ICP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace icp::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "ICP_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace icp::internal

// Always-on invariant check (kept in release builds: the cost is negligible
// outside of per-word inner loops, where ICP_DCHECK is used instead).
#define ICP_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::icp::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

#define ICP_CHECK_EQ(a, b) ICP_CHECK((a) == (b))
#define ICP_CHECK_NE(a, b) ICP_CHECK((a) != (b))
#define ICP_CHECK_LT(a, b) ICP_CHECK((a) < (b))
#define ICP_CHECK_LE(a, b) ICP_CHECK((a) <= (b))
#define ICP_CHECK_GT(a, b) ICP_CHECK((a) > (b))
#define ICP_CHECK_GE(a, b) ICP_CHECK((a) >= (b))

// Debug-only check for hot loops.
#ifndef NDEBUG
#define ICP_DCHECK(expr) ICP_CHECK(expr)
#else
#define ICP_DCHECK(expr) \
  do {                   \
  } while (0)
#endif

#endif  // ICP_UTIL_CHECK_H_
