// Word-level bit manipulation primitives shared by every layout and
// algorithm in the library.
//
// Terminology follows the paper (Feng & Lo, ICDE 2015) and BitWeaving
// (Li & Patel, SIGMOD 2013):
//   * a processor word is 64 bits (icp::Word);
//   * "slot j" of a word refers to the j-th value position counted from the
//     most significant end, so v_1 in the paper's figures is the MSB side;
//   * HBP packs values into fixed-width *fields* of `s = tau + 1` bits whose
//     top bit is the delimiter. Fields are packed from the MSB end and the
//     remaining `64 - m*s` low bits are zero padding.

#ifndef ICP_UTIL_BITS_H_
#define ICP_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "util/check.h"

namespace icp {

using Word = std::uint64_t;

/// Wide accumulator for SUM aggregates: n * (2^k - 1) can exceed 64 bits for
/// the paper's widest configurations (k up to 50, billions of tuples), so
/// sums are returned as 128-bit integers. (GCC/Clang extension; this library
/// targets those compilers.)
using UInt128 = unsigned __int128;

/// Lossy conversion helper for reporting.
inline double UInt128ToDouble(UInt128 v) {
  return static_cast<double>(static_cast<std::uint64_t>(v >> 64)) *
             18446744073709551616.0 +
         static_cast<double>(static_cast<std::uint64_t>(v));
}

inline constexpr int kWordBits = 64;

/// Number of 1-bits in `w` (the paper's POPCNT primitive).
inline constexpr int Popcount(Word w) { return std::popcount(w); }

/// Number of trailing zero bits; 64 when `w == 0`.
inline constexpr int CountTrailingZeros(Word w) { return std::countr_zero(w); }

/// Number of leading zero bits; 64 when `w == 0`.
inline constexpr int CountLeadingZeros(Word w) { return std::countl_zero(w); }

/// A word with the low `bits` bits set. `bits` must be in [0, 64].
inline constexpr Word LowMask(int bits) {
  ICP_DCHECK(bits >= 0 && bits <= kWordBits);
  return bits >= kWordBits ? ~Word{0} : ((Word{1} << bits) - 1);
}

/// A word with the high `bits` bits set. `bits` must be in [0, 64].
inline constexpr Word HighMask(int bits) {
  ICP_DCHECK(bits >= 0 && bits <= kWordBits);
  return bits == 0 ? Word{0} : ~Word{0} << (kWordBits - bits);
}

/// Minimum number of bits needed to represent `max_value` (>= 1 for 0).
inline constexpr int BitsFor(std::uint64_t max_value) {
  return max_value == 0 ? 1 : kWordBits - CountLeadingZeros(max_value);
}

/// Ceiling division for non-negative integers.
inline constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  ICP_DCHECK(b != 0);
  return (a + b - 1) / b;
}

// ---------------------------------------------------------------------------
// HBP field helpers. `s` is the field width in bits, 1 <= s <= 64.
// Field f (0-based) occupies bits [64 - (f+1)*s, 64 - f*s); the field's
// delimiter (top) bit is bit 63 - f*s.
// ---------------------------------------------------------------------------

/// Number of complete s-bit fields that fit in a 64-bit word.
inline constexpr int FieldsPerWord(int s) {
  ICP_DCHECK(s >= 1 && s <= kWordBits);
  return kWordBits / s;
}

/// Mask with the delimiter (top) bit of each field set:
/// the paper's pattern 1 0^tau 1 0^tau ... (tau = s - 1).
inline constexpr Word DelimiterMask(int s) {
  Word mask = 0;
  for (int f = 0; f < FieldsPerWord(s); ++f) {
    mask |= Word{1} << (kWordBits - 1 - f * s);
  }
  return mask;
}

/// Mask with the least significant bit of each field set.
inline constexpr Word FieldLsbMask(int s) {
  Word mask = 0;
  for (int f = 0; f < FieldsPerWord(s); ++f) {
    mask |= Word{1} << (kWordBits - (f + 1) * s);
  }
  return mask;
}

/// Mask with all non-delimiter (value) bits of each field set:
/// the paper's pattern 0 1^tau 0 1^tau ...
inline constexpr Word FieldValueMask(int s) {
  // Within each field delimiter >= lsb, so the subtraction never borrows
  // across field boundaries. For s == 1 there are no value bits (result 0).
  return DelimiterMask(s) - FieldLsbMask(s);
}

/// Broadcasts `value` (must fit in s bits) into every field of a word.
/// Used to pack predicate constants (the paper's word W_c).
inline constexpr Word RepeatField(Word value, int s) {
  ICP_DCHECK(s == kWordBits || value < (Word{1} << s));
  Word out = 0;
  for (int f = 0; f < FieldsPerWord(s); ++f) {
    out |= value << (kWordBits - (f + 1) * s);
  }
  return out;
}

/// A word with a 1 every `stride` bits starting at bit 0: bits 0, stride,
/// 2*stride, ..., (count-1)*stride. Used by the IN-WORD-SUM multiply step.
inline constexpr Word StridedOnes(int stride, int count) {
  ICP_DCHECK(stride >= 1);
  ICP_DCHECK(count >= 1 && (count - 1) * stride < kWordBits);
  Word out = 0;
  for (int i = 0; i < count; ++i) {
    out |= Word{1} << (i * stride);
  }
  return out;
}

}  // namespace icp

#endif  // ICP_UTIL_BITS_H_
