// Filter bit vector (the paper's F).
//
// A bit-parallel scan produces one result bit per tuple, grouped by storage
// segment: segment s of a column covers `values_per_segment` (vps) tuples and
// its result bits live in one 64-bit word, MSB-first (bit 63 holds the
// paper's v_1). For VBP vps == 64; for HBP vps == (tau+1) * floor(64/(tau+1))
// which can be < 64, in which case the low 64 - vps bits of every segment
// word are zero.
//
// Complex predicates are evaluated by combining the per-column vectors with
// And/Or/AndNot/Not (Section II-E).

#ifndef ICP_BITVECTOR_FILTER_BIT_VECTOR_H_
#define ICP_BITVECTOR_FILTER_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/check.h"

namespace icp {

class FilterBitVector {
 public:
  FilterBitVector() = default;

  /// Creates an all-zero vector covering `num_values` tuples with
  /// `values_per_segment` tuples per segment word (1..64).
  FilterBitVector(std::size_t num_values, int values_per_segment);

  std::size_t num_values() const { return num_values_; }
  int values_per_segment() const { return vps_; }
  std::size_t num_segments() const { return words_.size(); }

  Word* words() { return words_.data(); }
  const Word* words() const { return words_.data(); }

  Word SegmentWord(std::size_t seg) const { return words_[seg]; }
  void SetSegmentWord(std::size_t seg, Word w) {
    ICP_DCHECK((w & ~ValidMask(seg)) == 0);
    words_[seg] = w;
  }

  /// Mask of bit positions in segment `seg` that correspond to real tuples
  /// (handles both the HBP low-bit padding and the ragged final segment).
  Word ValidMask(std::size_t seg) const {
    const std::size_t begin = seg * static_cast<std::size_t>(vps_);
    const std::size_t live = num_values_ - begin;
    const int bits = live < static_cast<std::size_t>(vps_)
                         ? static_cast<int>(live)
                         : vps_;
    return HighMask(bits);
  }

  /// Tuple-level access (slow; for construction, tests and NBP baselines).
  bool GetBit(std::size_t i) const {
    ICP_DCHECK(i < num_values_);
    return (words_[i / vps_] >> BitIndex(i)) & 1;
  }
  void SetBit(std::size_t i, bool value) {
    ICP_DCHECK(i < num_values_);
    const Word mask = Word{1} << BitIndex(i);
    if (value) {
      words_[i / vps_] |= mask;
    } else {
      words_[i / vps_] &= ~mask;
    }
  }

  /// Sets every tuple's bit to 1 (a pass-all filter).
  void SetAll();
  /// Clears every bit.
  void ClearAll();

  /// Total number of tuples passing the filter (bit-parallel COUNT).
  std::uint64_t CountOnes() const;

  /// In-place logical combination. Shapes must match exactly.
  void And(const FilterBitVector& other);
  void Or(const FilterBitVector& other);
  void Xor(const FilterBitVector& other);
  /// this &= ~other.
  void AndNot(const FilterBitVector& other);
  /// Complements all tuple bits (padding stays zero).
  void Not();

  /// Re-packs the vector for a different segment width so that vectors from
  /// columns stored in different layouts can be combined.
  FilterBitVector Reshape(int new_values_per_segment) const;

  /// Test/debug helpers.
  std::vector<bool> ToBools() const;
  static FilterBitVector FromBools(const std::vector<bool>& bits,
                                   int values_per_segment);

  bool operator==(const FilterBitVector& other) const;

 private:
  int BitIndex(std::size_t i) const {
    return kWordBits - 1 - static_cast<int>(i % vps_);
  }

  std::size_t num_values_ = 0;
  int vps_ = kWordBits;
  WordBuffer words_;
};

}  // namespace icp

#endif  // ICP_BITVECTOR_FILTER_BIT_VECTOR_H_
