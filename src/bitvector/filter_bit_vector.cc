#include "bitvector/filter_bit_vector.h"

#include "obs/obs.h"
#include "simd/dispatch.h"

namespace icp {

FilterBitVector::FilterBitVector(std::size_t num_values,
                                 int values_per_segment)
    : num_values_(num_values), vps_(values_per_segment) {
  ICP_CHECK(vps_ >= 1 && vps_ <= kWordBits);
  words_ = WordBuffer(CeilDiv(num_values_, vps_));
}

void FilterBitVector::SetAll() {
  for (std::size_t s = 0; s < words_.size(); ++s) {
    words_[s] = ValidMask(s);
  }
}

void FilterBitVector::ClearAll() {
  for (std::size_t s = 0; s < words_.size(); ++s) {
    words_[s] = 0;
  }
}

std::uint64_t FilterBitVector::CountOnes() const {
  return kern::Ops().popcount_words(words_.data(), words_.size());
}

void FilterBitVector::And(const FilterBitVector& other) {
  ICP_CHECK_EQ(num_values_, other.num_values_);
  ICP_CHECK_EQ(vps_, other.vps_);
  ICP_OBS_ADD(FilterCombineWords, words_.size());
  kern::Ops().combine_words(words_.data(), other.words_.data(),
                            words_.size(),
                            static_cast<int>(kern::CombineOp::kAnd));
}

void FilterBitVector::Or(const FilterBitVector& other) {
  ICP_CHECK_EQ(num_values_, other.num_values_);
  ICP_CHECK_EQ(vps_, other.vps_);
  ICP_OBS_ADD(FilterCombineWords, words_.size());
  kern::Ops().combine_words(words_.data(), other.words_.data(),
                            words_.size(),
                            static_cast<int>(kern::CombineOp::kOr));
}

void FilterBitVector::Xor(const FilterBitVector& other) {
  ICP_CHECK_EQ(num_values_, other.num_values_);
  ICP_CHECK_EQ(vps_, other.vps_);
  ICP_OBS_ADD(FilterCombineWords, words_.size());
  kern::Ops().combine_words(words_.data(), other.words_.data(),
                            words_.size(),
                            static_cast<int>(kern::CombineOp::kXor));
}

void FilterBitVector::AndNot(const FilterBitVector& other) {
  ICP_CHECK_EQ(num_values_, other.num_values_);
  ICP_CHECK_EQ(vps_, other.vps_);
  ICP_OBS_ADD(FilterCombineWords, words_.size());
  kern::Ops().combine_words(words_.data(), other.words_.data(),
                            words_.size(),
                            static_cast<int>(kern::CombineOp::kAndNot));
}

void FilterBitVector::Not() {
  ICP_OBS_ADD(FilterCombineWords, words_.size());
  for (std::size_t s = 0; s < words_.size(); ++s) {
    words_[s] = ~words_[s] & ValidMask(s);
  }
}

FilterBitVector FilterBitVector::Reshape(int new_values_per_segment) const {
  if (new_values_per_segment == vps_) return *this;
  FilterBitVector out(num_values_, new_values_per_segment);
  // Stream the valid (top vps_) bits of each source word through a 128-bit
  // window, emitting one destination word whenever new_vps bits are
  // available — O(n / vps) shift/or work instead of per-bit access.
  const int new_vps = new_values_per_segment;
  UInt128 window = 0;  // pending bits, left-aligned at bit 127
  int pending = 0;
  std::size_t out_seg = 0;
  const std::size_t last = words_.size();
  for (std::size_t seg = 0; seg < last; ++seg) {
    const int live =
        seg + 1 < last
            ? vps_
            : static_cast<int>(num_values_ - seg * static_cast<std::size_t>(
                                                       vps_));
    window |= static_cast<UInt128>(words_[seg]) << (64 - pending);
    pending += live;
    while (pending >= new_vps) {
      const Word chunk =
          static_cast<Word>(window >> 64) & HighMask(new_vps);
      out.words_[out_seg++] = chunk;
      window <<= new_vps;
      pending -= new_vps;
    }
  }
  if (pending > 0) {
    out.words_[out_seg++] =
        static_cast<Word>(window >> 64) & HighMask(pending);
  }
  ICP_DCHECK(out_seg == out.words_.size());
  return out;
}

std::vector<bool> FilterBitVector::ToBools() const {
  std::vector<bool> bits(num_values_);
  for (std::size_t i = 0; i < num_values_; ++i) {
    bits[i] = GetBit(i);
  }
  return bits;
}

FilterBitVector FilterBitVector::FromBools(const std::vector<bool>& bits,
                                           int values_per_segment) {
  FilterBitVector out(bits.size(), values_per_segment);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out.SetBit(i, true);
  }
  return out;
}

bool FilterBitVector::operator==(const FilterBitVector& other) const {
  if (num_values_ != other.num_values_ || vps_ != other.vps_) return false;
  for (std::size_t s = 0; s < words_.size(); ++s) {
    if (words_[s] != other.words_[s]) return false;
  }
  return true;
}

}  // namespace icp
