#!/usr/bin/env python3
"""lint_all: one entry point for the repo's static checks.

Runs the regex invariant linter (tools/icp_lint.py, rules ICP001-ICP005)
and the semantic concurrency analyzer (tools/icp_analyze.py, rules
ICP010-ICP014) over the same root and merges their exit status. This is
what `cmake --build build --target lint` and the `lint_budget` ctest
invoke, so local builds and CI agree on what "lint-clean" means.

The combined run also enforces a wall-clock budget (default 60s): a
linter slow enough to get skipped is a linter that stops running, so a
budget regression fails loudly here instead of eroding silently.

Exit codes: 0 clean, 1 findings or budget exceeded, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))

STEPS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("icp_lint", ("icp_lint.py",)),
    ("icp_analyze", ("icp_analyze.py",)),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_all.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(TOOLS_DIR),
        help="repo root to lint (default: the checkout containing this "
        "script)",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=60.0,
        help="fail if the combined run exceeds this wall-clock budget "
        "(default: 60)",
    )
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"lint_all: no such directory: {root}", file=sys.stderr)
        return 2

    started = time.monotonic()
    failed: list[str] = []
    for name, script in STEPS:
        step_started = time.monotonic()
        proc = subprocess.run(
            [sys.executable, os.path.join(TOOLS_DIR, *script), "--root", root],
            check=False,
        )
        elapsed = time.monotonic() - step_started
        print(
            f"lint_all: {name} exit={proc.returncode} ({elapsed:.2f}s)",
            file=sys.stderr,
        )
        if proc.returncode != 0:
            failed.append(name)

    total = time.monotonic() - started
    if total > args.budget_seconds:
        print(
            f"lint_all: runtime budget exceeded: {total:.2f}s > "
            f"{args.budget_seconds:.0f}s",
            file=sys.stderr,
        )
        return 1
    if failed:
        print(f"lint_all: FAILED ({', '.join(failed)})", file=sys.stderr)
        return 1
    print(f"lint_all: OK ({total:.2f}s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
