#!/usr/bin/env python3
"""icp_analyze: semantic concurrency analyzer (rules ICP010-ICP014).

Where tools/icp_lint.py pattern-matches lines, this tool reasons about
program structure. It has two interchangeable frontends feeding one
rule engine:

* ``libclang`` — real Clang ASTs driven by build/compile_commands.json
  (generate with ``cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON``).
  This is the mode CI enforces with --require-libclang: atomic member
  calls are resolved through the callee's class, so aliased receivers
  and implicit operator forms (``flag = true`` on a ``std::atomic``)
  cannot hide from the rule.
* ``structural`` — a built-in C++ lexer (comment/string stripping with
  exact offsets) plus bracket matching. It resolves atomic receivers by
  name against every ``std::atomic`` declarator in src/, so the same
  rules run, slightly less precisely, on toolchains without libclang
  (implicit operator forms on aliased receivers are the known gap).

Rules:

  ICP010 atomics-ordering discipline
      Every std::atomic load/store/RMW passes an explicit memory_order
      (compare-exchange passes both success and failure orders). Every
      relaxed order carries an ``// order: relaxed — <why>``
      justification on or directly above the statement. Every
      release/acquire/acq_rel order carries an
      ``// order: <order>(<pair-id>) — <why>`` comment whose pair id
      names a row of the pairing registry in docs/concurrency.md; the
      registry is synced both ways (an undocumented pair id fails, a
      stale table row fails, and a documented pair with sites on only
      one side fails). For compare-exchange, the success order requires
      the annotation; a relaxed failure order additionally requires the
      relaxed justification (a non-relaxed failure order is subsumed by
      the success-order pairing).
  ICP011 cancellation coverage
      Every loop whose header mentions morsels/segments/partitions/
      shards in src/sched, src/groupby, src/parallel, or src/scan must
      reach a cancellation check in its body or header: directly
      (ShouldStop / IsCancelRequested), through a helper annotated
      ``// cancellation: checks — <why>``, or via an explicit
      ``// cancellation: exempt — <why>`` comment directly above the
      loop.
  ICP012 kernel purity
      The ICP001-sanctioned SIMD translation units (minus
      src/simd/dispatch.cc, which owns stderr/getenv on purpose) must
      not allocate, take locks, throw, or perform I/O.
  ICP013 counter discipline
      ICP_OBS_ADD / ICP_OBS_INCREMENT must not execute inside an
      innermost loop (batch the count and hoist the macro) unless
      annotated ``// obs: loop-ok — <why>``.
  ICP014 thread-safety annotations
      In src/sched/admission.* and src/parallel/thread_pool.*, every
      mutable member of a mutex-holding class carries ICP_GUARDED_BY
      (or a ``// not-guarded: <why>`` comment), and every *Locked
      helper declares ICP_REQUIRES somewhere in the file set. Clang
      proves the annotations (-Werror=thread-safety in clang builds);
      this rule keeps them present under every compiler.

Usage:
    tools/icp_analyze.py [--root DIR]
                         [--frontend auto|libclang|structural]
                         [--compile-commands PATH]
                         [--require-libclang]

Findings print as ``path:line: [rule] message`` and are stable-sorted.
Exit codes: 0 clean, 1 findings, 2 bad invocation or (with
--require-libclang) missing libclang frontend.
"""

from __future__ import annotations

import argparse
import ctypes.util
import importlib
import json
import os
import re
import sys
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

SRC_DIRS = ("src",)
SUFFIXES = (".cc", ".h", ".cpp", ".hpp")

CANCEL_SCOPE_DIRS = (
    "src/sched/",
    "src/groupby/",
    "src/parallel/",
    "src/scan/",
)

# ICP001's sanctioned intrinsics TUs minus dispatch.cc: the dispatcher
# deliberately touches getenv/stderr for tier overrides and logging.
PURITY_TUS = frozenset(
    {
        "src/simd/agg_kernels.cc",
        "src/simd/scan_kernels.cc",
        "src/simd/vbp_pospopcnt.cc",
        "src/simd/word256.h",
    }
)

THREAD_SAFETY_FILES = (
    "src/sched/admission.h",
    "src/sched/admission.cc",
    "src/parallel/thread_pool.h",
    "src/parallel/thread_pool.cc",
)

CONCURRENCY_DOC = "docs/concurrency.md"

ATOMIC_METHODS = frozenset(
    {
        "load",
        "store",
        "exchange",
        "fetch_add",
        "fetch_sub",
        "fetch_and",
        "fetch_or",
        "fetch_xor",
        "test_and_set",
        "clear",
    }
)
CAS_METHODS = frozenset(
    {"compare_exchange_weak", "compare_exchange_strong"}
)

ORDER_TOKEN_RE = re.compile(
    r"\bmemory_order(?:_|::)"
    r"(relaxed|consume|acquire|release|acq_rel|seq_cst)\b"
)
ORDER_ANNOT_RE = re.compile(
    r"\border:\s*(relaxed|consume|acquire|release|acq_rel|seq_cst)\b"
    r"\s*(?:\(([A-Za-z0-9_-]+)\))?\s*(?:[—–-]|--)?\s*(.*)"
)
CANCEL_CHECKS_RE = re.compile(r"\bcancellation:\s*checks\b")
CANCEL_EXEMPT_RE = re.compile(r"\bcancellation:\s*exempt\b")
OBS_LOOP_OK_RE = re.compile(r"\bobs:\s*loop-ok\b")
NOT_GUARDED_RE = re.compile(r"\bnot-guarded:\s*\S")

DRAIN_WORD_RE = re.compile(r"(?i)(?:\b|_)(morsel|seg|partition|shard)")
LOOP_HEAD_RE = re.compile(r"\b(for|while)\s*\(")
OBS_MACRO_RE = re.compile(r"\bICP_OBS_(ADD|INCREMENT)\s*\(")
ATOMIC_DECL_RE = re.compile(r"\bstd::atomic(?:_flag)?\b")
ATOMIC_OP_RE = re.compile(
    r"(?:\.|->)\s*("
    r"load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|test_and_set|clear|"
    r"compare_exchange_weak|compare_exchange_strong"
    r")\s*\("
)
LOCKED_HELPER_RE = re.compile(r"\b(\w+Locked)\s*\(")
PAIR_ID_ROW_RE = re.compile(r"^\|\s*`([A-Za-z0-9_-]+)`\s*\|")

# Names that count as a cancellation check without an annotation; the
# annotated-helper registry (``// cancellation: checks``) extends this.
BUILTIN_CHECKERS = frozenset(
    {"ShouldStop", "IsCancelRequested", "ForEachCancellableBatch"}
)

# Words that the atomic-declarator harvest must never mistake for a
# variable name.
NOT_DECLARATOR_NAMES = frozenset(
    {"const", "constexpr", "static", "mutable", "volatile", "operator"}
)


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Loop:
    header_line: int
    header: str
    header_start: int
    body_begin: int
    body_end: int
    innermost: bool = False


@dataclass
class AtomicOp:
    line: int
    end_line: int
    offset: int
    receiver: str
    method: str
    orders: tuple[str, ...]


@dataclass
class OrderAnnotation:
    line: int
    order: str
    pair: str
    why: str


@dataclass
class FileModel:
    relpath: str
    text: str
    code: str
    comments: dict[int, str]
    lines: list[str]
    code_lines: list[str]
    loops: list[Loop] = field(default_factory=list)
    atomic_ops: list[AtomicOp] = field(default_factory=list)
    impurities: list[tuple[int, str]] = field(default_factory=list)


# --------------------------------------------------------------------
# Lexing and geometry
# --------------------------------------------------------------------


def _is_raw_string(text: str, quote: int) -> bool:
    if quote == 0 or text[quote - 1] != "R":
        return False
    if quote == 1:
        return True
    prev = text[quote - 2]
    return not (prev.isalnum() or prev == "_") or prev in "8uUL"


def lex(text: str) -> tuple[str, dict[int, str]]:
    """Blank comments and string/char literals, preserving offsets.

    Returns the blanked code plus a map of line number -> comment text
    (pieces on the same line joined with a space).
    """
    out: list[str] = []
    comments: dict[int, list[str]] = {}
    i = 0
    n = len(text)
    line = 1

    def blank(segment: str) -> str:
        return "".join(c if c == "\n" else " " for c in segment)

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            out.append("\n")
            line += 1
            i += 1
        elif ch == "/" and nxt == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            piece = text[i + 2 : j].strip()
            if piece:
                comments.setdefault(line, []).append(piece)
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            segment = text[i:j]
            for k, part in enumerate(segment.split("\n")):
                piece = part.strip()
                piece = piece.removeprefix("/*").removesuffix("*/")
                piece = piece.strip().lstrip("*").strip()
                if piece:
                    comments.setdefault(line + k, []).append(piece)
            out.append(blank(segment))
            line += segment.count("\n")
            i = j
        elif ch == '"' and _is_raw_string(text, i):
            delim_end = text.find("(", i + 1)
            if delim_end < 0:
                out.append(" ")
                i += 1
                continue
            delim = text[i + 1 : delim_end]
            closer = ")" + delim + '"'
            j = text.find(closer, delim_end + 1)
            j = n if j < 0 else j + len(closer)
            segment = text[i:j]
            out.append(blank(segment))
            line += segment.count("\n")
            i = j
        elif ch == '"' or ch == "'":
            if ch == "'" and i > 0 and (
                text[i - 1].isalnum() or text[i - 1] == "_"
            ):
                # Digit separator (1'000'000) or suffix position: not a
                # character literal.
                out.append(" ")
                i += 1
                continue
            j = i + 1
            while j < n and text[j] not in (ch, "\n"):
                j += 2 if text[j] == "\\" else 1
            if j < n and text[j] == ch:
                j += 1
            out.append(" " * (j - i))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out), {
        ln: " ".join(parts) for ln, parts in comments.items()
    }


def line_of(code: str, offset: int) -> int:
    return code.count("\n", 0, offset) + 1


def match_delim(code: str, start: int, open_ch: str, close_ch: str) -> int:
    depth = 0
    for i in range(start, len(code)):
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def statement_start_line(model: FileModel, offset: int) -> int:
    j = offset - 1
    while j >= 0 and model.code[j] not in ";{}":
        j -= 1
    k = j + 1
    while k < offset and model.code[k] in " \t\r\n":
        k += 1
    return line_of(model.code, k)


def comment_block_above(model: FileModel, line: int) -> list[tuple[int, str]]:
    """Comments on the contiguous comment-only lines directly above."""
    out: list[tuple[int, str]] = []
    ln = line - 1
    while ln >= 1:
        if model.code_lines[ln - 1].strip():
            break
        if ln in model.comments:
            out.append((ln, model.comments[ln]))
        elif not model.lines[ln - 1].strip():
            break
        ln -= 1
    out.reverse()
    return out


# --------------------------------------------------------------------
# Structural extraction
# --------------------------------------------------------------------


def extract_loops(code: str) -> list[Loop]:
    loops: list[Loop] = []
    for m in LOOP_HEAD_RE.finditer(code):
        open_paren = m.end() - 1
        close_paren = match_delim(code, open_paren, "(", ")")
        if close_paren < 0:
            continue
        header = code[m.start() : close_paren + 1]
        i = close_paren + 1
        while i < len(code) and code[i] in " \t\r\n":
            i += 1
        if i < len(code) and code[i] == "{":
            body_end = match_delim(code, i, "{", "}")
            if body_end < 0:
                body_end = len(code) - 1
        else:
            body_end = code.find(";", i)
            if body_end < 0:
                body_end = len(code) - 1
        loops.append(
            Loop(
                header_line=line_of(code, m.start()),
                header=header,
                header_start=m.start(),
                body_begin=i,
                body_end=body_end,
            )
        )
    for loop in loops:
        loop.innermost = not any(
            other is not loop
            and loop.body_begin < other.header_start < loop.body_end
            for other in loops
        )
    return loops


def harvest_atomic_names(code: str) -> set[str]:
    names: set[str] = set()
    for m in ATOMIC_DECL_RE.finditer(code):
        i = m.end()
        while i < len(code) and code[i] in " \t\r\n":
            i += 1
        if i < len(code) and code[i] == "<":
            i = match_delim(code, i, "<", ">")
            if i < 0:
                continue
            i += 1
        while i < len(code) and code[i] in " \t\r\n*&>":
            i += 1
        nm = re.match(r"[A-Za-z_]\w*", code[i:])
        if nm and nm.group(0) not in NOT_DECLARATOR_NAMES:
            names.add(nm.group(0))
    return names


def _receiver_before(code: str, dot: int) -> str:
    """Identifier of the receiver expression ending just before `dot`."""
    j = dot
    while j > 0 and code[j - 1] in " \t\r\n":
        j -= 1
    if j > 0 and code[j - 1] == "]":
        depth = 0
        while j > 0:
            j -= 1
            if code[j] == "]":
                depth += 1
            elif code[j] == "[":
                depth -= 1
                if depth == 0:
                    break
    end = j
    while j > 0 and (code[j - 1].isalnum() or code[j - 1] == "_"):
        j -= 1
    return code[j:end]


def extract_atomic_ops(
    code: str, atomic_names: set[str]
) -> list[AtomicOp]:
    ops: list[AtomicOp] = []
    for m in ATOMIC_OP_RE.finditer(code):
        receiver = _receiver_before(code, m.start())
        if receiver not in atomic_names:
            continue
        method = m.group(1)
        open_paren = m.end() - 1
        close_paren = match_delim(code, open_paren, "(", ")")
        if close_paren < 0:
            close_paren = len(code) - 1
        args = code[open_paren : close_paren + 1]
        orders = tuple(g for g in ORDER_TOKEN_RE.findall(args))
        ops.append(
            AtomicOp(
                line=line_of(code, m.start()),
                end_line=line_of(code, close_paren),
                offset=m.start(),
                receiver=receiver,
                method=method,
                orders=orders,
            )
        )
    return ops


def extract_impurities(code: str) -> list[tuple[int, str]]:
    banned: tuple[tuple[str, str], ...] = (
        (r"\bnew\b", "allocation ('new')"),
        (r"\bdelete\b", "deallocation ('delete')"),
        (r"\b(?:std::)?(?:malloc|calloc|realloc)\s*\(", "allocation"),
        (r"(?<![\w.])free\s*\(", "deallocation ('free')"),
        (r"\bthrow\b", "exception ('throw')"),
        (
            r"\bstd::(?:vector|deque|list|map|set|unordered_\w+|"
            r"basic_string|string)\b",
            "allocating container",
        ),
        (
            r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
            r"lock_guard|unique_lock|scoped_lock|condition_variable\w*)"
            r"\b",
            "lock type",
        ),
        (r"\.\s*(?:lock|unlock|try_lock)\s*\(", "lock call"),
        (
            r"\b(?:printf|fprintf|sprintf|snprintf|puts|putchar|fopen|"
            r"fread|fwrite|fclose|fflush|getenv|system)\s*\(",
            "I/O or environment call",
        ),
        (
            r"\bstd::(?:cout|cerr|clog|ofstream|ifstream|fstream)\b",
            "stream I/O",
        ),
    )
    out: list[tuple[int, str]] = []
    for pattern, why in banned:
        for m in re.finditer(pattern, code):
            if "delete" in why:
                j = m.start() - 1
                while j >= 0 and code[j] in " \t\r\n":
                    j -= 1
                if j >= 0 and code[j] == "=":
                    continue  # `= delete` declaration, not deallocation
            out.append((line_of(code, m.start()), why))
    return out


def build_model(root: str, relpath: str) -> FileModel:
    text = read_text(os.path.join(root, relpath))
    code, comments = lex(text)
    model = FileModel(
        relpath=relpath,
        text=text,
        code=code,
        comments=comments,
        lines=text.split("\n"),
        code_lines=code.split("\n"),
    )
    model.loops = extract_loops(code)
    return model


# --------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------


def load_cindex() -> Any:
    try:
        cindex: Any = importlib.import_module("clang.cindex")
    except ImportError:
        return None
    try:
        if not cindex.Config.library_file:
            for name in ("clang-14", "clang-15", "clang-16", "clang"):
                path = ctypes.util.find_library(name)
                if path:
                    cindex.Config.set_library_file(path)
                    break
    except Exception:  # noqa: BLE001 - config probing is best-effort
        pass
    try:
        cindex.Index.create()
    except Exception:  # noqa: BLE001 - no loadable libclang
        return None
    return cindex


def load_compile_commands(path: str) -> dict[str, tuple[str, list[str]]]:
    """Map absolute source path -> (directory, clang argument list)."""
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    db: dict[str, tuple[str, list[str]]] = {}
    for entry in entries:
        directory = entry["directory"]
        file_path = entry["file"]
        if not os.path.isabs(file_path):
            file_path = os.path.join(directory, file_path)
        raw: list[str]
        if "arguments" in entry:
            raw = list(entry["arguments"])
        else:
            raw = entry["command"].split()
        args: list[str] = []
        skip_next = False
        for token in raw[1:]:
            if skip_next:
                skip_next = False
                continue
            if token in ("-o", "-c"):
                skip_next = token == "-o"
                continue
            if os.path.normpath(os.path.join(directory, token)) == (
                os.path.normpath(file_path)
            ):
                continue
            args.append(token)
        db[os.path.normpath(file_path)] = (directory, args)
    return db


def compile_args_for(
    db: dict[str, tuple[str, list[str]]], root: str, relpath: str
) -> list[str]:
    abspath = os.path.normpath(os.path.join(root, relpath))
    if abspath in db:
        return db[abspath][1]
    # Headers: borrow flags from a TU in the same directory, else any TU.
    directory = os.path.dirname(abspath)
    for file_path, (_, args) in sorted(db.items()):
        if os.path.dirname(file_path) == directory:
            return ["-x", "c++", *args]
    for _, (_, args) in sorted(db.items()):
        return ["-x", "c++", *args]
    return ["-x", "c++", "-std=c++20"]


def _cursor_in_file(cursor: Any, abspath: str) -> bool:
    loc = cursor.location
    return bool(
        loc.file is not None
        and os.path.normpath(loc.file.name) == abspath
    )


def _walk(tu: Any) -> Iterator[Any]:
    stack = [tu.cursor]
    while stack:
        cursor = stack.pop()
        yield cursor
        stack.extend(cursor.get_children())


def _arg_orders(tu: Any, call: Any) -> tuple[str, ...]:
    orders: list[str] = []
    for arg in call.get_arguments():
        spelling = " ".join(
            t.spelling for t in tu.get_tokens(extent=arg.extent)
        )
        orders.extend(ORDER_TOKEN_RE.findall(spelling))
    return tuple(orders)


def _is_atomic_member(cursor: Any) -> bool:
    ref = cursor.referenced
    if ref is None:
        return False
    parent = ref.semantic_parent
    return bool(parent is not None and "atomic" in parent.spelling)


def libclang_atomic_ops(
    cindex: Any, tu: Any, abspath: str, model: FileModel
) -> tuple[list[AtomicOp], list[Finding]]:
    """Atomic ops via the AST, located back into the lexed text."""
    ops: list[AtomicOp] = []
    extra: list[Finding] = []
    kind_call = cindex.CursorKind.CALL_EXPR
    for cursor in _walk(tu):
        if cursor.kind != kind_call:
            continue
        if not _cursor_in_file(cursor, abspath):
            continue
        name = cursor.spelling
        if name in ATOMIC_METHODS or name in CAS_METHODS:
            if not _is_atomic_member(cursor):
                continue
            ops.append(
                _locate_op(model, cursor.location.line, name, cursor, tu)
            )
        elif name.startswith("operator") and _is_atomic_member(cursor):
            extra.append(
                Finding(
                    model.relpath,
                    cursor.location.line,
                    "ICP010",
                    f"implicit atomic operation '{name}' (defaults to "
                    "seq_cst); use load/store/RMW with an explicit "
                    "memory_order",
                )
            )
    return ops, extra


def _locate_op(
    model: FileModel, ast_line: int, method: str, cursor: Any, tu: Any
) -> AtomicOp:
    orders = _arg_orders(tu, cursor)
    line_start = 0
    for _ in range(ast_line - 1):
        line_start = model.code.find("\n", line_start) + 1
    offset = model.code.find(method, line_start)
    if offset < 0:
        offset = line_start
    end_line = ast_line
    open_paren = model.code.find("(", offset)
    if open_paren >= 0:
        close_paren = match_delim(model.code, open_paren, "(", ")")
        if close_paren >= 0:
            end_line = line_of(model.code, close_paren)
    return AtomicOp(
        line=ast_line,
        end_line=end_line,
        offset=offset,
        receiver=_receiver_before(model.code, offset),
        method=method,
        orders=orders,
    )


def libclang_impurities(
    cindex: Any, tu: Any, abspath: str
) -> list[tuple[int, str]]:
    out: list[tuple[int, str]] = []
    kinds = cindex.CursorKind
    banned_calls = {
        "malloc",
        "calloc",
        "realloc",
        "free",
        "printf",
        "fprintf",
        "sprintf",
        "snprintf",
        "puts",
        "putchar",
        "fopen",
        "fread",
        "fwrite",
        "fclose",
        "fflush",
        "getenv",
        "system",
    }
    banned_type_parts = (
        "vector<",
        "basic_string",
        "deque<",
        "map<",
        "mutex",
        "unordered_",
    )
    for cursor in _walk(tu):
        if not _cursor_in_file(cursor, abspath):
            continue
        if cursor.kind == kinds.CXX_NEW_EXPR:
            out.append((cursor.location.line, "allocation ('new')"))
        elif cursor.kind == kinds.CXX_DELETE_EXPR:
            out.append((cursor.location.line, "deallocation ('delete')"))
        elif cursor.kind == kinds.CXX_THROW_EXPR:
            out.append((cursor.location.line, "exception ('throw')"))
        elif cursor.kind == kinds.CALL_EXPR:
            name = cursor.spelling
            ref = cursor.referenced
            parent = ref.semantic_parent if ref is not None else None
            parent_name = parent.spelling if parent is not None else ""
            if name in banned_calls:
                out.append(
                    (cursor.location.line, f"banned call '{name}'")
                )
            elif name in ("lock", "unlock", "try_lock") and (
                "mutex" in parent_name.lower()
            ):
                out.append((cursor.location.line, "lock call"))
        elif cursor.kind in (kinds.VAR_DECL, kinds.FIELD_DECL):
            type_name = cursor.type.spelling
            if any(part in type_name for part in banned_type_parts):
                out.append(
                    (
                        cursor.location.line,
                        f"allocating/locking type '{type_name}'",
                    )
                )
    return out


# --------------------------------------------------------------------
# Annotation registries
# --------------------------------------------------------------------


def harvest_checker_names(models: list[FileModel]) -> set[str]:
    """Helper functions annotated `// cancellation: checks — <why>`."""
    names: set[str] = set(BUILTIN_CHECKERS)
    for model in models:
        for ln, comment in sorted(model.comments.items()):
            if not CANCEL_CHECKS_RE.search(comment):
                continue
            for probe in range(ln + 1, min(ln + 5, len(model.lines) + 1)):
                code_line = model.code_lines[probe - 1]
                m = re.search(r"\b([A-Za-z_]\w*)\s*\(", code_line)
                if m:
                    names.add(m.group(1))
                    break
    return names


def order_annotations_for(model: FileModel, op: AtomicOp) -> list[
    OrderAnnotation
]:
    stmt_line = statement_start_line(model, op.offset)
    candidate_lines = [ln for ln, _ in comment_block_above(model, stmt_line)]
    candidate_lines += [
        ln
        for ln in range(stmt_line, op.end_line + 1)
        if ln in model.comments
    ]
    annotations: list[OrderAnnotation] = []
    for ln in candidate_lines:
        m = ORDER_ANNOT_RE.search(model.comments[ln])
        if m:
            annotations.append(
                OrderAnnotation(
                    line=ln,
                    order=m.group(1),
                    pair=m.group(2) or "",
                    why=(m.group(3) or "").strip(),
                )
            )
    return annotations


# --------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------


def required_orders(op: AtomicOp) -> list[str]:
    """Distinct orders of an op that each need an annotation."""
    if op.method in CAS_METHODS and len(op.orders) == 2:
        success, failure = op.orders
        needed = [success]
        if failure == "relaxed" and success != "relaxed":
            needed.append(failure)
        return needed
    return sorted(set(op.orders))


def check_icp010(
    models: list[FileModel], root: str, findings: list[Finding]
) -> None:
    pair_sides: dict[str, dict[str, list[tuple[str, int]]]] = {}

    def record_pair(pair: str, side: str, model: FileModel, line: int) -> None:
        sides = pair_sides.setdefault(pair, {"release": [], "acquire": []})
        sides[side].append((model.relpath, line))

    for model in models:
        for op in model.atomic_ops:
            expected = 2 if op.method in CAS_METHODS else 1
            if len(op.orders) < expected:
                findings.append(
                    Finding(
                        model.relpath,
                        op.line,
                        "ICP010",
                        f"'{op.receiver}.{op.method}' passes "
                        f"{len(op.orders)} explicit memory_order "
                        f"argument(s); expected {expected} (implicit "
                        "seq_cst is banned)",
                    )
                )
                continue
            annotations = order_annotations_for(model, op)
            for order in required_orders(op):
                match = next(
                    (a for a in annotations if a.order == order), None
                )
                if match is None:
                    suffix = (
                        "(<pair-id>)"
                        if order in ("acquire", "release", "acq_rel")
                        else ""
                    )
                    findings.append(
                        Finding(
                            model.relpath,
                            op.line,
                            "ICP010",
                            f"memory_order_{order} on "
                            f"'{op.receiver}.{op.method}' lacks an "
                            f"'// order: {order}{suffix} — <why>' "
                            "annotation on or above the statement",
                        )
                    )
                    continue
                if not match.why:
                    findings.append(
                        Finding(
                            model.relpath,
                            match.line,
                            "ICP010",
                            f"order annotation '{order}' is missing its "
                            "justification ('— <why>')",
                        )
                    )
                if order in ("acquire", "release", "acq_rel"):
                    if not match.pair:
                        findings.append(
                            Finding(
                                model.relpath,
                                match.line,
                                "ICP010",
                                f"order annotation '{order}' must name "
                                "its pairing: "
                                f"'// order: {order}(<pair-id>) — <why>' "
                                f"(registry: {CONCURRENCY_DOC})",
                            )
                        )
                    else:
                        if order in ("release", "acq_rel"):
                            record_pair(
                                match.pair, "release", model, op.line
                            )
                        if order in ("acquire", "acq_rel"):
                            record_pair(
                                match.pair, "acquire", model, op.line
                            )

    doc_path = os.path.join(root, CONCURRENCY_DOC)
    doc_pairs: dict[str, int] = {}
    if os.path.isfile(doc_path):
        for ln, doc_line in enumerate(
            read_text(doc_path).split("\n"), start=1
        ):
            m = PAIR_ID_ROW_RE.match(doc_line.strip())
            if m and m.group(1).lower() != "pair id":
                doc_pairs[m.group(1)] = ln
    else:
        findings.append(
            Finding(
                CONCURRENCY_DOC,
                1,
                "ICP010",
                "pairing registry document is missing (release/acquire "
                "annotations have nowhere to resolve)",
            )
        )

    for pair, sides in sorted(pair_sides.items()):
        first = (sides["release"] + sides["acquire"])[0]
        if pair not in doc_pairs:
            findings.append(
                Finding(
                    first[0],
                    first[1],
                    "ICP010",
                    f"pair id '{pair}' is not documented in "
                    f"{CONCURRENCY_DOC} (add a registry row)",
                )
            )
            continue
        for side in ("release", "acquire"):
            if not sides[side]:
                findings.append(
                    Finding(
                        first[0],
                        first[1],
                        "ICP010",
                        f"pair id '{pair}' has no {side}-side site in "
                        "code; a one-sided pairing cannot synchronize",
                    )
                )
    for pair, ln in sorted(doc_pairs.items()):
        if pair not in pair_sides:
            findings.append(
                Finding(
                    CONCURRENCY_DOC,
                    ln,
                    "ICP010",
                    f"registry row '{pair}' has no annotated code site "
                    "(stale row: delete it or annotate the sites)",
                )
            )


def check_icp011(
    models: list[FileModel],
    checker_names: set[str],
    findings: list[Finding],
) -> None:
    checker_re = re.compile(
        r"\b(?:"
        + "|".join(re.escape(n) for n in sorted(checker_names))
        + r")\s*\("
    )
    for model in models:
        if not model.relpath.startswith(CANCEL_SCOPE_DIRS):
            continue
        for loop in model.loops:
            word = DRAIN_WORD_RE.search(loop.header)
            if word is None:
                continue
            body = model.code[loop.body_begin : loop.body_end + 1]
            if checker_re.search(body) or checker_re.search(loop.header):
                continue
            block = comment_block_above(model, loop.header_line)
            if any(CANCEL_EXEMPT_RE.search(c) for _, c in block):
                continue
            findings.append(
                Finding(
                    model.relpath,
                    loop.header_line,
                    "ICP011",
                    f"loop over '{word.group(1)}' never reaches a "
                    "cancellation check: call ShouldStop()/an annotated "
                    "'// cancellation: checks' helper in the body, or "
                    "justify with '// cancellation: exempt — <why>' "
                    "directly above the loop",
                )
            )


def check_icp012(
    models: list[FileModel], findings: list[Finding]
) -> None:
    for model in models:
        if model.relpath not in PURITY_TUS:
            continue
        for line, why in model.impurities:
            findings.append(
                Finding(
                    model.relpath,
                    line,
                    "ICP012",
                    f"kernel TU is impure: {why} (sanctioned SIMD TUs "
                    "must not allocate, lock, throw, or do I/O)",
                )
            )


def check_icp013(
    models: list[FileModel], findings: list[Finding]
) -> None:
    for model in models:
        if model.relpath == "src/obs/obs.h":
            continue  # the macro definitions themselves
        for m in OBS_MACRO_RE.finditer(model.code):
            line = line_of(model.code, m.start())
            if model.lines[line - 1].lstrip().startswith("#"):
                continue
            containing = [
                loop
                for loop in model.loops
                if loop.body_begin < m.start() < loop.body_end
            ]
            if not containing:
                continue
            deepest = max(containing, key=lambda x: x.body_begin)
            if not deepest.innermost:
                continue
            stmt_line = statement_start_line(model, m.start())
            block = comment_block_above(model, stmt_line)
            annotated = any(
                OBS_LOOP_OK_RE.search(c) for _, c in block
            ) or (
                line in model.comments
                and OBS_LOOP_OK_RE.search(model.comments[line])
            )
            if annotated:
                continue
            findings.append(
                Finding(
                    model.relpath,
                    line,
                    "ICP013",
                    f"ICP_OBS_{m.group(1)} inside an innermost loop: "
                    "batch the count and hoist the macro, or justify "
                    "with '// obs: loop-ok — <why>'",
                )
            )


MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+)*"
    r"[A-Za-z_][\w:<>,\s\*&\(\)]*?[\s\*&>]"
    r"([A-Za-z_]\w*_)\s*"
    r"(?:ICP_(?:PT_)?GUARDED_BY\s*\(|=(?!=)|\{|;|\[)"
)
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:icp::)?(?:Mutex|std::mutex)\s+\w+\s*;"
)
CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+(?:ICP_\w+\s*(?:\([^)]*\))?\s*)*"
    r"([A-Za-z_]\w*)[^;{\(\)]*\{"
)
EXEMPT_TYPE_RE = re.compile(
    r"std::atomic|atomic_flag|\bMutex\b|std::mutex|condition_variable"
)


def _line_depths(model: FileModel, body_begin: int, body_end: int) -> dict[
    int, int
]:
    """Brace depth at the start of each line inside a class body."""
    depths: dict[int, int] = {}
    depth = 1
    line = line_of(model.code, body_begin)
    depths.setdefault(line, depth)
    for i in range(body_begin + 1, body_end):
        c = model.code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
        elif c == "\n":
            line += 1
            depths[line] = depth
    return depths


def check_icp014(
    models: list[FileModel], findings: list[Finding]
) -> None:
    scope = [m for m in models if m.relpath in THREAD_SAFETY_FILES]
    for model in scope:
        for cm in CLASS_HEAD_RE.finditer(model.code):
            body_begin = cm.end() - 1
            body_end = match_delim(model.code, body_begin, "{", "}")
            if body_end < 0:
                continue
            depths = _line_depths(model, body_begin, body_end)
            member_lines = [
                ln for ln, d in sorted(depths.items()) if d == 1
            ]
            has_mutex = any(
                MUTEX_MEMBER_RE.match(model.code_lines[ln - 1])
                for ln in member_lines
                if ln - 1 < len(model.code_lines)
            )
            if not has_mutex:
                continue
            for ln in member_lines:
                if ln - 1 >= len(model.code_lines):
                    continue
                code_line = model.code_lines[ln - 1]
                dm = MEMBER_DECL_RE.match(code_line)
                if dm is None:
                    continue
                member = dm.group(1)
                if "ICP_GUARDED_BY" in code_line or (
                    "ICP_PT_GUARDED_BY" in code_line
                ):
                    continue
                block = comment_block_above(model, ln)
                trailing = model.comments.get(ln, "")
                if any(
                    NOT_GUARDED_RE.search(c) for _, c in block
                ) or NOT_GUARDED_RE.search(trailing):
                    continue
                if EXEMPT_TYPE_RE.search(code_line):
                    continue
                if "&" in code_line[: dm.start(1)]:
                    continue  # reference member: binding is immutable
                if re.match(r"^\s*(?:static|constexpr)\b", code_line):
                    continue
                if re.match(
                    r"^\s*(?:mutable\s+)?const\b", code_line
                ) and "*" not in code_line:
                    continue
                findings.append(
                    Finding(
                        model.relpath,
                        ln,
                        "ICP014",
                        f"member '{member}' of a mutex-holding class "
                        "has no ICP_GUARDED_BY annotation (or "
                        "'// not-guarded: <why>' justification)",
                    )
                )

    # *Locked helpers must declare ICP_REQUIRES on at least one
    # declaration across the file set (definitions don't repeat it).
    sites: dict[str, list[tuple[str, int, bool]]] = {}
    for model in scope:
        for m in LOCKED_HELPER_RE.finditer(model.code):
            line = line_of(model.code, m.start())
            stop = min(line + 1, len(model.code_lines))
            window = "\n".join(model.code_lines[line - 1 : stop])
            sites.setdefault(m.group(1), []).append(
                (model.relpath, line, "ICP_REQUIRES" in window)
            )
    for name, occurrences in sorted(sites.items()):
        if any(ok for _, _, ok in occurrences):
            continue
        path, line, _ = occurrences[0]
        findings.append(
            Finding(
                path,
                line,
                "ICP014",
                f"lock-held helper '{name}' has no declaration with "
                "ICP_REQUIRES(<mutex>)",
            )
        )


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------


def iter_source_files(root: str) -> list[str]:
    out: list[str] = []
    for base in SRC_DIRS:
        top = os.path.join(root, base)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SUFFIXES):
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, root))
    return sorted(out)


def read_text(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        return f.read()


def populate_structural(models: list[FileModel]) -> None:
    atomic_names: set[str] = set()
    for model in models:
        atomic_names |= harvest_atomic_names(model.code)
    for model in models:
        model.atomic_ops = extract_atomic_ops(model.code, atomic_names)
        if model.relpath in PURITY_TUS:
            model.impurities = extract_impurities(model.code)


def populate_libclang(
    cindex: Any,
    models: list[FileModel],
    root: str,
    compile_commands: str,
    findings: list[Finding],
) -> None:
    db = load_compile_commands(compile_commands)
    index = cindex.Index.create()
    atomic_names: set[str] = set()
    for model in models:
        atomic_names |= harvest_atomic_names(model.code)
    for model in models:
        abspath = os.path.normpath(os.path.join(root, model.relpath))
        args = compile_args_for(db, root, model.relpath)
        try:
            tu = index.parse(abspath, args=args)
        except Exception:  # noqa: BLE001 - fall back per file
            model.atomic_ops = extract_atomic_ops(
                model.code, atomic_names
            )
            if model.relpath in PURITY_TUS:
                model.impurities = extract_impurities(model.code)
            continue
        ops, extra = libclang_atomic_ops(cindex, tu, abspath, model)
        model.atomic_ops = ops
        findings.extend(extra)
        if model.relpath in PURITY_TUS:
            model.impurities = libclang_impurities(cindex, tu, abspath)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="icp_analyze.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--root",
        default=default_root,
        help="repo root to analyze (default: the checkout containing "
        "this script)",
    )
    parser.add_argument(
        "--frontend",
        choices=("auto", "libclang", "structural"),
        default="auto",
        help="AST frontend: libclang (needs clang.cindex + a loadable "
        "libclang), the built-in structural lexer, or auto-pick "
        "(default)",
    )
    parser.add_argument(
        "--compile-commands",
        default=None,
        help="compilation database for the libclang frontend "
        "(default: <root>/build/compile_commands.json)",
    )
    parser.add_argument(
        "--require-libclang",
        action="store_true",
        help="fail (exit 2) instead of falling back to the structural "
        "frontend; CI sets this so AST-grade checking cannot silently "
        "degrade",
    )
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"icp_analyze: no such directory: {root}", file=sys.stderr)
        return 2

    compile_commands = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json"
    )

    cindex: Any = None
    if args.frontend in ("auto", "libclang"):
        cindex = load_cindex()
        if cindex is not None and not os.path.isfile(compile_commands):
            cindex = None
            if args.frontend == "libclang" or args.require_libclang:
                print(
                    "icp_analyze: libclang frontend needs "
                    f"{compile_commands} (configure with "
                    "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
                    file=sys.stderr,
                )
                return 2
        if cindex is None and (
            args.frontend == "libclang" or args.require_libclang
        ):
            print(
                "icp_analyze: libclang frontend unavailable (no "
                "clang.cindex module or no loadable libclang)",
                file=sys.stderr,
            )
            return 2

    models = [
        build_model(root, relpath) for relpath in iter_source_files(root)
    ]
    findings: list[Finding] = []
    if cindex is not None:
        populate_libclang(
            cindex, models, root, compile_commands, findings
        )
    else:
        populate_structural(models)

    checker_names = harvest_checker_names(models)
    check_icp010(models, root, findings)
    check_icp011(models, checker_names, findings)
    check_icp012(models, findings)
    check_icp013(models, findings)
    check_icp014(models, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"icp_analyze: {len(findings)} finding(s)", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
