#!/usr/bin/env python3
"""Self-test for tools/icp_analyze.py.

Each test copies the clean fixture tree (tools/analyze_fixtures/clean)
into a temp dir, plants one violation, runs the analyzer as a
subprocess, and asserts the expected rule fires with a file:line
message. A clean-tree run asserts zero findings; a real-tree splice
case copies the actual src/ + docs/concurrency.md, strips the relaxed
justification off a real scheduler atomic, and asserts ICP010 catches
it — the acceptance-criterion case for this analyzer.

All cases run under the structural frontend so they pass on toolchains
without libclang; the libclang frontend shares the rule engine and is
exercised by CI's --require-libclang job.

Run directly (`python3 tools/icp_analyze_test.py`) or via ctest
(`ctest -R icp_analyze`).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
ANALYZER = os.path.join(TOOLS_DIR, "icp_analyze.py")
CLEAN_FIXTURE = os.path.join(TOOLS_DIR, "analyze_fixtures", "clean")


def run_analyzer(root: str, *extra: str) -> tuple[int, str, str]:
    proc = subprocess.run(
        [
            sys.executable,
            ANALYZER,
            "--root",
            root,
            "--frontend",
            "structural",
            *extra,
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout, proc.stderr


def write(root: str, relpath: str, content: str) -> None:
    path = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def append(root: str, relpath: str, content: str) -> None:
    with open(os.path.join(root, relpath), "a", encoding="utf-8") as f:
        f.write(content)


class AnalyzeFixtureTest(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="icp_analyze_test_")
        self.root = self._tmp.name
        shutil.copytree(CLEAN_FIXTURE, self.root, dirs_exist_ok=True)

    def tearDown(self) -> None:
        self._tmp.cleanup()

    def assert_finding(
        self, rule: str, needle: str, expect_path: str | None = None
    ) -> None:
        code, out, _ = run_analyzer(self.root)
        self.assertEqual(code, 1, f"expected findings, got:\n{out}")
        matching = [
            line
            for line in out.splitlines()
            if f"[{rule}]" in line and needle in line
        ]
        self.assertTrue(
            matching, f"no [{rule}] finding mentioning {needle!r} in:\n{out}"
        )
        if expect_path is not None:
            self.assertTrue(
                any(line.startswith(expect_path + ":") for line in matching),
                f"finding does not point at {expect_path}:<line>:\n{out}",
            )

    def assert_clean(self) -> None:
        code, out, err = run_analyzer(self.root)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")
        self.assertEqual(out, "")

    # -- baseline ----------------------------------------------------

    def test_clean_tree_has_zero_findings(self) -> None:
        self.assert_clean()

    def test_findings_carry_file_line_prefix(self) -> None:
        append(
            self.root,
            "src/sched/worker.cc",
            "namespace fix {\nvoid Implicit() { ready.store(2); }\n}\n",
        )
        code, out, _ = run_analyzer(self.root)
        self.assertEqual(code, 1)
        first = out.splitlines()[0]
        path, line, rest = first.split(":", 2)
        self.assertEqual(path, "src/sched/worker.cc")
        self.assertTrue(line.isdigit())
        self.assertIn("[ICP010]", rest)

    # -- ICP010: atomics-ordering discipline -------------------------

    def test_implicit_seq_cst_store_fires(self) -> None:
        append(
            self.root,
            "src/sched/worker.cc",
            "namespace fix {\nvoid Implicit() { ready.store(2); }\n}\n",
        )
        self.assert_finding(
            "ICP010", "0 explicit memory_order", "src/sched/worker.cc"
        )

    def test_unjustified_relaxed_fires(self) -> None:
        append(
            self.root,
            "src/sched/worker.cc",
            "namespace fix {\n"
            "void Bare() {\n"
            "  polls.fetch_add(1, std::memory_order_relaxed);\n"
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP010", "memory_order_relaxed", "src/sched/worker.cc"
        )

    def test_release_without_pair_id_fires(self) -> None:
        append(
            self.root,
            "src/sched/worker.cc",
            "namespace fix {\n"
            "void NoPair() {\n"
            "  // order: release — lost the pairing name.\n"
            "  ready.store(3, std::memory_order_release);\n"
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP010", "must name its pairing", "src/sched/worker.cc"
        )

    def test_undocumented_pair_id_fires(self) -> None:
        append(
            self.root,
            "src/sched/worker.cc",
            "namespace fix {\n"
            "std::atomic<int> side{0};\n"
            "void Mystery() {\n"
            "  // order: release(mystery-pair) — not in the registry.\n"
            "  side.store(1, std::memory_order_release);\n"
            "}\n"
            "int PeekMystery() {\n"
            "  // order: acquire(mystery-pair) — not in the registry.\n"
            "  return side.load(std::memory_order_acquire);\n"
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP010", "'mystery-pair' is not documented",
            "src/sched/worker.cc",
        )

    def test_stale_registry_row_fires(self) -> None:
        append(
            self.root,
            "docs/concurrency.md",
            "| `ghost-pair` | gone | gone | gone | Nothing. |\n",
        )
        self.assert_finding(
            "ICP010", "'ghost-pair' has no annotated code site",
            "docs/concurrency.md",
        )

    def test_one_sided_pair_fires(self) -> None:
        append(
            self.root,
            "docs/concurrency.md",
            "| `half-pair` | `fix::side` | store | (missing) | TBD. |\n",
        )
        append(
            self.root,
            "src/sched/worker.cc",
            "namespace fix {\n"
            "std::atomic<int> side{0};\n"
            "void HalfPublish() {\n"
            "  // order: release(half-pair) — release with no acquire.\n"
            "  side.store(1, std::memory_order_release);\n"
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP010", "no acquire-side site", "src/sched/worker.cc"
        )

    def test_cas_with_single_order_fires(self) -> None:
        append(
            self.root,
            "src/sched/worker.cc",
            "namespace fix {\n"
            "void HalfCas() {\n"
            "  std::uint64_t expected = 0;\n"
            "  // order: relaxed — fixture latch.\n"
            "  ready.compare_exchange_strong(expected, 1,\n"
            "                                std::memory_order_relaxed);\n"
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP010", "expected 2", "src/sched/worker.cc"
        )

    def test_annotation_in_unrelated_comment_does_not_cover(self) -> None:
        # The justification must sit on or directly above the statement;
        # one a blank line away does not attach.
        append(
            self.root,
            "src/sched/worker.cc",
            "namespace fix {\n"
            "void Detached() {\n"
            "  // order: relaxed — too far away to count.\n"
            "\n"
            "  polls.fetch_add(1, std::memory_order_relaxed);\n"
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP010", "memory_order_relaxed", "src/sched/worker.cc"
        )

    # -- ICP011: cancellation coverage -------------------------------

    def test_uncancellable_drain_loop_fires(self) -> None:
        write(
            self.root,
            "src/sched/drain.cc",
            "namespace fix {\n"
            "int Drain(int num_morsels) {\n"
            "  int done = 0;\n"
            "  for (int morsel = 0; morsel < num_morsels; ++morsel) {\n"
            "    ++done;\n"
            "  }\n"
            "  return done;\n"
            "}\n"
            "}  // namespace fix\n",
        )
        self.assert_finding(
            "ICP011", "loop over 'morsel'", "src/sched/drain.cc"
        )

    def test_snake_case_segment_bound_is_in_scope(self) -> None:
        write(
            self.root,
            "src/scan/sweep.cc",
            "namespace fix {\n"
            "int Sweep(int num_segments) {\n"
            "  int acc = 0;\n"
            "  for (int i = 0; i < num_segments; ++i) acc += i;\n"
            "  return acc;\n"
            "}\n"
            "}  // namespace fix\n",
        )
        self.assert_finding(
            "ICP011", "loop over 'seg'", "src/scan/sweep.cc"
        )

    def test_annotated_helper_covers_loop(self) -> None:
        write(
            self.root,
            "src/sched/drain.cc",
            "namespace fix {\n"
            "bool PollCancelled();\n"
            "int Drain(int num_morsels) {\n"
            "  int done = 0;\n"
            "  for (int morsel = 0; morsel < num_morsels; ++morsel) {\n"
            "    if (PollCancelled()) break;\n"
            "    ++done;\n"
            "  }\n"
            "  return done;\n"
            "}\n"
            "}  // namespace fix\n",
        )
        self.assert_clean()

    def test_exemption_separated_by_blank_line_fires(self) -> None:
        write(
            self.root,
            "src/sched/drain.cc",
            "namespace fix {\n"
            "int Drain(int num_shards) {\n"
            "  int done = 0;\n"
            "  // cancellation: exempt — detached by the blank line.\n"
            "\n"
            "  for (int shard = 0; shard < num_shards; ++shard) ++done;\n"
            "  return done;\n"
            "}\n"
            "}  // namespace fix\n",
        )
        self.assert_finding(
            "ICP011", "loop over 'shard'", "src/sched/drain.cc"
        )

    def test_out_of_scope_dir_is_ignored(self) -> None:
        write(
            self.root,
            "src/io/reader.cc",
            "namespace fix {\n"
            "int Read(int num_segments) {\n"
            "  int acc = 0;\n"
            "  for (int seg = 0; seg < num_segments; ++seg) ++acc;\n"
            "  return acc;\n"
            "}\n"
            "}  // namespace fix\n",
        )
        self.assert_clean()

    # -- ICP012: kernel purity ---------------------------------------

    def test_kernel_allocation_fires(self) -> None:
        append(
            self.root,
            "src/simd/agg_kernels.cc",
            "namespace fix::kern {\n"
            "std::uint64_t* Alloc(std::uint64_t n) {\n"
            "  return new std::uint64_t[n];\n"
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP012", "allocation ('new')", "src/simd/agg_kernels.cc"
        )

    def test_kernel_lock_fires(self) -> None:
        append(
            self.root,
            "src/simd/agg_kernels.cc",
            "#include <mutex>\n"
            "namespace fix::kern {\n"
            "std::mutex kernel_mu;\n"
            "}\n",
        )
        self.assert_finding(
            "ICP012", "lock type", "src/simd/agg_kernels.cc"
        )

    def test_kernel_io_fires(self) -> None:
        append(
            self.root,
            "src/simd/agg_kernels.cc",
            "#include <cstdio>\n"
            "namespace fix::kern {\n"
            "void Log(std::uint64_t n) {\n"
            '  printf("acc=%llu\\n", (unsigned long long)n);\n'
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP012", "I/O or environment", "src/simd/agg_kernels.cc"
        )

    def test_kernel_throw_fires(self) -> None:
        append(
            self.root,
            "src/simd/agg_kernels.cc",
            "namespace fix::kern {\n"
            "void Boom() { throw 1; }\n"
            "}\n",
        )
        self.assert_finding(
            "ICP012", "exception ('throw')", "src/simd/agg_kernels.cc"
        )

    def test_deleted_function_is_not_deallocation(self) -> None:
        append(
            self.root,
            "src/simd/agg_kernels.cc",
            "namespace fix::kern {\n"
            "struct NoCopy {\n"
            "  NoCopy(const NoCopy&) = delete;\n"
            "};\n"
            "}\n",
        )
        self.assert_clean()

    def test_unsanctioned_tu_is_not_purity_checked(self) -> None:
        write(
            self.root,
            "src/io/writer.cc",
            "#include <cstdio>\n"
            "namespace fix {\n"
            'void Put() { printf("ok\\n"); }\n'
            "}\n",
        )
        self.assert_clean()

    # -- ICP013: counter discipline ----------------------------------

    def test_obs_macro_in_innermost_loop_fires(self) -> None:
        append(
            self.root,
            "src/obs/counters.cc",
            "namespace fix {\n"
            "void HotLoop(std::uint64_t n) {\n"
            "  for (std::uint64_t i = 0; i < n; ++i) {\n"
            "    ICP_OBS_INCREMENT(WordsScanned);\n"
            "  }\n"
            "}\n"
            "}\n",
        )
        self.assert_finding(
            "ICP013", "innermost loop", "src/obs/counters.cc"
        )

    def test_obs_macro_in_outer_loop_is_fine(self) -> None:
        append(
            self.root,
            "src/obs/counters.cc",
            "namespace fix {\n"
            "void PerBlock(std::uint64_t n) {\n"
            "  for (std::uint64_t b = 0; b < n; b += 64) {\n"
            "    std::uint64_t acc = 0;\n"
            "    for (std::uint64_t i = b; i < b + 64; ++i) acc += i;\n"
            "    ICP_OBS_ADD(WordsScanned, acc);\n"
            "  }\n"
            "}\n"
            "}\n",
        )
        self.assert_clean()

    # -- ICP014: thread-safety annotations ---------------------------

    def test_unguarded_member_fires(self) -> None:
        content = read(self.root, "src/sched/admission.h").replace(
            "  int active_ ICP_GUARDED_BY(mu_) = 0;",
            "  int active_ ICP_GUARDED_BY(mu_) = 0;\n  int pending_ = 0;",
        )
        write(self.root, "src/sched/admission.h", content)
        self.assert_finding(
            "ICP014", "member 'pending_'", "src/sched/admission.h"
        )

    def test_locked_helper_without_requires_fires(self) -> None:
        content = read(self.root, "src/sched/admission.h").replace(
            "  int GrantLocked() const ICP_REQUIRES(mu_);",
            "  int GrantLocked() const ICP_REQUIRES(mu_);\n"
            "  void EvictLocked();",
        )
        write(self.root, "src/sched/admission.h", content)
        self.assert_finding(
            "ICP014", "'EvictLocked'", "src/sched/admission.h"
        )

    def test_mutexless_class_is_not_checked(self) -> None:
        append(
            self.root,
            "src/sched/admission.h",
            "class Stats {\n"
            " public:\n"
            "  int snapshots_ = 0;\n"
            "};\n",
        )
        self.assert_clean()

    # -- real-tree splice cases --------------------------------------

    def _copy_real_tree(self) -> None:
        shutil.rmtree(os.path.join(self.root, "src"))
        shutil.rmtree(os.path.join(self.root, "docs"))
        shutil.copytree(
            os.path.join(REPO_ROOT, "src"), os.path.join(self.root, "src")
        )
        os.makedirs(os.path.join(self.root, "docs"))
        shutil.copy(
            os.path.join(REPO_ROOT, "docs", "concurrency.md"),
            os.path.join(self.root, "docs", "concurrency.md"),
        )

    def test_real_tree_copy_is_clean(self) -> None:
        self._copy_real_tree()
        self.assert_clean()

    def test_real_scheduler_splice_unjustified_relaxed(self) -> None:
        # The acceptance-criterion case: take the real scheduler TU and
        # strip the justification comment off one of its relaxed
        # atomics — the exact shape of an under-reviewed "just make it
        # relaxed" edit. The analyzer must refuse it.
        self._copy_real_tree()
        sched = os.path.join(self.root, "src", "sched", "scheduler.cc")
        with open(sched, encoding="utf-8") as f:
            lines = f.readlines()
        stripped = [
            line
            for line in lines
            if not line.lstrip().startswith("// order: relaxed")
        ]
        self.assertLess(
            len(stripped),
            len(lines),
            "real scheduler.cc no longer has relaxed justifications — "
            "update this test",
        )
        with open(sched, "w", encoding="utf-8") as f:
            f.writelines(stripped)
        self.assert_finding(
            "ICP010", "memory_order_relaxed", "src/sched/scheduler.cc"
        )

    def test_real_scheduler_splice_retagged_pair_fires(self) -> None:
        # Renaming a pairing in code without updating the registry must
        # fail from the code side (undocumented id) and the doc side
        # (stale row).
        self._copy_real_tree()
        sched = os.path.join(self.root, "src", "sched", "scheduler.cc")
        with open(sched, encoding="utf-8") as f:
            content = f.read()
        self.assertIn("(free-slots)", content)
        with open(sched, "w", encoding="utf-8") as f:
            f.write(content.replace("(free-slots)", "(freed-slots)"))
        self.assert_finding(
            "ICP010", "'freed-slots' is not documented",
            "src/sched/scheduler.cc",
        )
        self.assert_finding(
            "ICP010", "'free-slots' has no annotated code site",
            "docs/concurrency.md",
        )

    # -- frontend selection ------------------------------------------

    def test_require_libclang_without_db_exits_2(self) -> None:
        # The fixture tree has no build/compile_commands.json, so the
        # libclang frontend must refuse (exit 2) rather than silently
        # fall back — whether or not clang.cindex is importable here.
        code, out, err = run_analyzer(self.root, "--require-libclang")
        self.assertEqual(
            code, 0, f"structural frontend should still work:\n{out}\n{err}"
        )
        proc = subprocess.run(
            [
                sys.executable,
                ANALYZER,
                "--root",
                self.root,
                "--frontend",
                "libclang",
                "--require-libclang",
            ],
            capture_output=True,
            text=True,
            check=False,
        )
        self.assertEqual(proc.returncode, 2, proc.stderr)


def read(root: str, relpath: str) -> str:
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        return f.read()


class RealTreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self) -> None:
        code, out, err = run_analyzer(REPO_ROOT)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")


if __name__ == "__main__":
    unittest.main()
