#!/usr/bin/env python3
"""icp_lint: machine-checks this repo's correctness invariants.

The linter exists because each rule below encodes a bug class that has
already happened (or nearly happened) in this codebase:

  ICP001 rogue-intrinsic
      Raw SIMD intrinsics, vector types, intrinsic headers, or
      __AVX2__/__AVX512*__ feature tests outside the sanctioned SIMD
      translation units. Everything else must route through the kernel
      registry (src/simd/dispatch.h) so ICP_FORCE_KERNEL and the
      differential harness see every hot path.
  ICP002 no-exceptions
      throw/try/catch anywhere in src/ or tests/. The project uses the
      Status / ICP_CHECK idiom (Google C++ style, exceptions off).
  ICP003 failpoint-registry
      Every ICP_FAILPOINT site must carry a unique name, and every name
      must be listed in docs/robustness.md (and vice versa: the doc must
      not list failpoints that are no longer planted).
  ICP004 slot-coverage
      Every kernel slot declared in the KernelOps struct must be
      exercised by tests/dispatch_test.cc (cross-tier agreement), by
      a bench/bench_kernels.cc benchmark, and by the differential
      harness tests/differential_test.cc (seed-replayable cross-layout
      agreement) — directly, or through an
      "// exercises: slot_a, slot_b" annotation naming the slot the
      file drives through a higher-level entry point.
  ICP005 counter-catalogue
      Every observability counter or histogram registered through
      ICP_OBS_DEFINE_COUNTER / ICP_OBS_DEFINE_HISTOGRAM must be
      catalogued in docs/observability.md, and the doc must not list
      metrics that are no longer registered (same both-ways sync as
      ICP003). The two registries share one namespace — a histogram
      may not reuse a counter's name.

Usage:
    tools/icp_lint.py [--root REPO_ROOT] [--changed-only [--base-ref REF]]

--changed-only reports findings only in files changed relative to a git
base ref (default: the merge-base of HEAD with origin/main, falling
back to main, then HEAD) plus untracked files — the pre-commit fast
path. Every rule still runs over the whole tree, so cross-file registry
checks (ICP003/ICP004/ICP005) stay sound; only the report is filtered.

Findings are printed as `path:line: [rule] message`, one per line.
Exit codes: 0 clean, 1 findings, 2 bad invocation (including git
failures under --changed-only).
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from dataclasses import dataclass

# Translation units allowed to use raw intrinsics / CPU-feature tests.
SANCTIONED_SIMD_TUS = frozenset(
    {
        "src/simd/agg_kernels.cc",
        "src/simd/scan_kernels.cc",
        "src/simd/vbp_pospopcnt.cc",
        "src/simd/word256.h",
        "src/simd/dispatch.cc",
    }
)

# Allowed to include an intrinsics header for the __rdtsc() timestamp
# intrinsic only — still checked for SIMD compute tokens like everything
# else outside the sanctioned TUs.
TSC_HEADER_EXEMPT = frozenset({"src/util/rdtsc.h"})

# Directories scanned for ICP001/ICP002 (relative to the root).
CODE_DIRS = ("src", "tests")
CODE_SUFFIXES = (".cc", ".h", ".cpp", ".hpp")

DISPATCH_HEADER = "src/simd/dispatch.h"
DISPATCH_TEST = "tests/dispatch_test.cc"
KERNEL_BENCH = "bench/bench_kernels.cc"
DIFFERENTIAL_TEST = "tests/differential_test.cc"
ROBUSTNESS_DOC = "docs/robustness.md"
OBSERVABILITY_DOC = "docs/observability.md"

# Backticked names in the docs that look dotted but are files, not
# counters (the observability doc also mentions trace.json etc.).
DOC_FILE_SUFFIXES = (".md", ".json", ".txt", ".py", ".cc", ".h", ".cpp",
                     ".yml", ".cmake")

INTRINSIC_RE = re.compile(
    r"\b_mm\d*_\w+"  # _mm_*, _mm256_*, _mm512_* intrinsics
    r"|\b__m(?:64|128|256|512)[di]?\b"  # __m256i-style vector types
    r"|\b__AVX2__\b|\b__AVX512\w*__\b"  # feature-test macros
    r"|#\s*include\s*<\w*intrin\.h>"  # immintrin.h, x86intrin.h, ...
)
EXCEPTION_RE = re.compile(r"\bthrow\b|\btry\s*(?=\{)|\bcatch\s*\(")
FAILPOINT_RE = re.compile(r'ICP_FAILPOINT\(\s*"([^"]+)"')
SLOT_RE = re.compile(r"\(\s*\*\s*(\w+)\s*\)\s*\(")
EXERCISES_RE = re.compile(r"//\s*exercises:\s*([\w,\s]+?)\s*$")
COUNTER_RE = re.compile(r'ICP_OBS_DEFINE_COUNTER\(\s*(\w+)\s*,\s*"([^"]+)"')
HISTOGRAM_RE = re.compile(
    r'ICP_OBS_DEFINE_HISTOGRAM\(\s*(\w+)\s*,\s*"([^"]+)"'
)
# Dotted lowercase metric names in backticks, e.g. `scan.words_examined`.
DOC_COUNTER_RE = re.compile(r"`([a-z0-9_]+(?:\.[a-z0-9_]+)+)`")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str, keep_strings: bool) -> str:
    """Blanks comments (and, unless keep_strings, string/char literals).

    Newlines are preserved so findings keep their line numbers. Handles
    C++ digit separators (1'000'000) and simple raw string literals.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not text.startswith("*/", i):
                out.append(text[i] if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"':
            is_raw = i > 0 and text[i - 1] == "R" and (
                i < 2 or not (text[i - 2].isalnum() or text[i - 2] == "_")
            )
            if is_raw:
                delim_end = text.index("(", i)
                closer = ")" + text[i + 1 : delim_end] + '"'
                end = text.index(closer, delim_end) + len(closer)
            else:
                end = i + 1
                while end < n and text[end] != '"':
                    end += 2 if text[end] == "\\" else 1
                end = min(end + 1, n)
            chunk = text[i:end]
            if keep_strings:
                out.append(chunk)
            else:
                out.extend(ch if ch == "\n" else " " for ch in chunk)
            i = end
        elif c == "'":
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum():  # digit separator, e.g. 10'000'000
                out.append(c)
                i += 1
                continue
            end = i + 1
            while end < n and text[end] != "'":
                end += 2 if text[end] == "\\" else 1
            end = min(end + 1, n)
            out.extend(" " for _ in range(end - i))
            i = end
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_code_files(root: str) -> list[str]:
    files: list[str] = []
    for code_dir in CODE_DIRS:
        base = os.path.join(root, code_dir)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(CODE_SUFFIXES):
                    files.append(os.path.join(dirpath, name))
    return files


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def rel(root: str, path: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def check_intrinsics(root: str, findings: list[Finding]) -> None:
    for path in iter_code_files(root):
        relpath = rel(root, path)
        if relpath in SANCTIONED_SIMD_TUS:
            continue
        text = read_text(path)
        code = strip_comments(text, keep_strings=False)
        for m in INTRINSIC_RE.finditer(code):
            if m.group(0).startswith("#") and relpath in TSC_HEADER_EXEMPT:
                continue
            findings.append(
                Finding(
                    relpath,
                    line_of(code, m.start()),
                    "ICP001",
                    f"raw SIMD token '{m.group(0)}' outside the sanctioned "
                    "SIMD TUs; route through the kernel registry "
                    "(src/simd/dispatch.h) instead",
                )
            )


def check_exceptions(root: str, findings: list[Finding]) -> None:
    for path in iter_code_files(root):
        relpath = rel(root, path)
        text = read_text(path)
        code = strip_comments(text, keep_strings=False)
        for m in EXCEPTION_RE.finditer(code):
            findings.append(
                Finding(
                    relpath,
                    line_of(code, m.start()),
                    "ICP002",
                    f"'{m.group(0).strip()}' found; this codebase uses the "
                    "Status / ICP_CHECK idiom, not exceptions",
                )
            )


def check_failpoints(root: str, findings: list[Finding]) -> None:
    sites: dict[str, list[tuple[str, int]]] = {}
    for path in iter_code_files(root):
        relpath = rel(root, path)
        if not relpath.startswith("src/"):
            continue
        text = read_text(path)
        code = strip_comments(text, keep_strings=True)
        for m in FAILPOINT_RE.finditer(code):
            sites.setdefault(m.group(1), []).append(
                (relpath, line_of(code, m.start()))
            )

    doc_path = os.path.join(root, ROBUSTNESS_DOC)
    doc_text = read_text(doc_path) if os.path.isfile(doc_path) else ""
    doc_names = set(re.findall(r"`([\w./]+/[\w./]+)`", doc_text))

    for name, occurrences in sorted(sites.items()):
        if len(occurrences) > 1:
            locs = ", ".join(f"{p}:{ln}" for p, ln in occurrences[1:])
            findings.append(
                Finding(
                    occurrences[0][0],
                    occurrences[0][1],
                    "ICP003",
                    f"failpoint '{name}' is planted at more than one site "
                    f"(also at {locs}); every site needs a unique name",
                )
            )
        if name not in doc_names:
            path0, line0 = occurrences[0]
            findings.append(
                Finding(
                    path0,
                    line0,
                    "ICP003",
                    f"failpoint '{name}' is not listed in {ROBUSTNESS_DOC}",
                )
            )
    for name in sorted(doc_names):
        if "/" in name and name not in sites and not name.endswith(".md"):
            # Only flag names that look like failpoints (the doc also
            # holds file paths in backticks).
            if re.fullmatch(r"[a-z0-9_]+/[a-z0-9_]+", name):
                findings.append(
                    Finding(
                        ROBUSTNESS_DOC,
                        1 + doc_text[: doc_text.find(f"`{name}`")].count("\n"),
                        "ICP003",
                        f"{ROBUSTNESS_DOC} lists failpoint '{name}' but no "
                        "ICP_FAILPOINT site plants it",
                    )
                )


def parse_kernel_slots(root: str, findings: list[Finding]) -> list[str]:
    path = os.path.join(root, DISPATCH_HEADER)
    if not os.path.isfile(path):
        findings.append(
            Finding(
                DISPATCH_HEADER,
                1,
                "ICP004",
                "kernel registry header not found; the slot-coverage rule "
                "has nothing to anchor on (was the header moved?)",
            )
        )
        return []
    code = strip_comments(read_text(path), keep_strings=False)
    m = re.search(r"struct\s+KernelOps\s*\{(.*?)\n\};", code, re.DOTALL)
    if not m:
        findings.append(
            Finding(
                DISPATCH_HEADER,
                1,
                "ICP004",
                "no `struct KernelOps` found in the registry header",
            )
        )
        return []
    return SLOT_RE.findall(m.group(1))


def check_slot_coverage(root: str, findings: list[Finding]) -> None:
    slots = parse_kernel_slots(root, findings)
    if not slots:
        return

    def covered_names(relpath: str, with_annotations: bool) -> set[str]:
        path = os.path.join(root, relpath)
        if not os.path.isfile(path):
            findings.append(
                Finding(
                    relpath,
                    1,
                    "ICP004",
                    f"{relpath} not found; every kernel slot must be "
                    "exercised there",
                )
            )
            return set()
        text = read_text(path)
        code = strip_comments(text, keep_strings=False)
        names = {s for s in slots if re.search(rf"\b{s}\b", code)}
        if with_annotations:
            for i, line in enumerate(text.split("\n"), start=1):
                ann = EXERCISES_RE.search(line)
                if not ann:
                    continue
                for token in re.split(r"[,\s]+", ann.group(1)):
                    if not token:
                        continue
                    if token not in slots:
                        findings.append(
                            Finding(
                                relpath,
                                i,
                                "ICP004",
                                f"'exercises:' annotation names unknown "
                                f"kernel slot '{token}'",
                            )
                        )
                    else:
                        names.add(token)
        return names

    tested = covered_names(DISPATCH_TEST, with_annotations=False)
    benched = covered_names(KERNEL_BENCH, with_annotations=True)
    diffed = covered_names(DIFFERENTIAL_TEST, with_annotations=True)
    for slot in slots:
        if slot not in tested:
            findings.append(
                Finding(
                    DISPATCH_HEADER,
                    1,
                    "ICP004",
                    f"kernel slot '{slot}' has no cross-tier agreement "
                    f"coverage in {DISPATCH_TEST}",
                )
            )
        if slot not in benched:
            findings.append(
                Finding(
                    DISPATCH_HEADER,
                    1,
                    "ICP004",
                    f"kernel slot '{slot}' has no benchmark in "
                    f"{KERNEL_BENCH} (direct call or 'exercises:' "
                    "annotation)",
                )
            )
        if slot not in diffed:
            findings.append(
                Finding(
                    DISPATCH_HEADER,
                    1,
                    "ICP004",
                    f"kernel slot '{slot}' has no differential-harness "
                    f"coverage in {DIFFERENTIAL_TEST} (direct call or "
                    "'exercises:' annotation)",
                )
            )


def check_counter_catalogue(root: str, findings: list[Finding]) -> None:
    """ICP005: counters AND histograms share one doc-synced namespace."""
    sites: dict[str, list[tuple[str, int]]] = {}
    kinds: dict[str, str] = {}
    for path in iter_code_files(root):
        relpath = rel(root, path)
        if not relpath.startswith("src/"):
            continue
        text = read_text(path)
        code = strip_comments(text, keep_strings=True)
        for kind, regex in (
            ("counter", COUNTER_RE),
            ("histogram", HISTOGRAM_RE),
        ):
            for m in regex.finditer(code):
                name = m.group(2)
                sites.setdefault(name, []).append(
                    (relpath, line_of(code, m.start()))
                )
                kinds.setdefault(name, kind)

    doc_path = os.path.join(root, OBSERVABILITY_DOC)
    doc_text = read_text(doc_path) if os.path.isfile(doc_path) else ""
    doc_names = {
        name
        for name in DOC_COUNTER_RE.findall(doc_text)
        if not name.endswith(DOC_FILE_SUFFIXES)
    }

    for name, occurrences in sorted(sites.items()):
        if len(occurrences) > 1:
            locs = ", ".join(f"{p}:{ln}" for p, ln in occurrences[1:])
            findings.append(
                Finding(
                    occurrences[0][0],
                    occurrences[0][1],
                    "ICP005",
                    f"{kinds[name]} '{name}' is registered more than once "
                    "(also at "
                    f"{locs}); counter and histogram names must be unique",
                )
            )
        if name not in doc_names:
            path0, line0 = occurrences[0]
            findings.append(
                Finding(
                    path0,
                    line0,
                    "ICP005",
                    f"{kinds[name]} '{name}' is not catalogued in "
                    f"{OBSERVABILITY_DOC}",
                )
            )
    for name in sorted(doc_names - set(sites)):
        findings.append(
            Finding(
                OBSERVABILITY_DOC,
                1 + doc_text[: doc_text.find(f"`{name}`")].count("\n"),
                "ICP005",
                f"{OBSERVABILITY_DOC} catalogues metric '{name}' but no "
                "ICP_OBS_DEFINE_COUNTER / ICP_OBS_DEFINE_HISTOGRAM "
                "registers it",
            )
        )


def read_text(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        return f.read()


def _git(root: str, *argv: str) -> tuple[int, str]:
    proc = subprocess.run(
        ["git", "-C", root, *argv],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout


def changed_files(root: str, base_ref: str | None) -> set[str] | None:
    """Repo-relative paths changed vs the base ref, plus untracked files.

    Returns None when git is unavailable or the root is not a work tree.
    """
    ref = base_ref
    if ref is None:
        for candidate in ("origin/main", "main"):
            code, out = _git(root, "merge-base", "HEAD", candidate)
            if code == 0:
                ref = out.strip()
                break
        else:
            ref = "HEAD"
    code, out = _git(root, "diff", "--name-only", "-z", ref)
    if code != 0:
        return None
    changed = {p for p in out.split("\0") if p}
    code, out = _git(
        root, "ls-files", "--others", "--exclude-standard", "-z"
    )
    if code != 0:
        return None
    changed |= {p for p in out.split("\0") if p}
    return changed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="icp_lint.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--root",
        default=default_root,
        help="repo root to lint (default: the checkout containing this "
        "script)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only in files changed vs --base-ref "
        "(every rule still runs over the whole tree)",
    )
    parser.add_argument(
        "--base-ref",
        default=None,
        help="git ref for --changed-only (default: merge-base of HEAD "
        "with origin/main, then main, then HEAD)",
    )
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"icp_lint: no such directory: {root}", file=sys.stderr)
        return 2

    changed: set[str] | None = None
    if args.changed_only:
        changed = changed_files(root, args.base_ref)
        if changed is None:
            print(
                "icp_lint: --changed-only needs a git work tree at "
                f"{root}",
                file=sys.stderr,
            )
            return 2

    findings: list[Finding] = []
    check_intrinsics(root, findings)
    check_exceptions(root, findings)
    check_failpoints(root, findings)
    check_slot_coverage(root, findings)
    check_counter_catalogue(root, findings)

    if changed is not None:
        findings = [f for f in findings if f.path in changed]

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"icp_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
