// Analyzer fixture: second ICP014 scope file. A reference member and
// a mutex-guarded task slot.

#ifndef FIX_PARALLEL_THREAD_POOL_H_
#define FIX_PARALLEL_THREAD_POOL_H_

#include "sched/admission.h"

class Pool {
 public:
  void RunLocked() ICP_REQUIRES(mu_);

 private:
  Mutex mu_;
  Governor& governor_;
  int pending_ ICP_GUARDED_BY(mu_) = 0;
};

#endif  // FIX_PARALLEL_THREAD_POOL_H_
