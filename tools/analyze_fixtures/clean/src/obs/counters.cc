// Analyzer fixture: obs-counter discipline (ICP013). One batched
// macro site outside any loop, and one justified in-loop site.

#include <cstdint>

void fix_obs_add(std::uint64_t n);

#define ICP_OBS_ADD(counter, n) fix_obs_add((n))
#define ICP_OBS_INCREMENT(counter) fix_obs_add(1)

namespace fix {

void RecordBatch(std::uint64_t words) {
  ICP_OBS_ADD(WordsScanned, words);
}

void RetryLoop() {
  for (int attempt = 0; attempt < 3; ++attempt) {
    // obs: loop-ok — bounded retry loop, not a data-plane word loop.
    ICP_OBS_INCREMENT(Retries);
  }
}

}  // namespace fix
