// Analyzer fixture: thread-safety annotation discipline (ICP014) on
// the admission governor's file name. Every mutable member of the
// mutex-holding class is guarded, justified, or of an exempt kind.

#ifndef FIX_SCHED_ADMISSION_H_
#define FIX_SCHED_ADMISSION_H_

#include <atomic>
#include <cstdint>

#define ICP_GUARDED_BY(x)
#define ICP_REQUIRES(x)

class Mutex {};

class Governor {
 public:
  int GrantLocked() const ICP_REQUIRES(mu_);

 private:
  mutable Mutex mu_;
  int active_ ICP_GUARDED_BY(mu_) = 0;
  std::uint64_t next_seq_ ICP_GUARDED_BY(mu_) = 0;
  // not-guarded: written once before the governor is shared.
  int limit_ = 0;
  const int cap_ = 8;
  std::atomic<std::uint64_t> sheds_{0};
};

#endif  // FIX_SCHED_ADMISSION_H_
