// Analyzer fixture: a clean concurrency TU exercising every shape
// rules ICP010/ICP011/ICP013 accept — an annotated release/acquire
// pair, a justified relaxed counter, and drain loops that are covered
// directly, through an annotated helper, and via an exemption.

#include <atomic>
#include <cstdint>

namespace fix {

std::atomic<std::uint64_t> ready{0};
std::atomic<std::uint64_t> polls{0};

bool ShouldStop();

// cancellation: checks — polls the fixture token each call.
bool PollCancelled();

void Publish(std::uint64_t payload) {
  (void)payload;
  // order: release(slot-ready) — publishes the slot payload to the
  // consumer's acquire load.
  ready.store(1, std::memory_order_release);
}

std::uint64_t Consume() {
  // order: acquire(slot-ready) — pairs with the producer's release
  // store; the payload is visible after this load.
  return ready.load(std::memory_order_acquire);
}

void Tally() {
  // order: relaxed — advisory statistics counter; read post-join.
  polls.fetch_add(1, std::memory_order_relaxed);
}

void DrainDirect(int num_morsels) {
  for (int morsel = 0; morsel < num_morsels; ++morsel) {
    if (ShouldStop()) break;
  }
}

void DrainViaHelper(int num_segments) {
  for (int seg = 0; seg < num_segments; ++seg) {
    if (PollCancelled()) break;
  }
}

void DrainExempt(int num_partitions) {
  // cancellation: exempt — fixture loop; the caller polls between
  // partitions.
  for (int partition = 0; partition < num_partitions; ++partition) {
    Tally();
  }
}

}  // namespace fix
