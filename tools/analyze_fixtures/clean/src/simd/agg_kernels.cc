// Analyzer fixture: a pure kernel TU (ICP012 scope). No allocation,
// locks, exceptions, or I/O — arithmetic over caller-owned buffers
// only.

#include <cstdint>

namespace fix::kern {

std::uint64_t SumWords(const std::uint64_t* words, std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) acc += words[i];
  return acc;
}

}  // namespace fix::kern
