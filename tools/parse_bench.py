#!/usr/bin/env python3
"""Parse bench_output.txt into per-harness CSV files for plotting.

Usage:
    tools/parse_bench.py bench_output.txt out_dir/

Emits one CSV per recognized table in the harness output (figure 5/6 style
series tables, the Figure 8 matrix, and the Table II query tables), named
after the harness and section, e.g.:

    out_dir/fig5_vbp_sum.csv
    out_dir/fig8_mt_simd.csv
    out_dir/table2_hbp.csv

The parser is intentionally forgiving: it keys on the harness banner lines
("== build/bench/bench_... ==") and on bracketed section headers, and turns
whitespace-separated numeric rows into CSV. Anything it does not recognize
is ignored, so harness prose can evolve freely.
"""

import csv
import os
import re
import sys


def slugify(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")


def is_number(token: str) -> bool:
    token = token.rstrip("x%")
    try:
        float(token)
        return True
    except ValueError:
        return False


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    source, out_dir = sys.argv[1], sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)

    harness = None
    section = None
    rows = []
    header = None
    written = []

    def flush():
        nonlocal rows, header
        if harness and rows:
            name = slugify(harness.replace("bench_", ""))
            if section:
                name += "_" + slugify(section)
            path = os.path.join(out_dir, f"{name}.csv")
            with open(path, "w", newline="") as f:
                writer = csv.writer(f)
                if header:
                    writer.writerow(header)
                writer.writerows(rows)
            written.append(path)
        rows = []
        header = None

    with open(source) as f:
        for line in f:
            line = line.rstrip()
            banner = re.match(r"== .*/(bench_\w+) ==", line)
            if banner:
                flush()
                harness = banner.group(1)
                section = None
                continue
            bracket = re.match(r"\[(.+)\]", line)
            if bracket:
                flush()
                section = bracket.group(1)
                continue
            tokens = line.split()
            if not tokens:
                continue
            numeric = sum(is_number(t) for t in tokens)
            if numeric >= max(2, len(tokens) - 2) and is_number(tokens[-1]):
                rows.append([t.rstrip("x%") if is_number(t) else t
                             for t in tokens])
            elif rows == [] and len(tokens) >= 3 and numeric == 0:
                header = tokens  # likely the column header line
    flush()

    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
