#!/usr/bin/env python3
"""Parse bench_output.txt into per-harness CSV files for plotting.

Usage:
    tools/parse_bench.py bench_output.txt out_dir/
    tools/parse_bench.py --kernel-json google_benchmark.json out.json

Emits one CSV per recognized table in the harness output (figure 5/6 style
series tables, the Figure 8 matrix, and the Table II query tables), named
after the harness and section, e.g.:

    out_dir/fig5_vbp_sum.csv
    out_dir/fig8_mt_simd.csv
    out_dir/table2_hbp.csv

The parser is intentionally forgiving: it keys on the harness banner lines
("== build/bench/bench_... ==") and on bracketed section headers, and turns
whitespace-separated numeric rows into CSV. Anything it does not recognize
is ignored, so harness prose can evolve freely.

The --kernel-json mode instead reads google-benchmark JSON output from
bench_kernels (run with --benchmark_format=json) and distills the
kernel-tier series into a compact record: one row per (benchmark, tier,
args) with items/second, plus per-benchmark speedups of each tier over the
scalar tier. This is the file committed as BENCH_kernels.json to track the
kernel perf trajectory across PRs.

With --compare BASELINE (only in --kernel-json mode), the fresh record is
additionally diffed against a previously committed record (e.g.
BENCH_kernels.json): rows are matched by (benchmark, tier, args) and the
run exits non-zero when any row's items/second fell below
(1 - --slowdown-threshold) of the baseline. The threshold defaults to 0.5
— shared CI runners are noisy, so only a halving is treated as a real
regression; the per-row ratios are always printed for eyeballing.
"""

import argparse
import csv
import json
import os
import re
import sys
from typing import Any

TIER_NAMES = {0: "scalar", 1: "sse", 2: "avx2", 3: "avx512"}


def parse_kernel_bench_name(
    name: str,
) -> tuple[str, int | None, dict[str, int]]:
    """Splits 'BM_VbpSum/tier:2/k:10' into ('BM_VbpSum', 2, {'k': 10})."""
    parts = name.split("/")
    tier: int | None = None
    args: dict[str, int] = {}
    for part in parts[1:]:
        if ":" in part:
            key, _, raw = part.partition(":")
            try:
                value = int(raw)
            except ValueError:
                continue
            if key == "tier":
                tier = value
            else:
                args[key] = value
    return parts[0], tier, args


def kernel_json_main(source: str, out_path: str) -> int:
    try:
        with open(source) as f:
            data = json.load(f)
    except OSError as e:
        print(f"parse_bench: cannot read {source}: {e}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as e:
        print(f"parse_bench: {source} is not valid JSON: {e}",
              file=sys.stderr)
        return 1

    rows: list[dict[str, Any]] = []
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        base, tier, args = parse_kernel_bench_name(bench.get("name", ""))
        if tier is None:
            continue  # not a tier-parameterized benchmark
        row: dict[str, Any] = {
            "benchmark": base,
            "tier": TIER_NAMES.get(tier, str(tier)),
            "args": args,
        }
        if "error_occurred" in bench:
            row["skipped"] = bench.get("error_message", "skipped")
        else:
            row["items_per_second"] = bench.get("items_per_second")
            row["cpu_time_ns"] = bench.get("cpu_time")
        rows.append(row)

    # Speedup of each tier over scalar, per (benchmark, non-tier args).
    speedups: dict[str, dict[str, float]] = {}
    by_key: dict[str, dict[str, float]] = {}
    for row in rows:
        if "items_per_second" not in row:
            continue
        key = row["benchmark"] + "".join(
            f"/{k}:{v}" for k, v in sorted(row["args"].items()))
        by_key.setdefault(key, {})[row["tier"]] = row["items_per_second"]
    for key, tiers in sorted(by_key.items()):
        scalar = tiers.get("scalar")
        if not scalar:
            continue
        speedups[key] = {
            f"{tier}_vs_scalar": round(rate / scalar, 3)
            for tier, rate in tiers.items() if tier != "scalar"
        }

    out = {
        "source": os.path.basename(source),
        # Which clock produced the numbers. google-benchmark reports
        # cpu_time in ns; the harness-text tables instead carry
        # cycles/tuple from obs::StageTimer (rdtsc) — see
        # docs/observability.md.
        "clock": "google-benchmark cpu_time (ns)",
        "context": {
            k: data.get("context", {}).get(k)
            for k in ("host_name", "num_cpus", "mhz_per_cpu", "date")
        },
        "benchmarks": rows,
        "speedups": speedups,
    }
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=False)
        f.write("\n")
    print(out_path)
    return 0


def row_key(row: dict[str, Any]) -> str:
    """Stable identity of one series: benchmark/tier plus sorted args."""
    args = "".join(
        f"/{k}:{v}" for k, v in sorted(row.get("args", {}).items()))
    return f"{row['benchmark']}/{row['tier']}{args}"


def compare_records(current_path: str, baseline_path: str,
                    slowdown_threshold: float) -> int:
    """Exit 1 when any matched row slowed past the threshold."""
    try:
        with open(current_path) as f:
            current = json.load(f)
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"parse_bench: cannot read comparison input: {e}",
              file=sys.stderr)
        return 1
    except json.JSONDecodeError as e:
        print(f"parse_bench: comparison input is not valid JSON: {e}",
              file=sys.stderr)
        return 1

    def rates(record: dict[str, Any]) -> dict[str, float]:
        out: dict[str, float] = {}
        for row in record.get("benchmarks", []):
            rate = row.get("items_per_second")
            if isinstance(rate, (int, float)) and rate > 0:
                out[row_key(row)] = float(rate)
        return out

    current_rates = rates(current)
    baseline_rates = rates(baseline)
    matched = sorted(set(current_rates) & set(baseline_rates))
    if not matched:
        print("parse_bench: no comparable rows between current and "
              "baseline", file=sys.stderr)
        return 1

    floor = 1.0 - slowdown_threshold
    regressions: list[str] = []
    for key in matched:
        ratio = current_rates[key] / baseline_rates[key]
        marker = "REGRESSED" if ratio < floor else "ok"
        print(f"  {key}: {ratio:.2f}x baseline [{marker}]")
        if ratio < floor:
            regressions.append(key)
    only = (set(current_rates) | set(baseline_rates)) - set(matched)
    if only:
        print(f"parse_bench: {len(only)} row(s) present on only one side "
              "(skipped)")
    if regressions:
        print(f"parse_bench: {len(regressions)} row(s) regressed past "
              f"{floor:.0%} of baseline: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"parse_bench: {len(matched)} row(s) within budget "
          f"(floor {floor:.0%} of baseline)")
    return 0


def slugify(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")


def is_number(token: str) -> bool:
    token = token.rstrip("x%")
    try:
        float(token)
        return True
    except ValueError:
        return False


# Exit codes: 0 success, 1 runtime error (unreadable/invalid input),
# 2 usage error (argparse's default for bad arguments).
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="parse_bench.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--kernel-json", action="store_true",
        help="treat SOURCE as google-benchmark JSON from bench_kernels and "
             "write the distilled kernel-tier record to OUT")
    parser.add_argument(
        "--compare", metavar="BASELINE",
        help="after distilling (--kernel-json only), diff against this "
             "previously committed record and exit non-zero on regression")
    parser.add_argument(
        "--slowdown-threshold", type=float, default=0.5,
        help="fraction of baseline throughput a row may lose before "
             "--compare fails (default 0.5)")
    parser.add_argument(
        "source", metavar="SOURCE",
        help="bench_output.txt (default mode) or google-benchmark JSON "
             "(--kernel-json)")
    parser.add_argument(
        "out", metavar="OUT",
        help="output directory for CSVs (default mode) or output JSON path "
             "(--kernel-json)")
    args = parser.parse_args(argv)

    if args.compare and not args.kernel_json:
        parser.error("--compare requires --kernel-json")
    if not 0.0 < args.slowdown_threshold < 1.0:
        parser.error("--slowdown-threshold must be in (0, 1)")
    if args.kernel_json:
        status = kernel_json_main(args.source, args.out)
        if status != 0 or not args.compare:
            return status
        return compare_records(args.out, args.compare,
                               args.slowdown_threshold)
    source, out_dir = args.source, args.out
    if not os.path.isfile(source):
        print(f"parse_bench: cannot read {source}: no such file",
              file=sys.stderr)
        return 1
    os.makedirs(out_dir, exist_ok=True)

    harness: str | None = None
    section: str | None = None
    rows: list[list[str]] = []
    header: list[str] | None = None
    written: list[str] = []

    def flush() -> None:
        nonlocal rows, header
        if harness and rows:
            name = slugify(harness.replace("bench_", ""))
            if section:
                name += "_" + slugify(section)
            path = os.path.join(out_dir, f"{name}.csv")
            with open(path, "w", newline="") as f:
                writer = csv.writer(f)
                if header:
                    writer.writerow(header)
                writer.writerows(rows)
            written.append(path)
        rows = []
        header = None

    with open(source) as f:
        for line in f:
            line = line.rstrip()
            banner = re.match(r"== .*/(bench_\w+) ==", line)
            if banner:
                flush()
                harness = banner.group(1)
                section = None
                continue
            bracket = re.match(r"\[(.+)\]", line)
            if bracket:
                flush()
                section = bracket.group(1)
                continue
            tokens = line.split()
            if not tokens:
                continue
            numeric = sum(is_number(t) for t in tokens)
            if numeric >= max(2, len(tokens) - 2) and is_number(tokens[-1]):
                rows.append([t.rstrip("x%") if is_number(t) else t
                             for t in tokens])
            elif rows == [] and len(tokens) >= 3 and numeric == 0:
                header = tokens  # likely the column header line
    flush()

    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
