#!/usr/bin/env python3
"""Validates a Prometheus text exposition (format 0.0.4).

CI pipes the admin plane's /metrics response (obs::MetricsText) through
this checker; the golden test in tests/admin_server_test.cc pins the
exact lines, this pins the grammar:

  * every line is a '# HELP', '# TYPE', a sample, or blank;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, HELP/TYPE appear at
    most once per family and TYPE precedes the family's samples;
  * sample values parse as floats (+Inf/-Inf/NaN allowed), no duplicate
    (name, labels) series;
  * every 'histogram' family has _sum, _count and at least one _bucket
    sample; bucket counts are non-decreasing in 'le' order and the
    le="+Inf" bucket equals _count.

Usage:
    tools/check_metrics.py metrics.txt      # or '-' for stdin
    tools/check_metrics.py --self-test

Exit codes: 0 valid, 1 invalid exposition, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
HELP_RE = re.compile(r"# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)\Z")
TYPE_RE = re.compile(
    r"# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(counter|gauge|histogram|summary|untyped)\Z"
)
SAMPLE_RE = re.compile(
    r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? ([^ ]+)( [0-9-]+)?\Z"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\Z')


def parse_value(token: str) -> float | None:
    """Parses a sample value; Prometheus allows +Inf/-Inf/NaN."""
    if token in ("+Inf", "Inf"):
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        return None


def parse_labels(block: str | None) -> dict[str, str] | None:
    """Parses '{a="x",b="y"}' into a dict; None on malformed labels."""
    if block is None:
        return {}
    labels: dict[str, str] = {}
    inner = block[1:-1].rstrip(",")
    if not inner:
        return labels
    for pair in inner.split(","):
        match = LABEL_RE.match(pair)
        if match is None:
            return None
        labels[match.group(1)] = match.group(2)
    return labels


def base_family(name: str, types: dict[str, str]) -> str:
    """Maps a _bucket/_sum/_count sample to its histogram family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            family = name[: -len(suffix)]
            if types.get(family) == "histogram":
                return family
    return name


class Checker:
    def __init__(self) -> None:
        self.errors: list[str] = []
        self.helps: dict[str, str] = {}
        self.types: dict[str, str] = {}
        # (name, sorted label items) -> value
        self.samples: dict[tuple[str, tuple[tuple[str, str], ...]], float]
        self.samples = {}
        self.sample_order: list[str] = []

    def error(self, line_no: int, message: str) -> None:
        self.errors.append(f"line {line_no}: {message}")

    def feed(self, line_no: int, line: str) -> None:
        if not line.strip():
            return
        if line.startswith("#"):
            self.feed_comment(line_no, line)
            return
        match = SAMPLE_RE.match(line)
        if match is None:
            self.error(line_no, f"unparsable sample line: {line!r}")
            return
        name, label_block, value_token = match.group(1, 2, 3)
        labels = parse_labels(label_block)
        if labels is None:
            self.error(line_no, f"malformed labels: {label_block!r}")
            return
        value = parse_value(value_token)
        if value is None:
            self.error(line_no, f"non-numeric value {value_token!r}")
            return
        family = base_family(name, self.types)
        key = (name, tuple(sorted(labels.items())))
        if key in self.samples:
            self.error(line_no, f"duplicate series {name}{label_block or ''}")
            return
        self.samples[key] = value
        self.sample_order.append(family)

    def feed_comment(self, line_no: int, line: str) -> None:
        if line.startswith("# HELP "):
            match = HELP_RE.match(line)
            if match is None:
                self.error(line_no, f"malformed HELP line: {line!r}")
                return
            name = match.group(1)
            if name in self.helps:
                self.error(line_no, f"duplicate HELP for {name}")
            self.helps[name] = match.group(2)
        elif line.startswith("# TYPE "):
            match = TYPE_RE.match(line)
            if match is None:
                self.error(line_no, f"malformed TYPE line: {line!r}")
                return
            name = match.group(1)
            if name in self.types:
                self.error(line_no, f"duplicate TYPE for {name}")
            if name in self.sample_order:
                self.error(
                    line_no, f"TYPE for {name} appears after its samples"
                )
            self.types[name] = match.group(2)
        # Other '#' lines are free-form comments per the format.

    def finish(self) -> None:
        for family, family_type in self.types.items():
            if family_type == "histogram":
                self.check_histogram(family)

    def check_histogram(self, family: str) -> None:
        buckets: list[tuple[float, float]] = []
        count: float | None = None
        has_sum = False
        for (name, labels), value in self.samples.items():
            if name == family + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    self.errors.append(
                        f"{family}: _bucket sample without an 'le' label"
                    )
                    return
                bound = parse_value(le)
                if bound is None:
                    self.errors.append(
                        f"{family}: unparsable le={le!r}"
                    )
                    return
                buckets.append((bound, value))
            elif name == family + "_count" and not labels:
                count = value
            elif name == family + "_sum" and not labels:
                has_sum = True
        if not buckets:
            self.errors.append(f"{family}: histogram has no _bucket samples")
            return
        if count is None:
            self.errors.append(f"{family}: histogram has no _count sample")
            return
        if not has_sum:
            self.errors.append(f"{family}: histogram has no _sum sample")
            return
        buckets.sort(key=lambda b: b[0])
        for (lo_le, lo), (hi_le, hi) in zip(
            buckets, buckets[1:], strict=False
        ):
            if hi < lo:
                self.errors.append(
                    f"{family}: bucket counts not cumulative "
                    f"(le={lo_le:g} -> {lo:g}, le={hi_le:g} -> {hi:g})"
                )
                return
        top_le, top = buckets[-1]
        if not math.isinf(top_le):
            self.errors.append(f"{family}: histogram has no le=\"+Inf\"")
            return
        if top != count:
            self.errors.append(
                f"{family}: le=\"+Inf\" bucket ({top:g}) != _count "
                f"({count:g})"
            )


def check_text(text: str) -> list[str]:
    checker = Checker()
    for line_no, line in enumerate(text.splitlines(), start=1):
        checker.feed(line_no, line)
    checker.finish()
    return checker.errors


GOLDEN_VALID = """\
# HELP icp_engine_queries queries the engine executed
# TYPE icp_engine_queries counter
icp_engine_queries 3
# HELP icp_query_latency_cycles end-to-end query latency
# TYPE icp_query_latency_cycles histogram
icp_query_latency_cycles_bucket{le="1"} 1
icp_query_latency_cycles_bucket{le="3"} 3
icp_query_latency_cycles_bucket{le="+Inf"} 3
icp_query_latency_cycles_sum 6
icp_query_latency_cycles_count 3
"""

# Each invalid case must trip exactly the described check.
SELF_TEST_INVALID: list[tuple[str, str]] = [
    ("unparsable sample", "icp{ 1\n"),
    ("non-numeric value", "icp_counter abc\n"),
    (
        "duplicate series",
        "icp_counter 1\nicp_counter 2\n",
    ),
    (
        "duplicate TYPE",
        "# TYPE icp_c counter\n# TYPE icp_c gauge\nicp_c 1\n",
    ),
    (
        "TYPE after samples",
        "icp_c 1\n# TYPE icp_c counter\n",
    ),
    (
        "malformed labels",
        'icp_c{le=1} 1\n',
    ),
    (
        "histogram without +Inf",
        "# TYPE icp_h histogram\n"
        'icp_h_bucket{le="1"} 1\nicp_h_sum 1\nicp_h_count 1\n',
    ),
    (
        "histogram +Inf != count",
        "# TYPE icp_h histogram\n"
        'icp_h_bucket{le="+Inf"} 2\nicp_h_sum 1\nicp_h_count 1\n',
    ),
    (
        "non-cumulative buckets",
        "# TYPE icp_h histogram\n"
        'icp_h_bucket{le="1"} 5\nicp_h_bucket{le="3"} 4\n'
        'icp_h_bucket{le="+Inf"} 5\nicp_h_sum 9\nicp_h_count 5\n',
    ),
    (
        "histogram without _sum",
        "# TYPE icp_h histogram\n"
        'icp_h_bucket{le="+Inf"} 1\nicp_h_count 1\n',
    ),
]


def self_test() -> int:
    failures: list[str] = []
    errors = check_text(GOLDEN_VALID)
    if errors:
        failures.append(f"golden exposition rejected: {errors}")
    if check_text(""):
        failures.append("empty exposition rejected (it is valid)")
    for label, text in SELF_TEST_INVALID:
        if not check_text(text):
            failures.append(f"invalid case accepted: {label}")
    if failures:
        for failure in failures:
            print(f"check_metrics self-test: {failure}", file=sys.stderr)
        return 1
    total = len(SELF_TEST_INVALID) + 2
    print(f"check_metrics self-test: {total} cases passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_metrics.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "source",
        metavar="SOURCE",
        nargs="?",
        help="exposition file, or '-' for stdin",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded golden/invalid cases and exit",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if args.source is None:
        parser.error("SOURCE is required unless --self-test")
    if args.source == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.source, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"check_metrics: cannot read {args.source}: {e}",
                  file=sys.stderr)
            return 1
    errors = check_text(text)
    if errors:
        for error in errors:
            print(f"check_metrics: {error}", file=sys.stderr)
        return 1
    families = len({name for name, _ in check_families(text)})
    print(
        f"check_metrics: valid exposition "
        f"({count_samples(text)} sample(s), {families} family(ies))"
    )
    return 0


def count_samples(text: str) -> int:
    return sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )


def check_families(text: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    for line in text.splitlines():
        match = TYPE_RE.match(line)
        if match is not None:
            out.append((match.group(1), match.group(2)))
    return out


if __name__ == "__main__":
    sys.exit(main())
