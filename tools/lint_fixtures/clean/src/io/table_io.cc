// Miniature failpoint-planting TU for the icp_lint self-test. The string
// literal below mentions "throw" to prove the linter ignores strings.
#include "util/failpoint.h"

namespace icp::io {

bool WriteTable(const char* path) {
  if (ICP_FAILPOINT("table_io/write")) {
    return false;  // behave as if the write failed; do not "throw"
  }
  return path != nullptr;
}

}  // namespace icp::io
