// Miniature observability registry for the icp_lint self-test: one
// catalogued counter and one catalogued histogram, synced with the
// fixture docs/observability.md.
#define ICP_OBS_DEFINE_COUNTER(fn, counter_name, counter_help) \
  int fn##_fixture = 0;
#define ICP_OBS_DEFINE_HISTOGRAM(fn, histogram_name, histogram_help) \
  int fn##_fixture = 0;

ICP_OBS_DEFINE_COUNTER(ScanWordsExamined, "scan.words_examined",
                       "memory words read by the bit-parallel scans")

ICP_OBS_DEFINE_HISTOGRAM(QueryLatencyCycles, "query.latency_cycles",
                         "end-to-end engine query latency")
