// Sanctioned SIMD TU: raw intrinsics are allowed here, and the self-test
// asserts the linter stays quiet about them.
#include "simd/dispatch.h"

#if defined(__AVX2__)
#include <immintrin.h>

namespace icp::kern {

__m256i AddLanes(__m256i a, __m256i b) { return _mm256_add_epi64(a, b); }

}  // namespace icp::kern
#endif
