// Miniature kernel registry used by the icp_lint self-test. Mirrors the
// real header's shape: a KernelOps struct of function-pointer slots. The
// comment below intentionally mentions #ifdef __AVX2__ and _mm256_add_epi64
// to prove the linter ignores comments.
#ifndef FIXTURE_DISPATCH_H_
#define FIXTURE_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace icp::kern {

using Word = std::uint64_t;

struct KernelOps {
  const char* name;

  // sum_i popcount(words[i])
  std::uint64_t (*popcount_words)(const Word* words, std::size_t n);

  // dst[i] (op)= src[i]
  void (*combine_words)(Word* dst, const Word* src, std::size_t n, int op);
};

const KernelOps& Ops();

}  // namespace icp::kern

#endif  // FIXTURE_DISPATCH_H_
