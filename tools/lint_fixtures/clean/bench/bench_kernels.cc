// Miniature kernel benchmark TU: one slot benchmarked directly, the other
// through an annotated higher-level entry point.
#include "simd/dispatch.h"

namespace icp::bench {

void BM_Count() {
  kern::Word w = 1;
  (void)kern::Ops().popcount_words(&w, 1);
}

// exercises: combine_words
void BM_FilterAnd() {
  // Drives combine_words through a higher-level helper in the real tree.
}

}  // namespace icp::bench
