// Miniature cross-tier agreement test referencing every KernelOps slot.
#include "simd/dispatch.h"

namespace icp {

void CheckAllSlots() {
  const kern::KernelOps& ops = kern::Ops();
  kern::Word w = 1;
  (void)ops.popcount_words(&w, 1);
  ops.combine_words(&w, &w, 1, 0);
}

}  // namespace icp
