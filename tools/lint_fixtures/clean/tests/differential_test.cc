// Miniature differential harness: drives both fixture slots through the
// engine entry point, one directly and one via an annotation.
#include "simd/dispatch.h"

namespace icp {

// exercises: combine_words
void DiffAllSlots() {
  kern::Word w = 1;
  (void)kern::Ops().popcount_words(&w, 1);
}

}  // namespace icp
