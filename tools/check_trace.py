#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by obs::WriteChromeTrace.

Checks the shape CI relies on:

  * top level is an object with a "traceEvents" list (the format Perfetto
    and chrome://tracing load);
  * every event is a complete-duration span: ph == "X", a non-empty
    string name, numeric ts/dur with dur >= 0, integer pid/tid;
  * at least --min-events events (default 1), so an engine run that
    recorded nothing fails loudly;
  * every span lies within the file's overall [min_ts, max_ts + dur]
    window (a calibration bug shows up as spans light-years off-axis);
  * --require NAME (repeatable): at least one span carries that exact
    name — CI asserts the admission.wait and query.slow spans this way;
  * --check-nesting: within each (pid, tid) track, spans either nest or
    are disjoint; a partial overlap means two RAII spans closed out of
    order or the clock calibration drifted mid-run.

Usage:
    tools/check_trace.py trace.json [--min-events N] [--require NAME]...
                         [--check-nesting]

Exit codes: 0 valid, 1 invalid trace, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def fail(message: str) -> int:
    print(f"check_trace: {message}", file=sys.stderr)
    return 1


def check_event(index: int, event: Any) -> str | None:
    """Returns an error string for a malformed event, else None."""
    if not isinstance(event, dict):
        return f"event {index} is not an object"
    name = event.get("name")
    if not isinstance(name, str) or not name:
        return f"event {index} has no non-empty string 'name'"
    if event.get("ph") != "X":
        return f"event {index} ('{name}') is not a complete span (ph != X)"
    for key in ("ts", "dur"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return f"event {index} ('{name}') has non-numeric '{key}'"
    if float(event["dur"]) < 0:
        return f"event {index} ('{name}') has negative duration"
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            return f"event {index} ('{name}') has non-integer '{key}'"
    return None


# Sub-microsecond slack for boundary comparisons: sibling spans share
# boundaries exactly in cycles but the cycle->us conversion rounds.
NESTING_EPSILON_US = 0.01


def check_nesting(events: list[Any]) -> str | None:
    """Returns an error for a partial overlap within a track, else None."""
    tracks: dict[tuple[int, int], list[Any]] = {}
    for event in events:
        tracks.setdefault((int(event["pid"]), int(event["tid"])), []).append(
            event
        )
    for (pid, tid), spans in sorted(tracks.items()):
        # Longest-first at equal start so a parent precedes the children
        # it encloses.
        spans.sort(key=lambda e: (float(e["ts"]), -float(e["dur"])))
        stack: list[tuple[float, str]] = []  # (end, name)
        for event in spans:
            start = float(event["ts"])
            end = start + float(event["dur"])
            name = str(event["name"])
            while stack and stack[-1][0] <= start + NESTING_EPSILON_US:
                stack.pop()
            if stack and end > stack[-1][0] + NESTING_EPSILON_US:
                return (
                    f"track pid={pid} tid={tid}: '{name}' "
                    f"[{start:.3f}, {end:.3f}] partially overlaps "
                    f"'{stack[-1][1]}' ending at {stack[-1][0]:.3f}"
                )
            stack.append((end, name))
    return None


def check_trace(
    path: str,
    min_events: int,
    required: list[str] | None = None,
    nesting: bool = False,
) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        return fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{path} is not valid JSON: {e}")

    if not isinstance(data, dict):
        return fail("top level is not an object")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return fail("no 'traceEvents' list at top level")
    if len(events) < min_events:
        return fail(
            f"only {len(events)} event(s), expected at least {min_events}"
        )

    for i, event in enumerate(events):
        error = check_event(i, event)
        if error is not None:
            return fail(error)

    names = {str(e["name"]) for e in events}
    for name in required or []:
        if name not in names:
            return fail(
                f"no span named '{name}' (saw: {', '.join(sorted(names))})"
            )
    if nesting:
        error = check_nesting(events)
        if error is not None:
            return fail(error)

    if events:
        starts = [float(e["ts"]) for e in events]
        ends = [float(e["ts"]) + float(e["dur"]) for e in events]
        window = max(ends) - min(starts)
        # A calibration bug scatters spans across hours; real recordings
        # from one process run fit comfortably in an hour.
        if window > 3_600_000_000:  # microseconds
            return fail(
                f"span window is {window / 1e6:.0f}s wide; cycle-to-time "
                "calibration looks broken"
            )
        tids = sorted({int(e["tid"]) for e in events})
        print(
            f"check_trace: {len(events)} span(s) on {len(tids)} track(s) "
            f"({window / 1e3:.3f} ms window)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_trace.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("trace", metavar="TRACE", help="trace JSON path")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail unless the trace holds at least this many spans "
        "(default 1)",
    )
    parser.add_argument(
        "--require",
        metavar="NAME",
        action="append",
        default=[],
        help="fail unless at least one span carries this exact name "
        "(repeatable)",
    )
    parser.add_argument(
        "--check-nesting",
        action="store_true",
        help="fail on partially overlapping spans within one "
        "(pid, tid) track",
    )
    args = parser.parse_args(argv)
    return check_trace(
        args.trace, args.min_events, args.require, args.check_nesting
    )


if __name__ == "__main__":
    sys.exit(main())
