#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by obs::WriteChromeTrace.

Checks the shape CI relies on:

  * top level is an object with a "traceEvents" list (the format Perfetto
    and chrome://tracing load);
  * every event is a complete-duration span: ph == "X", a non-empty
    string name, numeric ts/dur with dur >= 0, integer pid/tid;
  * at least --min-events events (default 1), so an engine run that
    recorded nothing fails loudly;
  * every span lies within the file's overall [min_ts, max_ts + dur]
    window (a calibration bug shows up as spans light-years off-axis).

Usage:
    tools/check_trace.py trace.json [--min-events N]

Exit codes: 0 valid, 1 invalid trace, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def fail(message: str) -> int:
    print(f"check_trace: {message}", file=sys.stderr)
    return 1


def check_event(index: int, event: Any) -> str | None:
    """Returns an error string for a malformed event, else None."""
    if not isinstance(event, dict):
        return f"event {index} is not an object"
    name = event.get("name")
    if not isinstance(name, str) or not name:
        return f"event {index} has no non-empty string 'name'"
    if event.get("ph") != "X":
        return f"event {index} ('{name}') is not a complete span (ph != X)"
    for key in ("ts", "dur"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return f"event {index} ('{name}') has non-numeric '{key}'"
    if float(event["dur"]) < 0:
        return f"event {index} ('{name}') has negative duration"
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            return f"event {index} ('{name}') has non-integer '{key}'"
    return None


def check_trace(path: str, min_events: int) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        return fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{path} is not valid JSON: {e}")

    if not isinstance(data, dict):
        return fail("top level is not an object")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return fail("no 'traceEvents' list at top level")
    if len(events) < min_events:
        return fail(
            f"only {len(events)} event(s), expected at least {min_events}"
        )

    for i, event in enumerate(events):
        error = check_event(i, event)
        if error is not None:
            return fail(error)

    if events:
        starts = [float(e["ts"]) for e in events]
        ends = [float(e["ts"]) + float(e["dur"]) for e in events]
        window = max(ends) - min(starts)
        # A calibration bug scatters spans across hours; real recordings
        # from one process run fit comfortably in an hour.
        if window > 3_600_000_000:  # microseconds
            return fail(
                f"span window is {window / 1e6:.0f}s wide; cycle-to-time "
                "calibration looks broken"
            )
        tids = sorted({int(e["tid"]) for e in events})
        print(
            f"check_trace: {len(events)} span(s) on {len(tids)} track(s) "
            f"({window / 1e3:.3f} ms window)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_trace.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("trace", metavar="TRACE", help="trace JSON path")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail unless the trace holds at least this many spans "
        "(default 1)",
    )
    args = parser.parse_args(argv)
    return check_trace(args.trace, args.min_events)


if __name__ == "__main__":
    sys.exit(main())
