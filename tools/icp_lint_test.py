#!/usr/bin/env python3
"""Self-test for tools/icp_lint.py.

Each test copies the clean fixture tree (tools/lint_fixtures/clean) into a
temp dir, plants one violation, runs the linter as a subprocess, and
asserts the expected rule fires with a file:line message. A clean-tree run
asserts zero findings, and a real-tree regression case rewrites the actual
src/core/vbp_aggregate.cc to bypass the kernel registry with a raw
#ifdef __AVX2__ block — the bug class PR 3 fixed — and asserts ICP001
catches it.

Run directly (`python3 tools/icp_lint_test.py`) or via ctest
(`ctest -R icp_lint`).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
LINTER = os.path.join(TOOLS_DIR, "icp_lint.py")
CLEAN_FIXTURE = os.path.join(TOOLS_DIR, "lint_fixtures", "clean")


def run_linter(root: str, *extra: str) -> tuple[int, str, str]:
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", root, *extra],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout, proc.stderr


def write(root: str, relpath: str, content: str) -> None:
    path = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


class LintFixtureTest(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="icp_lint_test_")
        self.root = self._tmp.name
        shutil.copytree(CLEAN_FIXTURE, self.root, dirs_exist_ok=True)

    def tearDown(self) -> None:
        self._tmp.cleanup()

    def assert_finding(
        self, rule: str, needle: str, expect_path: str | None = None
    ) -> None:
        code, out, _ = run_linter(self.root)
        self.assertEqual(code, 1, f"expected findings, got:\n{out}")
        matching = [
            line
            for line in out.splitlines()
            if f"[{rule}]" in line and needle in line
        ]
        self.assertTrue(
            matching, f"no [{rule}] finding mentioning {needle!r} in:\n{out}"
        )
        if expect_path is not None:
            self.assertTrue(
                any(line.startswith(expect_path + ":") for line in matching),
                f"finding does not point at {expect_path}:<line>:\n{out}",
            )

    def test_clean_tree_has_zero_findings(self) -> None:
        code, out, err = run_linter(self.root)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")
        self.assertEqual(out, "")

    def test_rogue_intrinsic_fires(self) -> None:
        write(
            self.root,
            "src/core/vbp_aggregate.cc",
            "#ifdef __AVX2__\n"
            "#include <immintrin.h>\n"
            "__m256i Rogue(__m256i a) { return _mm256_add_epi64(a, a); }\n"
            "#endif\n",
        )
        self.assert_finding(
            "ICP001", "_mm256_add_epi64", "src/core/vbp_aggregate.cc"
        )
        self.assert_finding("ICP001", "__AVX2__")

    def test_real_vbp_aggregate_bypass_is_caught(self) -> None:
        # The acceptance-criterion case: take the real registry-routed
        # vbp_aggregate.cc, strip its kern::Ops() routing line, and splice
        # in a raw intrinsics block — the exact shape of the pre-PR-3
        # dispatch bypass. Harmless here: the copy lives in the fixture
        # tree and is never compiled.
        real = os.path.join(REPO_ROOT, "src", "core", "vbp_aggregate.cc")
        with open(real, encoding="utf-8") as f:
            lines = f.readlines()
        routed = [i for i, line in enumerate(lines) if "kern::" in line]
        self.assertTrue(routed, "real vbp_aggregate.cc no longer routes "
                        "through kern:: — update this test")
        bypass = (
            "#ifdef __AVX2__\n"
            "  // simulated dispatch bypass (pre-PR-3 bug class)\n"
            "  __m256i acc = _mm256_setzero_si256();\n"
            "#endif\n"
        )
        lines[routed[0]] = bypass
        write(self.root, "src/core/vbp_aggregate.cc", "".join(lines))
        self.assert_finding("ICP001", "__AVX2__", "src/core/vbp_aggregate.cc")
        self.assert_finding("ICP001", "_mm256_setzero_si256")

    def test_throw_fires(self) -> None:
        write(
            self.root,
            "tests/bad_test.cc",
            "void f() { throw 42; }\n",
        )
        self.assert_finding("ICP002", "throw", "tests/bad_test.cc")

    def test_try_catch_fires(self) -> None:
        write(
            self.root,
            "src/io/bad.cc",
            "void f() {\n  try {\n  } catch (...) {\n  }\n}\n",
        )
        self.assert_finding("ICP002", "try", "src/io/bad.cc")

    def test_throw_in_comment_or_string_is_ignored(self) -> None:
        write(
            self.root,
            "src/io/ok.cc",
            '// never throw here\nconst char* k = "try { throw; }";\n',
        )
        code, out, _ = run_linter(self.root)
        self.assertEqual(code, 0, out)

    def test_unregistered_failpoint_fires(self) -> None:
        write(
            self.root,
            "src/io/extra.cc",
            '#include "util/failpoint.h"\n'
            "bool Sync() {\n"
            '  return !ICP_FAILPOINT("table_io/fsync");\n'
            "}\n",
        )
        self.assert_finding(
            "ICP003", "table_io/fsync", "src/io/extra.cc"
        )

    def test_duplicate_failpoint_name_fires(self) -> None:
        write(
            self.root,
            "src/io/dup.cc",
            '#include "util/failpoint.h"\n'
            "bool Again() {\n"
            '  return ICP_FAILPOINT("table_io/write");\n'
            "}\n",
        )
        self.assert_finding("ICP003", "more than one site")

    def test_stale_doc_failpoint_fires(self) -> None:
        doc = os.path.join(self.root, "docs", "robustness.md")
        with open(doc, "a", encoding="utf-8") as f:
            f.write("| `csv_loader/open` | gone | stale row |\n")
        self.assert_finding(
            "ICP003", "csv_loader/open", "docs/robustness.md"
        )

    def test_missing_slot_coverage_fires(self) -> None:
        header = os.path.join(self.root, "src", "simd", "dispatch.h")
        with open(header, encoding="utf-8") as f:
            text = f.read()
        text = text.replace(
            "void (*combine_words)(Word* dst, const Word* src, std::size_t "
            "n, int op);\n",
            "void (*combine_words)(Word* dst, const Word* src, std::size_t "
            "n, int op);\n\n  // masked popcount over a strided plane\n  "
            "std::uint64_t (*masked_popcount)(const Word* d, std::size_t "
            "n);\n",
        )
        with open(header, "w", encoding="utf-8") as f:
            f.write(text)
        self.assert_finding(
            "ICP004", "masked_popcount", "src/simd/dispatch.h"
        )
        code, out, _ = run_linter(self.root)
        both = [
            line
            for line in out.splitlines()
            if "masked_popcount" in line
        ]
        self.assertEqual(
            len(both), 3,
            f"expected test + bench + differential findings:\n{out}",
        )

    def test_unknown_exercises_annotation_fires(self) -> None:
        bench = os.path.join(self.root, "bench", "bench_kernels.cc")
        with open(bench, "a", encoding="utf-8") as f:
            f.write("\n// exercises: bogus_slot\nvoid BM_Bogus() {}\n")
        self.assert_finding(
            "ICP004", "bogus_slot", "bench/bench_kernels.cc"
        )

    def test_missing_differential_coverage_fires(self) -> None:
        # Drop the annotation that covers combine_words in the fixture
        # differential harness; only the differential finding should fire
        # (dispatch_test and bench still cover the slot).
        diff = os.path.join(self.root, "tests", "differential_test.cc")
        with open(diff, encoding="utf-8") as f:
            text = f.read()
        with open(diff, "w", encoding="utf-8") as f:
            f.write(text.replace("// exercises: combine_words\n", ""))
        self.assert_finding(
            "ICP004", "differential-harness", "src/simd/dispatch.h"
        )
        _, out, _ = run_linter(self.root)
        hits = [ln for ln in out.splitlines() if "combine_words" in ln]
        self.assertEqual(len(hits), 1, f"expected one finding:\n{out}")

    def test_uncatalogued_counter_fires(self) -> None:
        write(
            self.root,
            "src/obs/extra.cc",
            'ICP_OBS_DEFINE_COUNTER(Mystery, "engine.mystery",\n'
            '                       "a counter the doc never heard of")\n',
        )
        self.assert_finding(
            "ICP005", "engine.mystery", "src/obs/extra.cc"
        )

    def test_stale_doc_counter_fires(self) -> None:
        doc = os.path.join(self.root, "docs", "observability.md")
        with open(doc, "a", encoding="utf-8") as f:
            f.write("| `scan.words_imagined` | gone | stale row |\n")
        self.assert_finding(
            "ICP005", "scan.words_imagined", "docs/observability.md"
        )

    def test_uncatalogued_histogram_fires(self) -> None:
        write(
            self.root,
            "src/obs/extra_histogram.cc",
            'ICP_OBS_DEFINE_HISTOGRAM(MysteryCycles, "engine.mystery_'
            'cycles",\n'
            '                         "a histogram the doc never heard '
            'of")\n',
        )
        self.assert_finding(
            "ICP005", "engine.mystery_cycles", "src/obs/extra_histogram.cc"
        )
        _, out, _ = run_linter(self.root)
        self.assertIn("histogram 'engine.mystery_cycles'", out)

    def test_stale_doc_histogram_entry_fires(self) -> None:
        doc = os.path.join(self.root, "docs", "observability.md")
        with open(doc, "a", encoding="utf-8") as f:
            f.write("| `query.imagined_cycles` | gone | stale row |\n")
        self.assert_finding(
            "ICP005", "query.imagined_cycles", "docs/observability.md"
        )

    def test_histogram_reusing_counter_name_fires(self) -> None:
        write(
            self.root,
            "src/obs/name_clash.cc",
            'ICP_OBS_DEFINE_HISTOGRAM(ScanWordsExaminedHist,\n'
            '                         "scan.words_examined", "clash")\n',
        )
        self.assert_finding("ICP005", "more than once")

    def test_duplicate_counter_name_fires(self) -> None:
        write(
            self.root,
            "src/obs/dup.cc",
            'ICP_OBS_DEFINE_COUNTER(ScanWordsExamined2,\n'
            '                       "scan.words_examined", "duplicate")\n',
        )
        self.assert_finding("ICP005", "more than once")

    def test_doc_file_mentions_are_not_counters(self) -> None:
        # Dotted file names in backticks (trace.json and friends) must not
        # be mistaken for catalogued counters.
        doc = os.path.join(self.root, "docs", "observability.md")
        with open(doc, "a", encoding="utf-8") as f:
            f.write("\nSee `trace.json` and `tools/check_trace.py`.\n")
        code, out, _ = run_linter(self.root)
        self.assertEqual(code, 0, out)

    def test_sanctioned_tu_intrinsics_do_not_fire(self) -> None:
        # agg_kernels.cc in the clean fixture is full of intrinsics; the
        # clean run already proves it, but keep an explicit regression
        # guard in case the sanctioned list regresses.
        code, out, _ = run_linter(self.root)
        self.assertEqual(code, 0, out)
        self.assertNotIn("agg_kernels.cc", out)

    def test_findings_carry_file_line_prefix(self) -> None:
        write(self.root, "src/io/bad.cc", "void f() { throw 1; }\n")
        _, out, _ = run_linter(self.root)
        first = out.splitlines()[0]
        path, line, rest = first.split(":", 2)
        self.assertEqual(path, "src/io/bad.cc")
        self.assertTrue(line.isdigit())
        self.assertIn("[ICP002]", rest)


class ChangedOnlyTest(unittest.TestCase):
    """--changed-only: report only findings in files changed vs a base
    ref (rules still run over the whole tree)."""

    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="icp_lint_git_")
        self.root = self._tmp.name
        shutil.copytree(CLEAN_FIXTURE, self.root, dirs_exist_ok=True)
        self._git("init", "--quiet", "--initial-branch=main")
        self._git("add", "-A")
        self._git("commit", "--quiet", "-m", "fixture baseline")

    def tearDown(self) -> None:
        self._tmp.cleanup()

    def _git(self, *args: str) -> None:
        subprocess.run(
            [
                "git",
                "-C",
                self.root,
                "-c",
                "user.email=lint@test",
                "-c",
                "user.name=lint",
                *args,
            ],
            check=True,
            capture_output=True,
        )

    def test_new_violation_is_reported(self) -> None:
        write(self.root, "src/io/bad.cc", "void f() { throw 1; }\n")
        code, out, _ = run_linter(self.root, "--changed-only")
        self.assertEqual(code, 1, out)
        self.assertIn("[ICP002]", out)
        self.assertIn("src/io/bad.cc", out)

    def test_preexisting_violation_is_filtered(self) -> None:
        # Commit a violation into the baseline, then change an unrelated
        # file: the filtered run passes while the full run still fails,
        # proving the filter works on the report, not the rules.
        write(self.root, "src/io/bad.cc", "void f() { throw 1; }\n")
        self._git("add", "-A")
        self._git("commit", "--quiet", "-m", "baseline violation")
        write(self.root, "src/io/fine.cc", "int ok() { return 1; }\n")
        code, out, _ = run_linter(
            self.root, "--changed-only", "--base-ref", "HEAD"
        )
        self.assertEqual(code, 0, out)
        full_code, full_out, _ = run_linter(self.root)
        self.assertEqual(full_code, 1, full_out)
        self.assertIn("src/io/bad.cc", full_out)

    def test_explicit_base_ref_diffs_against_it(self) -> None:
        write(self.root, "src/io/bad.cc", "void f() { throw 1; }\n")
        self._git("add", "-A")
        self._git("commit", "--quiet", "-m", "bad commit")
        code, out, _ = run_linter(
            self.root, "--changed-only", "--base-ref", "HEAD~1"
        )
        self.assertEqual(code, 1, out)
        self.assertIn("src/io/bad.cc", out)

    def test_outside_git_worktree_exits_2(self) -> None:
        with tempfile.TemporaryDirectory(prefix="icp_lint_nogit_") as plain:
            shutil.copytree(CLEAN_FIXTURE, plain, dirs_exist_ok=True)
            code, _, err = run_linter(plain, "--changed-only")
            self.assertEqual(code, 2, err)
            self.assertIn("git work tree", err)


class RealTreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self) -> None:
        code, out, err = run_linter(REPO_ROOT)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")


if __name__ == "__main__":
    unittest.main()
