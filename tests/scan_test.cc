#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "bitvector/filter_bit_vector.h"
#include "layout/hbp_column.h"
#include "layout/naive_column.h"
#include "layout/vbp_column.h"
#include "scan/hbp_scanner.h"
#include "scan/naive_scanner.h"
#include "scan/predicate.h"
#include "scan/vbp_scanner.h"
#include "util/random.h"

namespace icp {
namespace {

std::vector<std::uint64_t> RandomCodes(std::size_t n, int k,
                                       std::uint64_t seed) {
  Random rng(seed);
  std::vector<std::uint64_t> codes(n);
  for (auto& c : codes) c = rng.UniformInt(0, LowMask(k));
  return codes;
}

std::vector<bool> ReferenceScan(const std::vector<std::uint64_t>& codes,
                                CompareOp op, std::uint64_t c1,
                                std::uint64_t c2) {
  std::vector<bool> out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = EvalCompare(codes[i], op, c1, c2);
  }
  return out;
}

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe,
                                 CompareOp::kBetween};

TEST(HbpFieldGeTest, MatchesPerFieldComparison) {
  // Exhaustive over 3-bit fields (s = 4) in a 16-field word: spot-check with
  // random field vectors.
  Random rng(21);
  const int s = 4;
  const Word md = DelimiterMask(s);
  for (int trial = 0; trial < 2000; ++trial) {
    Word x = 0, c = 0;
    std::uint64_t xf[16], cf[16];
    for (int f = 0; f < 16; ++f) {
      xf[f] = rng.UniformInt(0, 7);
      cf[f] = rng.UniformInt(0, 7);
      x |= xf[f] << (64 - (f + 1) * s);
      c |= cf[f] << (64 - (f + 1) * s);
    }
    const Word ge = hbp::FieldGe(x, c, md);
    for (int f = 0; f < 16; ++f) {
      const bool bit = (ge >> (63 - f * s)) & 1;
      ASSERT_EQ(bit, xf[f] >= cf[f]) << "f=" << f;
    }
  }
}

// Scans both layouts across ops, widths and constants and compares with the
// scalar oracle.
class ScanAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, CompareOp>> {};

TEST_P(ScanAgreementTest, VbpMatchesOracle) {
  const auto [k, op] = GetParam();
  const std::size_t n = 1000;
  const auto codes = RandomCodes(n, k, 7 + k);
  const VbpColumn col = VbpColumn::Pack(codes, k);
  Random rng(k * 1000 + static_cast<int>(op));
  for (int trial = 0; trial < 8; ++trial) {
    std::uint64_t c1 = rng.UniformInt(0, LowMask(k));
    std::uint64_t c2 = rng.UniformInt(0, LowMask(k));
    if (op == CompareOp::kBetween && c1 > c2) std::swap(c1, c2);
    const FilterBitVector f = VbpScanner::Scan(col, op, c1, c2);
    ASSERT_EQ(f.ToBools(), ReferenceScan(codes, op, c1, c2))
        << "k=" << k << " op=" << CompareOpToString(op) << " c1=" << c1
        << " c2=" << c2;
  }
}

TEST_P(ScanAgreementTest, HbpMatchesOracle) {
  const auto [k, op] = GetParam();
  const std::size_t n = 1000;
  const auto codes = RandomCodes(n, k, 13 + k);
  const HbpColumn col = HbpColumn::Pack(codes, k);
  Random rng(k * 2000 + static_cast<int>(op));
  for (int trial = 0; trial < 8; ++trial) {
    std::uint64_t c1 = rng.UniformInt(0, LowMask(k));
    std::uint64_t c2 = rng.UniformInt(0, LowMask(k));
    if (op == CompareOp::kBetween && c1 > c2) std::swap(c1, c2);
    const FilterBitVector f = HbpScanner::Scan(col, op, c1, c2);
    ASSERT_EQ(f.ToBools(), ReferenceScan(codes, op, c1, c2))
        << "k=" << k << " op=" << CompareOpToString(op) << " c1=" << c1
        << " c2=" << c2;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndWidths, ScanAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 12, 25, 33, 50),
                       ::testing::ValuesIn(kAllOps)));

TEST(ScanTest, PaperFigure3Predicate) {
  // Paper Fig. 3b: v < 4 over values 1,7,2,1,6,0,2,7 marks v1.
  const std::vector<std::uint64_t> codes = {1, 7, 2, 1, 6, 0, 2, 7};
  const HbpColumn col = HbpColumn::Pack(codes, 3, {.tau = 3});
  const FilterBitVector f = HbpScanner::Scan(col, CompareOp::kLt, 4);
  const std::vector<bool> expected = {true,  false, true, true,
                                      false, true,  true, false};
  EXPECT_EQ(f.ToBools(), expected);
}

TEST(ScanTest, PaperFigure2Predicate) {
  // Paper Fig. 2: v == 4 over 1,7,2,1,6,0,2,7 matches nothing; the example
  // early-stops after two of three bit positions.
  const std::vector<std::uint64_t> codes = {1, 7, 2, 1, 6, 0, 2, 7};
  const VbpColumn col = VbpColumn::Pack(codes, 3, {.tau = 1});
  ScanStats stats;
  const FilterBitVector f =
      VbpScanner::Scan(col, CompareOp::kEq, 4, 0, &stats);
  EXPECT_EQ(f.CountOnes(), 0u);
  EXPECT_EQ(stats.segments_early_stopped, 1u);
  EXPECT_EQ(stats.words_examined, 2u);  // stopped before the third word
}

TEST(ScanTest, ConstantsOutsideDomain) {
  const auto codes = RandomCodes(200, 8, 31);
  const VbpColumn vbp = VbpColumn::Pack(codes, 8);
  const HbpColumn hbp = HbpColumn::Pack(codes, 8);
  // c >= 2^k.
  EXPECT_EQ(VbpScanner::Scan(vbp, CompareOp::kLt, 256).CountOnes(), 200u);
  EXPECT_EQ(HbpScanner::Scan(hbp, CompareOp::kLt, 256).CountOnes(), 200u);
  EXPECT_EQ(VbpScanner::Scan(vbp, CompareOp::kGt, 300).CountOnes(), 0u);
  EXPECT_EQ(HbpScanner::Scan(hbp, CompareOp::kGt, 300).CountOnes(), 0u);
  EXPECT_EQ(VbpScanner::Scan(vbp, CompareOp::kEq, 999).CountOnes(), 0u);
  EXPECT_EQ(HbpScanner::Scan(hbp, CompareOp::kNe, 999).CountOnes(), 200u);
  // BETWEEN with c2 beyond the domain is clamped; with c1 > c2 it is empty.
  EXPECT_EQ(
      VbpScanner::Scan(vbp, CompareOp::kBetween, 0, 1000000).CountOnes(),
      200u);
  EXPECT_EQ(
      HbpScanner::Scan(hbp, CompareOp::kBetween, 0, 1000000).CountOnes(),
      200u);
  EXPECT_EQ(VbpScanner::Scan(vbp, CompareOp::kBetween, 9, 3).CountOnes(), 0u);
  EXPECT_EQ(HbpScanner::Scan(hbp, CompareOp::kBetween, 9, 3).CountOnes(), 0u);
}

TEST(ScanTest, BoundaryConstants) {
  const auto codes = RandomCodes(500, 10, 37);
  const VbpColumn vbp = VbpColumn::Pack(codes, 10);
  const HbpColumn hbp = HbpColumn::Pack(codes, 10);
  for (std::uint64_t c : {std::uint64_t{0}, LowMask(10)}) {
    for (CompareOp op : kAllOps) {
      const auto expected = ReferenceScan(codes, op, c, c);
      EXPECT_EQ(VbpScanner::Scan(vbp, op, c, c).ToBools(), expected)
          << CompareOpToString(op) << " c=" << c;
      EXPECT_EQ(HbpScanner::Scan(hbp, op, c, c).ToBools(), expected)
          << CompareOpToString(op) << " c=" << c;
    }
  }
}

TEST(ScanTest, PredicateCombination) {
  // Section II-E: complex predicates combine per-column filter vectors.
  const std::size_t n = 600;
  const auto a_codes = RandomCodes(n, 8, 41);
  const auto b_codes = RandomCodes(n, 8, 43);
  const VbpColumn a = VbpColumn::Pack(a_codes, 8);
  const VbpColumn b = VbpColumn::Pack(b_codes, 8);
  FilterBitVector fa = VbpScanner::Scan(a, CompareOp::kGt, 100);
  const FilterBitVector fb = VbpScanner::Scan(b, CompareOp::kEq, 10);
  fa.And(fb);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fa.GetBit(i), a_codes[i] > 100 && b_codes[i] == 10) << i;
  }
}

TEST(ScanTest, CrossLayoutCombinationViaReshape) {
  const std::size_t n = 600;
  const auto a_codes = RandomCodes(n, 8, 51);
  const auto b_codes = RandomCodes(n, 6, 53);
  const VbpColumn a = VbpColumn::Pack(a_codes, 8);
  const HbpColumn b = HbpColumn::Pack(b_codes, 6, {.tau = 6});
  FilterBitVector fa = VbpScanner::Scan(a, CompareOp::kLe, 77);
  const FilterBitVector fb = HbpScanner::Scan(b, CompareOp::kGe, 20);
  fa.And(fb.Reshape(fa.values_per_segment()));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fa.GetBit(i), a_codes[i] <= 77 && b_codes[i] >= 20) << i;
  }
}

TEST(ScanTest, NaiveScannerOracleAgreesWithItself) {
  const auto codes = RandomCodes(300, 12, 61);
  const NaiveColumn col = NaiveColumn::Pack(codes, 12);
  const FilterBitVector f = NaiveScanner::Scan(col, CompareOp::kLt, 2000);
  EXPECT_EQ(f.ToBools(), ReferenceScan(codes, CompareOp::kLt, 2000, 0));
}

TEST(ScanTest, EarlyStopStatsSkewedData) {
  // All-zero data against a constant with a 1 MSB decides every slot at the
  // first bit: every multi-group segment early-stops.
  const std::vector<std::uint64_t> codes(64 * 10, 0);
  const VbpColumn col = VbpColumn::Pack(codes, 8, {.tau = 4});
  ScanStats stats;
  VbpScanner::Scan(col, CompareOp::kEq, 0x80, 0, &stats);
  EXPECT_EQ(stats.segments_processed, 10u);
  EXPECT_EQ(stats.segments_early_stopped, 10u);
  EXPECT_EQ(stats.words_examined, 10u * 4);  // one group of 4 bits each
}

TEST(ScanTest, ProgressiveConjunctiveScan) {
  // ScanAnd must equal scan-then-AND while skipping emptied segments.
  const std::size_t n = 5000;
  const auto a_codes = RandomCodes(n, 10, 71);
  const auto b_codes = RandomCodes(n, 10, 73);
  {
    const VbpColumn a = VbpColumn::Pack(a_codes, 10);
    const VbpColumn b = VbpColumn::Pack(b_codes, 10);
    // Selective first predicate empties many segments.
    const FilterBitVector prior = VbpScanner::Scan(a, CompareOp::kLt, 8);
    ScanStats stats;
    const FilterBitVector progressive =
        VbpScanner::ScanAnd(b, CompareOp::kGe, 512, 0, prior, &stats);
    FilterBitVector reference = VbpScanner::Scan(b, CompareOp::kGe, 512);
    reference.And(prior);
    EXPECT_TRUE(progressive == reference);
    // The progressive scan must have touched fewer segments than exist.
    EXPECT_LT(stats.segments_processed, prior.num_segments());
    // Degenerate constants pass through the prior untouched.
    EXPECT_TRUE(VbpScanner::ScanAnd(b, CompareOp::kLt, 5000, 0, prior) ==
                prior);
    EXPECT_EQ(
        VbpScanner::ScanAnd(b, CompareOp::kGt, 5000, 0, prior).CountOnes(),
        0u);
  }
  {
    const HbpColumn a = HbpColumn::Pack(a_codes, 10);
    const HbpColumn b = HbpColumn::Pack(b_codes, 10);
    const FilterBitVector prior = HbpScanner::Scan(a, CompareOp::kLt, 8);
    ScanStats stats;
    const FilterBitVector progressive =
        HbpScanner::ScanAnd(b, CompareOp::kGe, 512, 0, prior, &stats);
    FilterBitVector reference = HbpScanner::Scan(b, CompareOp::kGe, 512);
    reference.And(prior);
    EXPECT_TRUE(progressive == reference);
    EXPECT_LT(stats.segments_processed, prior.num_segments());
  }
}

TEST(ScanTest, RaggedTailProducesNoGhostMatches) {
  // 70 values of all-max codes; predicate matches everything; the padding
  // slots must not contribute.
  const std::vector<std::uint64_t> codes(70, LowMask(5));
  const VbpColumn vbp = VbpColumn::Pack(codes, 5);
  const HbpColumn hbp = HbpColumn::Pack(codes, 5);
  EXPECT_EQ(VbpScanner::Scan(vbp, CompareOp::kEq, 31).CountOnes(), 70u);
  EXPECT_EQ(HbpScanner::Scan(hbp, CompareOp::kEq, 31).CountOnes(), 70u);
  // Padding values are stored as zero; an == 0 scan must also ignore them.
  EXPECT_EQ(VbpScanner::Scan(vbp, CompareOp::kEq, 0).CountOnes(), 0u);
  EXPECT_EQ(HbpScanner::Scan(hbp, CompareOp::kEq, 0).CountOnes(), 0u);
}

}  // namespace
}  // namespace icp
