#include "engine/query_parser.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "util/dates.h"
#include "util/random.h"

namespace icp {
namespace {

TEST(QueryParserTest, SimpleAggregates) {
  auto q = ParseQuery("SELECT COUNT(x)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggKind::kCount);
  EXPECT_EQ(q->agg_column, "x");
  EXPECT_EQ(q->filter, nullptr);

  q = ParseQuery("select sum(total_price)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->agg, AggKind::kSum);
  EXPECT_EQ(q->agg_column, "total_price");

  for (auto [sql, kind] :
       {std::pair{"SELECT AVG(a)", AggKind::kAvg},
        std::pair{"SELECT MIN(a)", AggKind::kMin},
        std::pair{"SELECT MAX(a)", AggKind::kMax},
        std::pair{"SELECT MEDIAN(a)", AggKind::kMedian}}) {
    auto parsed = ParseQuery(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    EXPECT_EQ(parsed->agg, kind) << sql;
  }
}

TEST(QueryParserTest, RankAggregate) {
  auto q = ParseQuery("SELECT RANK(latency, 99)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->agg, AggKind::kRank);
  EXPECT_EQ(q->agg_column, "latency");
  EXPECT_EQ(q->rank, 99u);
  EXPECT_FALSE(ParseQuery("SELECT RANK(latency)").ok());
  EXPECT_FALSE(ParseQuery("SELECT RANK(latency, 0)").ok());
  EXPECT_FALSE(ParseQuery("SELECT RANK(latency, -3)").ok());
}

TEST(QueryParserTest, ComparisonOperators) {
  for (auto [text, op] : {std::pair{"a = 5", CompareOp::kEq},
                          std::pair{"a != 5", CompareOp::kNe},
                          std::pair{"a <> 5", CompareOp::kNe},
                          std::pair{"a < 5", CompareOp::kLt},
                          std::pair{"a <= 5", CompareOp::kLe},
                          std::pair{"a > 5", CompareOp::kGt},
                          std::pair{"a >= 5", CompareOp::kGe}}) {
    auto e = ParsePredicate(text);
    ASSERT_TRUE(e.ok()) << text;
    EXPECT_EQ((*e)->kind(), FilterExpr::Kind::kLeaf) << text;
    EXPECT_EQ((*e)->op(), op) << text;
    EXPECT_EQ((*e)->value(), 5) << text;
  }
}

TEST(QueryParserTest, LiteralForms) {
  auto e = ParsePredicate("a = -42");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->value(), -42);

  // Decimals parse to scaled integers (12.34 -> 1234, scale 2 as written).
  e = ParsePredicate("price >= 12.34");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->value(), 1234);
  e = ParsePredicate("price >= -0.05");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->value(), -5);

  // Dates become day numbers since 1970-01-01.
  e = ParsePredicate("shipdate <= '1998-09-02'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->value(), DaysFromCivil(1998, 9, 2));
}

TEST(QueryParserTest, BetweenInAndNullPredicates) {
  auto e = ParsePredicate("d BETWEEN '1994-01-01' AND '1994-12-31'");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->op(), CompareOp::kBetween);
  EXPECT_EQ((*e)->value(), DaysFromCivil(1994, 1, 1));
  EXPECT_EQ((*e)->value2(), DaysFromCivil(1994, 12, 31));

  e = ParsePredicate("region IN (1, 3, 5)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), FilterExpr::Kind::kOr);
  EXPECT_EQ((*e)->children().size(), 3u);

  e = ParsePredicate("coupon IS NULL");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), FilterExpr::Kind::kIsNull);
  e = ParsePredicate("coupon is not null");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), FilterExpr::Kind::kIsNotNull);
}

TEST(QueryParserTest, BooleanStructure) {
  auto e = ParsePredicate("a < 4 AND b = 10 OR NOT (c >= 2 AND d != 0)");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // OR at the top (lowest precedence).
  EXPECT_EQ((*e)->kind(), FilterExpr::Kind::kOr);
  ASSERT_EQ((*e)->children().size(), 2u);
  EXPECT_EQ((*e)->children()[0]->kind(), FilterExpr::Kind::kAnd);
  EXPECT_EQ((*e)->children()[1]->kind(), FilterExpr::Kind::kNot);
  EXPECT_EQ(
      (*e)->ToString(),
      "((a < 4 AND b == 10) OR NOT (c >= 2 AND d != 0))");
}

TEST(QueryParserTest, ErrorsCarryPositions) {
  for (const char* bad :
       {"", "SELECT", "SELECT FOO(x)", "SELECT SUM(x) WHERE",
        "SELECT SUM(x) WHERE a <", "SELECT SUM(x) WHERE a < 5 extra",
        "SELECT SUM(x WHERE a < 5", "SELECT SUM(x) WHERE a BETWEEN 1",
        "SELECT SUM(x) WHERE a IN ()", "SELECT SUM(x) WHERE a IS 5",
        "SELECT SUM(x) WHERE a = 'not-a-date'",
        "SELECT SUM(x) WHERE a = '1998-9-02'",
        "SELECT SUM(x) WHERE a ! 5", "SELECT SUM(x) WHERE (a = 1",
        "SELECT SUM(x) WHERE a = 1.2345678999"}) {
    auto q = ParseQuery(bad);
    EXPECT_FALSE(q.ok()) << "should fail: " << bad;
    EXPECT_NE(q.status().message().find("position"), std::string::npos)
        << bad;
  }
}

TEST(QueryParserTest, EndToEndWithEngine) {
  Random rng(8);
  std::vector<std::int64_t> price(3000), region(3000), date(3000);
  for (std::size_t i = 0; i < price.size(); ++i) {
    price[i] = static_cast<std::int64_t>(rng.UniformInt(100, 99999));
    region[i] = static_cast<std::int64_t>(rng.UniformInt(0, 4));
    date[i] = DaysFromCivil(1994, 1, 1) +
              static_cast<std::int64_t>(rng.UniformInt(0, 700));
  }
  Table table;
  ASSERT_TRUE(table.AddColumn("price", price, {}).ok());
  ASSERT_TRUE(
      table.AddColumn("region", region, {.dictionary = true}).ok());
  ASSERT_TRUE(table.AddColumn("shipdate", date, {}).ok());

  auto q = ParseQuery(
      "SELECT SUM(price) WHERE shipdate BETWEEN '1994-06-01' AND "
      "'1995-05-31' AND region IN (1, 2) AND price >= 500.00");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  Engine engine;
  auto result = engine.Execute(table, *q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  double expected = 0;
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < price.size(); ++i) {
    if (date[i] >= DaysFromCivil(1994, 6, 1) &&
        date[i] <= DaysFromCivil(1995, 5, 31) &&
        (region[i] == 1 || region[i] == 2) && price[i] >= 50000) {
      expected += static_cast<double>(price[i]);
      ++count;
    }
  }
  EXPECT_EQ(result->count, count);
  EXPECT_DOUBLE_EQ(result->value, expected);
}

}  // namespace
}  // namespace icp
