// Group-by differential harness: seed-replayable random dictionary tables
// swept across cardinalities 2^0..2^16, agg layouts (naive / padded / VBP /
// HBP), nullable columns, filters, every kernel tier this host covers and
// thread counts {1, 4, 8}. Both ExecuteGroupBy strategies — the naive
// per-code loop (groupby_threshold = UINT64_MAX) and the single-pass
// operator (groupby_threshold = 1) — are checked bit-for-bit against an
// independent scalar oracle computed from the raw value vectors, and
// against each other.
//
// On a mismatch the assertion message prints the seed, cardinality,
// layout, tier, strategy and thread count; re-running with
// ICP_DIFF_SEED=<seed> replays exactly that table and query set.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/table.h"
#include "simd/dispatch.h"
#include "util/bits.h"
#include "util/random.h"

namespace icp {
namespace {

constexpr const char* kLayoutColumns[] = {"v_naive", "v_padded", "v_vbp",
                                          "v_hbp"};

// The same logical data under every agg layout, plus the raw vectors the
// oracle consumes.
struct GroupedTable {
  Table table;
  std::size_t num_rows = 0;
  std::uint64_t cardinality = 0;  // requested dictionary size (2^k)
  std::vector<std::int64_t> group_values;
  std::vector<bool> group_valid;  // empty = not nullable
  std::vector<std::int64_t> agg_values;
  std::vector<bool> agg_valid;  // empty = not nullable
};

GroupedTable MakeGroupedTable(std::uint64_t seed, int log2_cardinality) {
  Random rng(seed);
  GroupedTable out;
  out.num_rows = 2000 + rng.UniformInt(0, 4000);
  out.cardinality = std::uint64_t{1} << log2_cardinality;

  // Sparse group domain (stride > 1) so the dictionary encoder is
  // genuinely exercised; values decode back through the dictionary.
  const std::int64_t group_base =
      static_cast<std::int64_t>(rng.UniformInt(0, 1000)) - 500;
  const std::int64_t group_stride =
      1 + static_cast<std::int64_t>(rng.UniformInt(0, 6));
  out.group_values.resize(out.num_rows);
  for (auto& g : out.group_values) {
    g = group_base +
        group_stride * static_cast<std::int64_t>(
                           rng.UniformInt(0, out.cardinality - 1));
  }
  const bool group_nullable = rng.Bernoulli(0.3);
  if (group_nullable) {
    out.group_valid.resize(out.num_rows);
    for (std::size_t i = 0; i < out.num_rows; ++i) {
      out.group_valid[i] = !rng.Bernoulli(0.05);
    }
  }

  const std::uint64_t agg_width = 1 + rng.UniformInt(0, 12);
  const std::int64_t agg_min =
      static_cast<std::int64_t>(rng.UniformInt(0, 2000)) - 1000;
  out.agg_values.resize(out.num_rows);
  for (auto& v : out.agg_values) {
    v = agg_min + static_cast<std::int64_t>(
                      rng.UniformInt(0, (std::uint64_t{1} << agg_width) - 1));
  }
  const bool agg_nullable = rng.Bernoulli(0.3);
  if (agg_nullable) {
    out.agg_valid.resize(out.num_rows);
    for (std::size_t i = 0; i < out.num_rows; ++i) {
      out.agg_valid[i] = !rng.Bernoulli(0.1);
    }
  }

  const ColumnSpec group_spec{.layout = Layout::kVbp, .dictionary = true};
  if (group_nullable) {
    ICP_CHECK(out.table
                  .AddNullableColumn("g", out.group_values, out.group_valid,
                                     group_spec)
                  .ok());
  } else {
    ICP_CHECK(out.table.AddColumn("g", out.group_values, group_spec).ok());
  }
  const Layout kLayouts[] = {Layout::kNaive, Layout::kPadded, Layout::kVbp,
                             Layout::kHbp};
  for (std::size_t li = 0; li < 4; ++li) {
    const ColumnSpec spec{.layout = kLayouts[li]};
    if (agg_nullable) {
      ICP_CHECK(out.table
                    .AddNullableColumn(kLayoutColumns[li], out.agg_values,
                                       out.agg_valid, spec)
                    .ok());
    } else {
      ICP_CHECK(
          out.table.AddColumn(kLayoutColumns[li], out.agg_values, spec).ok());
    }
  }
  return out;
}

struct RandomGroupQuery {
  AggKind agg = AggKind::kCount;
  bool has_filter = false;
  CompareOp op = CompareOp::kEq;
  std::int64_t c1 = 0;
  std::int64_t c2 = 0;
  std::string description;
};

RandomGroupQuery MakeRandomGroupQuery(Random& rng) {
  static const AggKind kAggs[] = {AggKind::kCount, AggKind::kSum,
                                  AggKind::kAvg, AggKind::kMin,
                                  AggKind::kMax};
  static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                   CompareOp::kLt, CompareOp::kLe,
                                   CompareOp::kGt, CompareOp::kGe,
                                   CompareOp::kBetween};
  RandomGroupQuery out;
  out.agg = kAggs[rng.UniformInt(0, 4)];
  std::ostringstream desc;
  desc << "agg=" << static_cast<int>(out.agg);
  if (rng.Bernoulli(0.25)) {
    desc << " filter=none";
  } else {
    out.has_filter = true;
    out.op = kOps[rng.UniformInt(0, 6)];
    out.c1 = static_cast<std::int64_t>(rng.UniformInt(0, 8000)) - 2500;
    out.c2 = out.c1 + static_cast<std::int64_t>(rng.UniformInt(0, 5000));
    desc << " filter=op" << static_cast<int>(out.op) << "(" << out.c1 << ","
         << out.c2 << ")";
  }
  out.description = desc.str();
  return out;
}

Query BuildQuery(const RandomGroupQuery& rq, const std::string& column) {
  Query q;
  q.agg = rq.agg;
  q.agg_column = column;
  if (rq.has_filter) {
    q.filter = FilterExpr::Compare(column, rq.op, rq.c1, rq.c2);
  }
  return q;
}

// Scalar filter semantics: NULL never passes a predicate; no filter means
// every row (NULL agg values included) passes.
bool RowPassesFilter(const GroupedTable& t, const RandomGroupQuery& rq,
                     std::size_t i) {
  if (!rq.has_filter) return true;
  if (!t.agg_valid.empty() && !t.agg_valid[i]) return false;
  const std::int64_t v = t.agg_values[i];
  switch (rq.op) {
    case CompareOp::kEq:
      return v == rq.c1;
    case CompareOp::kNe:
      return v != rq.c1;
    case CompareOp::kLt:
      return v < rq.c1;
    case CompareOp::kLe:
      return v <= rq.c1;
    case CompareOp::kGt:
      return v > rq.c1;
    case CompareOp::kGe:
      return v >= rq.c1;
    case CompareOp::kBetween:
      return v >= rq.c1 && v <= rq.c2;
  }
  return false;
}

struct OracleGroup {
  std::uint64_t rows = 0;   // group presence (incl. all-NULL-agg groups)
  std::uint64_t count = 0;  // non-NULL agg rows
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
};

// Per-group scalar aggregation over the raw vectors; groups come back in
// ascending group-value order (what the sorted dictionary guarantees).
std::map<std::int64_t, OracleGroup> OracleGroups(const GroupedTable& t,
                                                 const RandomGroupQuery& rq) {
  std::map<std::int64_t, OracleGroup> groups;
  for (std::size_t i = 0; i < t.num_rows; ++i) {
    if (!t.group_valid.empty() && !t.group_valid[i]) continue;
    if (!RowPassesFilter(t, rq, i)) continue;
    OracleGroup& g = groups[t.group_values[i]];
    g.rows += 1;
    if (!t.agg_valid.empty() && !t.agg_valid[i]) continue;
    g.count += 1;
    g.sum += t.agg_values[i];
    g.min = std::min(g.min, t.agg_values[i]);
    g.max = std::max(g.max, t.agg_values[i]);
  }
  return groups;
}

// Checks one engine result list against the oracle. The engine's SUM/AVG
// doubles are recomputed from the oracle's exact integers with the same
// formula (min_value * count + code_sum), so the comparison is
// bit-for-bit, not approximate.
void ExpectMatchesOracle(
    const std::vector<std::pair<std::int64_t, QueryResult>>& got,
    const std::map<std::int64_t, OracleGroup>& want, AggKind agg,
    std::int64_t agg_min_value, const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  auto it = want.begin();
  for (std::size_t gi = 0; gi < got.size(); ++gi, ++it) {
    const std::int64_t group_value = got[gi].first;
    const QueryResult& r = got[gi].second;
    std::ostringstream gc;
    gc << context << " group#" << gi << "=" << group_value;
    ASSERT_EQ(group_value, it->first) << gc.str();
    const OracleGroup& o = it->second;
    EXPECT_EQ(r.count, o.count) << gc.str();
    switch (agg) {
      case AggKind::kCount:
        EXPECT_EQ(r.value, static_cast<double>(o.count)) << gc.str();
        break;
      case AggKind::kSum: {
        const UInt128 want_code_sum = static_cast<UInt128>(
            static_cast<std::uint64_t>(o.sum -
                                       agg_min_value *
                                           static_cast<std::int64_t>(o.count)));
        EXPECT_EQ(r.code_sum, want_code_sum) << gc.str();
        const double want_value =
            static_cast<double>(agg_min_value) *
                static_cast<double>(o.count) +
            UInt128ToDouble(want_code_sum);
        EXPECT_EQ(r.value, want_value) << gc.str();
        break;
      }
      case AggKind::kAvg: {
        const UInt128 want_code_sum = static_cast<UInt128>(
            static_cast<std::uint64_t>(o.sum -
                                       agg_min_value *
                                           static_cast<std::int64_t>(o.count)));
        EXPECT_EQ(r.code_sum, want_code_sum) << gc.str();
        if (o.count > 0) {
          const double want_value =
              static_cast<double>(agg_min_value) +
              UInt128ToDouble(want_code_sum) / static_cast<double>(o.count);
          EXPECT_EQ(r.value, want_value) << gc.str();
        } else {
          EXPECT_EQ(r.value, 0.0) << gc.str();
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        if (o.count > 0) {
          ASSERT_TRUE(r.decoded_value.has_value()) << gc.str();
          EXPECT_EQ(*r.decoded_value,
                    agg == AggKind::kMin ? o.min : o.max)
              << gc.str();
        } else {
          EXPECT_FALSE(r.decoded_value.has_value()) << gc.str();
        }
        break;
      }
      default:
        FAIL() << gc.str() << ": unexpected aggregate";
    }
  }
}

void ExpectSameGroups(
    const std::vector<std::pair<std::int64_t, QueryResult>>& got,
    const std::vector<std::pair<std::int64_t, QueryResult>>& want,
    const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::ostringstream gc;
    gc << context << " group#" << i;
    EXPECT_EQ(got[i].first, want[i].first) << gc.str();
    const QueryResult& g = got[i].second;
    const QueryResult& w = want[i].second;
    EXPECT_EQ(g.count, w.count) << gc.str();
    EXPECT_EQ(g.code_sum, w.code_sum) << gc.str();
    EXPECT_EQ(g.decoded_value.has_value(), w.decoded_value.has_value())
        << gc.str();
    if (g.decoded_value.has_value() && w.decoded_value.has_value()) {
      EXPECT_EQ(*g.decoded_value, *w.decoded_value) << gc.str();
    }
    EXPECT_EQ(g.value, w.value) << gc.str();
  }
}

// The range encoder's min_value: the domain is restricted to non-NULL
// positions (see Table::AddNullableColumn).
std::int64_t AggMinValue(const GroupedTable& t) {
  std::int64_t m = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < t.num_rows; ++i) {
    if (!t.agg_valid.empty() && !t.agg_valid[i]) continue;
    m = std::min(m, t.agg_values[i]);
  }
  return m;
}

std::uint64_t BaseSeed() {
  if (const char* env = std::getenv("ICP_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260805;
}

// Distinct tiers this host can genuinely run (a clamped tier would report
// phantom coverage; see differential_test.cc).
std::vector<kern::Tier> CoveredTiers() {
  std::vector<kern::Tier> tiers;
  for (int t = 0; t <= static_cast<int>(kern::Tier::kAvx512); ++t) {
    const auto tier = static_cast<kern::Tier>(t);
    const kern::Tier eff = kern::EffectiveTier(tier);
    if (eff != tier) {
      std::cout << "[ SKIPPED  ] tier '" << kern::TierName(tier)
                << "' clamps to '" << kern::TierName(eff)
                << "' on this host\n";
      continue;
    }
    tiers.push_back(tier);
  }
  return tiers;
}

TEST(GroupByDifferentialTest, StrategiesAgreeWithScalarOracle) {
  // Cardinality sweep 2^0..2^16; the small end stresses the naive
  // strategy and direct tables, the large end the open-addressed tables
  // and radix spill (with ~6000 rows a 2^16 dictionary leaves most codes
  // unpopulated, which is exactly the sparse high-cardinality shape).
  const int kLog2Cards[] = {0, 1, 2, 4, 6, 8, 10, 12, 14, 16};
  const std::vector<kern::Tier> tiers = CoveredTiers();
  const std::uint64_t base_seed = BaseSeed();

  int case_index = 0;
  for (const int log2_card : kLog2Cards) {
    const std::uint64_t seed =
        base_seed + static_cast<std::uint64_t>(1000 + log2_card);
    const GroupedTable t = MakeGroupedTable(seed, log2_card);
    Random qrng(seed ^ 0x9E3779B97F4A7C15ULL);
    const std::int64_t agg_column_min = AggMinValue(t);

    for (int qi = 0; qi < 2; ++qi) {
      const RandomGroupQuery rq = MakeRandomGroupQuery(qrng);
      const auto oracle = OracleGroups(t, rq);

      for (const kern::Tier tier : tiers) {
        kern::ForceTier(tier);
        for (const int threads : {1, 4, 8}) {
          // Rotate layouts with the case index so every (cardinality,
          // layout) pair appears across the sweep without multiplying
          // the full cross product into the runtime budget.
          for (int li = 0; li < 2; ++li) {
            const char* column = kLayoutColumns[(case_index + li) % 4];
            const Query q = BuildQuery(rq, column);

            std::vector<std::pair<std::int64_t, QueryResult>> per_strategy[2];
            const std::uint64_t kThresholds[2] = {
                std::numeric_limits<std::uint64_t>::max(), 1};  // naive, 1-pass
            for (int si = 0; si < 2; ++si) {
              ExecOptions options;
              options.threads = threads;
              options.groupby_threshold = kThresholds[si];
              Engine engine(options);
              auto result_or = engine.ExecuteGroupBy(t.table, q, "g");
              std::ostringstream context;
              context << "seed=" << seed << " card=2^" << log2_card
                      << " query{" << rq.description
                      << "} layout=" << column
                      << " tier=" << kern::TierName(tier)
                      << " threads=" << threads
                      << " strategy=" << (si == 0 ? "naive" : "single-pass")
                      << " (replay with ICP_DIFF_SEED=" << base_seed << ")";
              ASSERT_TRUE(result_or.ok())
                  << context.str() << ": " << result_or.status().ToString();
              ExpectMatchesOracle(*result_or, oracle, rq.agg, agg_column_min,
                                  context.str());
              per_strategy[si] = *std::move(result_or);
            }
            std::ostringstream context;
            context << "seed=" << seed << " card=2^" << log2_card
                    << " query{" << rq.description << "} layout=" << column
                    << " tier=" << kern::TierName(tier)
                    << " threads=" << threads << " naive-vs-single-pass"
                    << " (replay with ICP_DIFF_SEED=" << base_seed << ")";
            ExpectSameGroups(per_strategy[1], per_strategy[0], context.str());
          }
          ++case_index;
        }
        kern::ForceTier(std::nullopt);
      }
    }
  }
}

// Tiny local-table budgets force every row through the radix spill; the
// results must be identical to the spacious default.
TEST(GroupByDifferentialTest, SpillPathMatchesDefaultBudget) {
  const std::uint64_t seed = BaseSeed() + 77;
  const GroupedTable t = MakeGroupedTable(seed, 12);
  Random qrng(seed);
  for (int qi = 0; qi < 3; ++qi) {
    const RandomGroupQuery rq = MakeRandomGroupQuery(qrng);
    const auto oracle = OracleGroups(t, rq);
    const Query q = BuildQuery(rq, "v_vbp");
    const std::int64_t agg_column_min = AggMinValue(t);
    for (const std::size_t budget : {std::size_t{1}, std::size_t{256},
                                     std::size_t{1} << 20}) {
      ExecOptions options;
      options.threads = 4;
      options.groupby_threshold = 1;
      options.groupby_local_bytes = budget;
      Engine engine(options);
      auto result_or = engine.ExecuteGroupBy(t.table, q, "g");
      std::ostringstream context;
      context << "seed=" << seed << " query{" << rq.description
              << "} budget=" << budget << " (replay with ICP_DIFF_SEED="
              << BaseSeed() << ")";
      ASSERT_TRUE(result_or.ok())
          << context.str() << ": " << result_or.status().ToString();
      ExpectMatchesOracle(*result_or, oracle, rq.agg, agg_column_min,
                          context.str());
    }
  }
}

}  // namespace
}  // namespace icp
