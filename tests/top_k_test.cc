#include "core/top_k.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace icp {
namespace {

struct TopKWorkload {
  std::vector<std::uint64_t> codes;
  std::vector<bool> pass;
  std::vector<std::uint64_t> sorted_passing;
};

TopKWorkload Make(std::size_t n, int k_bits, double selectivity,
                  std::uint64_t seed, std::uint64_t domain = 0) {
  Random rng(seed);
  TopKWorkload w;
  w.codes.resize(n);
  w.pass.resize(n);
  const std::uint64_t max_code = domain ? domain : LowMask(k_bits);
  for (std::size_t i = 0; i < n; ++i) {
    w.codes[i] = rng.UniformInt(0, max_code);
    w.pass[i] = rng.Bernoulli(selectivity);
    if (w.pass[i]) w.sorted_passing.push_back(w.codes[i]);
  }
  std::sort(w.sorted_passing.begin(), w.sorted_passing.end());
  return w;
}

class TopKTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopKTest, SmallestAndLargestMatchSortReference) {
  const std::uint64_t k = GetParam();
  const TopKWorkload w = Make(4000, 14, 0.5, 42 + k);
  const VbpColumn vcol = VbpColumn::Pack(w.codes, 14);
  const HbpColumn hcol = HbpColumn::Pack(w.codes, 14);
  const FilterBitVector vf = FilterBitVector::FromBools(w.pass, 64);
  const FilterBitVector hf =
      FilterBitVector::FromBools(w.pass, hcol.values_per_segment());

  const std::uint64_t expect_n =
      std::min<std::uint64_t>(k, w.sorted_passing.size());
  std::vector<std::uint64_t> expected_small(
      w.sorted_passing.begin(), w.sorted_passing.begin() + expect_n);
  std::vector<std::uint64_t> expected_large(
      w.sorted_passing.rbegin(), w.sorted_passing.rbegin() + expect_n);

  EXPECT_EQ(SmallestK(vcol, vf, k), expected_small);
  EXPECT_EQ(SmallestK(hcol, hf, k), expected_small);
  EXPECT_EQ(LargestK(vcol, vf, k), expected_large);
  EXPECT_EQ(LargestK(hcol, hf, k), expected_large);
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKTest,
                         ::testing::Values(1, 2, 7, 64, 100, 1000, 5000));

TEST(TopKTest, HeavyDuplicates) {
  // Tiny domain: ties dominate; the tail of the result is threshold copies.
  const TopKWorkload w = Make(2000, 8, 0.8, 9, /*domain=*/3);
  const VbpColumn col = VbpColumn::Pack(w.codes, 8);
  const FilterBitVector f = FilterBitVector::FromBools(w.pass, 64);
  for (std::uint64_t k : {std::uint64_t{5}, std::uint64_t{500}}) {
    std::vector<std::uint64_t> expected(w.sorted_passing.begin(),
                                        w.sorted_passing.begin() + k);
    ASSERT_EQ(SmallestK(col, f, k), expected) << k;
    std::vector<std::uint64_t> expected_large(
        w.sorted_passing.rbegin(), w.sorted_passing.rbegin() + k);
    ASSERT_EQ(LargestK(col, f, k), expected_large) << k;
  }
}

TEST(TopKTest, EdgeCases) {
  const TopKWorkload w = Make(300, 10, 0.5, 17);
  const VbpColumn col = VbpColumn::Pack(w.codes, 10);
  const FilterBitVector f = FilterBitVector::FromBools(w.pass, 64);
  // K = 0.
  EXPECT_TRUE(SmallestK(col, f, 0).empty());
  EXPECT_TRUE(LargestK(col, f, 0).empty());
  // Empty filter.
  FilterBitVector empty(w.codes.size(), 64);
  EXPECT_TRUE(SmallestK(col, empty, 5).empty());
  EXPECT_TRUE(LargestK(col, empty, 5).empty());
  // K exceeding the passing count returns everything, ordered.
  const auto all_small = SmallestK(col, f, 1 << 20);
  EXPECT_EQ(all_small, w.sorted_passing);
  auto all_large = LargestK(col, f, 1 << 20);
  std::reverse(all_large.begin(), all_large.end());
  EXPECT_EQ(all_large, w.sorted_passing);
}

}  // namespace
}  // namespace icp
