#include "io/table_io.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/obs.h"
#include "util/backoff.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace icp {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Table MakeRichTable(std::size_t n) {
  Random rng(77);
  std::vector<std::int64_t> a(n), b(n), c(n), d(n);
  std::vector<bool> d_valid(n);
  const std::int64_t dict_values[3] = {-5, 100, 7777};
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::int64_t>(rng.UniformInt(0, 1000));
    b[i] = static_cast<std::int64_t>(rng.UniformInt(0, 123456)) - 60000;
    c[i] = dict_values[rng.UniformInt(0, 2)];
    d[i] = static_cast<std::int64_t>(rng.UniformInt(0, 99));
    d_valid[i] = !rng.Bernoulli(0.2);
  }
  Table table;
  ICP_CHECK(table.AddColumn("a", a, {.layout = Layout::kVbp}).ok());
  ICP_CHECK(
      table.AddColumn("b", b, {.layout = Layout::kHbp, .tau = 5}).ok());
  ICP_CHECK(table
                .AddColumn("c", c,
                           {.layout = Layout::kHbp, .dictionary = true})
                .ok());
  ICP_CHECK(table
                .AddNullableColumn("d", d, d_valid,
                                   {.layout = Layout::kVbp, .bit_width = 10})
                .ok());
  return table;
}

TEST(TableIoTest, RoundTripPreservesEverything) {
  const Table original = MakeRichTable(5000);
  const std::string path = TempPath("roundtrip.icptbl");
  ASSERT_TRUE(io::WriteTable(original, path).ok());

  auto loaded_or = io::ReadTable(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const Table& loaded = *loaded_or;

  EXPECT_EQ(loaded.num_rows(), original.num_rows());
  EXPECT_EQ(loaded.column_names(), original.column_names());
  for (const auto& name : original.column_names()) {
    const Table::Column& o = **original.GetColumn(name);
    const Table::Column& l = **loaded.GetColumn(name);
    ASSERT_EQ(l.bit_width(), o.bit_width()) << name;
    ASSERT_EQ(l.spec().layout, o.spec().layout) << name;
    ASSERT_EQ(l.spec().tau, o.spec().tau) << name;
    ASSERT_EQ(l.nullable(), o.nullable()) << name;
    ASSERT_EQ(l.codes(), o.codes()) << name;
    if (o.nullable()) {
      ASSERT_TRUE(l.validity() == o.validity()) << name;
    }
    ASSERT_EQ(l.encoder().min_value(), o.encoder().min_value()) << name;
    ASSERT_EQ(l.encoder().max_value(), o.encoder().max_value()) << name;
    ASSERT_EQ(l.encoder().is_dictionary(), o.encoder().is_dictionary());
  }
}

TEST(TableIoTest, QueriesAgreeAfterReload) {
  const Table original = MakeRichTable(3000);
  const std::string path = TempPath("query.icptbl");
  ASSERT_TRUE(io::WriteTable(original, path).ok());
  auto loaded = io::ReadTable(path);
  ASSERT_TRUE(loaded.ok());

  Engine engine;
  Query q;
  q.agg = AggKind::kMedian;
  q.agg_column = "b";
  q.filter = FilterExpr::And(
      {FilterExpr::Compare("a", CompareOp::kLt, 700),
       FilterExpr::IsNotNull("d")});
  auto r1 = engine.Execute(original, q);
  auto r2 = engine.Execute(*loaded, q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->count, r2->count);
  EXPECT_EQ(r1->decoded_value, r2->decoded_value);

  q.agg = AggKind::kSum;
  q.agg_column = "d";
  r1 = engine.Execute(original, q);
  r2 = engine.Execute(*loaded, q);
  EXPECT_DOUBLE_EQ(r1->value, r2->value);
}

TEST(TableIoTest, MissingFile) {
  auto result = io::ReadTable(TempPath("does_not_exist.icptbl"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(TableIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.icptbl");
  std::ofstream(path, std::ios::binary) << "NOTATABLEFILE.....";
  auto result = io::ReadTable(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableIoTest, TruncationDetected) {
  const Table table = MakeRichTable(500);
  const std::string path = TempPath("truncated.icptbl");
  ASSERT_TRUE(io::WriteTable(table, path).ok());
  // Chop off the tail (checksum + part of the last column).
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << contents.substr(0, contents.size() - 64);
  auto result = io::ReadTable(path);
  EXPECT_FALSE(result.ok());
}

TEST(TableIoTest, CorruptionDetectedByChecksum) {
  const Table table = MakeRichTable(500);
  const std::string path = TempPath("corrupt.icptbl");
  ASSERT_TRUE(io::WriteTable(table, path).ok());
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Flip one bit somewhere in the code stream.
  contents[contents.size() / 2] ^= 0x10;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << contents;
  auto result = io::ReadTable(path);
  EXPECT_FALSE(result.ok());
}

TEST(TableIoTest, PaddedAndNaiveLayoutsRoundTrip) {
  Random rng(21);
  std::vector<std::int64_t> v(800);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.UniformInt(0, 5000));
  Table table;
  ASSERT_TRUE(table.AddColumn("p", v, {.layout = Layout::kPadded}).ok());
  ASSERT_TRUE(table.AddColumn("n", v, {.layout = Layout::kNaive}).ok());
  const std::string path = TempPath("layouts.icptbl");
  ASSERT_TRUE(io::WriteTable(table, path).ok());
  auto loaded = io::ReadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded->GetColumn("p"))->spec().layout, Layout::kPadded);
  EXPECT_EQ((*loaded->GetColumn("n"))->spec().layout, Layout::kNaive);
  EXPECT_EQ((*loaded->GetColumn("p"))->codes(),
            (*table.GetColumn("p"))->codes());
}

TEST(TableIoTest, SingleRowTable) {
  Table table;
  ASSERT_TRUE(table.AddColumn("x", {42}, {}).ok());
  const std::string path = TempPath("tiny.icptbl");
  ASSERT_TRUE(io::WriteTable(table, path).ok());
  auto loaded = io::ReadTable(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 1u);
  EXPECT_EQ((*loaded->GetColumn("x"))->encoder().Decode(
                (*loaded->GetColumn("x"))->codes()[0]),
            42);
}

TEST(TableIoTest, SuccessfulWriteLeavesNoStagingFile) {
  const Table table = MakeRichTable(200);
  const std::string path = TempPath("atomic.icptbl");
  ASSERT_TRUE(io::WriteTable(table, path).ok());
  const std::string staging = path + ".tmp." + std::to_string(::getpid());
  EXPECT_FALSE(std::ifstream(staging).good())
      << "temp file must be renamed away, not left behind";
  EXPECT_TRUE(io::ReadTable(path).ok());
}

TEST(TableIoTest, RewriteReplacesFileAtomically) {
  const std::string path = TempPath("rewrite.icptbl");
  ASSERT_TRUE(io::WriteTable(MakeRichTable(300), path).ok());
  // Overwriting an existing table goes through the same temp+rename path.
  const Table v2 = MakeRichTable(700);
  ASSERT_TRUE(io::WriteTable(v2, path).ok());
  auto loaded = io::ReadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 700u);
}

// The torture test: flip one bit at every byte offset of a valid file. Every
// single flip must be rejected with a Status — a crash, an ICP_CHECK abort,
// a hang, or an absurd allocation at any offset fails the test harness
// itself. (The varying bit index exercises high bits of count fields, sign
// bits of tau/lo/hi, and the checksum trailer alike.)
TEST(TableIoTest, EverySingleBitFlipIsRejected) {
  const Table table = MakeRichTable(64);
  const std::string path = TempPath("torture.icptbl");
  ASSERT_TRUE(io::WriteTable(table, path).ok());
  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    good.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(good.size(), 100u);

  const std::string mutant_path = TempPath("torture_mutant.icptbl");
  for (std::size_t offset = 0; offset < good.size(); ++offset) {
    std::string mutant = good;
    mutant[offset] ^= static_cast<char>(1u << (offset % 8));
    std::ofstream(mutant_path, std::ios::binary | std::ios::trunc) << mutant;
    auto result = io::ReadTable(mutant_path);
    EXPECT_FALSE(result.ok())
        << "bit flip at offset " << offset << " went undetected";
  }
}

TEST(TableIoTest, TruncationAtEveryLengthIsRejected) {
  const Table table = MakeRichTable(64);
  const std::string path = TempPath("trunc_sweep.icptbl");
  ASSERT_TRUE(io::WriteTable(table, path).ok());
  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    good.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string mutant_path = TempPath("trunc_mutant.icptbl");
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::ofstream(mutant_path, std::ios::binary | std::ios::trunc)
        << good.substr(0, len);
    auto result = io::ReadTable(mutant_path);
    EXPECT_FALSE(result.ok()) << "truncation to " << len << " bytes";
  }
}

TEST(TableIoTest, HugeCountFieldsAreRejectedWithoutAllocating) {
  // Hand-craft a header claiming 2^60 rows: the reader must bound the claim
  // against the actual file size instead of allocating petabytes.
  const std::string path = TempPath("huge_rows.icptbl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "ICPTBL01";
    const std::uint64_t rows = 1ULL << 60;
    const std::uint32_t cols = 1;
    out.write(reinterpret_cast<const char*>(&rows), 8);
    out.write(reinterpret_cast<const char*>(&cols), 4);
    out << "padpadpad";
  }
  auto result = io::ReadTable(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableIoTest, SweepRemovesOrphansAndKeepsCompletedTables) {
  // A crash between staging and rename leaves "<name>.tmp.<pid>" files
  // behind; the startup sweep must delete exactly those.
  const std::string dir = TempPath("sweep_dir");
  ::mkdir(dir.c_str(), 0755);

  const Table table = MakeRichTable(2000);
  const std::string survivor = dir + "/survivor.icptbl";
  ASSERT_TRUE(io::WriteTable(table, survivor).ok());

  auto plant = [&](const std::string& name) {
    std::ofstream out(dir + "/" + name, std::ios::binary);
    out << "partial garbage from a crashed writer";
  };
  plant("crashed.icptbl.tmp.12345");
  plant("other.icptbl.tmp.999");
  // Not staging files: wrong suffix shape, or no base name.
  plant("keep.icptbl.tmp.12x45");
  plant("keep2.tmp.notdigits");
  plant(".tmp.777");

  int removed = -1;
  ASSERT_TRUE(io::SweepOrphanedStagingFiles(dir, &removed).ok());
  EXPECT_EQ(removed, 2);
  EXPECT_FALSE(std::ifstream(dir + "/crashed.icptbl.tmp.12345").good());
  EXPECT_FALSE(std::ifstream(dir + "/other.icptbl.tmp.999").good());
  EXPECT_TRUE(std::ifstream(dir + "/keep.icptbl.tmp.12x45").good());
  EXPECT_TRUE(std::ifstream(dir + "/keep2.tmp.notdigits").good());
  EXPECT_TRUE(std::ifstream(dir + "/.tmp.777").good());

  // The completed table is untouched and still loads with a clean checksum.
  auto loaded = io::ReadTable(survivor);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), table.num_rows());

  // Idempotent: a second sweep finds nothing.
  ASSERT_TRUE(io::SweepOrphanedStagingFiles(dir, &removed).ok());
  EXPECT_EQ(removed, 0);

  EXPECT_FALSE(io::SweepOrphanedStagingFiles(dir + "/nope").ok());
}

class TableIoRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::Armed()) GTEST_SKIP() << "built without ICP_FAILPOINTS";
    fail::DisableAll();
  }
  void TearDown() override { fail::DisableAll(); }
};

TEST_F(TableIoRetryTest, TransientReadErrorIsRetriedAndSucceeds) {
  const Table original = MakeRichTable(2000);
  const std::string path = TempPath("retry.icptbl");
  ASSERT_TRUE(io::WriteTable(original, path).ok());

#if ICP_OBS
  const std::uint64_t retries_before = obs::IoRetries().Load();
#endif
  fail::EnableOneShot("table_io/read_transient");
  auto loaded = io::ReadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), original.num_rows());
  EXPECT_EQ(fail::TriggerCount("table_io/read_transient"), 1u);
#if ICP_OBS
  EXPECT_EQ(obs::IoRetries().Load(), retries_before + 1);
#endif
}

TEST_F(TableIoRetryTest, PersistentTransientErrorFailsAfterBoundedRetries) {
  const Table original = MakeRichTable(2000);
  const std::string path = TempPath("retry_exhaust.icptbl");
  ASSERT_TRUE(io::WriteTable(original, path).ok());

  fail::EnableAlways("table_io/read_transient");
  auto loaded = io::ReadTable(path);
  ASSERT_FALSE(loaded.ok());
  // kIoMaxAttempts total tries for the first read: the failpoint is
  // evaluated once per attempt, then the read fails hard — bounded, not
  // an infinite retry loop.
  EXPECT_EQ(fail::EvalCount("table_io/read_transient"),
            static_cast<std::uint64_t>(kIoMaxAttempts));
}

TEST(TableIoTest, PackedFileIsCompact) {
  // 10k rows of 7-bit values must take ~10k * 7 / 8 bytes, not 8 bytes/row.
  Random rng(5);
  std::vector<std::int64_t> v(10000);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.UniformInt(0, 100));
  Table table;
  ASSERT_TRUE(table.AddColumn("v", v, {}).ok());
  const std::string path = TempPath("compact.icptbl");
  ASSERT_TRUE(io::WriteTable(table, path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  EXPECT_LT(size, 10000u * 2);  // ~0.875 B/row payload + header
}

}  // namespace
}  // namespace icp
