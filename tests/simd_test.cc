#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/hbp_aggregate.h"
#include "core/vbp_aggregate.h"
#include "parallel/thread_pool.h"
#include "scan/hbp_scanner.h"
#include "scan/vbp_scanner.h"
#include "simd/hbp_simd.h"
#include "simd/simd_parallel.h"
#include "simd/vbp_simd.h"
#include "simd/word256.h"
#include "util/random.h"

namespace icp {
namespace {

std::vector<std::uint64_t> RandomCodes(std::size_t n, int k,
                                       std::uint64_t seed) {
  Random rng(seed);
  std::vector<std::uint64_t> codes(n);
  for (auto& c : codes) c = rng.UniformInt(0, LowMask(k));
  return codes;
}

// ---------------------------------------------------------------------------
// Word256 primitives
// ---------------------------------------------------------------------------

TEST(Word256Test, LoadStoreRoundTrip) {
  alignas(32) Word data[4] = {1, 2, 3, ~Word{0}};
  alignas(32) Word out[4];
  Word256::Load(data).Store(out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], data[i]);
}

TEST(Word256Test, LaneAccess) {
  alignas(32) Word data[4] = {10, 20, 30, 40};
  const Word256 w = Word256::Load(data);
  EXPECT_EQ(w.Lane(0), 10u);
  EXPECT_EQ(w.Lane(3), 40u);
}

TEST(Word256Test, BitwiseOps) {
  const Word256 a = Word256::Broadcast(0xF0F0F0F0F0F0F0F0ULL);
  const Word256 b = Word256::Broadcast(0xFF00FF00FF00FF00ULL);
  EXPECT_EQ((a & b).Lane(1), 0xF000F000F000F000ULL);
  EXPECT_EQ((a | b).Lane(2), 0xFFF0FFF0FFF0FFF0ULL);
  EXPECT_EQ((a ^ b).Lane(3), 0x0FF00FF00FF00FF0ULL);
  EXPECT_EQ((~a).Lane(0), 0x0F0F0F0F0F0F0F0FULL);
  EXPECT_EQ(AndNot(a, b).Lane(0), 0x0F000F000F000F00ULL);
}

TEST(Word256Test, LaneArithmeticIsIndependent) {
  alignas(32) Word a_data[4] = {~Word{0}, 5, 0, 100};
  alignas(32) Word b_data[4] = {1, 3, 0, 50};
  const Word256 sum = Add64(Word256::Load(a_data), Word256::Load(b_data));
  EXPECT_EQ(sum.Lane(0), 0u);  // wraps within the lane, no carry out
  EXPECT_EQ(sum.Lane(1), 8u);
  EXPECT_EQ(sum.Lane(3), 150u);
  const Word256 diff = Sub64(Word256::Load(b_data), Word256::Load(a_data));
  EXPECT_EQ(diff.Lane(0), 2u);  // borrow wraps within the lane
  EXPECT_EQ(diff.Lane(3), static_cast<Word>(-50));
}

TEST(Word256Test, Shifts) {
  const Word256 w = Word256::Broadcast(0x8000000000000001ULL);
  EXPECT_EQ(w.Shl64(1).Lane(0), 2u);
  EXPECT_EQ(w.Shr64(1).Lane(0), 0x4000000000000000ULL);
}

TEST(Word256Test, IsZeroAndPopcount) {
  EXPECT_TRUE(Word256::Zero().IsZero());
  EXPECT_FALSE(Word256::Broadcast(1).IsZero());
  EXPECT_EQ(Word256::Ones().PopcountSum(), 256);
  EXPECT_EQ(Word256::Broadcast(0xFF).PopcountSum(), 32);
}

// ---------------------------------------------------------------------------
// SIMD scans match scalar scans
// ---------------------------------------------------------------------------

constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                              CompareOp::kLe, CompareOp::kGt, CompareOp::kGe,
                              CompareOp::kBetween};

class SimdScanTest
    : public ::testing::TestWithParam<std::tuple<int, CompareOp>> {};

TEST_P(SimdScanTest, VbpSimdMatchesScalar) {
  const auto [k, op] = GetParam();
  const std::size_t n = 5000;
  const auto codes = RandomCodes(n, k, 3 + k);
  const VbpColumn scalar_col = VbpColumn::Pack(codes, k, {.lanes = 1});
  const VbpColumn simd_col = VbpColumn::Pack(codes, k, {.lanes = 4});
  Random rng(k);
  for (int trial = 0; trial < 4; ++trial) {
    std::uint64_t c1 = rng.UniformInt(0, LowMask(k));
    std::uint64_t c2 = rng.UniformInt(0, LowMask(k));
    if (op == CompareOp::kBetween && c1 > c2) std::swap(c1, c2);
    const FilterBitVector expected = VbpScanner::Scan(scalar_col, op, c1, c2);
    const FilterBitVector actual = simd::ScanVbp(simd_col, op, c1, c2);
    ASSERT_TRUE(actual == expected)
        << "k=" << k << " op=" << CompareOpToString(op);
  }
}

TEST_P(SimdScanTest, HbpSimdMatchesScalar) {
  const auto [k, op] = GetParam();
  const std::size_t n = 5000;
  const auto codes = RandomCodes(n, k, 9 + k);
  const HbpColumn scalar_col = HbpColumn::Pack(codes, k, {.lanes = 1});
  const HbpColumn simd_col =
      HbpColumn::Pack(codes, k, {.tau = scalar_col.tau(), .lanes = 4});
  Random rng(50 + k);
  for (int trial = 0; trial < 4; ++trial) {
    std::uint64_t c1 = rng.UniformInt(0, LowMask(k));
    std::uint64_t c2 = rng.UniformInt(0, LowMask(k));
    if (op == CompareOp::kBetween && c1 > c2) std::swap(c1, c2);
    const FilterBitVector expected = HbpScanner::Scan(scalar_col, op, c1, c2);
    const FilterBitVector actual = simd::ScanHbp(simd_col, op, c1, c2);
    ASSERT_TRUE(actual == expected)
        << "k=" << k << " op=" << CompareOpToString(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsOps, SimdScanTest,
    ::testing::Combine(::testing::Values(1, 3, 7, 12, 25, 33),
                       ::testing::ValuesIn(kOps)));

// ---------------------------------------------------------------------------
// SIMD aggregates match scalar aggregates
// ---------------------------------------------------------------------------

class SimdAggTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SimdAggTest, VbpSimdAggregates) {
  const auto [k, sel] = GetParam();
  const std::size_t n = 4000;
  const auto codes = RandomCodes(n, k, 11 * k);
  Random rng(77 + k);
  std::vector<bool> pass(n);
  for (auto&& p : pass) p = rng.Bernoulli(sel);
  const VbpColumn scalar_col = VbpColumn::Pack(codes, k, {.lanes = 1});
  const VbpColumn simd_col = VbpColumn::Pack(codes, k, {.lanes = 4});
  const FilterBitVector f = FilterBitVector::FromBools(pass, 64);

  EXPECT_TRUE(simd::SumVbp(simd_col, f) == vbp::Sum(scalar_col, f));
  EXPECT_EQ(simd::MinVbp(simd_col, f), vbp::Min(scalar_col, f));
  EXPECT_EQ(simd::MaxVbp(simd_col, f), vbp::Max(scalar_col, f));
  EXPECT_EQ(simd::MedianVbp(simd_col, f), vbp::Median(scalar_col, f));
  if (f.CountOnes() >= 5) {
    EXPECT_EQ(simd::RankSelectVbp(simd_col, f, 5),
              vbp::RankSelect(scalar_col, f, 5));
  }
}

TEST_P(SimdAggTest, HbpSimdAggregates) {
  const auto [k, sel] = GetParam();
  const std::size_t n = 4000;
  const auto codes = RandomCodes(n, k, 13 * k);
  const HbpColumn scalar_col = HbpColumn::Pack(codes, k, {.lanes = 1});
  const HbpColumn simd_col =
      HbpColumn::Pack(codes, k, {.tau = scalar_col.tau(), .lanes = 4});
  Random rng(99 + k);
  std::vector<bool> pass(n);
  for (auto&& p : pass) p = rng.Bernoulli(sel);
  const FilterBitVector f =
      FilterBitVector::FromBools(pass, scalar_col.values_per_segment());

  EXPECT_TRUE(simd::SumHbp(simd_col, f) == hbp::Sum(scalar_col, f));
  EXPECT_EQ(simd::MinHbp(simd_col, f), hbp::Min(scalar_col, f));
  EXPECT_EQ(simd::MaxHbp(simd_col, f), hbp::Max(scalar_col, f));
  EXPECT_EQ(simd::MedianHbp(simd_col, f), hbp::Median(scalar_col, f));
  if (f.CountOnes() >= 9) {
    EXPECT_EQ(simd::RankSelectHbp(simd_col, f, 9),
              hbp::RankSelect(scalar_col, f, 9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsSelectivities, SimdAggTest,
    ::testing::Combine(::testing::Values(1, 3, 7, 12, 25, 33, 50),
                       ::testing::Values(0.0, 0.05, 0.5, 1.0)));

// ---------------------------------------------------------------------------
// MT + SIMD drivers
// ---------------------------------------------------------------------------

class SimdMtTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdMtTest, VbpMtSimd) {
  ThreadPool pool(GetParam());
  const int k = 19;
  const auto codes = RandomCodes(6000, k, 123);
  const VbpColumn scalar_col = VbpColumn::Pack(codes, k, {.lanes = 1});
  const VbpColumn simd_col = VbpColumn::Pack(codes, k, {.lanes = 4});
  const FilterBitVector f =
      simd::ScanVbp(pool, simd_col, CompareOp::kLt, 300000);
  const FilterBitVector f_ref =
      VbpScanner::Scan(scalar_col, CompareOp::kLt, 300000);
  ASSERT_TRUE(f == f_ref);
  EXPECT_TRUE(simd::SumVbp(pool, simd_col, f) == vbp::Sum(scalar_col, f));
  EXPECT_EQ(simd::MinVbp(pool, simd_col, f), vbp::Min(scalar_col, f));
  EXPECT_EQ(simd::MaxVbp(pool, simd_col, f), vbp::Max(scalar_col, f));
  EXPECT_EQ(simd::MedianVbp(pool, simd_col, f), vbp::Median(scalar_col, f));
}

TEST_P(SimdMtTest, HbpMtSimd) {
  ThreadPool pool(GetParam());
  const int k = 15;
  const auto codes = RandomCodes(6000, k, 321);
  const HbpColumn scalar_col = HbpColumn::Pack(codes, k, {.lanes = 1});
  const HbpColumn simd_col =
      HbpColumn::Pack(codes, k, {.tau = scalar_col.tau(), .lanes = 4});
  const FilterBitVector f =
      simd::ScanHbp(pool, simd_col, CompareOp::kGe, 9000);
  const FilterBitVector f_ref =
      HbpScanner::Scan(scalar_col, CompareOp::kGe, 9000);
  ASSERT_TRUE(f == f_ref);
  EXPECT_TRUE(simd::SumHbp(pool, simd_col, f) == hbp::Sum(scalar_col, f));
  EXPECT_EQ(simd::MinHbp(pool, simd_col, f), hbp::Min(scalar_col, f));
  EXPECT_EQ(simd::MaxHbp(pool, simd_col, f), hbp::Max(scalar_col, f));
  EXPECT_EQ(simd::MedianHbp(pool, simd_col, f), hbp::Median(scalar_col, f));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SimdMtTest, ::testing::Values(1, 2, 4));

TEST(SimdTest, AggregateDispatchers) {
  const auto codes = RandomCodes(2000, 10, 555);
  const VbpColumn vcol = VbpColumn::Pack(codes, 10, {.lanes = 4});
  const HbpColumn hcol = HbpColumn::Pack(codes, 10, {.lanes = 4});
  FilterBitVector vf(codes.size(), 64);
  vf.SetAll();
  FilterBitVector hf(codes.size(), hcol.values_per_segment());
  hf.SetAll();
  const auto vr = simd::AggregateVbp(vcol, vf, AggKind::kAvg);
  const auto hr = simd::AggregateHbp(hcol, hf, AggKind::kAvg);
  EXPECT_EQ(vr.count, codes.size());
  EXPECT_NEAR(vr.Avg(), hr.Avg(), 1e-9);
}

TEST(SimdTest, EmptyAndTinyColumns) {
  const std::vector<std::uint64_t> codes = {7, 1, 3};
  const VbpColumn vcol = VbpColumn::Pack(codes, 3, {.lanes = 4});
  const HbpColumn hcol = HbpColumn::Pack(codes, 3, {.lanes = 4});
  FilterBitVector vf(3, 64);
  vf.SetAll();
  FilterBitVector hf(3, hcol.values_per_segment());
  hf.SetAll();
  EXPECT_TRUE(simd::SumVbp(vcol, vf) == UInt128{11});
  EXPECT_TRUE(simd::SumHbp(hcol, hf) == UInt128{11});
  EXPECT_EQ(simd::MinVbp(vcol, vf), std::optional<std::uint64_t>(1));
  EXPECT_EQ(simd::MedianHbp(hcol, hf), std::optional<std::uint64_t>(3));
}

}  // namespace
}  // namespace icp
